// Density-based statistical testing (the paper's Section 2.1 "probability
// densities for statistics and physics" use case): bound the density
// quantile of new observations by classifying them against a ladder of
// quantile thresholds. An observation falling below the p = 0.001 contour
// of the fitted distribution gets p-value < 0.001, and so on — the
// level-set analogue of a one-sided tail test.
//
// Run: ./build/examples/pvalue_testing

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "tkdc/multi_threshold.h"

int main() {
  // Null distribution: a 3-component mixture in 2-d standing in for a
  // calibrated detector background model.
  tkdc::Rng rng(11);
  const tkdc::Mixture background =
      tkdc::RandomGaussianMixture(2, 3, 3.0, 0.5, 1.2, rng);
  const tkdc::Dataset data = background.Sample(40000, rng);

  // One MultiThresholdClassifier answers every level with a single
  // traversal per observation (its QuantileUpperBound is exactly the
  // density p-value we need).
  const std::vector<double> levels{0.001, 0.01, 0.05, 0.25};
  tkdc::MultiThresholdClassifier ladder(tkdc::TkdcConfig(), levels);
  ladder.Train(data);
  std::printf("trained %zu-level threshold ladder on %zu points\n",
              levels.size(), data.size());

  // Score a batch of observations: in-distribution draws should mostly
  // report p-value 1 (inside every contour), while injected anomalies far
  // from the background should report small p-values.
  tkdc::Rng obs_rng(13);
  const tkdc::Dataset null_obs = background.Sample(2000, obs_rng);
  size_t null_significant = 0;
  for (size_t i = 0; i < null_obs.size(); ++i) {
    if (ladder.QuantileUpperBound(null_obs.Row(i)) <= 0.01) {
      ++null_significant;
    }
  }
  std::printf(
      "null observations flagged at p<=0.01: %zu / %zu (%.2f%%, expect "
      "~1%%)\n",
      null_significant, null_obs.size(),
      100.0 * null_significant / null_obs.size());

  const std::vector<std::vector<double>> anomalies{
      {12.0, 12.0}, {-10.0, 8.0}, {0.0, -15.0}};
  for (const auto& x : anomalies) {
    const double p_value = ladder.QuantileUpperBound(x);
    std::printf("  injected signal (%6.1f, %6.1f): p-value %s %g\n", x[0],
                x[1], p_value <= levels.front() ? "<" : "<=", p_value);
  }
  return 0;
}
