// Model persistence: train once, save to disk, reload in a fresh process
// (simulated here by scoping), and keep classifying — the deploy-time
// workflow the tkdc_cli tool wraps.
//
// Run: ./build/examples/model_persistence

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "data/generators.h"
#include "tkdc/classifier.h"
#include "tkdc/model_io.h"

int main() {
  const std::string model_path = "quickstart_model.tkdc";

  // --- Training process ---
  {
    tkdc::Rng rng(21);
    const tkdc::Mixture mixture =
        tkdc::RandomGaussianMixture(3, 4, 4.0, 0.4, 1.2, rng);
    const tkdc::Dataset data = mixture.Sample(30000, rng);
    tkdc::TkdcConfig config;
    config.p = 0.02;
    tkdc::TkdcClassifier classifier(config);
    classifier.Train(data);
    std::printf("trained: threshold t(0.02) = %.6g\n",
                classifier.threshold());
    std::string error;
    if (!tkdc::SaveModel(model_path, classifier, data,
                         /*include_densities=*/false, &error)) {
      std::printf("save failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("model saved to %s\n", model_path.c_str());
  }

  // --- Serving process (nothing from training in scope) ---
  std::string error;
  auto classifier = tkdc::LoadModel(model_path, &error);
  if (classifier == nullptr) {
    std::printf("load failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("model loaded: %zu points, %zu dims, threshold %.6g\n",
              classifier->tree().size(), classifier->tree().dims(),
              classifier->threshold());

  tkdc::Rng probe_rng(22);
  size_t high = 0;
  const int kProbes = 1000;
  for (int i = 0; i < kProbes; ++i) {
    std::vector<double> q{probe_rng.Uniform(-6.0, 6.0),
                          probe_rng.Uniform(-6.0, 6.0),
                          probe_rng.Uniform(-6.0, 6.0)};
    if (classifier->Classify(q) == tkdc::Classification::kHigh) ++high;
  }
  std::printf("classified %d fresh probes: %zu HIGH, %zu LOW\n", kProbes,
              high, kProbes - high);
  std::remove(model_path.c_str());
  return 0;
}
