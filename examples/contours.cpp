// Density contour visualization (the paper's Figure 1b / Figure 2a use
// case): classify a grid of query points against several quantile
// thresholds and render the nested high-density regions as ASCII art.
// Also writes the grid to contours.csv for plotting.
//
// Run: ./build/examples/contours

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/csv.h"
#include "data/generators.h"
#include "tkdc/multi_threshold.h"

int main() {
  // Iris-like data: two elongated modes with a sparse gap between them.
  std::vector<tkdc::MixtureComponent> components(2);
  components[0].weight = 1.0;
  components[0].mean = {-2.0, -1.0};
  components[0].scales = {0.8, 0.5};
  components[1].weight = 2.0;
  components[1].mean = {1.5, 1.0};
  components[1].scales = {1.0, 0.7};
  const tkdc::Mixture mixture(std::move(components));
  tkdc::Rng rng(3);
  const tkdc::Dataset data = mixture.Sample(30000, rng);

  // One multi-threshold classifier covers every contour level with a
  // single index and a single training pass. Each level p marks the
  // boundary of the region holding the densest (1 - p) of the fitted
  // distribution.
  const std::vector<double> levels{0.02, 0.20, 0.50, 0.80};
  tkdc::MultiThresholdClassifier ladder(tkdc::TkdcConfig(), levels);
  ladder.Train(data);
  for (size_t i = 0; i < levels.size(); ++i) {
    std::printf("level p=%.2f -> threshold %.5g\n", levels[i],
                ladder.thresholds()[i]);
  }

  // Scan a grid of query points; none of them are training points, which
  // is exactly the Classify() use case.
  const int kWidth = 72, kHeight = 28;
  const double x_lo = -5.5, x_hi = 5.5, y_lo = -3.5, y_hi = 3.5;
  const char kShades[] = " .:*#";
  tkdc::Dataset grid_rows(3);  // x, y, level count
  std::string art;
  for (int row = kHeight - 1; row >= 0; --row) {
    const double y = y_lo + (y_hi - y_lo) * (row + 0.5) / kHeight;
    for (int col = 0; col < kWidth; ++col) {
      const double x = x_lo + (x_hi - x_lo) * (col + 0.5) / kWidth;
      const std::vector<double> q{x, y};
      // Band() returns how many contours the point's density clears; one
      // traversal answers all four levels.
      const int depth = static_cast<int>(ladder.Band(q));
      art += kShades[depth];
      grid_rows.AppendRow(
          std::vector<double>{x, y, static_cast<double>(depth)});
    }
    art += '\n';
  }
  std::printf("\nnested density regions (deeper shade = denser):\n%s\n",
              art.c_str());

  std::string error;
  if (tkdc::WriteCsv("contours.csv", grid_rows, {"x", "y", "depth"},
                     &error)) {
    std::printf("wrote %zu grid points to contours.csv\n", grid_rows.size());
  } else {
    std::printf("could not write contours.csv: %s\n", error.c_str());
  }
  return 0;
}
