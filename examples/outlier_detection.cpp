// Outlier detection on shuttle-like sensor data (the paper's Figure 1
// scenario): three dominant operating modes connected by sparse filaments.
// Points in the filaments are rare operating states — exactly what density
// classification is built to surface.
//
// Run: ./build/examples/outlier_detection [p]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/timer.h"
#include "data/datasets.h"
#include "tkdc/classifier.h"

int main(int argc, char** argv) {
  const double p = argc > 1 ? std::atof(argv[1]) : 0.02;
  const size_t n = 43500;  // The shuttle dataset's size (Table 3).
  std::printf("generating shuttle-like dataset (n=%zu, d=9)...\n", n);
  const tkdc::Dataset data =
      tkdc::MakeDataset(tkdc::DatasetId::kShuttle, n, /*seed=*/7);

  tkdc::TkdcConfig config;
  config.p = p;
  tkdc::TkdcClassifier classifier(config);

  tkdc::WallTimer timer;
  classifier.Train(data);
  std::printf("trained in %.2fs; threshold t(p=%.3f) = %.6g\n",
              timer.ElapsedSeconds(), p, classifier.threshold());

  // Score the dataset against itself (the MacroBase-style explanation
  // workload the paper motivates): which observations sit in low-density
  // regions of the fitted distribution?
  timer.Restart();
  std::vector<size_t> outliers;
  for (size_t i = 0; i < data.size(); ++i) {
    if (classifier.ClassifyTraining(data.Row(i)) ==
        tkdc::Classification::kLow) {
      outliers.push_back(i);
    }
  }
  const double classify_seconds = timer.ElapsedSeconds();
  std::printf("classified %zu points in %.2fs (%.0f points/s)\n",
              data.size(), classify_seconds,
              static_cast<double>(data.size()) / classify_seconds);
  std::printf("outliers: %zu (%.2f%% of the data, target p=%.1f%%)\n",
              outliers.size(), 100.0 * outliers.size() / data.size(),
              100.0 * p);

  // Outliers should be the filament points: far (in the informative
  // subspace) from all three mode centers. Print a few with their scores.
  std::printf("\nfirst outliers (row, informative coords, density bound):\n");
  for (size_t k = 0; k < outliers.size() && k < 8; ++k) {
    const size_t row = outliers[k];
    const auto x = data.Row(row);
    const auto bounds = classifier.BoundDensityAt(x);
    std::printf("  row %6zu  (%7.3f, %7.3f)  f(x) in [%.3g, %.3g]\n", row,
                x[0], x[1], bounds.lower, bounds.upper);
  }

  const auto stats = classifier.traversal_stats();
  std::printf("\nkernel evaluations per point: %.1f (naive: %zu)\n",
              static_cast<double>(stats.kernel_evaluations) /
                  static_cast<double>(data.size()),
              data.size());
  std::printf("grid-cache short-circuits: %llu\n",
              static_cast<unsigned long long>(classifier.grid_prunes()));
  return 0;
}
