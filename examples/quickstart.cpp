// Quickstart: train tKDC on a synthetic dataset and classify points as
// lying in high- or low-density regions of the distribution.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart

#include <cstdio>

#include "common/rng.h"
#include "data/generators.h"
#include "tkdc/classifier.h"

int main() {
  // 1. Get some data: 20k points from a 2-d standard normal.
  tkdc::Rng rng(42);
  const tkdc::Dataset data = tkdc::SampleStandardGaussian(20000, 2, rng);

  // 2. Configure the classifier. The defaults match the paper: classify
  //    the lowest-density 1% of the distribution (p = 0.01) with
  //    multiplicative error tolerance epsilon = 0.01.
  tkdc::TkdcConfig config;
  config.p = 0.01;
  config.epsilon = 0.01;

  // 3. Train: builds the k-d tree, bootstraps the quantile threshold
  //    t(p), and computes density bounds for every training point.
  tkdc::TkdcClassifier classifier(config);
  classifier.Train(data);
  std::printf("trained on %zu points; threshold t(p=%.2f) = %.6g\n",
              data.size(), config.p, classifier.threshold());
  std::printf("bootstrap bounds: [%.6g, %.6g] after %zu iterations\n",
              classifier.threshold_lower(), classifier.threshold_upper(),
              classifier.bootstrap_result().iterations);

  // 4. Classify query points. Points near the mode are HIGH (inliers);
  //    points in the far tail are LOW (outliers).
  const double queries[][2] = {
      {0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}, {4.0, 4.0},
  };
  for (const auto& q : queries) {
    const auto result = classifier.Classify(std::vector<double>{q[0], q[1]});
    std::printf("  point (%.1f, %.1f) -> %s\n", q[0], q[1],
                result == tkdc::Classification::kHigh ? "HIGH (inlier)"
                                                      : "LOW  (outlier)");
  }

  // 5. How much work did that take? tKDC's pruning means each query
  //    touched only a tiny fraction of the 20k training points.
  const auto stats = classifier.traversal_stats();
  std::printf("total kernel evaluations: %llu (naive would use %zu/query)\n",
              static_cast<unsigned long long>(stats.kernel_evaluations),
              data.size());
  return 0;
}
