file(REMOVE_RECURSE
  "libtkdc_kde.a"
)
