file(REMOVE_RECURSE
  "CMakeFiles/tkdc_kde.dir/kde/bandwidth.cc.o"
  "CMakeFiles/tkdc_kde.dir/kde/bandwidth.cc.o.d"
  "CMakeFiles/tkdc_kde.dir/kde/kernel.cc.o"
  "CMakeFiles/tkdc_kde.dir/kde/kernel.cc.o.d"
  "CMakeFiles/tkdc_kde.dir/kde/naive_kde.cc.o"
  "CMakeFiles/tkdc_kde.dir/kde/naive_kde.cc.o.d"
  "libtkdc_kde.a"
  "libtkdc_kde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tkdc_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
