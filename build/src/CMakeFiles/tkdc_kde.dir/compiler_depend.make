# Empty compiler generated dependencies file for tkdc_kde.
# This may be replaced when dependencies are built.
