file(REMOVE_RECURSE
  "CMakeFiles/tkdc_linalg.dir/linalg/pca.cc.o"
  "CMakeFiles/tkdc_linalg.dir/linalg/pca.cc.o.d"
  "CMakeFiles/tkdc_linalg.dir/linalg/sym_eigen.cc.o"
  "CMakeFiles/tkdc_linalg.dir/linalg/sym_eigen.cc.o.d"
  "libtkdc_linalg.a"
  "libtkdc_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tkdc_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
