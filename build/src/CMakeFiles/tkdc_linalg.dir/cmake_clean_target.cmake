file(REMOVE_RECURSE
  "libtkdc_linalg.a"
)
