# Empty compiler generated dependencies file for tkdc_linalg.
# This may be replaced when dependencies are built.
