file(REMOVE_RECURSE
  "libtkdc_core.a"
)
