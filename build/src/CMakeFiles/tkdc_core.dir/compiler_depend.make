# Empty compiler generated dependencies file for tkdc_core.
# This may be replaced when dependencies are built.
