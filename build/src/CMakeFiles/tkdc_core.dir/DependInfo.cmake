
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tkdc/classifier.cc" "src/CMakeFiles/tkdc_core.dir/tkdc/classifier.cc.o" "gcc" "src/CMakeFiles/tkdc_core.dir/tkdc/classifier.cc.o.d"
  "/root/repo/src/tkdc/config.cc" "src/CMakeFiles/tkdc_core.dir/tkdc/config.cc.o" "gcc" "src/CMakeFiles/tkdc_core.dir/tkdc/config.cc.o.d"
  "/root/repo/src/tkdc/density_bounds.cc" "src/CMakeFiles/tkdc_core.dir/tkdc/density_bounds.cc.o" "gcc" "src/CMakeFiles/tkdc_core.dir/tkdc/density_bounds.cc.o.d"
  "/root/repo/src/tkdc/dual_tree.cc" "src/CMakeFiles/tkdc_core.dir/tkdc/dual_tree.cc.o" "gcc" "src/CMakeFiles/tkdc_core.dir/tkdc/dual_tree.cc.o.d"
  "/root/repo/src/tkdc/grid_cache.cc" "src/CMakeFiles/tkdc_core.dir/tkdc/grid_cache.cc.o" "gcc" "src/CMakeFiles/tkdc_core.dir/tkdc/grid_cache.cc.o.d"
  "/root/repo/src/tkdc/model_io.cc" "src/CMakeFiles/tkdc_core.dir/tkdc/model_io.cc.o" "gcc" "src/CMakeFiles/tkdc_core.dir/tkdc/model_io.cc.o.d"
  "/root/repo/src/tkdc/multi_threshold.cc" "src/CMakeFiles/tkdc_core.dir/tkdc/multi_threshold.cc.o" "gcc" "src/CMakeFiles/tkdc_core.dir/tkdc/multi_threshold.cc.o.d"
  "/root/repo/src/tkdc/threshold.cc" "src/CMakeFiles/tkdc_core.dir/tkdc/threshold.cc.o" "gcc" "src/CMakeFiles/tkdc_core.dir/tkdc/threshold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tkdc_kde.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
