file(REMOVE_RECURSE
  "CMakeFiles/tkdc_core.dir/tkdc/classifier.cc.o"
  "CMakeFiles/tkdc_core.dir/tkdc/classifier.cc.o.d"
  "CMakeFiles/tkdc_core.dir/tkdc/config.cc.o"
  "CMakeFiles/tkdc_core.dir/tkdc/config.cc.o.d"
  "CMakeFiles/tkdc_core.dir/tkdc/density_bounds.cc.o"
  "CMakeFiles/tkdc_core.dir/tkdc/density_bounds.cc.o.d"
  "CMakeFiles/tkdc_core.dir/tkdc/dual_tree.cc.o"
  "CMakeFiles/tkdc_core.dir/tkdc/dual_tree.cc.o.d"
  "CMakeFiles/tkdc_core.dir/tkdc/grid_cache.cc.o"
  "CMakeFiles/tkdc_core.dir/tkdc/grid_cache.cc.o.d"
  "CMakeFiles/tkdc_core.dir/tkdc/model_io.cc.o"
  "CMakeFiles/tkdc_core.dir/tkdc/model_io.cc.o.d"
  "CMakeFiles/tkdc_core.dir/tkdc/multi_threshold.cc.o"
  "CMakeFiles/tkdc_core.dir/tkdc/multi_threshold.cc.o.d"
  "CMakeFiles/tkdc_core.dir/tkdc/threshold.cc.o"
  "CMakeFiles/tkdc_core.dir/tkdc/threshold.cc.o.d"
  "libtkdc_core.a"
  "libtkdc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tkdc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
