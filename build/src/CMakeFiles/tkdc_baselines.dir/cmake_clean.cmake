file(REMOVE_RECURSE
  "CMakeFiles/tkdc_baselines.dir/baselines/binned_kde.cc.o"
  "CMakeFiles/tkdc_baselines.dir/baselines/binned_kde.cc.o.d"
  "CMakeFiles/tkdc_baselines.dir/baselines/knn.cc.o"
  "CMakeFiles/tkdc_baselines.dir/baselines/knn.cc.o.d"
  "CMakeFiles/tkdc_baselines.dir/baselines/rkde.cc.o"
  "CMakeFiles/tkdc_baselines.dir/baselines/rkde.cc.o.d"
  "CMakeFiles/tkdc_baselines.dir/baselines/simple_kde.cc.o"
  "CMakeFiles/tkdc_baselines.dir/baselines/simple_kde.cc.o.d"
  "libtkdc_baselines.a"
  "libtkdc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tkdc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
