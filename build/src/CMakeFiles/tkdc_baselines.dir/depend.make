# Empty dependencies file for tkdc_baselines.
# This may be replaced when dependencies are built.
