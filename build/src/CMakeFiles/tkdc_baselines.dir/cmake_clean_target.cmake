file(REMOVE_RECURSE
  "libtkdc_baselines.a"
)
