# Empty dependencies file for tkdc_fft.
# This may be replaced when dependencies are built.
