file(REMOVE_RECURSE
  "CMakeFiles/tkdc_fft.dir/fft/convolution.cc.o"
  "CMakeFiles/tkdc_fft.dir/fft/convolution.cc.o.d"
  "CMakeFiles/tkdc_fft.dir/fft/fft.cc.o"
  "CMakeFiles/tkdc_fft.dir/fft/fft.cc.o.d"
  "libtkdc_fft.a"
  "libtkdc_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tkdc_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
