file(REMOVE_RECURSE
  "libtkdc_fft.a"
)
