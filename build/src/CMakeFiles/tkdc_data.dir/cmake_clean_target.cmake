file(REMOVE_RECURSE
  "libtkdc_data.a"
)
