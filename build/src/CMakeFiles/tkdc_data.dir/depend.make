# Empty dependencies file for tkdc_data.
# This may be replaced when dependencies are built.
