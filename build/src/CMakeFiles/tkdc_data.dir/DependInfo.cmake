
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/tkdc_data.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/tkdc_data.dir/data/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/tkdc_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/tkdc_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/datasets.cc" "src/CMakeFiles/tkdc_data.dir/data/datasets.cc.o" "gcc" "src/CMakeFiles/tkdc_data.dir/data/datasets.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/CMakeFiles/tkdc_data.dir/data/generators.cc.o" "gcc" "src/CMakeFiles/tkdc_data.dir/data/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tkdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
