file(REMOVE_RECURSE
  "CMakeFiles/tkdc_data.dir/data/csv.cc.o"
  "CMakeFiles/tkdc_data.dir/data/csv.cc.o.d"
  "CMakeFiles/tkdc_data.dir/data/dataset.cc.o"
  "CMakeFiles/tkdc_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/tkdc_data.dir/data/datasets.cc.o"
  "CMakeFiles/tkdc_data.dir/data/datasets.cc.o.d"
  "CMakeFiles/tkdc_data.dir/data/generators.cc.o"
  "CMakeFiles/tkdc_data.dir/data/generators.cc.o.d"
  "libtkdc_data.a"
  "libtkdc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tkdc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
