file(REMOVE_RECURSE
  "CMakeFiles/tkdc_harness.dir/harness/runner.cc.o"
  "CMakeFiles/tkdc_harness.dir/harness/runner.cc.o.d"
  "CMakeFiles/tkdc_harness.dir/harness/table.cc.o"
  "CMakeFiles/tkdc_harness.dir/harness/table.cc.o.d"
  "CMakeFiles/tkdc_harness.dir/harness/workload.cc.o"
  "CMakeFiles/tkdc_harness.dir/harness/workload.cc.o.d"
  "libtkdc_harness.a"
  "libtkdc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tkdc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
