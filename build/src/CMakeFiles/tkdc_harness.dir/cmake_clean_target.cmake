file(REMOVE_RECURSE
  "libtkdc_harness.a"
)
