# Empty dependencies file for tkdc_harness.
# This may be replaced when dependencies are built.
