# Empty compiler generated dependencies file for tkdc_common.
# This may be replaced when dependencies are built.
