file(REMOVE_RECURSE
  "libtkdc_common.a"
)
