
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/order_stats.cc" "src/CMakeFiles/tkdc_common.dir/common/order_stats.cc.o" "gcc" "src/CMakeFiles/tkdc_common.dir/common/order_stats.cc.o.d"
  "/root/repo/src/common/parallel.cc" "src/CMakeFiles/tkdc_common.dir/common/parallel.cc.o" "gcc" "src/CMakeFiles/tkdc_common.dir/common/parallel.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/tkdc_common.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/tkdc_common.dir/common/rng.cc.o.d"
  "/root/repo/src/common/special_math.cc" "src/CMakeFiles/tkdc_common.dir/common/special_math.cc.o" "gcc" "src/CMakeFiles/tkdc_common.dir/common/special_math.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/tkdc_common.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/tkdc_common.dir/common/stats.cc.o.d"
  "/root/repo/src/common/timer.cc" "src/CMakeFiles/tkdc_common.dir/common/timer.cc.o" "gcc" "src/CMakeFiles/tkdc_common.dir/common/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
