file(REMOVE_RECURSE
  "CMakeFiles/tkdc_common.dir/common/order_stats.cc.o"
  "CMakeFiles/tkdc_common.dir/common/order_stats.cc.o.d"
  "CMakeFiles/tkdc_common.dir/common/parallel.cc.o"
  "CMakeFiles/tkdc_common.dir/common/parallel.cc.o.d"
  "CMakeFiles/tkdc_common.dir/common/rng.cc.o"
  "CMakeFiles/tkdc_common.dir/common/rng.cc.o.d"
  "CMakeFiles/tkdc_common.dir/common/special_math.cc.o"
  "CMakeFiles/tkdc_common.dir/common/special_math.cc.o.d"
  "CMakeFiles/tkdc_common.dir/common/stats.cc.o"
  "CMakeFiles/tkdc_common.dir/common/stats.cc.o.d"
  "CMakeFiles/tkdc_common.dir/common/timer.cc.o"
  "CMakeFiles/tkdc_common.dir/common/timer.cc.o.d"
  "libtkdc_common.a"
  "libtkdc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tkdc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
