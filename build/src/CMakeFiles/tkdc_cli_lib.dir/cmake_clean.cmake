file(REMOVE_RECURSE
  "CMakeFiles/tkdc_cli_lib.dir/cli/cli.cc.o"
  "CMakeFiles/tkdc_cli_lib.dir/cli/cli.cc.o.d"
  "libtkdc_cli_lib.a"
  "libtkdc_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tkdc_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
