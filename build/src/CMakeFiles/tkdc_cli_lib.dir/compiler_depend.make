# Empty compiler generated dependencies file for tkdc_cli_lib.
# This may be replaced when dependencies are built.
