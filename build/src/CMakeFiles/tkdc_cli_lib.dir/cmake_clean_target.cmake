file(REMOVE_RECURSE
  "libtkdc_cli_lib.a"
)
