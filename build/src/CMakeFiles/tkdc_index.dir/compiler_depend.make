# Empty compiler generated dependencies file for tkdc_index.
# This may be replaced when dependencies are built.
