file(REMOVE_RECURSE
  "CMakeFiles/tkdc_index.dir/index/bounding_box.cc.o"
  "CMakeFiles/tkdc_index.dir/index/bounding_box.cc.o.d"
  "CMakeFiles/tkdc_index.dir/index/kdtree.cc.o"
  "CMakeFiles/tkdc_index.dir/index/kdtree.cc.o.d"
  "CMakeFiles/tkdc_index.dir/index/split_rule.cc.o"
  "CMakeFiles/tkdc_index.dir/index/split_rule.cc.o.d"
  "libtkdc_index.a"
  "libtkdc_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tkdc_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
