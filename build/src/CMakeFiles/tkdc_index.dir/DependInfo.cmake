
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/bounding_box.cc" "src/CMakeFiles/tkdc_index.dir/index/bounding_box.cc.o" "gcc" "src/CMakeFiles/tkdc_index.dir/index/bounding_box.cc.o.d"
  "/root/repo/src/index/kdtree.cc" "src/CMakeFiles/tkdc_index.dir/index/kdtree.cc.o" "gcc" "src/CMakeFiles/tkdc_index.dir/index/kdtree.cc.o.d"
  "/root/repo/src/index/split_rule.cc" "src/CMakeFiles/tkdc_index.dir/index/split_rule.cc.o" "gcc" "src/CMakeFiles/tkdc_index.dir/index/split_rule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tkdc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
