file(REMOVE_RECURSE
  "libtkdc_index.a"
)
