file(REMOVE_RECURSE
  "CMakeFiles/tkdc_cli.dir/tkdc_cli.cc.o"
  "CMakeFiles/tkdc_cli.dir/tkdc_cli.cc.o.d"
  "tkdc_cli"
  "tkdc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tkdc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
