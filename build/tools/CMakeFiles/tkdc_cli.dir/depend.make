# Empty dependencies file for tkdc_cli.
# This may be replaced when dependencies are built.
