# Empty compiler generated dependencies file for contours.
# This may be replaced when dependencies are built.
