file(REMOVE_RECURSE
  "CMakeFiles/contours.dir/contours.cpp.o"
  "CMakeFiles/contours.dir/contours.cpp.o.d"
  "contours"
  "contours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
