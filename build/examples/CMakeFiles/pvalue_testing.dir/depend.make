# Empty dependencies file for pvalue_testing.
# This may be replaced when dependencies are built.
