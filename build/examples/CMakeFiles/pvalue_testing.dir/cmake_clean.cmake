file(REMOVE_RECURSE
  "CMakeFiles/pvalue_testing.dir/pvalue_testing.cpp.o"
  "CMakeFiles/pvalue_testing.dir/pvalue_testing.cpp.o.d"
  "pvalue_testing"
  "pvalue_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvalue_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
