# Empty compiler generated dependencies file for fig10_scale_n_highdim.
# This may be replaced when dependencies are built.
