file(REMOVE_RECURSE
  "CMakeFiles/fig10_scale_n_highdim.dir/fig10_scale_n_highdim.cc.o"
  "CMakeFiles/fig10_scale_n_highdim.dir/fig10_scale_n_highdim.cc.o.d"
  "fig10_scale_n_highdim"
  "fig10_scale_n_highdim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_scale_n_highdim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
