file(REMOVE_RECURSE
  "CMakeFiles/ablation_dual_tree.dir/ablation_dual_tree.cc.o"
  "CMakeFiles/ablation_dual_tree.dir/ablation_dual_tree.cc.o.d"
  "ablation_dual_tree"
  "ablation_dual_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dual_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
