# Empty dependencies file for ablation_dual_tree.
# This may be replaced when dependencies are built.
