
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_parallel.cc" "bench/CMakeFiles/micro_parallel.dir/micro_parallel.cc.o" "gcc" "bench/CMakeFiles/micro_parallel.dir/micro_parallel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tkdc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_kde.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
