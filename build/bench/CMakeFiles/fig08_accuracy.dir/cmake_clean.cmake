file(REMOVE_RECURSE
  "CMakeFiles/fig08_accuracy.dir/fig08_accuracy.cc.o"
  "CMakeFiles/fig08_accuracy.dir/fig08_accuracy.cc.o.d"
  "fig08_accuracy"
  "fig08_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
