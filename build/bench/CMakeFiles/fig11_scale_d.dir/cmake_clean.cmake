file(REMOVE_RECURSE
  "CMakeFiles/fig11_scale_d.dir/fig11_scale_d.cc.o"
  "CMakeFiles/fig11_scale_d.dir/fig11_scale_d.cc.o.d"
  "fig11_scale_d"
  "fig11_scale_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_scale_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
