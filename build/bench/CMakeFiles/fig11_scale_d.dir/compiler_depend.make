# Empty compiler generated dependencies file for fig11_scale_d.
# This may be replaced when dependencies are built.
