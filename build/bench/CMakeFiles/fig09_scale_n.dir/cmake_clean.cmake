file(REMOVE_RECURSE
  "CMakeFiles/fig09_scale_n.dir/fig09_scale_n.cc.o"
  "CMakeFiles/fig09_scale_n.dir/fig09_scale_n.cc.o.d"
  "fig09_scale_n"
  "fig09_scale_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_scale_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
