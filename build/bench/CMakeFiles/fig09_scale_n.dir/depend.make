# Empty dependencies file for fig09_scale_n.
# This may be replaced when dependencies are built.
