file(REMOVE_RECURSE
  "CMakeFiles/micro_fft.dir/micro_fft.cc.o"
  "CMakeFiles/micro_fft.dir/micro_fft.cc.o.d"
  "micro_fft"
  "micro_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
