# Empty dependencies file for fig14_mnist_dims.
# This may be replaced when dependencies are built.
