file(REMOVE_RECURSE
  "CMakeFiles/fig14_mnist_dims.dir/fig14_mnist_dims.cc.o"
  "CMakeFiles/fig14_mnist_dims.dir/fig14_mnist_dims.cc.o.d"
  "fig14_mnist_dims"
  "fig14_mnist_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_mnist_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
