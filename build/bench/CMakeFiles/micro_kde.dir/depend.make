# Empty dependencies file for micro_kde.
# This may be replaced when dependencies are built.
