file(REMOVE_RECURSE
  "CMakeFiles/fig12_factor_analysis.dir/fig12_factor_analysis.cc.o"
  "CMakeFiles/fig12_factor_analysis.dir/fig12_factor_analysis.cc.o.d"
  "fig12_factor_analysis"
  "fig12_factor_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_factor_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
