# Empty dependencies file for fig12_factor_analysis.
# This may be replaced when dependencies are built.
