# Empty dependencies file for fig13_rkde_radius.
# This may be replaced when dependencies are built.
