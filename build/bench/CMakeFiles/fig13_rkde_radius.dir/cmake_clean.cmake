file(REMOVE_RECURSE
  "CMakeFiles/fig13_rkde_radius.dir/fig13_rkde_radius.cc.o"
  "CMakeFiles/fig13_rkde_radius.dir/fig13_rkde_radius.cc.o.d"
  "fig13_rkde_radius"
  "fig13_rkde_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_rkde_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
