file(REMOVE_RECURSE
  "CMakeFiles/fig16_lesion.dir/fig16_lesion.cc.o"
  "CMakeFiles/fig16_lesion.dir/fig16_lesion.cc.o.d"
  "fig16_lesion"
  "fig16_lesion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_lesion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
