# Empty compiler generated dependencies file for fig16_lesion.
# This may be replaced when dependencies are built.
