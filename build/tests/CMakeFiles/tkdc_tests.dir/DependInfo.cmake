
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/binned_kde_test.cc" "tests/CMakeFiles/tkdc_tests.dir/baselines/binned_kde_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/baselines/binned_kde_test.cc.o.d"
  "/root/repo/tests/baselines/knn_test.cc" "tests/CMakeFiles/tkdc_tests.dir/baselines/knn_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/baselines/knn_test.cc.o.d"
  "/root/repo/tests/baselines/nocut_test.cc" "tests/CMakeFiles/tkdc_tests.dir/baselines/nocut_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/baselines/nocut_test.cc.o.d"
  "/root/repo/tests/baselines/rkde_test.cc" "tests/CMakeFiles/tkdc_tests.dir/baselines/rkde_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/baselines/rkde_test.cc.o.d"
  "/root/repo/tests/baselines/simple_kde_test.cc" "tests/CMakeFiles/tkdc_tests.dir/baselines/simple_kde_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/baselines/simple_kde_test.cc.o.d"
  "/root/repo/tests/cli/cli_test.cc" "tests/CMakeFiles/tkdc_tests.dir/cli/cli_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/cli/cli_test.cc.o.d"
  "/root/repo/tests/common/order_stats_test.cc" "tests/CMakeFiles/tkdc_tests.dir/common/order_stats_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/common/order_stats_test.cc.o.d"
  "/root/repo/tests/common/parallel_test.cc" "tests/CMakeFiles/tkdc_tests.dir/common/parallel_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/common/parallel_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/tkdc_tests.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/special_math_test.cc" "tests/CMakeFiles/tkdc_tests.dir/common/special_math_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/common/special_math_test.cc.o.d"
  "/root/repo/tests/common/stats_test.cc" "tests/CMakeFiles/tkdc_tests.dir/common/stats_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/common/stats_test.cc.o.d"
  "/root/repo/tests/data/csv_test.cc" "tests/CMakeFiles/tkdc_tests.dir/data/csv_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/data/csv_test.cc.o.d"
  "/root/repo/tests/data/dataset_test.cc" "tests/CMakeFiles/tkdc_tests.dir/data/dataset_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/data/dataset_test.cc.o.d"
  "/root/repo/tests/data/datasets_test.cc" "tests/CMakeFiles/tkdc_tests.dir/data/datasets_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/data/datasets_test.cc.o.d"
  "/root/repo/tests/data/generators_test.cc" "tests/CMakeFiles/tkdc_tests.dir/data/generators_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/data/generators_test.cc.o.d"
  "/root/repo/tests/fft/convolution_test.cc" "tests/CMakeFiles/tkdc_tests.dir/fft/convolution_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/fft/convolution_test.cc.o.d"
  "/root/repo/tests/fft/fft_test.cc" "tests/CMakeFiles/tkdc_tests.dir/fft/fft_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/fft/fft_test.cc.o.d"
  "/root/repo/tests/harness/harness_test.cc" "tests/CMakeFiles/tkdc_tests.dir/harness/harness_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/harness/harness_test.cc.o.d"
  "/root/repo/tests/index/bounding_box_test.cc" "tests/CMakeFiles/tkdc_tests.dir/index/bounding_box_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/index/bounding_box_test.cc.o.d"
  "/root/repo/tests/index/kdtree_test.cc" "tests/CMakeFiles/tkdc_tests.dir/index/kdtree_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/index/kdtree_test.cc.o.d"
  "/root/repo/tests/index/split_rule_test.cc" "tests/CMakeFiles/tkdc_tests.dir/index/split_rule_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/index/split_rule_test.cc.o.d"
  "/root/repo/tests/integration/baseline_comparison_test.cc" "tests/CMakeFiles/tkdc_tests.dir/integration/baseline_comparison_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/integration/baseline_comparison_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/tkdc_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/kde/bandwidth_test.cc" "tests/CMakeFiles/tkdc_tests.dir/kde/bandwidth_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/kde/bandwidth_test.cc.o.d"
  "/root/repo/tests/kde/kernel_test.cc" "tests/CMakeFiles/tkdc_tests.dir/kde/kernel_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/kde/kernel_test.cc.o.d"
  "/root/repo/tests/kde/naive_kde_test.cc" "tests/CMakeFiles/tkdc_tests.dir/kde/naive_kde_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/kde/naive_kde_test.cc.o.d"
  "/root/repo/tests/linalg/pca_test.cc" "tests/CMakeFiles/tkdc_tests.dir/linalg/pca_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/linalg/pca_test.cc.o.d"
  "/root/repo/tests/linalg/sym_eigen_test.cc" "tests/CMakeFiles/tkdc_tests.dir/linalg/sym_eigen_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/linalg/sym_eigen_test.cc.o.d"
  "/root/repo/tests/tkdc/classifier_test.cc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/classifier_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/classifier_test.cc.o.d"
  "/root/repo/tests/tkdc/config_test.cc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/config_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/config_test.cc.o.d"
  "/root/repo/tests/tkdc/density_bounds_test.cc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/density_bounds_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/density_bounds_test.cc.o.d"
  "/root/repo/tests/tkdc/dual_tree_test.cc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/dual_tree_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/dual_tree_test.cc.o.d"
  "/root/repo/tests/tkdc/grid_cache_test.cc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/grid_cache_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/grid_cache_test.cc.o.d"
  "/root/repo/tests/tkdc/model_io_test.cc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/model_io_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/model_io_test.cc.o.d"
  "/root/repo/tests/tkdc/multi_threshold_test.cc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/multi_threshold_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/multi_threshold_test.cc.o.d"
  "/root/repo/tests/tkdc/parallel_equivalence_test.cc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/parallel_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/parallel_equivalence_test.cc.o.d"
  "/root/repo/tests/tkdc/property_test.cc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/property_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/property_test.cc.o.d"
  "/root/repo/tests/tkdc/threshold_test.cc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/threshold_test.cc.o" "gcc" "tests/CMakeFiles/tkdc_tests.dir/tkdc/threshold_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tkdc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_kde.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tkdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
