# Empty compiler generated dependencies file for tkdc_tests.
# This may be replaced when dependencies are built.
