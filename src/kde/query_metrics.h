#ifndef TKDC_KDE_QUERY_METRICS_H_
#define TKDC_KDE_QUERY_METRICS_H_

#include <cstdint>
#include <optional>

#include "common/metrics.h"
#include "index/index_backend.h"
#include "kde/query_context.h"

namespace tkdc {

/// The standard query-path metrics schema, shared by every algorithm in
/// the lineup (tkdc/nocut/simple/rkde/binned/knn) so cross-algorithm work
/// comparisons come from one code path:
///
///   - the DensityClassifier facade records the per-query histograms
///     (prune depth, leaf points, kernel evaluations) and the query/grid
///     counters by diffing the context's TraversalStats around each
///     ClassifyInContext / EstimateDensityInContext call;
///   - the tKDC bound evaluator additionally records the cutoff-reason
///     counters and the final bound-gap histogram, which only exist for
///     bounded tree traversals.
///
/// The ids below are compile-time constants: RegisterStandard() registers
/// the metrics in exactly this order (idempotently, so several attach
/// points can share one registry) and shards made from such a registry can
/// be indexed with them directly.
namespace query_metrics {

// Counter ids.
inline constexpr size_t kQueries = 0;
inline constexpr size_t kGridPrunes = 1;
inline constexpr size_t kCutoffLowerAboveThreshold = 2;
inline constexpr size_t kCutoffUpperBelowThreshold = 3;
inline constexpr size_t kCutoffTolerance = 4;
inline constexpr size_t kCutoffExactLeaf = 5;
inline constexpr size_t kCounterCount = 6;

// Histogram ids (a separate id space from counters).
inline constexpr size_t kPruneDepth = 0;
inline constexpr size_t kLeafPoints = 1;
inline constexpr size_t kKernelEvals = 2;
inline constexpr size_t kBoundGap = 3;
// Per-backend node-expansion histograms: tree-backed engines label each
// query with their index backend, so a mixed fleet (or an A/B run) splits
// traversal depth by kdtree vs. balltree in one registry.
inline constexpr size_t kNodeExpansionsKdTree = 4;
inline constexpr size_t kNodeExpansionsBallTree = 5;
inline constexpr size_t kHistogramCount = 6;

/// Registers the standard schema on `registry`. Idempotent; the returned
/// ids are guaranteed to equal the constants above, whether the registry
/// was fresh or already carried the schema.
void RegisterStandard(MetricsRegistry& registry);

/// Records one classified/estimated query into `ctx.metrics` from the
/// counter deltas accumulated during the call. `before` / `grid_before`
/// are snapshots of ctx.stats / ctx.grid_prunes taken before the query
/// ran. `backend` labels the query with the spatial-index backend that
/// served it (nullopt for index-free algorithms), feeding the per-backend
/// node-expansion histograms. No-op when no shard is attached.
inline void RecordQuery(QueryContext& ctx, const TraversalStats& before,
                        uint64_t grid_before,
                        std::optional<IndexBackend> backend = std::nullopt) {
  if (ctx.metrics == nullptr) return;
  MetricsShard& m = *ctx.metrics;
  const double nodes_expanded =
      static_cast<double>(ctx.stats.nodes_expanded - before.nodes_expanded);
  m.Inc(kQueries);
  m.Inc(kGridPrunes, ctx.grid_prunes - grid_before);
  m.Observe(kPruneDepth, nodes_expanded);
  m.Observe(kLeafPoints, static_cast<double>(ctx.stats.leaf_points_evaluated -
                                             before.leaf_points_evaluated));
  m.Observe(kKernelEvals, static_cast<double>(ctx.stats.kernel_evaluations -
                                              before.kernel_evaluations));
  if (backend.has_value()) {
    m.Observe(*backend == IndexBackend::kBallTree ? kNodeExpansionsBallTree
                                                  : kNodeExpansionsKdTree,
              nodes_expanded);
  }
}

}  // namespace query_metrics

}  // namespace tkdc

#endif  // TKDC_KDE_QUERY_METRICS_H_
