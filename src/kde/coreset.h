#ifndef TKDC_KDE_CORESET_H_
#define TKDC_KDE_CORESET_H_

#include <cstddef>
#include <cstdint>

#include "data/dataset.h"
#include "kde/kernel.h"

namespace tkdc {

/// Tuning knobs of the epsilon-coreset builder (BuildKdeCoreset).
struct CoresetOptions {
  /// The epsilon share the compression may spend (the coreset share of
  /// tkdc/error_budget.h). <= 0 disables compression.
  double epsilon = 0.0;
  /// Halving never shrinks the coreset below this many points: below a few
  /// hundred points the kernel sum is cheap anyway and the discrepancy
  /// estimate loses resolution.
  size_t min_size = 256;
  /// Evaluation points used to track the compressed KDE's deviation.
  size_t eval_sample = 512;
  /// Fraction of the epsilon share a halving may consume before the loop
  /// stops. The deviation is measured on a sample, so keeping headroom
  /// makes out-of-sample queries respect the full share.
  double safety = 0.5;
  /// Quantile of the sampled densities used as the reference scale f_ref
  /// (the stand-in for the threshold t(p), which is not known yet at
  /// compression time). Pass the config's classification rate p.
  double reference_quantile = 0.01;
  uint64_t seed = 0;
};

/// Compression metadata carried in the trained model (and serialized by
/// model format v6). Defaults describe an uncompressed model.
struct CoresetInfo {
  /// Whether the model's training set is a compressed coreset.
  bool enabled = false;
  /// Rows of the original training set before compression (== the model's
  /// point count when compression is disabled or never engaged).
  uint64_t original_size = 0;
  /// Estimated sup over queries of |f_coreset - f_exact| / max(f, f_ref),
  /// as tracked on the evaluation sample at the accepted halving depth.
  double achieved_error = 0.0;
  /// Accepted halving rounds (compression factor ~= 2^halvings).
  uint32_t halvings = 0;

  /// original_size / coreset_size given the surviving point count.
  double CompressionRatio(size_t points) const {
    return points == 0 ? 1.0
                       : static_cast<double>(original_size) /
                             static_cast<double>(points);
  }
};

/// The compressed training set plus its metadata.
struct CoresetResult {
  /// Dataset has no default constructor; a default-constructed result holds
  /// an empty 1-d placeholder until BuildKdeCoreset assigns the real set.
  Dataset points{1};
  CoresetInfo info;
};

/// Builds an epsilon-coreset of `data` for KDE under `kernel`, following
/// the Phillips & Tai recipe ("Improved Coresets for Kernel Density
/// Estimates"): order the points along a grid (Z-order) curve so
/// neighboring points are spatially close, then repeatedly halve by
/// keeping one point of every consecutive pair. Which side of a pair
/// survives is a greedy discrepancy minimization (a self-balancing walk):
/// each choice takes the step that shrinks the running residual of the
/// compressed KDE against the exact one at a fixed evaluation sample —
/// data rows jittered by one bandwidth, i.e. draws from the smoothed
/// distribution itself. Halving stops before the epsilon share is spent.
///
/// The coreset keeps uniform weights — it is a plain, smaller dataset the
/// whole pipeline (index build, SoA leaf blocks, bootstrap, streaming
/// rebuilds) consumes unchanged. The deviation is measured relative to
/// max(f_exact(x), f_ref) at the evaluation sample: near the decision
/// threshold this is exactly the multiplicative band the classification
/// tolerance spends, and in the far tails (f << f_ref) the absolute error
/// stays below epsilon * f_ref, which cannot flip a threshold comparison.
///
/// Deterministic for a fixed (data, options.seed). When no halving fits
/// the budget (or epsilon <= 0, or the data is already at min_size) the
/// result carries a copy of `data` with info.enabled == false.
CoresetResult BuildKdeCoreset(const Dataset& data, const Kernel& kernel,
                              const CoresetOptions& options);

}  // namespace tkdc

#endif  // TKDC_KDE_CORESET_H_
