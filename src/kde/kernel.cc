#include "kde/kernel.h"

#include <cmath>
#include <numbers>

#include "common/macros.h"

namespace tkdc {
namespace {

// The per-family radial profiles behind Kernel::scaled_profile(): the same
// arithmetic as EvaluateScaled's switch arms, so resolving the dispatch
// once per context changes no bits.
double GaussianProfile(double z, double norm) {
  return norm * std::exp(-0.5 * z);
}
double EpanechnikovProfile(double z, double norm) {
  return z >= 1.0 ? 0.0 : norm * (1.0 - z);
}
double UniformProfile(double z, double norm) { return z >= 1.0 ? 0.0 : norm; }
double BiweightProfile(double z, double norm) {
  return z >= 1.0 ? 0.0 : norm * (1.0 - z) * (1.0 - z);
}

Kernel::ScaledProfileFn ResolveProfile(KernelType type) {
  switch (type) {
    case KernelType::kGaussian:
      return &GaussianProfile;
    case KernelType::kEpanechnikov:
      return &EpanechnikovProfile;
    case KernelType::kUniform:
      return &UniformProfile;
    case KernelType::kBiweight:
      return &BiweightProfile;
  }
  return &GaussianProfile;  // Unreachable.
}

}  // namespace

Kernel::Kernel(KernelType type, std::vector<double> bandwidths)
    : type_(type),
      bandwidths_(std::move(bandwidths)),
      profile_(ResolveProfile(type)) {
  TKDC_CHECK(!bandwidths_.empty());
  inv_bandwidths_.resize(bandwidths_.size());
  double log_bw_product = 0.0;
  for (size_t j = 0; j < bandwidths_.size(); ++j) {
    TKDC_CHECK(bandwidths_[j] > 0.0);
    inv_bandwidths_[j] = 1.0 / bandwidths_[j];
    log_bw_product += std::log(bandwidths_[j]);
  }
  const double d = static_cast<double>(bandwidths_.size());
  switch (type_) {
    case KernelType::kGaussian:
      // 1 / ((2 pi)^(d/2) * prod h_j).
      norm_ = std::exp(-0.5 * d * std::log(2.0 * std::numbers::pi) -
                       log_bw_product);
      break;
    case KernelType::kEpanechnikov: {
      // c_d = (d + 2) Gamma(d/2 + 1) / (2 pi^(d/2)): normalizes
      // (1 - ||u||^2)+ over the unit ball.
      const double log_cd = std::log(d + 2.0) + std::lgamma(0.5 * d + 1.0) -
                            std::log(2.0) -
                            0.5 * d * std::log(std::numbers::pi);
      norm_ = std::exp(log_cd - log_bw_product);
      break;
    }
    case KernelType::kUniform: {
      // 1 / volume of the unit ball: Gamma(d/2 + 1) / pi^(d/2).
      const double log_ud = std::lgamma(0.5 * d + 1.0) -
                            0.5 * d * std::log(std::numbers::pi);
      norm_ = std::exp(log_ud - log_bw_product);
      break;
    }
    case KernelType::kBiweight: {
      // b_d = Gamma(d/2 + 3) / (2 pi^(d/2)): normalizes (1 - ||u||^2)+^2.
      const double log_bd = std::lgamma(0.5 * d + 3.0) - std::log(2.0) -
                            0.5 * d * std::log(std::numbers::pi);
      norm_ = std::exp(log_bd - log_bw_product);
      break;
    }
  }
}

double Kernel::ScaledSquaredDistance(std::span<const double> a,
                                     std::span<const double> b) const {
  TKDC_DCHECK(a.size() == dims() && b.size() == dims());
  double z = 0.0;
  for (size_t j = 0; j < a.size(); ++j) {
    const double u = (a[j] - b[j]) * inv_bandwidths_[j];
    z += u * u;
  }
  return z;
}

double Kernel::EvaluateScaled(double z) const {
  TKDC_DCHECK(z >= 0.0);
  switch (type_) {
    case KernelType::kGaussian:
      return norm_ * std::exp(-0.5 * z);
    case KernelType::kEpanechnikov:
      return z >= 1.0 ? 0.0 : norm_ * (1.0 - z);
    case KernelType::kUniform:
      return z >= 1.0 ? 0.0 : norm_;
    case KernelType::kBiweight:
      return z >= 1.0 ? 0.0 : norm_ * (1.0 - z) * (1.0 - z);
  }
  return 0.0;  // Unreachable.
}

double Kernel::Evaluate(std::span<const double> a,
                        std::span<const double> b) const {
  return EvaluateScaled(ScaledSquaredDistance(a, b));
}

double Kernel::SupportScaledSquared() const {
  switch (type_) {
    case KernelType::kGaussian:
      return std::numeric_limits<double>::infinity();
    case KernelType::kEpanechnikov:
    case KernelType::kUniform:
    case KernelType::kBiweight:
      return 1.0;
  }
  return 0.0;  // Unreachable.
}

double Kernel::ScaledSquaredDistanceForValue(double value) const {
  if (value >= norm_) return 0.0;
  switch (type_) {
    case KernelType::kGaussian:
      if (value <= 0.0) return std::numeric_limits<double>::infinity();
      return -2.0 * std::log(value / norm_);
    case KernelType::kEpanechnikov:
      if (value <= 0.0) return 1.0;
      return 1.0 - value / norm_;
    case KernelType::kUniform:
      // Discontinuous at the support edge; any z < 1 has value norm_.
      return 1.0;
    case KernelType::kBiweight:
      if (value <= 0.0) return 1.0;
      return 1.0 - std::sqrt(value / norm_);
  }
  return 0.0;  // Unreachable.
}

}  // namespace tkdc
