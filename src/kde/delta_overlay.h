#ifndef TKDC_KDE_DELTA_OVERLAY_H_
#define TKDC_KDE_DELTA_OVERLAY_H_

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

#include "kde/kernel.h"

namespace tkdc {

/// Bounded append-only side buffer staging streamed mutations on top of an
/// immutable base model. Arrivals (INSERT) land in one SoA point buffer,
/// deletions (DELETE) in a second "tombstone" buffer holding the exact
/// coordinates of the removed point; neither buffer ever rewrites a slot,
/// so a published row is immutable for the overlay's lifetime. The overlay
/// contributes an exact signed kernel sum
///
///     Delta(x) = sum_{inserted} K_H(x - y) - sum_{tombstoned} K_H(x - y)
///
/// which the engines fold into the base density: with n_b base points and
/// n_eff = n_b + inserted - tombstones, the merged density is
/// f'(x) = (n_b * f_base(x) + Delta(x)) / n_eff — exact because a point's
/// kernel contribution depends only on its coordinates, so a tombstone
/// carrying the deleted point's coordinates cancels it precisely.
///
/// Layout reuses the SIMD SoA contract (common/simd.h): points are grouped
/// into fixed blocks of kBlockPoints, every dimension contiguous within a
/// block, unwritten lanes pre-filled with +infinity so they contribute
/// exactly +0.0 to any kernel sum. Block boundaries depend only on slot
/// index, so the summation schedule — and therefore the bits of the sum —
/// is a function of the published count alone.
///
/// Thread contract (single-writer, quiescent-reader):
///   - All mutations (Insert / AddTombstone) must come from one thread at a
///     time — in the serving stack that is the batcher dispatch thread.
///   - snapshot() / counts / CopyRow are safe from any thread: a row
///     published by a release store of the count is immutable, and readers
///     acquire the count before touching rows below it.
///   - SignedKernelSum additionally requires *mutation quiescence*: it
///     scans whole padded blocks, so lanes past the published count must
///     still hold +infinity. The dispatcher guarantees this by applying all
///     of a batch's mutations before fanning out its queries and blocking
///     in the fork/join barrier while workers read.
class DeltaOverlay {
 public:
  /// Block granularity in points; a multiple of simd::kSimdBlockWidth.
  /// Smaller than SoaMatrix's 1024 because the overlay is usually a few
  /// percent of n, and a partial tail block costs a full-block scan.
  static constexpr size_t kBlockPoints = 64;

  /// Consistent view of the published counts. tombstones is loaded before
  /// inserted, so any insert that precedes an included tombstone in the
  /// writer's program order is also included — a rebuild consuming this
  /// snapshot can always find the row each tombstone cancels.
  struct Snapshot {
    size_t inserted = 0;
    size_t tombstones = 0;
    size_t size() const { return inserted + tombstones; }
    bool empty() const { return inserted == 0 && tombstones == 0; }
  };

  /// An overlay for `dims`-dimensional points holding at most `capacity`
  /// rows in each buffer. Storage is fully allocated (and +inf-filled)
  /// up front so appends never reallocate under concurrent readers.
  DeltaOverlay(size_t dims, size_t capacity);

  size_t dims() const { return dims_; }
  size_t capacity() const { return capacity_; }

  /// Appends an inserted point. Returns false (and changes nothing) when
  /// the insert buffer is full. Writer thread only.
  bool Insert(std::span<const double> x);

  /// Appends a deletion marker carrying the deleted point's coordinates.
  /// Returns false when the tombstone buffer is full. Writer thread only.
  bool AddTombstone(std::span<const double> x);

  size_t inserted_count() const {
    return inserted_.count.load(std::memory_order_acquire);
  }
  size_t tombstone_count() const {
    return tombstones_.count.load(std::memory_order_acquire);
  }
  Snapshot snapshot() const {
    Snapshot snap;
    snap.tombstones = tombstone_count();  // before inserted; see Snapshot
    snap.inserted = inserted_count();
    return snap;
  }

  /// Copies published row `i` (i < the corresponding count at some
  /// snapshot) into `out`, which must hold dims() doubles.
  void CopyInsertedRow(size_t i, std::span<double> out) const {
    CopyRow(inserted_, i, out);
  }
  void CopyTombstoneRow(size_t i, std::span<double> out) const {
    CopyRow(tombstones_, i, out);
  }

  /// Exact Delta(x): inserted kernel sum minus tombstone kernel sum over
  /// every published row, un-normalized (no 1/n factor). `x` and `inv_bw`
  /// hold dims() doubles. Requires mutation quiescence (see class
  /// comment); costs one SIMD block scan per kBlockPoints rows.
  double SignedKernelSum(const double* x, const double* inv_bw,
                         KernelType type, double norm, bool fast_math) const;

 private:
  struct Buffer {
    std::atomic<size_t> count{0};
    std::vector<double> storage;  // +inf-prefilled blocks of kBlockPoints.
  };

  bool Append(Buffer& buf, std::span<const double> x);
  double Sum(const Buffer& buf, const double* x, const double* inv_bw,
             KernelType type, double norm, bool fast_math) const;
  void CopyRow(const Buffer& buf, size_t i, std::span<double> out) const;

  size_t dims_ = 0;
  size_t capacity_ = 0;
  Buffer inserted_;
  Buffer tombstones_;
};

/// The affine coefficients an engine folds a quiescent overlay into its
/// base density with: f'(x) = scale * f_base(x) + offset, where
/// scale = n_b / n_eff and offset = Delta(x) / n_eff. `evaluations` is the
/// kernel-evaluation count of computing Delta (inserted + tombstones), for
/// the caller's work accounting.
struct OverlayContribution {
  double scale = 1.0;
  double offset = 0.0;
  size_t evaluations = 0;

  /// The merged density given the base engine's answer (clamped at zero:
  /// a tombstone-heavy offset can push a truncated base estimate below it).
  double Merge(double base_density) const {
    const double merged = scale * base_density + offset;
    return merged > 0.0 ? merged : 0.0;
  }
};

/// Evaluates the overlay's fold at `x` against a base model of `base_n`
/// points using `kernel`. Requires mutation quiescence (SignedKernelSum)
/// and base_n + inserted > tombstones, which the serving layer's DELETE
/// validation guarantees.
OverlayContribution ComputeOverlayContribution(const DeltaOverlay& overlay,
                                               size_t base_n,
                                               const Kernel& kernel,
                                               std::span<const double> x,
                                               bool fast_math);

}  // namespace tkdc

#endif  // TKDC_KDE_DELTA_OVERLAY_H_
