#ifndef TKDC_KDE_DENSITY_CLASSIFIER_H_
#define TKDC_KDE_DENSITY_CLASSIFIER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace tkdc {

/// Outcome of one density classification (paper Problem 1).
enum class Classification {
  kLow,   ///< f(x) below the threshold.
  kHigh,  ///< f(x) above the threshold.
};

/// Common interface for every density-classification algorithm in the
/// evaluation (tKDC and the simple / nocut / rkde / binned / knn
/// baselines).
///
/// Usage: construct, Train() once on the training set (which also fixes the
/// quantile threshold t(p)), then Classify() any number of query points.
class DensityClassifier {
 public:
  virtual ~DensityClassifier() = default;

  /// Algorithm name as used in the paper's plots ("tkdc", "simple", ...).
  virtual std::string name() const = 0;

  /// Trains on `data`: builds indexes and estimates the threshold t(p).
  virtual void Train(const Dataset& data) = 0;

  /// Classifies a query point against the trained threshold.
  virtual Classification Classify(std::span<const double> x) = 0;

  /// Classifies a point that belongs to the training set. The threshold
  /// t(p) is a quantile of *self-corrected* densities f(x_i) - K_H(0)/n
  /// (paper Eq. 1), so classifying a training point must subtract its own
  /// kernel contribution too — otherwise, for small n or higher d, the
  /// self-term K_H(0)/n alone can exceed t and mark every training point
  /// HIGH. This is the entry point for the paper's outlier-detection
  /// workload (scoring the dataset against itself); Classify() is for
  /// fresh query points.
  virtual Classification ClassifyTraining(std::span<const double> x) = 0;

  /// Classifies every row of `queries`, returning one label per row in row
  /// order. The default is a serial loop over Classify(); implementations
  /// with a parallel engine (TkdcClassifier) override it to fan the rows
  /// across worker threads while producing bit-identical labels.
  virtual std::vector<Classification> ClassifyBatch(const Dataset& queries) {
    std::vector<Classification> labels;
    labels.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      labels.push_back(Classify(queries.Row(i)));
    }
    return labels;
  }

  /// Batch counterpart of ClassifyTraining() (self-corrected densities);
  /// same contract as ClassifyBatch.
  virtual std::vector<Classification> ClassifyTrainingBatch(
      const Dataset& queries) {
    std::vector<Classification> labels;
    labels.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      labels.push_back(ClassifyTraining(queries.Row(i)));
    }
    return labels;
  }

  /// Point estimate of the density at `x` (midpoint of bounds for bounded
  /// algorithms). Used by the accuracy experiments.
  virtual double EstimateDensity(std::span<const double> x) = 0;

  /// The trained threshold estimate t~(p). Only valid after Train().
  virtual double threshold() const = 0;

  /// Cumulative kernel evaluations across Train() and Classify() calls.
  virtual uint64_t kernel_evaluations() const = 0;
};

}  // namespace tkdc

#endif  // TKDC_KDE_DENSITY_CLASSIFIER_H_
