#ifndef TKDC_KDE_DENSITY_CLASSIFIER_H_
#define TKDC_KDE_DENSITY_CLASSIFIER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "data/dataset.h"
#include "index/index_backend.h"
#include "kde/batch_executor.h"
#include "kde/query_context.h"
#include "kde/query_metrics.h"

namespace tkdc {

class DeltaOverlay;

/// Outcome of one density classification (paper Problem 1).
enum class Classification {
  kLow,   ///< f(x) below the threshold.
  kHigh,  ///< f(x) above the threshold.
};

/// Common interface for every density-classification algorithm in the
/// evaluation (tKDC and the simple / nocut / rkde / binned / knn
/// baselines), layered as model / engine / context:
///
///   - Train() produces an immutable *trained model* (index structures,
///     kernel, bandwidths, threshold) owned by the subclass and safe to
///     share across threads and to serialize (model_io).
///   - The subclass itself is the stateless *query engine*: its
///     ClassifyInContext / EstimateDensityInContext overrides are `const`
///     and read only the model.
///   - All query-time mutability lives in a per-thread *QueryContext*
///     (scratch buffers + work counters) built by MakeQueryContext().
///
/// The base class supplies the public facade on top of those hooks: the
/// per-point Classify family runs in a long-lived "live" context, and the
/// batch family fans rows across a shared BatchExecutor — so every
/// subclass gets deterministic parallel ClassifyBatch /
/// ClassifyTrainingBatch with bit-identical labels and counter totals at
/// any thread count, for free.
///
/// Usage: construct, Train() once on the training set (which also fixes
/// the quantile threshold t(p)), then Classify() any number of query
/// points.
class DensityClassifier {
 public:
  DensityClassifier() = default;
  virtual ~DensityClassifier() = default;

  DensityClassifier(const DensityClassifier&) = delete;
  DensityClassifier& operator=(const DensityClassifier&) = delete;

  /// Algorithm name as used in the paper's plots ("tkdc", "simple", ...).
  virtual std::string name() const = 0;

  /// Trains on `data`: builds the immutable model (indexes, bandwidths)
  /// and estimates the threshold t(p). Implementations must call
  /// ResetQueryState() so post-training query counters start at zero.
  virtual void Train(const Dataset& data) = 0;

  /// Whether Train() (or a model_io restore) has produced a model.
  virtual bool trained() const = 0;

  /// Dimensionality of the trained model's input space; 0 when untrained.
  virtual size_t dims() const = 0;

  /// The trained threshold estimate t~(p). Only valid after Train().
  virtual double threshold() const = 0;

  /// Number of training points behind the model, 0 when untrained (or
  /// unknown). The streaming serve layer sizes rebuild triggers and
  /// staleness fractions with it without knowing the concrete model type.
  virtual size_t training_size() const { return 0; }

  /// The spatial-index backend serving this classifier's queries, or
  /// nullopt for index-free algorithms (simple, binned). Tree-backed
  /// engines override this so the metrics layer can split node-expansion
  /// histograms by backend.
  virtual std::optional<IndexBackend> index_backend() const {
    return std::nullopt;
  }

  // --- Engine hooks (the per-algorithm query engine) --------------------

  /// Builds a query context of the dynamic type this engine expects, with
  /// fresh counters and empty scratch. Contexts are independent: one per
  /// thread, never shared.
  virtual std::unique_ptr<QueryContext> MakeQueryContext() const = 0;

  /// Classifies `x` against the trained threshold using `ctx` for scratch
  /// and counters. `training` selects the self-corrected comparison for
  /// points that belong to the training set: the threshold t(p) is a
  /// quantile of densities f(x_i) - K_H(0)/n (paper Eq. 1), so a training
  /// point must discount its own kernel contribution — otherwise, for
  /// small n or higher d, the self-term alone can mark every training
  /// point HIGH.
  virtual Classification ClassifyInContext(QueryContext& ctx,
                                           std::span<const double> x,
                                           bool training) const = 0;

  /// Point estimate of the density at `x` (midpoint of bounds for bounded
  /// algorithms). Used by the accuracy experiments.
  virtual double EstimateDensityInContext(QueryContext& ctx,
                                          std::span<const double> x) const = 0;

  // --- Streaming hooks (kde/delta_overlay.h) ----------------------------

  /// Whether this engine can fold a DeltaOverlay of staged inserts and
  /// deletions into its answers. Engines whose density is an additive
  /// kernel sum (tkdc, nocut, simple, rkde, binned) override this to true;
  /// knn's order-statistic density has no additive decomposition, so it
  /// stays false and the serving layer rejects streaming verbs for it.
  virtual bool supports_overlay() const { return false; }

  /// ClassifyInContext against the *merged* model base + overlay: with n_b
  /// base points and n_eff = n_b + inserted - tombstones, the decision
  /// density is f'(x) = (n_b * f_base(x) + Delta(x)) / n_eff, compared to
  /// the trained threshold (self-corrected by K(0)/n_eff when `training`).
  /// Only callable when supports_overlay(); the default aborts.
  virtual Classification ClassifyOverlayInContext(QueryContext& ctx,
                                                  std::span<const double> x,
                                                  bool training,
                                                  const DeltaOverlay& overlay)
      const;

  /// EstimateDensityInContext for the merged model; default aborts.
  virtual double EstimateDensityOverlayInContext(
      QueryContext& ctx, std::span<const double> x,
      const DeltaOverlay& overlay) const;

  /// Copies the training rows (original row order) into `*out`, replacing
  /// its contents — the base half of a streaming rebuild's merged dataset.
  /// Returns false when the engine does not retain its training points
  /// (binned keeps only the grid), in which case `*out` is untouched.
  virtual bool ExportTrainingData(Dataset* /*out*/) const { return false; }

  // --- Facade (shared by every algorithm) -------------------------------

  /// Classifies a fresh query point in the live context.
  Classification Classify(std::span<const double> x) {
    TKDC_CHECK_MSG(trained(), "Classify called before Train");
    return ObservedClassify(live_context(), x, /*training=*/false);
  }

  /// Classifies a point that belongs to the training set (self-corrected;
  /// the entry point for the paper's outlier-detection workload of scoring
  /// the dataset against itself).
  Classification ClassifyTraining(std::span<const double> x) {
    TKDC_CHECK_MSG(trained(), "ClassifyTraining called before Train");
    return ObservedClassify(live_context(), x, /*training=*/true);
  }

  /// Density point estimate in the live context.
  double EstimateDensity(std::span<const double> x) {
    TKDC_CHECK_MSG(trained(), "EstimateDensity called before Train");
    return ObservedEstimate(live_context(), x);
  }

  /// Classifies every row of `queries`, returning one label per row in row
  /// order. Rows fan out across the executor's threads; labels and merged
  /// counters are bit-identical to the serial path at any thread count.
  std::vector<Classification> ClassifyBatch(const Dataset& queries) {
    return ClassifyBatchImpl(queries, /*training=*/false);
  }

  /// Batch counterpart of ClassifyTraining() (self-corrected densities);
  /// same determinism contract as ClassifyBatch.
  std::vector<Classification> ClassifyTrainingBatch(const Dataset& queries) {
    return ClassifyBatchImpl(queries, /*training=*/true);
  }

  /// Classify() against the merged model base + overlay (live context).
  /// Requires supports_overlay(). The overlay must be mutation-quiescent
  /// for the duration of the call (see kde/delta_overlay.h).
  Classification ClassifyWithOverlay(std::span<const double> x,
                                     const DeltaOverlay& overlay,
                                     bool training = false) {
    TKDC_CHECK_MSG(trained(), "ClassifyWithOverlay called before Train");
    return ObservedClassifyOverlay(live_context(), x, training, overlay);
  }

  /// EstimateDensity() against the merged model (live context).
  double EstimateDensityWithOverlay(std::span<const double> x,
                                    const DeltaOverlay& overlay) {
    TKDC_CHECK_MSG(trained(), "EstimateDensityWithOverlay called before Train");
    return ObservedEstimateOverlay(live_context(), x, overlay);
  }

  /// ClassifyBatch() against the merged model: same executor fan-out and
  /// determinism contract, every row folding the same quiescent overlay.
  std::vector<Classification> ClassifyBatchWithOverlay(
      const Dataset& queries, const DeltaOverlay& overlay,
      bool training = false);

  /// Re-sizes the batch executor without touching the trained model; the
  /// next batch call repartitions. 0 = hardware concurrency, 1 = serial.
  void SetNumThreads(size_t num_threads) {
    executor_.SetNumThreads(num_threads);
  }

  /// Resolved worker count of the batch executor (never 0).
  size_t num_threads() const { return executor_.num_threads(); }

  /// Cumulative kernel evaluations across Train() and every query since.
  uint64_t kernel_evaluations() const {
    return train_stats_.kernel_evaluations +
           live_query_stats().kernel_evaluations;
  }

  /// Counters for post-training queries only (live context + merged batch
  /// workers). Zero right after Train().
  const TraversalStats& query_stats() const { return live_query_stats(); }

  /// Total work: training plus every query since.
  TraversalStats traversal_stats() const {
    TraversalStats total = train_stats_;
    total.Add(live_query_stats());
    return total;
  }

  /// Grid-cache hits (paper Section 3.7) across training and queries;
  /// stays 0 for algorithms without a grid.
  uint64_t grid_prunes() const {
    return train_grid_prunes_ +
           (live_context_ ? live_context_->grid_prunes : 0);
  }

  /// Folds externally accumulated counters into the live context. Used by
  /// drivers that run the engine through their own contexts (e.g. the
  /// dual-tree classifier) so this classifier's cumulative accounting
  /// still reflects that work.
  void AbsorbCounters(const QueryContext& ctx) {
    live_context().MergeCounters(ctx);
  }

  // --- Observability (common/metrics.h) ---------------------------------

  /// Attaches a metrics registry: registers the standard query-path schema
  /// (query_metrics::RegisterStandard) on it and gives the live context —
  /// and every batch-worker context created from now on — a per-thread
  /// shard. Pass nullptr to detach; detached is the default, and every
  /// recording site then reduces to one pointer check, so the query path
  /// keeps its plain TraversalStats accounting and nothing else.
  ///
  /// The registry is borrowed and must outlive the attachment. One
  /// registry may be attached to several classifiers (e.g. the whole
  /// baseline lineup) when a pooled view is wanted; attach distinct
  /// registries for per-algorithm breakdowns.
  void AttachMetrics(MetricsRegistry* registry);

  /// Folds the live context's shard (which already holds every batch
  /// worker's merged counts) into the attached registry and clears the
  /// shard, so repeated flushes never double-count. No-op when detached.
  void FlushMetrics();

  /// The attached registry, or nullptr when detached.
  MetricsRegistry* metrics_registry() const { return registry_; }

 protected:
  /// The long-lived context serving the per-point facade and collecting
  /// merged batch counters. Built lazily via MakeQueryContext().
  QueryContext& live_context();

  /// Drops the live context (query counters restart at zero) and the
  /// executor's cached worker contexts (their scratch is sized to the old
  /// model). Train() and restore paths call this after swapping in a new
  /// model.
  void ResetQueryState() {
    live_context_.reset();
    executor_.InvalidateContexts();
  }

  /// The shared batch executor, for subclasses that parallelize parts of
  /// training (e.g. tKDC's Phase 3 density pass) through the same
  /// deterministic fan-out.
  BatchExecutor& executor() { return executor_; }

  /// Work performed by Train(), snapshotted by the subclass (bootstrap +
  /// training passes). Reported via kernel_evaluations() and
  /// traversal_stats() but excluded from query_stats().
  TraversalStats train_stats_;
  /// Grid-cache hits during training passes.
  uint64_t train_grid_prunes_ = 0;

 private:
  std::vector<Classification> ClassifyBatchImpl(const Dataset& queries,
                                                bool training);

  /// ClassifyInContext wrapped with metrics recording: snapshots the
  /// context's counters, runs the query, and books the deltas into the
  /// context's shard. A single null check when metrics are detached.
  Classification ObservedClassify(QueryContext& ctx, std::span<const double> x,
                                  bool training) const {
    if (ctx.metrics == nullptr) return ClassifyInContext(ctx, x, training);
    const TraversalStats before = ctx.stats;
    const uint64_t grid_before = ctx.grid_prunes;
    const Classification label = ClassifyInContext(ctx, x, training);
    query_metrics::RecordQuery(ctx, before, grid_before, index_backend());
    return label;
  }

  /// EstimateDensityInContext with the same recording wrapper.
  double ObservedEstimate(QueryContext& ctx, std::span<const double> x) const {
    if (ctx.metrics == nullptr) return EstimateDensityInContext(ctx, x);
    const TraversalStats before = ctx.stats;
    const uint64_t grid_before = ctx.grid_prunes;
    const double density = EstimateDensityInContext(ctx, x);
    query_metrics::RecordQuery(ctx, before, grid_before, index_backend());
    return density;
  }

  /// ClassifyOverlayInContext with the metrics recording wrapper.
  Classification ObservedClassifyOverlay(QueryContext& ctx,
                                         std::span<const double> x,
                                         bool training,
                                         const DeltaOverlay& overlay) const {
    if (ctx.metrics == nullptr) {
      return ClassifyOverlayInContext(ctx, x, training, overlay);
    }
    const TraversalStats before = ctx.stats;
    const uint64_t grid_before = ctx.grid_prunes;
    const Classification label =
        ClassifyOverlayInContext(ctx, x, training, overlay);
    query_metrics::RecordQuery(ctx, before, grid_before, index_backend());
    return label;
  }

  /// EstimateDensityOverlayInContext with the same recording wrapper.
  double ObservedEstimateOverlay(QueryContext& ctx, std::span<const double> x,
                                 const DeltaOverlay& overlay) const {
    if (ctx.metrics == nullptr) {
      return EstimateDensityOverlayInContext(ctx, x, overlay);
    }
    const TraversalStats before = ctx.stats;
    const uint64_t grid_before = ctx.grid_prunes;
    const double density = EstimateDensityOverlayInContext(ctx, x, overlay);
    query_metrics::RecordQuery(ctx, before, grid_before, index_backend());
    return density;
  }

  /// Gives `ctx` a shard of the attached registry (no-op when detached).
  void AttachShard(QueryContext& ctx) const {
    ctx.AttachMetricsShard(registry_ != nullptr ? registry_->NewShard()
                                                : nullptr);
  }

  const TraversalStats& live_query_stats() const {
    static const TraversalStats kEmpty;
    return live_context_ ? live_context_->stats : kEmpty;
  }

  std::unique_ptr<QueryContext> live_context_;
  BatchExecutor executor_{1};
  MetricsRegistry* registry_ = nullptr;
};

}  // namespace tkdc

#endif  // TKDC_KDE_DENSITY_CLASSIFIER_H_
