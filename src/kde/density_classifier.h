#ifndef TKDC_KDE_DENSITY_CLASSIFIER_H_
#define TKDC_KDE_DENSITY_CLASSIFIER_H_

#include <cstdint>
#include <span>
#include <string>

#include "data/dataset.h"

namespace tkdc {

/// Outcome of one density classification (paper Problem 1).
enum class Classification {
  kLow,   ///< f(x) below the threshold.
  kHigh,  ///< f(x) above the threshold.
};

/// Common interface for every density-classification algorithm in the
/// evaluation (tKDC and the simple / nocut / rkde / binned / knn
/// baselines).
///
/// Usage: construct, Train() once on the training set (which also fixes the
/// quantile threshold t(p)), then Classify() any number of query points.
class DensityClassifier {
 public:
  virtual ~DensityClassifier() = default;

  /// Algorithm name as used in the paper's plots ("tkdc", "simple", ...).
  virtual std::string name() const = 0;

  /// Trains on `data`: builds indexes and estimates the threshold t(p).
  virtual void Train(const Dataset& data) = 0;

  /// Classifies a query point against the trained threshold.
  virtual Classification Classify(std::span<const double> x) = 0;

  /// Classifies a point that belongs to the training set. The threshold
  /// t(p) is a quantile of *self-corrected* densities f(x_i) - K_H(0)/n
  /// (paper Eq. 1), so classifying a training point must subtract its own
  /// kernel contribution too — otherwise, for small n or higher d, the
  /// self-term K_H(0)/n alone can exceed t and mark every training point
  /// HIGH. This is the entry point for the paper's outlier-detection
  /// workload (scoring the dataset against itself); Classify() is for
  /// fresh query points.
  virtual Classification ClassifyTraining(std::span<const double> x) = 0;

  /// Point estimate of the density at `x` (midpoint of bounds for bounded
  /// algorithms). Used by the accuracy experiments.
  virtual double EstimateDensity(std::span<const double> x) = 0;

  /// The trained threshold estimate t~(p). Only valid after Train().
  virtual double threshold() const = 0;

  /// Cumulative kernel evaluations across Train() and Classify() calls.
  virtual uint64_t kernel_evaluations() const = 0;
};

}  // namespace tkdc

#endif  // TKDC_KDE_DENSITY_CLASSIFIER_H_
