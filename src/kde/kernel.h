#ifndef TKDC_KDE_KERNEL_H_
#define TKDC_KDE_KERNEL_H_

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace tkdc {

/// Kernel families supported by the library. Both are radial profiles of
/// the per-axis scaled distance, so the k-d tree bounds (which produce
/// min/max scaled distances to a box) apply uniformly.
enum class KernelType {
  /// Gaussian product kernel with diagonal bandwidth (paper Eq. 2, the
  /// default throughout the evaluation).
  kGaussian,
  /// Spherical Epanechnikov kernel, compactly supported: an extension the
  /// paper's techniques apply to unchanged (finite support makes pruning
  /// strictly easier).
  kEpanechnikov,
  /// Spherical uniform ("boxcar") kernel: constant inside the unit ball.
  /// Degenerate smoothing, but the cheapest possible evaluation — density
  /// classification with it reduces to range counting.
  kUniform,
  /// Spherical biweight (quartic) kernel (1 - z)^2 on the unit ball:
  /// smoother than Epanechnikov while keeping compact support.
  kBiweight,
};

/// A normalized multivariate kernel K_H with diagonal bandwidth
/// H = diag(h_1^2, ..., h_d^2). Densities are functions of the scaled
/// squared distance z = sum_j ((x_j - y_j) / h_j)^2:
///
///   Gaussian:      K(z) = exp(-z / 2) / ((2 pi)^(d/2) * prod h_j)
///   Epanechnikov:  K(z) = c_d * max(0, 1 - z) / prod h_j
///   Uniform:       K(z) = u_d * [z < 1] / prod h_j
///   Biweight:      K(z) = b_d * max(0, 1 - z)^2 / prod h_j
///
/// with the constants chosen so each kernel integrates to one.
class Kernel {
 public:
  /// Radial profile resolved to one kernel family: value of the kernel at
  /// scaled squared distance `z` given the normalization `norm`. See
  /// scaled_profile().
  using ScaledProfileFn = double (*)(double z, double norm);

  /// Builds a kernel with the given per-axis bandwidths (all > 0).
  Kernel(KernelType type, std::vector<double> bandwidths);

  KernelType type() const { return type_; }
  size_t dims() const { return bandwidths_.size(); }
  const std::vector<double>& bandwidths() const { return bandwidths_; }
  const std::vector<double>& inverse_bandwidths() const {
    return inv_bandwidths_;
  }

  /// Scaled squared distance sum_j ((a_j - b_j) / h_j)^2.
  double ScaledSquaredDistance(std::span<const double> a,
                               std::span<const double> b) const;

  /// Kernel value given a scaled squared distance z >= 0. Dispatches on
  /// type() per call; hot loops should hoist the branch with
  /// scaled_profile() instead.
  double EvaluateScaled(double z) const;

  /// The family's radial profile as a plain function pointer, resolved
  /// once at construction. Query engines cache this (together with norm())
  /// per context so the leaf-scan hot loop performs no per-point dispatch:
  /// `profile(z, norm)` is bit-identical to EvaluateScaled(z).
  ScaledProfileFn scaled_profile() const { return profile_; }

  /// Normalization constant K_H(0), the companion argument of
  /// scaled_profile().
  double norm() const { return norm_; }

  /// Kernel value K_H(a - b).
  double Evaluate(std::span<const double> a, std::span<const double> b) const;

  /// Maximum kernel value K_H(0) (the self-contribution of a training point
  /// before the 1/n factor; paper Section 2.3's f_0 = K_H(0) / n). Every
  /// family's profile is exactly 1 at z == 0, so this is norm_ itself —
  /// no dispatch (bit-identical to EvaluateScaled(0.0)).
  double MaxValue() const { return norm_; }

  /// Scaled squared radius beyond which the kernel is exactly zero;
  /// +infinity for the Gaussian.
  double SupportScaledSquared() const;

  /// Solves EvaluateScaled(z) == value for z; returns +infinity when the
  /// kernel never falls to `value` (value <= 0 for Gaussian) and 0 when
  /// `value` >= MaxValue(). Used by the rkde baseline to pick the smallest
  /// radius with bounded truncation error.
  double ScaledSquaredDistanceForValue(double value) const;

 private:
  KernelType type_;
  std::vector<double> bandwidths_;
  std::vector<double> inv_bandwidths_;
  double norm_;  // Normalization constant = K_H(0) for both families.
  ScaledProfileFn profile_;  // type_'s radial profile, resolved once.
};

}  // namespace tkdc

#endif  // TKDC_KDE_KERNEL_H_
