#ifndef TKDC_KDE_KERNEL_SIMD_H_
#define TKDC_KDE_KERNEL_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "common/simd.h"
#include "kde/kernel.h"

namespace tkdc {

/// Vectorized kernel sums over SoA point blocks — the leaf-scan hot loop
/// of every engine (DensityBoundEvaluator, NaiveKde, simple, rkde). Blocks
/// use the SpatialIndex SoA layout: `dims` arrays of `padded` doubles
/// (padded == SimdPaddedCount(count)), padding coordinates +infinity so
/// padded lanes contribute exactly +0.0 (see common/simd.h).
///
/// All functions follow the common/simd.h determinism contract: per-point
/// distances sequential over dimensions, sums accumulated in
/// kSimdBlockWidth interleaved partials reduced as (a0+a2)+(a1+a3), no FMA
/// contraction. In the default mode (fast_math == false) the Gaussian
/// profile calls std::exp per lane, so scalar and SIMD backends agree
/// bit-for-bit on every kernel family; the compact-support families
/// (Epanechnikov, uniform, biweight) vectorize fully even in default mode
/// because their profiles are polynomial.
///
/// `fast_math` swaps the Gaussian's per-lane std::exp for a vectorized
/// polynomial exp (relative error ~1e-14, well inside the epsilon band the
/// --fast-math-leaf property test enforces). It changes nothing for the
/// compact families or for the scalar backend, which always computes the
/// exact sum.
namespace simd {

/// Sum over the block's `count` points of profile(z_k, norm) where z_k is
/// the scaled squared distance from `x` to point k.
double SoaKernelSum(const double* block, size_t padded, size_t count,
                    size_t dims, const double* x, const double* inv_bw,
                    KernelType type, double norm, bool fast_math);

/// Radius-masked variant for the rkde baseline: sums only points with
/// z_k <= radius_sq and counts them into *inside. Points outside the
/// radius (and padding lanes) contribute exactly +0.0.
double SoaKernelSumWithinRadius(const double* block, size_t padded,
                                size_t count, size_t dims, const double* x,
                                const double* inv_bw, double radius_sq,
                                KernelType type, double norm, bool fast_math,
                                uint64_t* inside);

/// Backend function table, mirroring simd::SimdOps. The free functions
/// above dispatch on ActiveSimdBackend(); the equality tests pin a table.
struct KernelSimdOps {
  double (*kernel_sum)(const double* block, size_t padded, size_t count,
                       size_t dims, const double* x, const double* inv_bw,
                       KernelType type, double norm, bool fast_math);
  double (*kernel_sum_within)(const double* block, size_t padded,
                              size_t count, size_t dims, const double* x,
                              const double* inv_bw, double radius_sq,
                              KernelType type, double norm, bool fast_math,
                              uint64_t* inside);
};

/// The table for `backend`; null when not compiled in.
const KernelSimdOps* KernelSimdOpsFor(SimdBackend backend);
const KernelSimdOps& ScalarKernelSimdOps();

}  // namespace simd
}  // namespace tkdc

#endif  // TKDC_KDE_KERNEL_SIMD_H_
