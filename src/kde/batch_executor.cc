#include "kde/batch_executor.h"

namespace tkdc {

void BatchExecutor::SetNumThreads(size_t num_threads) {
  const size_t resolved =
      num_threads == 0 ? HardwareConcurrency() : num_threads;
  if (resolved == num_threads_ && (resolved == 1 || pool_ != nullptr)) return;
  num_threads_ = resolved;
  pool_.reset();      // Rebuilt lazily on the next parallel Map.
  contexts_.clear();  // Slot count changed; cached contexts are stale.
}

void BatchExecutor::Map(size_t total, size_t min_chunk,
                        const ContextFactory& make_context, const RowBody& body,
                        QueryContext& sink) {
  if (total == 0) return;
  if (num_threads_ == 1) {
    // Serial path: run on the sink itself, reusing its warm scratch.
    for (size_t row = 0; row < total; ++row) body(sink, row);
    return;
  }
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(num_threads_);

  // Recycle cached per-slot contexts (warm scratch); build any missing
  // ones. Counters must be zeroed before reuse — they were already merged
  // into the sink at the end of the previous Map.
  while (contexts_.size() < num_threads_) contexts_.push_back(make_context());
  for (auto& ctx : contexts_) ctx->ResetCounters();

  pool_->ParallelFor(total, min_chunk,
                     [&](size_t slot, size_t begin, size_t end) {
                       QueryContext& ctx = *contexts_[slot];
                       for (size_t row = begin; row < end; ++row) {
                         body(ctx, row);
                       }
                     });
  for (const auto& ctx : contexts_) sink.MergeCounters(*ctx);
}

}  // namespace tkdc
