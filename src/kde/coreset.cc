#include "kde/coreset.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "common/stats.h"

namespace tkdc {
namespace {

/// Z-order (Morton) key of a point over a per-axis quantization grid.
/// Bits interleave round-robin across axes, most significant level first,
/// so consecutive keys are spatially close — the ordering the halving
/// relies on to pair near neighbors.
struct ZOrderKeyer {
  ZOrderKeyer(const Dataset& data) {
    const size_t dims = data.dims();
    lo.assign(dims, std::numeric_limits<double>::infinity());
    inv_extent.assign(dims, 0.0);
    std::vector<double> hi(dims, -std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < data.size(); ++i) {
      const auto row = data.Row(i);
      for (size_t j = 0; j < dims; ++j) {
        lo[j] = std::min(lo[j], row[j]);
        hi[j] = std::max(hi[j], row[j]);
      }
    }
    // At most 63 key bits in total; high dimensions degrade to a coarse
    // grid (1 bit per axis once d > 31), which still groups neighbors.
    bits = std::max<size_t>(1, std::min<size_t>(16, 63 / std::max<size_t>(
                                                         1, dims)));
    if (bits * dims > 63) bits = 1;
    const double cells = static_cast<double>(uint64_t{1} << bits);
    for (size_t j = 0; j < dims; ++j) {
      const double extent = hi[j] - lo[j];
      inv_extent[j] = extent > 0.0 ? (cells - 1.0) / extent : 0.0;
    }
  }

  uint64_t Key(std::span<const double> row) const {
    const size_t dims = row.size();
    uint64_t key = 0;
    for (size_t level = 0; level < bits; ++level) {
      const size_t shift = bits - 1 - level;
      for (size_t j = 0; j < dims; ++j) {
        if (key & (uint64_t{1} << 63)) break;  // Defensive; cannot occur.
        const auto cell = static_cast<uint64_t>((row[j] - lo[j]) *
                                                inv_extent[j]);
        key = (key << 1) | ((cell >> shift) & 1u);
      }
    }
    return key;
  }

  std::vector<double> lo;
  std::vector<double> inv_extent;
  size_t bits = 1;
};

/// Exact KDE over the rows of `data` named by `subset`, evaluated at `x`.
double SubsetDensity(const Dataset& data, const std::vector<size_t>& subset,
                     const Kernel& kernel, std::span<const double> x) {
  double sum = 0.0;
  for (size_t row : subset) {
    sum += kernel.Evaluate(x, data.Row(row));
  }
  return sum / static_cast<double>(subset.size());
}

}  // namespace

CoresetResult BuildKdeCoreset(const Dataset& data, const Kernel& kernel,
                              const CoresetOptions& options) {
  TKDC_CHECK(kernel.dims() == data.dims());
  const size_t n = data.size();
  CoresetResult result;
  result.info.original_size = n;

  const size_t min_size = std::max<size_t>(2, options.min_size);
  if (!(options.epsilon > 0.0) || n < 2 * min_size) {
    result.points = data;
    return result;
  }

  Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 7);

  // Spatial ordering: sort every row by its Z-order key once; halving
  // keeps a subsequence, so the survivors stay sorted for every round.
  const ZOrderKeyer keyer(data);
  std::vector<std::pair<uint64_t, size_t>> keyed(n);
  for (size_t i = 0; i < n; ++i) {
    keyed[i] = {keyer.Key(data.Row(i)), i};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<size_t> current(n);
  for (size_t i = 0; i < n; ++i) current[i] = keyed[i].second;

  // Evaluation sample: data rows jittered by one kernel bandwidth — a
  // draw from the smoothed distribution itself, matching the bootstrap's
  // query model. The jitter matters: at an exact training row the point's
  // own K(0) term is an indivisible spike that no halving sign choice can
  // balance, which would overstate the error real queries see.
  const size_t dims = data.dims();
  const size_t s = std::min(std::max<size_t>(2, options.eval_sample), n);
  const std::vector<size_t> eval_rows = rng.SampleWithoutReplacement(n, s);
  Dataset evals(dims);
  evals.Reserve(s);
  {
    std::vector<double> point(dims);
    for (size_t q = 0; q < s; ++q) {
      const auto row = data.Row(eval_rows[q]);
      for (size_t j = 0; j < dims; ++j) {
        point[j] = row[j] + kernel.bandwidths()[j] * rng.NextGaussian();
      }
      evals.AppendRow(point);
    }
  }
  std::vector<double> exact(s);
  for (size_t q = 0; q < s; ++q) {
    exact[q] = SubsetDensity(data, current, kernel, evals.Row(q));
  }
  const double f_ref =
      std::max(Quantile(exact, options.reference_quantile),
               std::numeric_limits<double>::min());
  // Deviations are tracked relative to max(f, f_ref); working in those
  // normalized units points the discrepancy minimization at the threshold
  // band rather than at the (absolutely larger) mode densities.
  std::vector<double> inv_scale(s);
  for (size_t q = 0; q < s; ++q) {
    inv_scale[q] = 1.0 / std::max(exact[q], f_ref);
  }

  // Halving loop: pair consecutive survivors of the Z-order and keep one
  // point per pair. The choice is a greedy self-balancing walk (the
  // discrepancy-minimization heart of the construction): keeping a instead
  // of b moves the compressed KDE at eval point q by (K_a - K_b)/m, so
  // each pair picks the side whose step shrinks the running residual
  // against the exact densities. A round is accepted while the measured
  // relative deviation stays inside the safety-scaled epsilon share.
  const double budget = options.safety * options.epsilon;
  std::vector<double> residual(s, 0.0);
  std::vector<double> delta(s);
  while (current.size() / 2 >= min_size) {
    const size_t m = current.size();
    std::vector<size_t> candidate;
    candidate.reserve(m / 2 + 1);
    size_t i = 0;
    for (; i + 1 < m; i += 2) {
      const auto a = data.Row(current[i]);
      const auto b = data.Row(current[i + 1]);
      double dot = 0.0;
      for (size_t q = 0; q < s; ++q) {
        delta[q] = (kernel.Evaluate(evals.Row(q), a) -
                    kernel.Evaluate(evals.Row(q), b)) /
                   static_cast<double>(m) * inv_scale[q];
        dot += residual[q] * delta[q];
      }
      const bool keep_a = dot <= 0.0;
      candidate.push_back(keep_a ? current[i] : current[i + 1]);
      const double sign = keep_a ? 1.0 : -1.0;
      for (size_t q = 0; q < s; ++q) residual[q] += sign * delta[q];
    }
    if (i < m) candidate.push_back(current[i]);

    // Re-measure the candidate exactly: the incremental residual ignores
    // the odd-leftover renormalization and accumulates rounding, and the
    // acceptance check must not drift with it.
    double err = 0.0;
    for (size_t q = 0; q < s; ++q) {
      const double f = SubsetDensity(data, candidate, kernel, evals.Row(q));
      residual[q] = (f - exact[q]) * inv_scale[q];
      err = std::max(err, std::abs(residual[q]));
    }
    if (err > budget) break;

    current = std::move(candidate);
    result.info.achieved_error = err;
    ++result.info.halvings;
  }

  if (result.info.halvings == 0) {
    result.points = data;
    return result;
  }
  // Original row order keeps the output independent of the space-filling
  // curve's tie-breaking and friendly to downstream deterministic builds.
  std::sort(current.begin(), current.end());
  result.points = data.SelectRows(current);
  result.info.enabled = true;
  return result;
}

}  // namespace tkdc
