#include "kde/query_metrics.h"

#include "common/macros.h"

namespace tkdc {
namespace query_metrics {

void RegisterStandard(MetricsRegistry& registry) {
  // Counts-per-query work: exponential buckets up to ~1M cover everything
  // from a grid-pruned no-op to an exhaustive scan of a large training set.
  std::vector<double> work = MetricsRegistry::PowerOfTwoBounds(21);
  // Relative bound gaps: decades from "resolved to machine precision"
  // through "barely refined at all".
  std::vector<double> gap = MetricsRegistry::DecadeBounds(-9, 3);

  TKDC_CHECK(registry.AddCounter("query.queries") == kQueries);
  TKDC_CHECK(registry.AddCounter("query.grid_prunes") == kGridPrunes);
  TKDC_CHECK(registry.AddCounter("cutoff.lower_above_threshold") ==
             kCutoffLowerAboveThreshold);
  TKDC_CHECK(registry.AddCounter("cutoff.upper_below_threshold") ==
             kCutoffUpperBelowThreshold);
  TKDC_CHECK(registry.AddCounter("cutoff.tolerance") == kCutoffTolerance);
  TKDC_CHECK(registry.AddCounter("cutoff.exact_leaf") == kCutoffExactLeaf);
  TKDC_CHECK(registry.AddHistogram("query.prune_depth", work) == kPruneDepth);
  TKDC_CHECK(registry.AddHistogram("query.leaf_points", work) == kLeafPoints);
  TKDC_CHECK(registry.AddHistogram("query.kernel_evals", work) ==
             kKernelEvals);
  TKDC_CHECK(registry.AddHistogram("query.bound_gap_rel", std::move(gap)) ==
             kBoundGap);
  TKDC_CHECK(registry.AddHistogram("query.node_expansions.kdtree", work) ==
             kNodeExpansionsKdTree);
  TKDC_CHECK(registry.AddHistogram("query.node_expansions.balltree",
                                   std::move(work)) == kNodeExpansionsBallTree);
}

}  // namespace query_metrics
}  // namespace tkdc
