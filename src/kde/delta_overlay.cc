#include "kde/delta_overlay.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "common/simd.h"
#include "kde/kernel_simd.h"

namespace tkdc {

static_assert(DeltaOverlay::kBlockPoints % kSimdBlockWidth == 0,
              "overlay blocks must be SIMD-width aligned");

DeltaOverlay::DeltaOverlay(size_t dims, size_t capacity)
    : dims_(dims), capacity_(capacity) {
  TKDC_CHECK_MSG(dims > 0, "DeltaOverlay needs at least one dimension");
  TKDC_CHECK_MSG(capacity > 0, "DeltaOverlay needs a positive capacity");
  const size_t blocks = (capacity + kBlockPoints - 1) / kBlockPoints;
  const size_t doubles = blocks * kBlockPoints * dims;
  inserted_.storage.assign(doubles, std::numeric_limits<double>::infinity());
  tombstones_.storage.assign(doubles, std::numeric_limits<double>::infinity());
}

bool DeltaOverlay::Append(Buffer& buf, std::span<const double> x) {
  TKDC_CHECK_MSG(x.size() == dims_, "overlay row has the wrong dimensionality");
  // Relaxed is enough here: this thread is the only writer.
  const size_t slot = buf.count.load(std::memory_order_relaxed);
  if (slot >= capacity_) return false;
  const size_t block = slot / kBlockPoints;
  const size_t lane = slot % kBlockPoints;
  double* base = buf.storage.data() + block * kBlockPoints * dims_;
  for (size_t j = 0; j < dims_; ++j) base[j * kBlockPoints + lane] = x[j];
  // Publish: the release pairs with acquire loads in the count accessors,
  // making the row visible before any reader can index it.
  buf.count.store(slot + 1, std::memory_order_release);
  return true;
}

bool DeltaOverlay::Insert(std::span<const double> x) {
  return Append(inserted_, x);
}

bool DeltaOverlay::AddTombstone(std::span<const double> x) {
  return Append(tombstones_, x);
}

void DeltaOverlay::CopyRow(const Buffer& buf, size_t i,
                           std::span<double> out) const {
  TKDC_CHECK_MSG(i < buf.count.load(std::memory_order_acquire),
                 "overlay row index past the published count");
  TKDC_CHECK_MSG(out.size() == dims_, "overlay row copy needs dims() doubles");
  const double* base =
      buf.storage.data() + (i / kBlockPoints) * kBlockPoints * dims_;
  const size_t lane = i % kBlockPoints;
  for (size_t j = 0; j < dims_; ++j) out[j] = base[j * kBlockPoints + lane];
}

double DeltaOverlay::Sum(const Buffer& buf, const double* x,
                         const double* inv_bw, KernelType type, double norm,
                         bool fast_math) const {
  const size_t count = buf.count.load(std::memory_order_acquire);
  double sum = 0.0;
  for (size_t begin = 0; begin < count; begin += kBlockPoints) {
    const size_t in_block = std::min(kBlockPoints, count - begin);
    // The full padded block is scanned; lanes past `in_block` still hold
    // +infinity (mutation quiescence) and contribute exactly +0.0.
    sum += simd::SoaKernelSum(
        buf.storage.data() + (begin / kBlockPoints) * kBlockPoints * dims_,
        kBlockPoints, in_block, dims_, x, inv_bw, type, norm, fast_math);
  }
  return sum;
}

double DeltaOverlay::SignedKernelSum(const double* x, const double* inv_bw,
                                     KernelType type, double norm,
                                     bool fast_math) const {
  return Sum(inserted_, x, inv_bw, type, norm, fast_math) -
         Sum(tombstones_, x, inv_bw, type, norm, fast_math);
}

OverlayContribution ComputeOverlayContribution(const DeltaOverlay& overlay,
                                               size_t base_n,
                                               const Kernel& kernel,
                                               std::span<const double> x,
                                               bool fast_math) {
  const size_t ins = overlay.inserted_count();
  const size_t tomb = overlay.tombstone_count();
  const double n_b = static_cast<double>(base_n);
  const double n_eff =
      n_b + static_cast<double>(ins) - static_cast<double>(tomb);
  TKDC_CHECK_MSG(n_eff > 0.0, "overlay tombstones every training point");
  OverlayContribution fold;
  fold.evaluations = ins + tomb;
  fold.scale = n_b / n_eff;
  if (fold.evaluations > 0) {
    fold.offset = overlay.SignedKernelSum(
                      x.data(), kernel.inverse_bandwidths().data(),
                      kernel.type(), kernel.norm(), fast_math) /
                  n_eff;
  }
  return fold;
}

}  // namespace tkdc
