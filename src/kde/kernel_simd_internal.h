#ifndef TKDC_KDE_KERNEL_SIMD_INTERNAL_H_
#define TKDC_KDE_KERNEL_SIMD_INTERNAL_H_

#include "kde/kernel_simd.h"

namespace tkdc {
namespace simd {

/// Backend table providers, defined by their translation units when the
/// backend is compiled in (kernel_simd_avx2.cc / kernel_simd_neon.cc);
/// otherwise kernel_simd.cc supplies a stub returning null.
const KernelSimdOps* Avx2KernelSimdOpsImpl();
const KernelSimdOps* NeonKernelSimdOpsImpl();

}  // namespace simd
}  // namespace tkdc

#endif  // TKDC_KDE_KERNEL_SIMD_INTERNAL_H_
