#include "kde/kernel_simd.h"

#include <cmath>

#include "kde/kernel_simd_internal.h"

namespace tkdc {
namespace simd {

#if !defined(TKDC_SIMD_AVX2)
const KernelSimdOps* Avx2KernelSimdOpsImpl() { return nullptr; }
#endif
#if !defined(TKDC_SIMD_NEON)
const KernelSimdOps* NeonKernelSimdOpsImpl() { return nullptr; }
#endif

namespace {

// --- Scalar backend ------------------------------------------------------
//
// The canonical blocked-summation schedule every vector backend must
// reproduce bit-for-bit (common/simd.h contract): the `lane` loops below
// are one vector operation per iteration. fast_math is ignored here — the
// scalar backend always computes the exact per-lane profile, which is also
// what the SIMD backends do in default mode.

// Per-lane profile evaluation shared by both entry points. z == +inf
// (padding) yields exactly +0.0 for every family: exp(-inf) == 0 and the
// compact kernels vanish for z >= 1.
inline double ProfileLane(KernelType type, double z, double norm) {
  switch (type) {
    case KernelType::kGaussian:
      return norm * std::exp(-0.5 * z);
    case KernelType::kEpanechnikov:
      return z >= 1.0 ? 0.0 : norm * (1.0 - z);
    case KernelType::kUniform:
      return z >= 1.0 ? 0.0 : norm;
    case KernelType::kBiweight:
      return z >= 1.0 ? 0.0 : norm * (1.0 - z) * (1.0 - z);
  }
  return 0.0;  // Unreachable.
}

double SoaKernelSumScalar(const double* block, size_t padded, size_t count,
                          size_t dims, const double* x, const double* inv_bw,
                          KernelType type, double norm, bool fast_math) {
  (void)count;
  (void)fast_math;
  double acc[kSimdBlockWidth] = {0.0, 0.0, 0.0, 0.0};
  for (size_t g = 0; g < padded; g += kSimdBlockWidth) {
    double z[kSimdBlockWidth] = {0.0, 0.0, 0.0, 0.0};
    for (size_t j = 0; j < dims; ++j) {
      const double* row = block + j * padded + g;
      const double xj = x[j];
      const double bj = inv_bw[j];
      for (size_t lane = 0; lane < kSimdBlockWidth; ++lane) {
        const double u = (xj - row[lane]) * bj;
        z[lane] += u * u;
      }
    }
    for (size_t lane = 0; lane < kSimdBlockWidth; ++lane) {
      acc[lane] += ProfileLane(type, z[lane], norm);
    }
  }
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

double SoaKernelSumWithinRadiusScalar(const double* block, size_t padded,
                                      size_t count, size_t dims,
                                      const double* x, const double* inv_bw,
                                      double radius_sq, KernelType type,
                                      double norm, bool fast_math,
                                      uint64_t* inside) {
  (void)count;
  (void)fast_math;
  double acc[kSimdBlockWidth] = {0.0, 0.0, 0.0, 0.0};
  uint64_t hits = 0;
  for (size_t g = 0; g < padded; g += kSimdBlockWidth) {
    double z[kSimdBlockWidth] = {0.0, 0.0, 0.0, 0.0};
    for (size_t j = 0; j < dims; ++j) {
      const double* row = block + j * padded + g;
      const double xj = x[j];
      const double bj = inv_bw[j];
      for (size_t lane = 0; lane < kSimdBlockWidth; ++lane) {
        const double u = (xj - row[lane]) * bj;
        z[lane] += u * u;
      }
    }
    for (size_t lane = 0; lane < kSimdBlockWidth; ++lane) {
      // Adding +0.0 for masked-out lanes is the identity, matching the
      // vector backends' and-masked accumulate. Padding lanes (z == +inf)
      // never pass the radius test, so they are not counted either.
      if (z[lane] <= radius_sq) {
        acc[lane] += ProfileLane(type, z[lane], norm);
        ++hits;
      }
    }
  }
  *inside = hits;
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

constexpr KernelSimdOps kScalarKernelOps = {
    &SoaKernelSumScalar,
    &SoaKernelSumWithinRadiusScalar,
};

}  // namespace

const KernelSimdOps& ScalarKernelSimdOps() { return kScalarKernelOps; }

const KernelSimdOps* KernelSimdOpsFor(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kScalar:
      return &kScalarKernelOps;
    case SimdBackend::kAvx2:
      return Avx2KernelSimdOpsImpl();
    case SimdBackend::kNeon:
      return NeonKernelSimdOpsImpl();
  }
  return nullptr;
}

double SoaKernelSum(const double* block, size_t padded, size_t count,
                    size_t dims, const double* x, const double* inv_bw,
                    KernelType type, double norm, bool fast_math) {
  return KernelSimdOpsFor(ActiveSimdBackend())
      ->kernel_sum(block, padded, count, dims, x, inv_bw, type, norm,
                   fast_math);
}

double SoaKernelSumWithinRadius(const double* block, size_t padded,
                                size_t count, size_t dims, const double* x,
                                const double* inv_bw, double radius_sq,
                                KernelType type, double norm, bool fast_math,
                                uint64_t* inside) {
  return KernelSimdOpsFor(ActiveSimdBackend())
      ->kernel_sum_within(block, padded, count, dims, x, inv_bw, radius_sq,
                          type, norm, fast_math, inside);
}

}  // namespace simd
}  // namespace tkdc
