#ifndef TKDC_KDE_QUERY_CONTEXT_H_
#define TKDC_KDE_QUERY_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "common/metrics.h"

namespace tkdc {

/// Work counters for a density query, matching the metrics reported in the
/// paper's Figure 12 ("Kernel Evaluations / pt"). The counters are plain
/// sums, so Add() is commutative and associative: folding per-thread stats
/// in any order yields the same totals.
struct TraversalStats {
  /// Every kernel evaluation: two per node bound plus one per leaf point
  /// for the tree traversals; baselines count their own unit of kernel (or
  /// distance) work here so Figure 7's "kernel evals / query" is uniform.
  uint64_t kernel_evaluations = 0;
  /// Nodes popped from the priority queue and expanded.
  uint64_t nodes_expanded = 0;
  /// Exact point contributions evaluated inside leaves.
  uint64_t leaf_points_evaluated = 0;
  /// Density queries answered.
  uint64_t queries = 0;

  void Add(const TraversalStats& other) {
    kernel_evaluations += other.kernel_evaluations;
    nodes_expanded += other.nodes_expanded;
    leaf_points_evaluated += other.leaf_points_evaluated;
    queries += other.queries;
  }
};

/// Per-thread query-time state: everything a query engine needs that is not
/// part of the immutable trained model. A context owns the work counters
/// and (in subclasses) the scratch buffers — traversal heaps, neighbor
/// lists, range-query hit vectors — so engines stay `const` and a single
/// trained model can serve many threads, each with its own context.
///
/// Lifecycle: `DensityClassifier::MakeQueryContext()` builds a context of
/// the right dynamic type for its engine; the batch executor makes one per
/// worker slot and folds the counters back into the caller's context with
/// MergeCounters() after the fork/join. Merging is order-insensitive, so
/// totals are bit-identical at every thread count.
class QueryContext {
 public:
  virtual ~QueryContext() = default;

  /// Folds another context's counters into this one. Subclasses do NOT
  /// extend this: scratch buffers are per-thread throwaways; only the
  /// counters survive the join.
  void MergeCounters(const QueryContext& other) {
    stats.Add(other.stats);
    grid_prunes += other.grid_prunes;
    if (metrics != nullptr && other.metrics != nullptr) {
      metrics->Merge(*other.metrics);
    }
  }

  /// Zeroes every counter (and the shard, if attached) while keeping the
  /// scratch buffers warm. The batch executor calls this when recycling a
  /// cached worker context, so counters merged after the previous batch are
  /// never folded into the sink twice.
  void ResetCounters() {
    stats = TraversalStats{};
    grid_prunes = 0;
    if (metrics != nullptr) metrics->Reset();
  }

  /// Hands this context its own metrics shard (or detaches with nullptr).
  /// DensityClassifier::AttachMetrics drives this; a context without a
  /// shard records nothing beyond the plain TraversalStats sums.
  void AttachMetricsShard(std::unique_ptr<MetricsShard> shard) {
    metrics = std::move(shard);
  }

  /// Traversal / kernel-evaluation counters for work done in this context.
  TraversalStats stats;
  /// Queries answered by the grid cache without a tree traversal (paper
  /// Section 3.7); only tKDC-family engines bump this.
  uint64_t grid_prunes = 0;
  /// Optional observability shard (null = metrics detached, the default).
  /// Owned here so per-worker shards die with their context after the
  /// batch join folds them into the sink's shard.
  std::unique_ptr<MetricsShard> metrics;
};

}  // namespace tkdc

#endif  // TKDC_KDE_QUERY_CONTEXT_H_
