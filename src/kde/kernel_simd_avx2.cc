// AVX2 kernel sums over SoA leaf blocks. Compiled with -mavx2 (NOT -mfma)
// and -ffp-contract=off; only separate multiply/add intrinsics are used,
// so in default mode every sum is bit-identical to the scalar backend's
// blocked schedule (common/simd.h contract). The Gaussian profile calls
// std::exp per lane in default mode — bit-identical — and switches to a
// vectorized polynomial exp only under fast_math.
#include "kde/kernel_simd_internal.h"

#if defined(TKDC_SIMD_AVX2)

#include <immintrin.h>

#include <cmath>

namespace tkdc {
namespace simd {
namespace {

// Scaled squared distances of one 4-point group: lane k accumulates
// ((x_j - p_j) * inv_bw_j)^2 sequentially over j, replaying the scalar
// recurrence exactly (contract rule 1).
inline __m256d GroupDistances(const double* block, size_t padded, size_t g,
                              size_t dims, const double* x,
                              const double* inv_bw) {
  __m256d z = _mm256_setzero_pd();
  for (size_t j = 0; j < dims; ++j) {
    const __m256d row = _mm256_loadu_pd(block + j * padded + g);
    const __m256d diff = _mm256_sub_pd(_mm256_set1_pd(x[j]), row);
    const __m256d u = _mm256_mul_pd(diff, _mm256_set1_pd(inv_bw[j]));
    z = _mm256_add_pd(z, _mm256_mul_pd(u, u));
  }
  return z;
}

// (acc0 + acc2) + (acc1 + acc3): low half + high half, then horizontal —
// the reduction the scalar backend replays (contract rule 2).
inline double ReduceBlocked(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

// Vectorized exp(a) for a <= 0, used only under fast_math. Standard
// Cody-Waite range reduction a = n*ln2 + r with a degree-11 Taylor
// polynomial on r in [-ln2/2, ln2/2] (relative error ~1e-14), scaled by
// 2^n through direct exponent-bit assembly. Arguments at or below -708
// (including the -inf of padding lanes, which reduce to NaN here) are
// masked to exactly +0.0, preserving the padding invariant.
inline __m256d ExpNonPositive(__m256d a) {
  const __m256d keep = _mm256_cmp_pd(a, _mm256_set1_pd(-708.0), _CMP_GT_OQ);
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(a, _mm256_set1_pd(1.4426950408889634074)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_sub_pd(
      a, _mm256_mul_pd(n, _mm256_set1_pd(6.93145751953125e-1)));
  r = _mm256_sub_pd(
      r, _mm256_mul_pd(n, _mm256_set1_pd(1.42860682030941723212e-6)));
  __m256d p = _mm256_set1_pd(1.0 / 39916800.0);  // 1/11!
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(1.0 / 3628800.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(1.0 / 362880.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(1.0 / 40320.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(1.0 / 5040.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(1.0 / 720.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(1.0 / 120.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(1.0 / 24.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(1.0 / 6.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(1.0 / 2.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(1.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(1.0));
  // 2^n: n is integral and > -1022 wherever `keep` holds, so the biased
  // exponent stays in range; masked lanes may compute garbage that the
  // final AND zeroes.
  const __m128i n32 = _mm256_cvtpd_epi32(n);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i biased = _mm256_add_epi64(n64, _mm256_set1_epi64x(1023));
  const __m256d scale = _mm256_castsi256_pd(_mm256_slli_epi64(biased, 52));
  return _mm256_and_pd(_mm256_mul_pd(p, scale), keep);
}

// Exact Gaussian profile: per-lane std::exp on the vector-computed
// distances — the distances are bit-identical to the scalar backend's, so
// so is each exp result and the blocked sum they feed.
inline __m256d GaussianExact(__m256d z, double norm) {
  alignas(32) double zs[4];
  _mm256_store_pd(zs, z);
  alignas(32) double v[4];
  for (int lane = 0; lane < 4; ++lane) {
    v[lane] = norm * std::exp(-0.5 * zs[lane]);
  }
  return _mm256_load_pd(v);
}

// Compact-support profiles: the z >= 1 branch becomes an AND mask; kept
// lanes run the identical arithmetic to the scalar ProfileLane, zeroed
// lanes contribute the identical +0.0 (a norm * (1 - inf) = -inf padding
// lane is likewise masked to +0.0).
inline __m256d EpanechnikovProfile(__m256d z, __m256d vnorm) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d mask = _mm256_cmp_pd(z, one, _CMP_LT_OQ);
  return _mm256_and_pd(_mm256_mul_pd(vnorm, _mm256_sub_pd(one, z)), mask);
}

inline __m256d UniformProfile(__m256d z, __m256d vnorm) {
  const __m256d mask = _mm256_cmp_pd(z, _mm256_set1_pd(1.0), _CMP_LT_OQ);
  return _mm256_and_pd(vnorm, mask);
}

inline __m256d BiweightProfile(__m256d z, __m256d vnorm) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d mask = _mm256_cmp_pd(z, one, _CMP_LT_OQ);
  const __m256d t = _mm256_sub_pd(one, z);
  // Same association as the scalar (norm * (1 - z)) * (1 - z).
  return _mm256_and_pd(_mm256_mul_pd(_mm256_mul_pd(vnorm, t), t), mask);
}

template <typename Profile>
double SumLoop(const double* block, size_t padded, size_t dims,
               const double* x, const double* inv_bw, Profile&& profile) {
  __m256d acc = _mm256_setzero_pd();
  for (size_t g = 0; g < padded; g += kSimdBlockWidth) {
    acc = _mm256_add_pd(acc,
                        profile(GroupDistances(block, padded, g, dims, x,
                                               inv_bw)));
  }
  return ReduceBlocked(acc);
}

template <typename Profile>
double SumWithinLoop(const double* block, size_t padded, size_t dims,
                     const double* x, const double* inv_bw, double radius_sq,
                     uint64_t* inside, Profile&& profile) {
  __m256d acc = _mm256_setzero_pd();
  const __m256d radius = _mm256_set1_pd(radius_sq);
  uint64_t hits = 0;
  for (size_t g = 0; g < padded; g += kSimdBlockWidth) {
    const __m256d z = GroupDistances(block, padded, g, dims, x, inv_bw);
    const __m256d mask = _mm256_cmp_pd(z, radius, _CMP_LE_OQ);
    acc = _mm256_add_pd(acc, _mm256_and_pd(profile(z), mask));
    hits += static_cast<uint64_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(mask))));
  }
  *inside = hits;
  return ReduceBlocked(acc);
}

double SoaKernelSumAvx2(const double* block, size_t padded, size_t count,
                        size_t dims, const double* x, const double* inv_bw,
                        KernelType type, double norm, bool fast_math) {
  (void)count;
  const __m256d vnorm = _mm256_set1_pd(norm);
  switch (type) {
    case KernelType::kGaussian:
      if (fast_math) {
        return SumLoop(block, padded, dims, x, inv_bw, [vnorm](__m256d z) {
          return _mm256_mul_pd(
              vnorm, ExpNonPositive(_mm256_mul_pd(_mm256_set1_pd(-0.5), z)));
        });
      }
      return SumLoop(block, padded, dims, x, inv_bw, [norm](__m256d z) {
        return GaussianExact(z, norm);
      });
    case KernelType::kEpanechnikov:
      return SumLoop(block, padded, dims, x, inv_bw, [vnorm](__m256d z) {
        return EpanechnikovProfile(z, vnorm);
      });
    case KernelType::kUniform:
      return SumLoop(block, padded, dims, x, inv_bw, [vnorm](__m256d z) {
        return UniformProfile(z, vnorm);
      });
    case KernelType::kBiweight:
      return SumLoop(block, padded, dims, x, inv_bw, [vnorm](__m256d z) {
        return BiweightProfile(z, vnorm);
      });
  }
  return 0.0;  // Unreachable.
}

double SoaKernelSumWithinRadiusAvx2(const double* block, size_t padded,
                                    size_t count, size_t dims,
                                    const double* x, const double* inv_bw,
                                    double radius_sq, KernelType type,
                                    double norm, bool fast_math,
                                    uint64_t* inside) {
  (void)count;
  const __m256d vnorm = _mm256_set1_pd(norm);
  switch (type) {
    case KernelType::kGaussian:
      if (fast_math) {
        return SumWithinLoop(
            block, padded, dims, x, inv_bw, radius_sq, inside,
            [vnorm](__m256d z) {
              return _mm256_mul_pd(
                  vnorm,
                  ExpNonPositive(_mm256_mul_pd(_mm256_set1_pd(-0.5), z)));
            });
      }
      return SumWithinLoop(block, padded, dims, x, inv_bw, radius_sq, inside,
                           [norm](__m256d z) {
                             return GaussianExact(z, norm);
                           });
    case KernelType::kEpanechnikov:
      return SumWithinLoop(block, padded, dims, x, inv_bw, radius_sq, inside,
                           [vnorm](__m256d z) {
                             return EpanechnikovProfile(z, vnorm);
                           });
    case KernelType::kUniform:
      return SumWithinLoop(block, padded, dims, x, inv_bw, radius_sq, inside,
                           [vnorm](__m256d z) {
                             return UniformProfile(z, vnorm);
                           });
    case KernelType::kBiweight:
      return SumWithinLoop(block, padded, dims, x, inv_bw, radius_sq, inside,
                           [vnorm](__m256d z) {
                             return BiweightProfile(z, vnorm);
                           });
  }
  return 0.0;  // Unreachable.
}

constexpr KernelSimdOps kAvx2KernelOps = {
    &SoaKernelSumAvx2,
    &SoaKernelSumWithinRadiusAvx2,
};

}  // namespace

const KernelSimdOps* Avx2KernelSimdOpsImpl() { return &kAvx2KernelOps; }

}  // namespace simd
}  // namespace tkdc

#endif  // TKDC_SIMD_AVX2
