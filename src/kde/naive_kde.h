#ifndef TKDC_KDE_NAIVE_KDE_H_
#define TKDC_KDE_NAIVE_KDE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "kde/kernel.h"
#include "kde/soa_matrix.h"

namespace tkdc {

/// Exact kernel density estimator (paper Eq. 3): f(x) = (1/n) sum_i
/// K_H(x - x_i), evaluated by a full scan over the training data. This is
/// the paper's "simple" algorithm and the ground-truth oracle for the
/// accuracy experiments (Figure 8).
class NaiveKde {
 public:
  /// Trains on `data` with the given kernel. The kernel's dimensionality
  /// must match; the data is copied so the estimator is self-contained.
  NaiveKde(const Dataset& data, Kernel kernel);

  const Kernel& kernel() const { return kernel_; }
  size_t size() const { return data_.size(); }

  /// Exact density at `x` (O(n) kernel evaluations).
  double Density(std::span<const double> x) const;

  /// Exact density of training point `i`, with the self-contribution
  /// K_H(0)/n subtracted (paper Section 2.3).
  double TrainingDensity(size_t i) const;

  /// Densities of every training point, self-corrected. O(n^2); used for
  /// ground truth on modest n.
  std::vector<double> AllTrainingDensities() const;

  /// Total kernel evaluations performed so far (mutable statistics counter).
  uint64_t kernel_evaluations() const { return kernel_evaluations_; }

 private:
  Dataset data_;
  Kernel kernel_;
  // SoA mirror of data_ for the vectorized full-scan sum. Always exact
  // (no fast-math): this estimator is the ground-truth oracle.
  SoaMatrix soa_;
  mutable uint64_t kernel_evaluations_ = 0;
};

}  // namespace tkdc

#endif  // TKDC_KDE_NAIVE_KDE_H_
