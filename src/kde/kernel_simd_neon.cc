// NEON kernel sums over SoA leaf blocks, processing the 4-lane logical
// block as two float64x2_t halves. No vfmaq and -ffp-contract=off, so the
// sums are bit-identical to the scalar backend's blocked schedule
// (common/simd.h contract). The Gaussian profile always uses per-lane
// std::exp here: this backend ignores fast_math and stays exact, which
// trivially satisfies the --fast-math-leaf epsilon band.
#include "kde/kernel_simd_internal.h"

#if defined(TKDC_SIMD_NEON)

#include <arm_neon.h>

#include <cmath>

namespace tkdc {
namespace simd {
namespace {

struct GroupZ {
  float64x2_t z01;
  float64x2_t z23;
};

inline GroupZ GroupDistances(const double* block, size_t padded, size_t g,
                             size_t dims, const double* x,
                             const double* inv_bw) {
  GroupZ z = {vdupq_n_f64(0.0), vdupq_n_f64(0.0)};
  for (size_t j = 0; j < dims; ++j) {
    const double* row = block + j * padded + g;
    const float64x2_t xj = vdupq_n_f64(x[j]);
    const float64x2_t bj = vdupq_n_f64(inv_bw[j]);
    const float64x2_t u01 = vmulq_f64(vsubq_f64(xj, vld1q_f64(row)), bj);
    const float64x2_t u23 = vmulq_f64(vsubq_f64(xj, vld1q_f64(row + 2)), bj);
    z.z01 = vaddq_f64(z.z01, vmulq_f64(u01, u01));
    z.z23 = vaddq_f64(z.z23, vmulq_f64(u23, u23));
  }
  return z;
}

// (acc0 + acc2) + (acc1 + acc3): pairwise half sum, then lane 0 + lane 1.
inline double ReduceBlocked(float64x2_t acc01, float64x2_t acc23) {
  const float64x2_t s = vaddq_f64(acc01, acc23);
  return vgetq_lane_f64(s, 0) + vgetq_lane_f64(s, 1);
}

inline float64x2_t MaskAnd(float64x2_t value, uint64x2_t mask) {
  return vreinterpretq_f64_u64(
      vandq_u64(vreinterpretq_u64_f64(value), mask));
}

// Per-half profile evaluation; identical arithmetic to the scalar
// ProfileLane, with the z >= 1 branch of the compact families as an AND
// mask (zeroed lanes contribute the identical +0.0, padding included).
inline float64x2_t ProfileHalf(KernelType type, float64x2_t z,
                               float64x2_t vnorm) {
  switch (type) {
    case KernelType::kGaussian: {
      double zs[2];
      vst1q_f64(zs, z);
      const double n = vgetq_lane_f64(vnorm, 0);
      float64x2_t v = vdupq_n_f64(n * std::exp(-0.5 * zs[0]));
      return vsetq_lane_f64(n * std::exp(-0.5 * zs[1]), v, 1);
    }
    case KernelType::kEpanechnikov: {
      const float64x2_t one = vdupq_n_f64(1.0);
      const uint64x2_t mask = vcltq_f64(z, one);
      return MaskAnd(vmulq_f64(vnorm, vsubq_f64(one, z)), mask);
    }
    case KernelType::kUniform: {
      const uint64x2_t mask = vcltq_f64(z, vdupq_n_f64(1.0));
      return MaskAnd(vnorm, mask);
    }
    case KernelType::kBiweight: {
      const float64x2_t one = vdupq_n_f64(1.0);
      const uint64x2_t mask = vcltq_f64(z, one);
      const float64x2_t t = vsubq_f64(one, z);
      return MaskAnd(vmulq_f64(vmulq_f64(vnorm, t), t), mask);
    }
  }
  return vdupq_n_f64(0.0);  // Unreachable.
}

double SoaKernelSumNeon(const double* block, size_t padded, size_t count,
                        size_t dims, const double* x, const double* inv_bw,
                        KernelType type, double norm, bool fast_math) {
  (void)count;
  (void)fast_math;
  const float64x2_t vnorm = vdupq_n_f64(norm);
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  for (size_t g = 0; g < padded; g += kSimdBlockWidth) {
    const GroupZ z = GroupDistances(block, padded, g, dims, x, inv_bw);
    acc01 = vaddq_f64(acc01, ProfileHalf(type, z.z01, vnorm));
    acc23 = vaddq_f64(acc23, ProfileHalf(type, z.z23, vnorm));
  }
  return ReduceBlocked(acc01, acc23);
}

double SoaKernelSumWithinRadiusNeon(const double* block, size_t padded,
                                    size_t count, size_t dims,
                                    const double* x, const double* inv_bw,
                                    double radius_sq, KernelType type,
                                    double norm, bool fast_math,
                                    uint64_t* inside) {
  (void)count;
  (void)fast_math;
  const float64x2_t vnorm = vdupq_n_f64(norm);
  const float64x2_t radius = vdupq_n_f64(radius_sq);
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  uint64_t hits = 0;
  for (size_t g = 0; g < padded; g += kSimdBlockWidth) {
    const GroupZ z = GroupDistances(block, padded, g, dims, x, inv_bw);
    const uint64x2_t m01 = vcleq_f64(z.z01, radius);
    const uint64x2_t m23 = vcleq_f64(z.z23, radius);
    acc01 = vaddq_f64(acc01, MaskAnd(ProfileHalf(type, z.z01, vnorm), m01));
    acc23 = vaddq_f64(acc23, MaskAnd(ProfileHalf(type, z.z23, vnorm), m23));
    hits += (vgetq_lane_u64(m01, 0) & 1) + (vgetq_lane_u64(m01, 1) & 1) +
            (vgetq_lane_u64(m23, 0) & 1) + (vgetq_lane_u64(m23, 1) & 1);
  }
  *inside = hits;
  return ReduceBlocked(acc01, acc23);
}

constexpr KernelSimdOps kNeonKernelOps = {
    &SoaKernelSumNeon,
    &SoaKernelSumWithinRadiusNeon,
};

}  // namespace

const KernelSimdOps* NeonKernelSimdOpsImpl() { return &kNeonKernelOps; }

}  // namespace simd
}  // namespace tkdc

#endif  // TKDC_SIMD_NEON
