#ifndef TKDC_KDE_BATCH_EXECUTOR_H_
#define TKDC_KDE_BATCH_EXECUTOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "kde/query_context.h"

namespace tkdc {

/// Deterministic fan-out of per-row query work across a thread pool, shared
/// by every DensityClassifier. The executor owns the pool and the fork/join
/// protocol; the classifier supplies two callbacks: a factory for fresh
/// per-worker QueryContexts and the per-row body.
///
/// Determinism contract (inherited from ThreadPool::ParallelFor): rows are
/// split into contiguous chunks assigned round-robin to slots, each row is
/// processed exactly once, and results written by row index are
/// bit-identical to a serial run. Counter totals are also identical at
/// every thread count because QueryContext::MergeCounters folds plain sums.
///
/// Threading of the *sink*: with one thread the executor runs every row
/// directly on the sink context — the exact legacy serial path, reusing its
/// warm scratch and bumping its counters in place. With T > 1 threads each
/// slot gets its own context from `make_context` and the sink only receives
/// the merged counters after the join, so the sink's scratch is never
/// touched concurrently.
///
/// Worker contexts are cached across Map() calls: a serving workload issues
/// thousands of small batches per second, and rebuilding every slot's
/// scratch (traversal heaps, neighbor lists, metrics shards) per batch
/// dominates the dispatch cost. Cached contexts have their counters reset
/// before reuse, so merged totals stay bit-identical to fresh-context runs.
/// The owner must call InvalidateContexts() whenever the factory's output
/// would change — model retrain/restore or metrics (de)attachment.
class BatchExecutor {
 public:
  using ContextFactory = std::function<std::unique_ptr<QueryContext>()>;
  using RowBody = std::function<void(QueryContext& ctx, size_t row)>;

  /// Smallest contiguous run of rows a worker grabs at once: one easy
  /// density query is sub-microsecond, so amortize the per-chunk dispatch.
  static constexpr size_t kDefaultMinChunk = 16;

  /// `num_threads`: 0 = hardware concurrency, 1 = serial (no pool).
  explicit BatchExecutor(size_t num_threads = 1) { SetNumThreads(num_threads); }

  /// Resolved thread count (never 0).
  size_t num_threads() const { return num_threads_; }

  /// Re-sizes the pool. Cheap when the count is unchanged; otherwise the
  /// old pool is torn down and a new one is built lazily on the next Map.
  void SetNumThreads(size_t num_threads);

  /// Runs `body(ctx, row)` for every row in [0, total), giving each worker
  /// slot its own context, then folds every per-slot counter set into
  /// `sink` (slot order — order-insensitive anyway). `min_chunk` bounds the
  /// smallest chunk of the deterministic split.
  void Map(size_t total, size_t min_chunk, const ContextFactory& make_context,
           const RowBody& body, QueryContext& sink);

  /// Drops the cached worker contexts; the next Map() rebuilds them from
  /// its factory. Call when the trained model or metrics attachment behind
  /// the factory changes — a stale context would carry scratch sized to the
  /// old model and a shard of the old registry.
  void InvalidateContexts() { contexts_.clear(); }

 private:
  size_t num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // Built lazily; null when serial.
  /// Per-slot worker contexts, reused across Map() calls (counters reset
  /// on reuse). Cleared on resize and by InvalidateContexts().
  std::vector<std::unique_ptr<QueryContext>> contexts_;
};

}  // namespace tkdc

#endif  // TKDC_KDE_BATCH_EXECUTOR_H_
