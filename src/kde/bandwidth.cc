#include "kde/bandwidth.h"

#include <cmath>

#include "common/macros.h"

namespace tkdc {

std::vector<double> SelectBandwidths(BandwidthRule rule, size_t n,
                                     const std::vector<double>& sigmas,
                                     double scale_factor) {
  TKDC_CHECK(n >= 1);
  TKDC_CHECK(!sigmas.empty());
  TKDC_CHECK(scale_factor > 0.0);
  const double d = static_cast<double>(sigmas.size());
  const double n_factor =
      std::pow(static_cast<double>(n), -1.0 / (d + 4.0));
  double rule_factor = 1.0;
  if (rule == BandwidthRule::kSilverman) {
    rule_factor = std::pow(4.0 / (d + 2.0), 1.0 / (d + 4.0));
  }
  std::vector<double> bandwidths(sigmas.size());
  for (size_t j = 0; j < sigmas.size(); ++j) {
    TKDC_CHECK(sigmas[j] >= 0.0);
    double h = scale_factor * rule_factor * n_factor * sigmas[j];
    if (h <= 0.0) h = 1e-9;  // Zero-variance axis: tiny floor.
    bandwidths[j] = h;
  }
  return bandwidths;
}

std::vector<double> SelectBandwidths(BandwidthRule rule, const Dataset& data,
                                     double scale_factor) {
  TKDC_CHECK(data.size() >= 2);
  return SelectBandwidths(rule, data.size(), data.ColumnStdDevs(),
                          scale_factor);
}

}  // namespace tkdc
