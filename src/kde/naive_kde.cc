#include "kde/naive_kde.h"

#include "common/macros.h"

namespace tkdc {

NaiveKde::NaiveKde(const Dataset& data, Kernel kernel)
    : data_(data), kernel_(std::move(kernel)), soa_(data_) {
  TKDC_CHECK(!data_.empty());
  TKDC_CHECK(kernel_.dims() == data_.dims());
}

double NaiveKde::Density(std::span<const double> x) const {
  const size_t n = data_.size();
  const double sum = soa_.KernelSum(x.data(),
                                    kernel_.inverse_bandwidths().data(),
                                    kernel_.type(), kernel_.norm(),
                                    /*fast_math=*/false);
  kernel_evaluations_ += n;
  return sum / static_cast<double>(n);
}

double NaiveKde::TrainingDensity(size_t i) const {
  TKDC_CHECK(i < data_.size());
  return Density(data_.Row(i)) -
         kernel_.MaxValue() / static_cast<double>(data_.size());
}

std::vector<double> NaiveKde::AllTrainingDensities() const {
  std::vector<double> densities(data_.size());
  for (size_t i = 0; i < data_.size(); ++i) {
    densities[i] = TrainingDensity(i);
  }
  return densities;
}

}  // namespace tkdc
