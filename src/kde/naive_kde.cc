#include "kde/naive_kde.h"

#include "common/macros.h"

namespace tkdc {

NaiveKde::NaiveKde(const Dataset& data, Kernel kernel)
    : data_(data), kernel_(std::move(kernel)) {
  TKDC_CHECK(!data_.empty());
  TKDC_CHECK(kernel_.dims() == data_.dims());
}

double NaiveKde::Density(std::span<const double> x) const {
  const size_t n = data_.size();
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += kernel_.Evaluate(x, data_.Row(i));
  }
  kernel_evaluations_ += n;
  return sum / static_cast<double>(n);
}

double NaiveKde::TrainingDensity(size_t i) const {
  TKDC_CHECK(i < data_.size());
  return Density(data_.Row(i)) -
         kernel_.MaxValue() / static_cast<double>(data_.size());
}

std::vector<double> NaiveKde::AllTrainingDensities() const {
  std::vector<double> densities(data_.size());
  for (size_t i = 0; i < data_.size(); ++i) {
    densities[i] = TrainingDensity(i);
  }
  return densities;
}

}  // namespace tkdc
