#include "kde/soa_matrix.h"

#include <algorithm>
#include <limits>

namespace tkdc {

SoaMatrix::SoaMatrix(const Dataset& data)
    : size_(data.size()), dims_(data.dims()) {
  const size_t n = size_;
  blocks_.reserve((n + kBlockPoints - 1) / kBlockPoints);
  size_t total = 0;
  for (size_t begin = 0; begin < n; begin += kBlockPoints) {
    const size_t count = std::min(kBlockPoints, n - begin);
    blocks_.push_back({total, count});
    total += SimdPaddedCount(count) * dims_;
  }
  storage_.assign(total, std::numeric_limits<double>::infinity());
  size_t point = 0;
  for (const Block& block : blocks_) {
    const size_t padded = SimdPaddedCount(block.count);
    for (size_t k = 0; k < block.count; ++k) {
      const std::span<const double> row = data.Row(point + k);
      for (size_t j = 0; j < dims_; ++j) {
        storage_[block.offset + j * padded + k] = row[j];
      }
    }
    point += block.count;
  }
}

double SoaMatrix::KernelSum(const double* x, const double* inv_bw,
                            KernelType type, double norm,
                            bool fast_math) const {
  double sum = 0.0;
  for (const Block& block : blocks_) {
    sum += simd::SoaKernelSum(storage_.data() + block.offset,
                              SimdPaddedCount(block.count), block.count,
                              dims_, x, inv_bw, type, norm, fast_math);
  }
  return sum;
}

}  // namespace tkdc
