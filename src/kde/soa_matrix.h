#ifndef TKDC_KDE_SOA_MATRIX_H_
#define TKDC_KDE_SOA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "kde/kernel_simd.h"

namespace tkdc {

/// Structure-of-arrays mirror of a Dataset for the flat-scan engines
/// (NaiveKde and the simple baseline). Points are split into fixed-size
/// blocks; inside each block every dimension is contiguous and padded to
/// simd::kSimdBlockWidth with +infinity, the layout the simd kernel-sum
/// primitives consume. Block boundaries are a function of size() alone, so
/// KernelSum's summation schedule — blocked within a block, sequential
/// across blocks — is identical no matter which backend runs it, keeping
/// the scalar/SIMD bit-equality contract of common/simd.h.
class SoaMatrix {
 public:
  /// Block granularity in points. A multiple of kSimdBlockWidth, sized so
  /// one block's doubles stay cache-resident across the dimension sweep.
  static constexpr size_t kBlockPoints = 1024;

  SoaMatrix() = default;
  explicit SoaMatrix(const Dataset& data);

  size_t size() const { return size_; }
  size_t dims() const { return dims_; }
  bool empty() const { return size_ == 0; }

  /// Sum over all points of profile(z_i, norm), dispatched to the active
  /// SIMD backend block by block. `x` and `inv_bw` hold dims() doubles.
  double KernelSum(const double* x, const double* inv_bw, KernelType type,
                   double norm, bool fast_math) const;

 private:
  struct Block {
    size_t offset;  // Index into storage_ of this block's first double.
    size_t count;   // Real (unpadded) points in the block.
  };

  size_t size_ = 0;
  size_t dims_ = 0;
  std::vector<Block> blocks_;
  std::vector<double> storage_;
};

}  // namespace tkdc

#endif  // TKDC_KDE_SOA_MATRIX_H_
