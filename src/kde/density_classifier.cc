#include "kde/density_classifier.h"

#include "common/macros.h"

namespace tkdc {

QueryContext& DensityClassifier::live_context() {
  if (live_context_ == nullptr) live_context_ = MakeQueryContext();
  return *live_context_;
}

std::vector<Classification> DensityClassifier::ClassifyBatchImpl(
    const Dataset& queries, bool training) {
  TKDC_CHECK_MSG(trained(), "ClassifyBatch called before Train");
  TKDC_CHECK_MSG(queries.dims() == dims(),
                 "query dimensionality does not match the trained model");
  std::vector<Classification> labels(queries.size());
  executor_.Map(
      queries.size(), BatchExecutor::kDefaultMinChunk,
      [this] { return MakeQueryContext(); },
      [&](QueryContext& ctx, size_t row) {
        labels[row] = ClassifyInContext(ctx, queries.Row(row), training);
      },
      live_context());
  return labels;
}

}  // namespace tkdc
