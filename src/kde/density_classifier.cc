#include "kde/density_classifier.h"

#include "common/macros.h"

namespace tkdc {

QueryContext& DensityClassifier::live_context() {
  if (live_context_ == nullptr) {
    live_context_ = MakeQueryContext();
    AttachShard(*live_context_);
  }
  return *live_context_;
}

void DensityClassifier::AttachMetrics(MetricsRegistry* registry) {
  if (registry != nullptr) query_metrics::RegisterStandard(*registry);
  registry_ = registry;
  // Re-shard (or detach) the live context in place so counters accumulated
  // so far survive; only the observability shard changes hands.
  if (live_context_ != nullptr) AttachShard(*live_context_);
  // Cached batch-worker contexts hold shards of the previous registry (or
  // none); rebuild them on the next batch so they record into this one.
  executor_.InvalidateContexts();
}

void DensityClassifier::FlushMetrics() {
  if (registry_ == nullptr || live_context_ == nullptr ||
      live_context_->metrics == nullptr) {
    return;
  }
  registry_->Absorb(*live_context_->metrics);
  live_context_->metrics->Reset();
}

Classification DensityClassifier::ClassifyOverlayInContext(
    QueryContext&, std::span<const double>, bool, const DeltaOverlay&) const {
  TKDC_CHECK_MSG(false, "this engine does not support delta overlays");
}

double DensityClassifier::EstimateDensityOverlayInContext(
    QueryContext&, std::span<const double>, const DeltaOverlay&) const {
  TKDC_CHECK_MSG(false, "this engine does not support delta overlays");
}

std::vector<Classification> DensityClassifier::ClassifyBatchWithOverlay(
    const Dataset& queries, const DeltaOverlay& overlay, bool training) {
  TKDC_CHECK_MSG(trained(), "ClassifyBatchWithOverlay called before Train");
  TKDC_CHECK_MSG(supports_overlay(),
                 "this engine does not support delta overlays");
  if (queries.size() == 0) return {};
  TKDC_CHECK_MSG(queries.dims() == dims(),
                 "query dimensionality does not match the trained model");
  std::vector<Classification> labels(queries.size());
  executor_.Map(
      queries.size(), BatchExecutor::kDefaultMinChunk,
      [this] {
        auto ctx = MakeQueryContext();
        AttachShard(*ctx);
        return ctx;
      },
      [&](QueryContext& ctx, size_t row) {
        labels[row] =
            ObservedClassifyOverlay(ctx, queries.Row(row), training, overlay);
      },
      live_context());
  return labels;
}

std::vector<Classification> DensityClassifier::ClassifyBatchImpl(
    const Dataset& queries, bool training) {
  TKDC_CHECK_MSG(trained(), "ClassifyBatch called before Train");
  // An empty batch is a no-op regardless of how the (dimensionless) empty
  // dataset was constructed, so the dims check must not fire on it.
  if (queries.size() == 0) return {};
  TKDC_CHECK_MSG(queries.dims() == dims(),
                 "query dimensionality does not match the trained model");
  std::vector<Classification> labels(queries.size());
  executor_.Map(
      queries.size(), BatchExecutor::kDefaultMinChunk,
      [this] {
        auto ctx = MakeQueryContext();
        AttachShard(*ctx);
        return ctx;
      },
      [&](QueryContext& ctx, size_t row) {
        labels[row] = ObservedClassify(ctx, queries.Row(row), training);
      },
      live_context());
  return labels;
}

}  // namespace tkdc
