#ifndef TKDC_KDE_BANDWIDTH_H_
#define TKDC_KDE_BANDWIDTH_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace tkdc {

/// Diagonal bandwidth selection rules.
enum class BandwidthRule {
  /// Scott's rule (paper Eq. 4): h_i = b * n^(-1/(d+4)) * sigma_i.
  kScott,
  /// Silverman's rule: h_i = b * (4/(d+2))^(1/(d+4)) * n^(-1/(d+4)) *
  /// sigma_i. An extension; coincides with Scott for d = 2.
  kSilverman,
};

/// Per-axis bandwidths from per-axis standard deviations `sigmas` for a
/// training set of `n` points. `scale_factor` is the user factor b of
/// Eq. 4. Axes with zero variance get a small floor bandwidth so the kernel
/// stays well-defined.
std::vector<double> SelectBandwidths(BandwidthRule rule, size_t n,
                                     const std::vector<double>& sigmas,
                                     double scale_factor);

/// Convenience overload computing sigmas from `data`.
std::vector<double> SelectBandwidths(BandwidthRule rule, const Dataset& data,
                                     double scale_factor);

}  // namespace tkdc

#endif  // TKDC_KDE_BANDWIDTH_H_
