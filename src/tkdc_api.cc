#include "tkdc_api.h"

#include <sstream>
#include <utility>

#include "baselines/binned_kde.h"
#include "baselines/knn.h"
#include "baselines/nocut.h"
#include "baselines/rkde.h"
#include "baselines/simple_kde.h"
#include "index/index_backend.h"
#include "tkdc/classifier.h"
#include "tkdc/model_io.h"

namespace tkdc::api {

const std::vector<std::string>& KnownAlgorithms() {
  static const std::vector<std::string> kNames = {"tkdc",  "nocut",  "simple",
                                                  "rkde",  "binned", "knn"};
  return kNames;
}

Result<std::unique_ptr<DensityClassifier>> NewClassifier(
    const TrainOptions& options) {
  const Status config_status = options.config.Validate();
  if (!config_status.ok()) {
    return Errorf() << "invalid config: " << config_status.message();
  }
  if (options.k < 1) return Errorf() << "k must be >= 1";
  const TkdcConfig& config = options.config;
  std::unique_ptr<DensityClassifier> classifier;
  if (options.algorithm == "tkdc") {
    classifier = std::make_unique<TkdcClassifier>(config);
  } else if (options.algorithm == "nocut") {
    classifier = std::make_unique<NocutClassifier>(config);
  } else if (options.algorithm == "rkde") {
    RkdeOptions rkde;
    rkde.base = config;
    classifier = std::make_unique<RkdeClassifier>(rkde);
  } else if (options.algorithm == "simple") {
    SimpleKdeOptions simple;
    simple.p = config.p;
    simple.bandwidth_scale = config.bandwidth_scale;
    simple.kernel = config.kernel;
    simple.bandwidth_rule = config.bandwidth_rule;
    simple.seed = config.seed;
    classifier = std::make_unique<SimpleKdeClassifier>(simple);
  } else if (options.algorithm == "binned") {
    BinnedKdeOptions binned;
    binned.p = config.p;
    binned.bandwidth_scale = config.bandwidth_scale;
    binned.kernel = config.kernel;
    binned.bandwidth_rule = config.bandwidth_rule;
    binned.seed = config.seed;
    classifier = std::make_unique<BinnedKdeClassifier>(binned);
  } else if (options.algorithm == "knn") {
    KnnOptions knn;
    knn.p = config.p;
    knn.k = options.k;
    knn.leaf_size = config.leaf_size;
    knn.index_backend = config.index_backend;
    knn.seed = config.seed;
    classifier = std::make_unique<KnnClassifier>(knn);
  } else {
    Errorf error;
    error << "unknown algorithm: " << options.algorithm << " (available:";
    for (const std::string& name : KnownAlgorithms()) error << " " << name;
    error << ")";
    return error;
  }
  classifier->SetNumThreads(config.num_threads);
  return classifier;
}

Result<std::unique_ptr<DensityClassifier>> Train(const Dataset& data,
                                                 const TrainOptions& options) {
  auto classifier = NewClassifier(options);
  if (!classifier.ok()) return classifier;
  if (data.size() < 2) {
    return Errorf() << "training needs at least 2 rows, got " << data.size();
  }
  classifier.value()->Train(data);
  return classifier;
}

Result<std::unique_ptr<DensityClassifier>> LoadModel(const std::string& path) {
  std::string error;
  std::unique_ptr<DensityClassifier> classifier = LoadAnyModel(path, &error);
  if (classifier == nullptr) return Status::Error(error);
  return classifier;
}

Status SaveModel(const std::string& path, const DensityClassifier& classifier,
                 const Dataset& training_data, bool include_densities) {
  std::string error;
  if (!tkdc::SaveModel(path, classifier, training_data, include_densities,
                       &error)) {
    return Status::Error(error);
  }
  return Status::Ok();
}

Status SaveModel(const std::string& path, const DensityClassifier& classifier,
                 const Dataset& training_data, const SaveOptions& options) {
  return SaveModel(path, classifier, training_data,
                   options.include_densities);
}

Result<std::unique_ptr<MultiClassClassifier>> TrainMultiClass(
    const Dataset& data, const std::vector<std::string>& row_labels,
    const TkdcConfig& config, std::vector<double> priors) {
  const Status config_status = config.Validate();
  if (!config_status.ok()) {
    return Errorf() << "invalid config: " << config_status.message();
  }
  auto classifier = std::make_unique<MultiClassClassifier>(config);
  Status status = classifier->Train(data, row_labels, std::move(priors));
  if (!status.ok()) return status;
  return classifier;
}

Status SaveMultiClassModel(const std::string& path,
                           const MultiClassClassifier& classifier,
                           bool include_densities) {
  std::string error;
  if (!tkdc::SaveMultiClassModel(path, classifier, include_densities,
                                 &error)) {
    return Status::Error(error);
  }
  return Status::Ok();
}

Status SaveMultiClassModel(const std::string& path,
                           const MultiClassClassifier& classifier,
                           const SaveOptions& options) {
  return SaveMultiClassModel(path, classifier, options.include_densities);
}

Result<std::unique_ptr<MultiClassClassifier>> LoadMultiClassModel(
    const std::string& path) {
  std::string error;
  std::unique_ptr<MultiClassClassifier> classifier =
      tkdc::LoadMultiClassModel(path, &error);
  if (classifier == nullptr) return Status::Error(error);
  return classifier;
}

Result<ModelKind> ProbeModel(const std::string& path) {
  std::string error;
  const ModelKind kind = ProbeModelKind(path, &error);
  if (kind == ModelKind::kInvalid) return Status::Error(error);
  return kind;
}

std::string DescribeMultiClass(const MultiClassClassifier& classifier) {
  std::ostringstream out;
  out << "  classes:         " << classifier.num_classes() << "\n"
      << "  dimensions:      " << classifier.dims() << "\n";
  if (const auto backend = classifier.index_backend()) {
    out << "  index backend:   " << IndexBackendName(*backend) << "\n";
  }
  out << "  p:               " << classifier.config().p << "\n"
      << "  epsilon:         " << classifier.config().epsilon << "\n"
      << "  error budget:    "
      << classifier.config().ResolveBudget().Summary() << "\n";
  for (size_t c = 0; c < classifier.num_classes(); ++c) {
    const TkdcClassifier& part = classifier.class_part(c);
    const CoresetInfo& coreset = part.coreset_info();
    out << "  class " << classifier.class_labels()[c] << ": prior "
        << classifier.priors()[c] << ", " << part.training_size()
        << " training points";
    if (coreset.enabled) {
      out << " (coreset of " << coreset.original_size << ")";
    }
    out << "\n";
  }
  return out.str();
}

size_t ModelHandle::dims() const {
  if (single_ != nullptr) return single_->dims();
  if (multi_ != nullptr) return multi_->dims();
  return 0;
}

std::string ModelHandle::algorithm() const {
  if (single_ != nullptr) return single_->name();
  if (multi_ != nullptr) return "tkdc-mc";
  return "";
}

std::string ModelHandle::Describe() const {
  if (single_ != nullptr) return api::Describe(*single_);
  if (multi_ != nullptr) return DescribeMultiClass(*multi_);
  return "";
}

Status ModelHandle::SaveTo(const std::string& path,
                           const SaveOptions& options) const {
  if (multi_ != nullptr) return SaveMultiClassModel(path, *multi_, options);
  if (single_ == nullptr) return Errorf() << "empty model handle";
  Dataset data(single_->dims());
  if (!single_->ExportTrainingData(&data)) {
    return Errorf() << single_->name()
                    << " models cannot re-export training rows; save with "
                       "SaveModel and the original dataset";
  }
  return SaveModel(path, *single_, data, options);
}

void ModelHandle::SetNumThreads(size_t num_threads) {
  if (single_ != nullptr) single_->SetNumThreads(num_threads);
  if (multi_ != nullptr) multi_->SetNumThreads(num_threads);
}

void ModelHandle::AttachMetrics(MetricsRegistry* registry) {
  if (single_ != nullptr) single_->AttachMetrics(registry);
  if (multi_ != nullptr) multi_->AttachMetrics(registry);
}

Result<ModelHandle> LoadAny(const std::string& path) {
  auto kind = ProbeModel(path);
  if (!kind.ok()) return kind.status();
  if (kind.value() == ModelKind::kMultiClass) {
    auto loaded = LoadMultiClassModel(path);
    if (!loaded.ok()) return loaded.status();
    return ModelHandle(loaded.take());
  }
  auto loaded = LoadModel(path);
  if (!loaded.ok()) return loaded.status();
  return ModelHandle(loaded.take());
}

Result<TrainOptions> RecoverTrainOptions(const DensityClassifier& classifier) {
  TrainOptions options;
  // Nocut derives from TkdcClassifier, so it must be matched first.
  if (const auto* nocut = dynamic_cast<const NocutClassifier*>(&classifier)) {
    options.algorithm = "nocut";
    options.config = nocut->config();
  } else if (const auto* tkdc_classifier =
                 dynamic_cast<const TkdcClassifier*>(&classifier)) {
    options.algorithm = "tkdc";
    options.config = tkdc_classifier->config();
  } else if (const auto* rkde =
                 dynamic_cast<const RkdeClassifier*>(&classifier)) {
    options.algorithm = "rkde";
    options.config = rkde->options().base;
  } else if (const auto* simple =
                 dynamic_cast<const SimpleKdeClassifier*>(&classifier)) {
    options.algorithm = "simple";
    options.config.p = simple->options().p;
    options.config.bandwidth_scale = simple->options().bandwidth_scale;
    options.config.kernel = simple->options().kernel;
    options.config.bandwidth_rule = simple->options().bandwidth_rule;
    options.config.seed = simple->options().seed;
  } else if (const auto* binned =
                 dynamic_cast<const BinnedKdeClassifier*>(&classifier)) {
    options.algorithm = "binned";
    options.config.p = binned->options().p;
    options.config.bandwidth_scale = binned->options().bandwidth_scale;
    options.config.kernel = binned->options().kernel;
    options.config.bandwidth_rule = binned->options().bandwidth_rule;
    options.config.seed = binned->options().seed;
  } else if (const auto* knn = dynamic_cast<const KnnClassifier*>(&classifier)) {
    options.algorithm = "knn";
    options.k = knn->options().k;
    options.config.p = knn->options().p;
    options.config.leaf_size = knn->options().leaf_size;
    options.config.index_backend = knn->options().index_backend;
    options.config.seed = knn->options().seed;
  } else {
    return Errorf() << "cannot recover train options for classifier type "
                    << classifier.name();
  }
  options.config.num_threads = classifier.num_threads();
  return options;
}

std::string Describe(const DensityClassifier& classifier) {
  std::ostringstream out;
  out << "  dimensions:      " << classifier.dims() << "\n"
      << "  threshold t(p):  " << classifier.threshold() << "\n"
      << "  streaming:       "
      << (classifier.supports_overlay() ? "overlay-capable" : "static only")
      << "\n";
  if (const auto backend = classifier.index_backend()) {
    out << "  index backend:   " << IndexBackendName(*backend) << "\n";
  }
  if (const auto* tkdc_classifier =
          dynamic_cast<const TkdcClassifier*>(&classifier)) {
    const TkdcConfig& config = tkdc_classifier->config();
    const CoresetInfo& coreset = tkdc_classifier->coreset_info();
    const size_t points = tkdc_classifier->tree().size();
    out << "  training points: " << points << "\n"
        << "  p:               " << config.p << "\n"
        << "  epsilon:         " << config.epsilon << "\n"
        << "  error budget:    " << tkdc_classifier->error_budget().Summary()
        << "\n";
    if (coreset.enabled) {
      out << "  coreset:         " << points << " of " << coreset.original_size
          << " points (" << coreset.CompressionRatio(points) << "x, "
          << coreset.halvings << " halvings, est err "
          << coreset.achieved_error << ")\n";
    } else {
      out << "  coreset:         disabled (full training set)\n";
    }
    out << "  threshold bound: [" << tkdc_classifier->threshold_lower() << ", "
        << tkdc_classifier->threshold_upper() << "]\n"
        << "  optimizations:   " << config.OptimizationSummary() << "\n"
        << "  cached Dx:       "
        << (tkdc_classifier->training_densities().empty() ? "no" : "yes")
        << "\n";
  }
  return out.str();
}

}  // namespace tkdc::api
