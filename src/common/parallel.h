#ifndef TKDC_COMMON_PARALLEL_H_
#define TKDC_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tkdc {

/// std::thread::hardware_concurrency() clamped to at least 1 (the standard
/// allows it to return 0 when the count is unknowable).
size_t HardwareConcurrency();

/// Fixed-size fork/join worker pool for data-parallel loops.
///
/// Design constraints, in priority order:
///   1. *Determinism.* ParallelFor splits [0, total) into contiguous chunks
///      and assigns chunk c to slot c % num_threads(), always. The set of
///      indices a slot processes — and the order it processes them in —
///      depends only on (total, min_chunk, num_threads()), never on thread
///      scheduling. Callers that keep per-slot state (evaluators, counters)
///      therefore see reproducible per-slot streams, and any result written
///      by index is bit-identical to a serial run.
///   2. *No work stealing.* Stealing would break (1); the chunk count is
///      oversubscribed (several chunks per slot, round-robin) so moderately
///      skewed workloads still balance.
///   3. *Zero overhead at num_threads == 1.* A pool of one slot spawns no
///      worker threads and ParallelFor degenerates to an inline loop with no
///      locking — the exact legacy serial path.
///
/// The calling thread participates as slot 0, so a pool of T slots owns
/// T - 1 worker threads. ParallelFor is fork/join and not reentrant: one
/// loop at a time per pool (nested or concurrent calls from multiple
/// threads are programmer error).
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` slots (0 means hardware
  /// concurrency). Spawns num_threads - 1 workers, parked until work
  /// arrives.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_slots_; }

  /// Runs `body(slot, begin, end)` over a chunked partition of [0, total).
  /// `slot` is in [0, num_threads()); each slot's chunks are disjoint and
  /// processed in ascending order. `min_chunk` is the smallest chunk the
  /// split will produce (amortizes per-chunk dispatch for cheap bodies).
  /// Blocks until every chunk has run.
  void ParallelFor(size_t total, size_t min_chunk,
                   const std::function<void(size_t slot, size_t begin,
                                            size_t end)>& body);

 private:
  void WorkerLoop(size_t slot);

  /// Runs slot `slot`'s stripe of the current job: chunks slot, slot + T,
  /// slot + 2T, ...
  void RunSlot(size_t slot) const;

  size_t num_slots_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;     // Bumped per ParallelFor; wakes workers.
  size_t remaining_ = 0;   // Workers still running the current epoch.
  bool shutdown_ = false;

  // Current job, valid while remaining_ > 0 or the caller is inside
  // ParallelFor.
  size_t job_total_ = 0;
  size_t job_chunk_ = 1;
  size_t job_num_chunks_ = 0;
  const std::function<void(size_t, size_t, size_t)>* job_body_ = nullptr;
};

/// Serial-fallback convenience: `pool == nullptr` runs the whole range
/// inline as slot 0 (no pool required for the num_threads == 1 path).
void ParallelFor(ThreadPool* pool, size_t total, size_t min_chunk,
                 const std::function<void(size_t slot, size_t begin,
                                          size_t end)>& body);

}  // namespace tkdc

#endif  // TKDC_COMMON_PARALLEL_H_
