#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace tkdc {

double Mean(const std::vector<double>& values) {
  TKDC_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  TKDC_CHECK(values.size() >= 2);
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) {
    const double delta = v - mean;
    sum_sq += delta * delta;
  }
  return sum_sq / static_cast<double>(values.size() - 1);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

size_t QuantileIndex(size_t n, double p) {
  TKDC_CHECK(n > 0);
  TKDC_CHECK(p >= 0.0 && p <= 1.0);
  double idx = std::floor(static_cast<double>(n) * p);
  if (idx < 0.0) idx = 0.0;
  if (idx > static_cast<double>(n - 1)) idx = static_cast<double>(n - 1);
  return static_cast<size_t>(idx);
}

double Quantile(std::vector<double> values, double p) {
  TKDC_CHECK(!values.empty());
  const size_t k = QuantileIndex(values.size(), p);
  std::nth_element(values.begin(), values.begin() + k, values.end());
  return values[k];
}

double QuantileSorted(const std::vector<double>& sorted, double p) {
  TKDC_CHECK(!sorted.empty());
  return sorted[QuantileIndex(sorted.size(), p)];
}

void ConfusionMatrix::Add(bool actual, bool predicted) {
  if (actual && predicted) {
    ++true_positives;
  } else if (!actual && predicted) {
    ++false_positives;
  } else if (actual && !predicted) {
    ++false_negatives;
  } else {
    ++true_negatives;
  }
}

double ConfusionMatrix::Precision() const {
  const size_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ConfusionMatrix::Recall() const {
  const size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ConfusionMatrix::F1() const {
  const double precision = Precision();
  const double recall = Recall();
  const double denom = precision + recall;
  return denom == 0.0 ? 0.0 : 2.0 * precision * recall / denom;
}

double ConfusionMatrix::Accuracy() const {
  const size_t total = Total();
  return total == 0 ? 0.0
                    : static_cast<double>(true_positives + true_negatives) /
                          static_cast<double>(total);
}

size_t ConfusionMatrix::Total() const {
  return true_positives + false_positives + true_negatives + false_negatives;
}

double F1Score(const std::vector<bool>& actual,
               const std::vector<bool>& predicted) {
  TKDC_CHECK(actual.size() == predicted.size());
  ConfusionMatrix cm;
  for (size_t i = 0; i < actual.size(); ++i) cm.Add(actual[i], predicted[i]);
  return cm.F1();
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  TKDC_CHECK(x.size() == y.size());
  TKDC_CHECK(x.size() >= 2);
  const double mean_x = Mean(x);
  const double mean_y = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace tkdc
