#ifndef TKDC_COMMON_TIMER_H_
#define TKDC_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace tkdc {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer();

  /// Restarts the stopwatch from zero.
  void Restart();

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Items processed per second; returns 0 when elapsed time is 0.
double Throughput(uint64_t items, double elapsed_seconds);

}  // namespace tkdc

#endif  // TKDC_COMMON_TIMER_H_
