#ifndef TKDC_COMMON_SIMD_INTERNAL_H_
#define TKDC_COMMON_SIMD_INTERNAL_H_

#include "common/simd.h"

namespace tkdc {
namespace simd {

/// Backend table providers. Each is defined by its translation unit when
/// the backend is compiled in (simd_avx2.cc / simd_neon.cc); otherwise
/// simd.cc supplies a stub returning null. Internal to the simd layer.
const SimdOps* Avx2SimdOpsImpl();
const SimdOps* NeonSimdOpsImpl();

}  // namespace simd
}  // namespace tkdc

#endif  // TKDC_COMMON_SIMD_INTERNAL_H_
