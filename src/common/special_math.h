#ifndef TKDC_COMMON_SPECIAL_MATH_H_
#define TKDC_COMMON_SPECIAL_MATH_H_

namespace tkdc {

/// Standard normal cumulative distribution function Phi(x).
double NormalCdf(double x);

/// Standard normal probability density function phi(x).
double NormalPdf(double x);

/// Quantile function (inverse CDF) of the standard normal distribution:
/// returns z such that Phi(z) = p, for p in (0, 1). This is the z_p constant
/// used by the paper's order-statistic confidence bounds (Eq. 11).
///
/// Implementation: Acklam's rational approximation refined with one Halley
/// step, giving ~1e-15 relative accuracy over (0, 1).
double NormalQuantile(double p);

/// Inverse error function: erfinv(erf(x)) == x for finite x.
double ErfInv(double x);

/// log(exp(a) + exp(b)) computed without overflow.
double LogSumExp(double a, double b);

/// Regularized lower incomplete gamma P(a, x) via series / continued
/// fraction. Used by chi-square goodness-of-fit checks in the test suite.
double RegularizedGammaP(double a, double x);

/// Chi-square CDF with k degrees of freedom evaluated at x.
double ChiSquareCdf(double x, double k);

/// Binomial coefficient n choose k as a double (exact for small arguments,
/// via lgamma otherwise).
double BinomialCoefficient(int n, int k);

/// Exact binomial tail: P(l <= Bin(s, p) <= u) = sum_{i=l..u} C(s,i) p^i
/// (1-p)^(s-i), evaluated stably in log space. This is the paper's Eq. 10.
double BinomialIntervalProbability(int s, double p, int l, int u);

}  // namespace tkdc

#endif  // TKDC_COMMON_SPECIAL_MATH_H_
