#ifndef TKDC_COMMON_STATS_H_
#define TKDC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace tkdc {

/// Arithmetic mean of `values`. Requires a non-empty input.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (divides by n - 1). Requires n >= 2.
double Variance(const std::vector<double>& values);

/// Unbiased sample standard deviation. Requires n >= 2.
double StdDev(const std::vector<double>& values);

/// The paper's quantile function q_p(S): the floor(n*p)-th order statistic
/// of `values` (clamped to a valid index), i.e. the (n*p)-th smallest
/// element counting from 1. Does not interpolate, matching Section 2.3.
/// Requires a non-empty input; `p` in [0, 1].
double Quantile(std::vector<double> values, double p);

/// Same as Quantile() but assumes `sorted` is already ascending.
double QuantileSorted(const std::vector<double>& sorted, double p);

/// Index of the (n*p) order statistic used by Quantile(): clamp(floor(n*p),
/// 0, n-1) as a 0-based index.
size_t QuantileIndex(size_t n, double p);

/// Binary classification tallies and derived scores.
struct ConfusionMatrix {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t true_negatives = 0;
  size_t false_negatives = 0;

  /// Adds one (actual, predicted) observation.
  void Add(bool actual, bool predicted);

  double Precision() const;
  double Recall() const;
  /// F1 = harmonic mean of precision and recall; 0 when undefined.
  double F1() const;
  double Accuracy() const;
  size_t Total() const;
};

/// F1 score of `predicted` against `actual` where `true` is the positive
/// class. The vectors must have equal length.
double F1Score(const std::vector<bool>& actual,
               const std::vector<bool>& predicted);

/// Pearson correlation coefficient of two equal-length vectors (n >= 2).
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace tkdc

#endif  // TKDC_COMMON_STATS_H_
