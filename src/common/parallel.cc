#include "common/parallel.h"

#include <algorithm>

#include "common/macros.h"

namespace tkdc {
namespace {

// Chunks per slot when oversubscribing: enough that a round-robin static
// assignment balances skewed per-item costs, few enough that per-chunk
// dispatch stays negligible.
constexpr size_t kChunksPerSlot = 8;

}  // namespace

size_t HardwareConcurrency() {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<size_t>(reported);
}

ThreadPool::ThreadPool(size_t num_threads)
    : num_slots_(num_threads == 0 ? HardwareConcurrency() : num_threads) {
  workers_.reserve(num_slots_ - 1);
  for (size_t slot = 1; slot < num_slots_; ++slot) {
    workers_.emplace_back([this, slot] { WorkerLoop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunSlot(size_t slot) const {
  for (size_t c = slot; c < job_num_chunks_; c += num_slots_) {
    const size_t begin = c * job_chunk_;
    const size_t end = std::min(job_total_, begin + job_chunk_);
    (*job_body_)(slot, begin, end);
  }
}

void ThreadPool::WorkerLoop(size_t slot) {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    // Job fields are stable for the whole epoch: the caller blocks in
    // ParallelFor until remaining_ drops to zero.
    RunSlot(slot);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(
    size_t total, size_t min_chunk,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (total == 0) return;
  if (min_chunk == 0) min_chunk = 1;
  // ceil(total / (slots * kChunksPerSlot)) target, floored at min_chunk.
  const size_t target_chunks = num_slots_ * kChunksPerSlot;
  const size_t chunk =
      std::max(min_chunk, (total + target_chunks - 1) / target_chunks);
  const size_t num_chunks = (total + chunk - 1) / chunk;

  if (num_slots_ == 1 || num_chunks == 1) {
    // Inline serial path: no locking, no wakeups.
    job_total_ = total;
    job_chunk_ = chunk;
    job_num_chunks_ = num_chunks;
    job_body_ = &body;
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t begin = c * chunk;
      body(0, begin, std::min(total, begin + chunk));
    }
    job_body_ = nullptr;
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    TKDC_CHECK_MSG(remaining_ == 0 && job_body_ == nullptr,
                   "ThreadPool::ParallelFor is not reentrant");
    job_total_ = total;
    job_chunk_ = chunk;
    job_num_chunks_ = num_chunks;
    job_body_ = &body;
    remaining_ = workers_.size();
    ++epoch_;
  }
  start_cv_.notify_all();
  RunSlot(0);  // The caller is slot 0.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    job_body_ = nullptr;
  }
}

void ParallelFor(ThreadPool* pool, size_t total, size_t min_chunk,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  if (pool == nullptr) {
    if (total > 0) body(0, 0, total);
    return;
  }
  pool->ParallelFor(total, min_chunk, body);
}

}  // namespace tkdc
