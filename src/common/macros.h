#ifndef TKDC_COMMON_MACROS_H_
#define TKDC_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// CHECK-style invariant macros. A failed CHECK indicates a programmer error
/// (broken invariant, misuse of an API); it prints the failing condition with
/// its location and aborts. These are always on. DCHECK compiles away in
/// NDEBUG builds and is meant for hot paths.
#define TKDC_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", #cond, __FILE__,   \
                   __LINE__);                                                \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define TKDC_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed: %s (%s) at %s:%d\n", #cond, msg,   \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define TKDC_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define TKDC_DCHECK(cond) TKDC_CHECK(cond)
#endif

#endif  // TKDC_COMMON_MACROS_H_
