#include "common/order_stats.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/special_math.h"

namespace tkdc {
namespace {

int ClampRank(double r, int s) {
  if (r < 1.0) return 1;
  if (r > static_cast<double>(s)) return s;
  return static_cast<int>(r);
}

}  // namespace

double QuantileCiCoverage(int s, double p, int lower, int upper) {
  TKDC_CHECK(s >= 1);
  TKDC_CHECK(lower >= 1 && upper >= lower && upper <= s);
  // Eq. 10: P(d_(l) <= d_(np) <= d_(u)) = sum_{i=l..u} C(s,i) p^i (1-p)^(s-i).
  return BinomialIntervalProbability(s, p, lower, upper);
}

QuantileCi NormalApproxQuantileCi(int s, double p, double delta) {
  TKDC_CHECK(s >= 1);
  TKDC_CHECK(p > 0.0 && p < 1.0);
  TKDC_CHECK(delta > 0.0 && delta < 1.0);
  const double z = NormalQuantile(1.0 - delta / 2.0);
  const double center = static_cast<double>(s) * p;
  const double spread = z * std::sqrt(static_cast<double>(s) * p * (1.0 - p));
  QuantileCi ci;
  ci.lower = ClampRank(std::floor(center - spread), s);
  ci.upper = ClampRank(std::ceil(center + spread), s);
  ci.coverage = QuantileCiCoverage(s, p, ci.lower, ci.upper);
  return ci;
}

QuantileCi ExactBinomialQuantileCi(int s, double p, double delta) {
  TKDC_CHECK(s >= 1);
  TKDC_CHECK(p > 0.0 && p < 1.0);
  TKDC_CHECK(delta > 0.0 && delta < 1.0);
  const double target = 1.0 - delta;
  const int center = std::clamp(
      static_cast<int>(std::round(static_cast<double>(s) * p)), 1, s);
  int lower = center;
  int upper = center;
  double coverage = QuantileCiCoverage(s, p, lower, upper);
  // Greedy symmetric expansion: grow the side that adds more coverage until
  // the target is met or the interval spans the whole sample.
  while (coverage < target && (lower > 1 || upper < s)) {
    const double gain_low =
        lower > 1 ? BinomialIntervalProbability(s, p, lower - 1, lower - 1)
                  : -1.0;
    const double gain_high =
        upper < s ? BinomialIntervalProbability(s, p, upper + 1, upper + 1)
                  : -1.0;
    if (gain_low >= gain_high) {
      --lower;
    } else {
      ++upper;
    }
    coverage = QuantileCiCoverage(s, p, lower, upper);
  }
  QuantileCi ci;
  ci.lower = lower;
  ci.upper = upper;
  ci.coverage = coverage;
  return ci;
}

}  // namespace tkdc
