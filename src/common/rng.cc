#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/macros.h"

namespace tkdc {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256++ by Blackman & Vigna (public domain reference algorithm).
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  TKDC_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t bound) {
  TKDC_DCHECK(bound > 0);
  // Rejection sampling on the top of the range to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] so the log is finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  TKDC_CHECK(k <= n);
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher-Yates: after k swaps the first k entries are a uniform
  // sample without replacement.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBounded(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace tkdc
