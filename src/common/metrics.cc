#include "common/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace tkdc {

size_t MetricsRegistry::FindName(const std::vector<std::string>& names,
                                 const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  return names.size();
}

size_t MetricsRegistry::AddCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t existing = FindName(counter_names_, name);
  if (existing < counter_names_.size()) return existing;
  counter_names_.push_back(name);
  return counter_names_.size() - 1;
}

size_t MetricsRegistry::AddHistogram(const std::string& name,
                                     std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t existing = FindName(histogram_names_, name);
  if (existing < histogram_names_.size()) {
    TKDC_CHECK_MSG(histogram_bounds_[existing] == upper_bounds,
                   "histogram re-registered with different buckets");
    return existing;
  }
  TKDC_CHECK_MSG(std::is_sorted(upper_bounds.begin(), upper_bounds.end()),
                 "histogram bounds must be increasing");
  histogram_names_.push_back(name);
  histogram_bounds_.push_back(std::move(upper_bounds));
  return histogram_names_.size() - 1;
}

std::unique_ptr<MetricsShard> MetricsRegistry::NewShard() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::make_unique<MetricsShard>(*this);
}

void MetricsRegistry::Absorb(const MetricsShard& shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (totals_ == nullptr) {
    totals_ = std::make_unique<MetricsShard>(*this);
  } else {
    totals_->GrowTo(*this);
  }
  totals_->Merge(shard);
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t id = FindName(counter_names_, name);
  if (id == counter_names_.size() || totals_ == nullptr ||
      id >= totals_->counters_.size()) {
    return 0;
  }
  return totals_->counters_[id];
}

MetricsRegistry::HistogramSnapshot MetricsRegistry::HistogramValue(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snapshot;
  const size_t id = FindName(histogram_names_, name);
  if (id == histogram_names_.size()) return snapshot;
  snapshot.upper_bounds = histogram_bounds_[id];
  snapshot.buckets.assign(snapshot.upper_bounds.size() + 1, 0);
  if (totals_ == nullptr || id >= totals_->histograms_.size()) {
    return snapshot;
  }
  const MetricsShard::HistogramState& state = totals_->histograms_[id];
  snapshot.buckets = state.buckets;
  snapshot.count = state.count;
  snapshot.sum = state.sum;
  snapshot.min = state.min;
  snapshot.max = state.max;
  return snapshot;
}

namespace {

// Doubles that are whole numbers print as integers; everything else keeps
// enough digits to round trip. JSON has no inf/nan, so non-finite values
// (an untouched histogram's min/max) print as 0.
void WriteJsonNumber(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << 0;
    return;
  }
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    out << static_cast<long long>(value);
    return;
  }
  const auto precision = out.precision(17);
  out << value;
  out.precision(precision);
}

}  // namespace

void MetricsRegistry::WriteJson(std::ostream& out, int indent) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string pad(static_cast<size_t>(indent), ' ');
  out << pad << "{\n";
  out << pad << "  \"counters\": {";
  for (size_t i = 0; i < counter_names_.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n"
        << pad << "    \"" << counter_names_[i] << "\": "
        << (totals_ != nullptr && i < totals_->counters_.size()
                ? totals_->counters_[i]
                : 0);
  }
  out << (counter_names_.empty() ? "" : "\n" + pad + "  ") << "},\n";
  out << pad << "  \"histograms\": {";
  for (size_t i = 0; i < histogram_names_.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n" << pad << "    \"" << histogram_names_[i] << "\": {";
    const std::vector<double>& bounds = histogram_bounds_[i];
    MetricsShard::HistogramState empty;
    empty.buckets.assign(bounds.size() + 1, 0);
    const MetricsShard::HistogramState* state =
        totals_ != nullptr && i < totals_->histograms_.size()
            ? &totals_->histograms_[i]
            : &empty;
    out << "\"count\": " << state->count << ", \"sum\": ";
    WriteJsonNumber(out, state->sum);
    out << ", \"min\": ";
    WriteJsonNumber(out, state->count > 0 ? state->min : 0.0);
    out << ", \"max\": ";
    WriteJsonNumber(out, state->count > 0 ? state->max : 0.0);
    out << ", \"buckets\": [";
    for (size_t b = 0; b < state->buckets.size(); ++b) {
      if (b > 0) out << ", ";
      out << "{\"le\": ";
      if (b < bounds.size()) {
        WriteJsonNumber(out, bounds[b]);
      } else {
        out << "\"inf\"";
      }
      out << ", \"count\": " << state->buckets[b] << "}";
    }
    out << "]}";
  }
  out << (histogram_names_.empty() ? "" : "\n" + pad + "  ") << "}\n";
  out << pad << "}";
}

std::vector<double> MetricsRegistry::PowerOfTwoBounds(size_t n) {
  std::vector<double> bounds(n);
  double bound = 1.0;
  for (size_t i = 0; i < n; ++i, bound *= 2.0) bounds[i] = bound;
  return bounds;
}

std::vector<double> MetricsRegistry::DecadeBounds(int lo, int hi) {
  TKDC_CHECK(lo <= hi);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(hi - lo + 1));
  for (int e = lo; e <= hi; ++e) {
    bounds.push_back(std::pow(10.0, static_cast<double>(e)));
  }
  return bounds;
}

MetricsShard::MetricsShard(const MetricsRegistry& registry) {
  counters_.assign(registry.counter_names_.size(), 0);
  bounds_ = registry.histogram_bounds_;
  histograms_.resize(bounds_.size());
  for (size_t i = 0; i < histograms_.size(); ++i) {
    histograms_[i].buckets.assign(bounds_[i].size() + 1, 0);
  }
}

void MetricsShard::GrowTo(const MetricsRegistry& registry) {
  counters_.resize(registry.counter_names_.size(), 0);
  for (size_t i = bounds_.size(); i < registry.histogram_bounds_.size();
       ++i) {
    bounds_.push_back(registry.histogram_bounds_[i]);
    HistogramState state;
    state.buckets.assign(bounds_[i].size() + 1, 0);
    histograms_.push_back(std::move(state));
  }
}

void MetricsShard::Observe(size_t histogram_id, double value) {
  HistogramState& state = histograms_[histogram_id];
  const std::vector<double>& bounds = bounds_[histogram_id];
  size_t bucket = bounds.size();  // Overflow unless a bound admits it.
  for (size_t b = 0; b < bounds.size(); ++b) {
    if (value <= bounds[b]) {
      bucket = b;
      break;
    }
  }
  ++state.buckets[bucket];
  ++state.count;
  state.sum += value;
  state.min = std::min(state.min, value);
  state.max = std::max(state.max, value);
}

void MetricsShard::Merge(const MetricsShard& other) {
  // Ids are append-only, so a shard created before a later registration is
  // a schema prefix of a newer one and folds in by index.
  TKDC_CHECK_MSG(counters_.size() >= other.counters_.size() &&
                     histograms_.size() >= other.histograms_.size(),
                 "merging a newer-schema shard into an older one");
  for (size_t i = 0; i < other.counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  for (size_t i = 0; i < other.histograms_.size(); ++i) {
    HistogramState& mine = histograms_[i];
    const HistogramState& theirs = other.histograms_[i];
    for (size_t b = 0; b < mine.buckets.size(); ++b) {
      mine.buckets[b] += theirs.buckets[b];
    }
    mine.count += theirs.count;
    mine.sum += theirs.sum;
    mine.min = std::min(mine.min, theirs.min);
    mine.max = std::max(mine.max, theirs.max);
  }
}

void MetricsShard::Reset() {
  std::fill(counters_.begin(), counters_.end(), 0);
  for (HistogramState& state : histograms_) {
    std::fill(state.buckets.begin(), state.buckets.end(), 0);
    state.count = 0;
    state.sum = 0.0;
    state.min = std::numeric_limits<double>::infinity();
    state.max = -std::numeric_limits<double>::infinity();
  }
}

}  // namespace tkdc
