#ifndef TKDC_COMMON_ORDER_STATS_H_
#define TKDC_COMMON_ORDER_STATS_H_

#include <cstddef>

namespace tkdc {

/// 1-based order-statistic ranks [lower, upper] of a size-`s` sample that
/// bracket the population p-quantile with the requested confidence.
struct QuantileCi {
  /// 1-based rank of the lower bounding order statistic.
  int lower = 0;
  /// 1-based rank of the upper bounding order statistic.
  int upper = 0;
  /// Probability that the population quantile lies within
  /// [sample(lower), sample(upper)].
  double coverage = 0.0;
};

/// Normal-approximation confidence interval on sample order statistics for
/// the p-quantile (the paper's Eq. 11):
///
///   l = s*p - z * sqrt(s*p*(1-p)),  u = s*p + z * sqrt(s*p*(1-p))
///
/// where z = NormalQuantile(1 - delta/2), matching the paper's worked
/// example (s = 20000, delta = 0.01, p = 0.01 gives ranks 164 and 236).
/// Ranks are clamped to [1, s]. Requires s >= 1, p in (0, 1),
/// delta in (0, 1).
QuantileCi NormalApproxQuantileCi(int s, double p, double delta);

/// Exact binomial confidence interval (the paper's Eq. 10): the narrowest
/// symmetric expansion around rank s*p whose binomial coverage
/// sum_{i=l..u-1} C(s,i) p^i (1-p)^(s-i) reaches 1 - delta. Falls back to
/// [1, s] when no interior interval achieves the coverage.
QuantileCi ExactBinomialQuantileCi(int s, double p, double delta);

/// Coverage probability P(X_(l) <= population p-quantile <= X_(u)) for
/// 1-based ranks l <= u in a sample of size s, computed from the exact
/// binomial tail exactly as the paper's Eq. 10: P(l <= Bin(s, p) <= u).
double QuantileCiCoverage(int s, double p, int lower, int upper);

}  // namespace tkdc

#endif  // TKDC_COMMON_ORDER_STATS_H_
