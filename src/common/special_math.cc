#include "common/special_math.h"

#include <cmath>
#include <limits>
#include <numbers>

#include "common/macros.h"

namespace tkdc {

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double NormalPdf(double x) {
  static const double kInvSqrt2Pi = 1.0 / std::sqrt(2.0 * std::numbers::pi);
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double NormalQuantile(double p) {
  TKDC_CHECK(p > 0.0 && p < 1.0);
  // Acklam's rational approximation (relative error < 1.15e-9), then one
  // Halley refinement step using the exact CDF to reach ~1e-15.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    double q = p - 0.5;
    double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // Halley's method: x <- x - e / (pdf + e * x / 2) where e = Phi(x) - p.
  double e = NormalCdf(x) - p;
  double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double ErfInv(double x) {
  TKDC_CHECK(x > -1.0 && x < 1.0);
  // erfinv(x) = Phi^-1((x+1)/2) / sqrt(2).
  return NormalQuantile(0.5 * (x + 1.0)) / std::numbers::sqrt2;
}

double LogSumExp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  double m = a > b ? a : b;
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

namespace {

// Series expansion of P(a, x), valid for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for Q(a, x) = 1 - P(a, x), valid for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-16) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  TKDC_CHECK(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double ChiSquareCdf(double x, double k) {
  TKDC_CHECK(k > 0.0);
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(0.5 * k, 0.5 * x);
}

double BinomialCoefficient(int n, int k) {
  TKDC_CHECK(n >= 0 && k >= 0 && k <= n);
  return std::exp(std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
                  std::lgamma(n - k + 1.0));
}

double BinomialIntervalProbability(int s, double p, int l, int u) {
  TKDC_CHECK(s >= 0);
  TKDC_CHECK(p >= 0.0 && p <= 1.0);
  if (l < 0) l = 0;
  if (u > s) u = s;
  if (l > u) return 0.0;
  if (p == 0.0) return l == 0 ? 1.0 : 0.0;
  if (p == 1.0) return u == s ? 1.0 : 0.0;
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double total = -std::numeric_limits<double>::infinity();
  for (int i = l; i <= u; ++i) {
    double log_term = std::lgamma(s + 1.0) - std::lgamma(i + 1.0) -
                      std::lgamma(s - i + 1.0) + i * log_p + (s - i) * log_q;
    total = LogSumExp(total, log_term);
  }
  double result = std::exp(total);
  return result > 1.0 ? 1.0 : result;
}

}  // namespace tkdc
