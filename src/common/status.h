#ifndef TKDC_COMMON_STATUS_H_
#define TKDC_COMMON_STATUS_H_

#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "common/macros.h"

namespace tkdc {

/// Recoverable-error type for operations fed by *user-supplied* input —
/// request payloads, CLI flags, config files, model files, CSV data. The
/// repo-wide error policy (DESIGN.md § "Error handling"):
///
///   - TKDC_CHECK / TKDC_DCHECK stay for *internal invariants* and API
///     misuse by library code: a failure is a programmer error and aborts.
///   - Anything a user (or a network peer) can get wrong returns a Status
///     or Result<T> instead, so a malformed request can never take down a
///     long-lived process (tkdc_serve's daemon contract depends on this).
///
/// A default-constructed Status is OK; errors carry a human-readable
/// message that callers propagate or render to the client verbatim.
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status status;
    status.ok_ = false;
    status.message_ = std::move(message);
    return status;
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// Builds an error Status from stream-formatted parts:
///   return Errorf() << "unknown kernel: " << name;
/// (implicitly converts to Status and to any Result<T>).
class Errorf {
 public:
  template <typename T>
  Errorf& operator<<(const T& part) {
    stream_ << part;
    return *this;
  }

  operator Status() const { return Status::Error(stream_.str()); }

 private:
  std::ostringstream stream_;
};

/// Value-or-error return ("expected"-style, minimal): holds either a T or
/// an error Status. Construction is implicit from both sides so functions
/// can `return value;` and `return Errorf() << "...";` symmetrically.
/// Accessing value() on an error is a programmer error (CHECK).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    TKDC_CHECK_MSG(!status_.ok(), "Result built from OK status without value");
  }
  Result(const Errorf& error) : Result(static_cast<Status>(error)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const std::string& message() const { return status_.message(); }

  const T& value() const {
    TKDC_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T& value() {
    TKDC_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }

  /// Moves the value out (for move-only payloads like unique_ptr).
  T take() {
    TKDC_CHECK_MSG(ok(), status_.message().c_str());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tkdc

#endif  // TKDC_COMMON_STATUS_H_
