// NEON implementations of the simd distance/bound primitives, processing
// the 4-lane logical block as two float64x2_t halves. Only separate
// vmulq/vaddq intrinsics are used (no vfmaq), and the TUs are compiled
// with -ffp-contract=off, so every operation rounds exactly like the
// scalar backend's — see the determinism contract in common/simd.h.
#include "common/simd_internal.h"

#if defined(TKDC_SIMD_NEON)

#include <arm_neon.h>

#include <limits>

namespace tkdc {
namespace simd {
namespace {

void SoaScaledSquaredDistancesNeon(const double* block, size_t padded,
                                   size_t count, size_t dims, const double* x,
                                   const double* inv_bw, double* out) {
  (void)count;
  for (size_t g = 0; g < padded; g += kSimdBlockWidth) {
    float64x2_t z01 = vdupq_n_f64(0.0);
    float64x2_t z23 = vdupq_n_f64(0.0);
    for (size_t j = 0; j < dims; ++j) {
      const double* row = block + j * padded + g;
      const float64x2_t xj = vdupq_n_f64(x[j]);
      const float64x2_t bj = vdupq_n_f64(inv_bw[j]);
      const float64x2_t u01 = vmulq_f64(vsubq_f64(xj, vld1q_f64(row)), bj);
      const float64x2_t u23 = vmulq_f64(vsubq_f64(xj, vld1q_f64(row + 2)), bj);
      z01 = vaddq_f64(z01, vmulq_f64(u01, u01));
      z23 = vaddq_f64(z23, vmulq_f64(u23, u23));
    }
    vst1q_f64(out + g, z01);
    vst1q_f64(out + g + 2, z23);
  }
}

// Per-axis gap pair for one box, lanes {min_gap, max_gap}.
inline float64x2_t BoxGapPair(double lo, double hi, float64x2_t xj,
                              float64x2_t zero) {
  const float64x2_t vlo = vdupq_n_f64(lo);
  const float64x2_t vhi = vdupq_n_f64(hi);
  const float64x2_t gap_min = vmaxq_f64(
      zero, vmaxq_f64(vsubq_f64(vlo, xj), vsubq_f64(xj, vhi)));
  const float64x2_t gap_max =
      vmaxq_f64(vsubq_f64(xj, vlo), vsubq_f64(vhi, xj));
  return vcombine_f64(vget_low_f64(gap_min), vget_high_f64(gap_max));
}

void BoxPairScaledSquaredDistanceBoundsNeon(
    const double* lo0, const double* hi0, const double* lo1,
    const double* hi1, const double* x, const double* inv_bw, size_t dims,
    double out[4]) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  float64x2_t acc0 = zero;  // {min0, max0}
  float64x2_t acc1 = zero;  // {min1, max1}
  for (size_t j = 0; j < dims; ++j) {
    const float64x2_t xj = vdupq_n_f64(x[j]);
    const float64x2_t bj = vdupq_n_f64(inv_bw[j]);
    const float64x2_t u0 = vmulq_f64(BoxGapPair(lo0[j], hi0[j], xj, zero), bj);
    const float64x2_t u1 = vmulq_f64(BoxGapPair(lo1[j], hi1[j], xj, zero), bj);
    acc0 = vaddq_f64(acc0, vmulq_f64(u0, u0));
    acc1 = vaddq_f64(acc1, vmulq_f64(u1, u1));
  }
  vst1q_f64(out, acc0);
  vst1q_f64(out + 2, acc1);
}

void CentroidPairScaledSquaredDistancesNeon(
    const double* c0, const double* c1, const double* x,
    const double* inv_bw, const double* inv_scale, size_t dims,
    double dist_sq[2], double* factor_hi, double* factor_lo) {
  float64x2_t acc = vdupq_n_f64(0.0);
  float64x2_t f_hi = vdupq_n_f64(0.0);
  float64x2_t f_lo = vdupq_n_f64(std::numeric_limits<double>::infinity());
  for (size_t j = 0; j < dims; ++j) {
    const float64x2_t xj = vdupq_n_f64(x[j]);
    const float64x2_t bj = vdupq_n_f64(inv_bw[j]);
    const float64x2_t c = vsetq_lane_f64(c1[j], vdupq_n_f64(c0[j]), 1);
    const float64x2_t u = vmulq_f64(vsubq_f64(xj, c), bj);
    acc = vaddq_f64(acc, vmulq_f64(u, u));
    const float64x2_t f = vmulq_f64(bj, vdupq_n_f64(inv_scale[j]));
    f_hi = vmaxq_f64(f_hi, f);
    f_lo = vminq_f64(f_lo, f);
  }
  vst1q_f64(dist_sq, acc);
  *factor_hi = vgetq_lane_f64(f_hi, 0);
  *factor_lo = vgetq_lane_f64(f_lo, 0);
}

constexpr SimdOps kNeonOps = {
    &SoaScaledSquaredDistancesNeon,
    &BoxPairScaledSquaredDistanceBoundsNeon,
    &CentroidPairScaledSquaredDistancesNeon,
};

}  // namespace

const SimdOps* NeonSimdOpsImpl() { return &kNeonOps; }

}  // namespace simd
}  // namespace tkdc

#endif  // TKDC_SIMD_NEON
