#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/simd_internal.h"

namespace tkdc {
namespace simd {

#if !defined(TKDC_SIMD_AVX2)
const SimdOps* Avx2SimdOpsImpl() { return nullptr; }
#endif
#if !defined(TKDC_SIMD_NEON)
const SimdOps* NeonSimdOpsImpl() { return nullptr; }
#endif

namespace {

// --- Scalar backend ------------------------------------------------------
//
// The canonical implementations of the determinism contract: every SIMD
// backend must reproduce these bit-for-bit (the inner `lane` loops map one
// iteration per vector lane). This TU is compiled with -ffp-contract=off
// so the mul+add sequences round exactly as the vector backends' separate
// multiply and add instructions do.

void SoaScaledSquaredDistancesScalar(const double* block, size_t padded,
                                     size_t count, size_t dims,
                                     const double* x, const double* inv_bw,
                                     double* out) {
  (void)count;  // Padding lanes compute +inf distances; callers ignore them.
  for (size_t g = 0; g < padded; g += kSimdBlockWidth) {
    double z[kSimdBlockWidth] = {0.0, 0.0, 0.0, 0.0};
    for (size_t j = 0; j < dims; ++j) {
      const double* row = block + j * padded + g;
      const double xj = x[j];
      const double bj = inv_bw[j];
      for (size_t lane = 0; lane < kSimdBlockWidth; ++lane) {
        const double u = (xj - row[lane]) * bj;
        z[lane] += u * u;
      }
    }
    for (size_t lane = 0; lane < kSimdBlockWidth; ++lane) {
      out[g + lane] = z[lane];
    }
  }
}

void BoxPairScaledSquaredDistanceBoundsScalar(
    const double* lo0, const double* hi0, const double* lo1,
    const double* hi1, const double* x, const double* inv_bw, size_t dims,
    double out[4]) {
  // One bound per accumulator, each summed sequentially over dimensions —
  // bitwise equal to BoundingBox::Min/MaxScaledSquaredDistance per box.
  double z_min0 = 0.0, z_max0 = 0.0, z_min1 = 0.0, z_max1 = 0.0;
  for (size_t j = 0; j < dims; ++j) {
    const double xj = x[j];
    const double bj = inv_bw[j];
    const double gap_min0 =
        xj < lo0[j] ? lo0[j] - xj : (xj > hi0[j] ? xj - hi0[j] : 0.0);
    const double gap_max0 =
        xj - lo0[j] > hi0[j] - xj ? xj - lo0[j] : hi0[j] - xj;
    const double gap_min1 =
        xj < lo1[j] ? lo1[j] - xj : (xj > hi1[j] ? xj - hi1[j] : 0.0);
    const double gap_max1 =
        xj - lo1[j] > hi1[j] - xj ? xj - lo1[j] : hi1[j] - xj;
    const double u0 = gap_min0 * bj;
    const double v0 = gap_max0 * bj;
    const double u1 = gap_min1 * bj;
    const double v1 = gap_max1 * bj;
    z_min0 += u0 * u0;
    z_max0 += v0 * v0;
    z_min1 += u1 * u1;
    z_max1 += v1 * v1;
  }
  out[0] = z_min0;
  out[1] = z_max0;
  out[2] = z_min1;
  out[3] = z_max1;
}

void CentroidPairScaledSquaredDistancesScalar(
    const double* c0, const double* c1, const double* x,
    const double* inv_bw, const double* inv_scale, size_t dims,
    double dist_sq[2], double* factor_hi, double* factor_lo) {
  double d0 = 0.0;
  double d1 = 0.0;
  double f_hi = 0.0;
  double f_lo = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < dims; ++j) {
    const double xj = x[j];
    const double bj = inv_bw[j];
    const double u0 = (xj - c0[j]) * bj;
    const double u1 = (xj - c1[j]) * bj;
    d0 += u0 * u0;
    d1 += u1 * u1;
    const double f = bj * inv_scale[j];
    if (f > f_hi) f_hi = f;
    if (f < f_lo) f_lo = f;
  }
  dist_sq[0] = d0;
  dist_sq[1] = d1;
  *factor_hi = f_hi;
  *factor_lo = f_lo;
}

constexpr SimdOps kScalarOps = {
    &SoaScaledSquaredDistancesScalar,
    &BoxPairScaledSquaredDistanceBoundsScalar,
    &CentroidPairScaledSquaredDistancesScalar,
};

// --- Backend resolution --------------------------------------------------

bool CpuSupports(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kScalar:
      return true;
    case SimdBackend::kAvx2:
#if defined(__x86_64__) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdBackend::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is baseline on AArch64.
#else
      return false;
#endif
  }
  return false;
}

SimdBackend ResolveBackend() {
  const char* env = std::getenv("TKDC_SIMD");
  if (env != nullptr && env[0] != '\0') {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0) {
      return SimdBackend::kScalar;
    }
    if (std::strcmp(env, "avx2") == 0 &&
        SimdBackendUsable(SimdBackend::kAvx2)) {
      return SimdBackend::kAvx2;
    }
    if (std::strcmp(env, "neon") == 0 &&
        SimdBackendUsable(SimdBackend::kNeon)) {
      return SimdBackend::kNeon;
    }
    return SimdBackend::kScalar;  // Unknown or unusable request: fall back.
  }
  if (SimdBackendUsable(SimdBackend::kAvx2)) return SimdBackend::kAvx2;
  if (SimdBackendUsable(SimdBackend::kNeon)) return SimdBackend::kNeon;
  return SimdBackend::kScalar;
}

std::atomic<int>& ActiveBackendSlot() {
  static std::atomic<int> active{static_cast<int>(ResolveBackend())};
  return active;
}

}  // namespace

const SimdOps& ScalarSimdOps() { return kScalarOps; }

const SimdOps* SimdOpsFor(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kScalar:
      return &kScalarOps;
    case SimdBackend::kAvx2:
      return Avx2SimdOpsImpl();
    case SimdBackend::kNeon:
      return NeonSimdOpsImpl();
  }
  return nullptr;
}

void SoaScaledSquaredDistances(const double* block, size_t padded,
                               size_t count, size_t dims, const double* x,
                               const double* inv_bw, double* out) {
  SimdOpsFor(ActiveSimdBackend())
      ->soa_scaled_squared_distances(block, padded, count, dims, x, inv_bw,
                                     out);
}

void BoxPairScaledSquaredDistanceBounds(const double* lo0, const double* hi0,
                                        const double* lo1, const double* hi1,
                                        const double* x, const double* inv_bw,
                                        size_t dims, double out[4]) {
  SimdOpsFor(ActiveSimdBackend())
      ->box_pair_bounds(lo0, hi0, lo1, hi1, x, inv_bw, dims, out);
}

void CentroidPairScaledSquaredDistances(const double* c0, const double* c1,
                                        const double* x, const double* inv_bw,
                                        const double* inv_scale, size_t dims,
                                        double dist_sq[2], double* factor_hi,
                                        double* factor_lo) {
  SimdOpsFor(ActiveSimdBackend())
      ->centroid_pair_distances(c0, c1, x, inv_bw, inv_scale, dims, dist_sq,
                                factor_hi, factor_lo);
}

}  // namespace simd

const char* SimdBackendName(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kScalar:
      return "scalar";
    case SimdBackend::kAvx2:
      return "avx2";
    case SimdBackend::kNeon:
      return "neon";
  }
  return "unknown";
}

bool SimdBackendCompiled(SimdBackend backend) {
  return simd::SimdOpsFor(backend) != nullptr;
}

bool SimdBackendUsable(SimdBackend backend) {
  return SimdBackendCompiled(backend) && simd::CpuSupports(backend);
}

SimdBackend ActiveSimdBackend() {
  return static_cast<SimdBackend>(
      simd::ActiveBackendSlot().load(std::memory_order_relaxed));
}

SimdBackend ForceSimdBackendForTesting(SimdBackend backend) {
  if (!SimdBackendUsable(backend)) backend = SimdBackend::kScalar;
  return static_cast<SimdBackend>(simd::ActiveBackendSlot().exchange(
      static_cast<int>(backend), std::memory_order_relaxed));
}

}  // namespace tkdc
