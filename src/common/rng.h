#ifndef TKDC_COMMON_RNG_H_
#define TKDC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tkdc {

/// Deterministic pseudo-random number generator (xoshiro256++ seeded via
/// splitmix64). All randomness in the library flows through this class so
/// that experiments are reproducible bit-for-bit from a single seed.
///
/// The generator is copyable; copies continue the stream independently.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` using splitmix64.
  explicit Rng(uint64_t seed = 0);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Returns a double uniformly distributed in [0, 1).
  double NextDouble();

  /// Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns an integer uniformly distributed in [0, bound). `bound` > 0.
  /// Uses rejection sampling, so the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a standard normal deviate (Box-Muller with caching).
  double NextGaussian();

  /// Returns a sample of `k` distinct indices from [0, n) in random order
  /// (partial Fisher-Yates). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Shuffles `items` in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace tkdc

#endif  // TKDC_COMMON_RNG_H_
