#ifndef TKDC_COMMON_METRICS_H_
#define TKDC_COMMON_METRICS_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace tkdc {

class MetricsShard;

/// Registry of named counters and fixed-bucket histograms for query-path
/// observability (prune depth, cutoff reasons, per-query work, ...).
///
/// Threading model: the registry only defines the metric *schema* and holds
/// the merged totals. All hot-path recording happens on MetricsShards —
/// plain arrays owned by exactly one QueryContext (and therefore one
/// thread), so Inc()/Observe() are lock-free loads and stores. Shards fold
/// into each other through MetricsShard::Merge (the batch executor's
/// fork/join does this via QueryContext::MergeCounters) and reach the
/// registry totals only through Absorb(), which takes the registry mutex —
/// a rare event (end of a batch, an explicit flush), never per query.
///
/// Overhead policy: detached is the default and costs one null-pointer
/// branch per query at the recording sites; nothing else is touched. See
/// DESIGN.md § "Observability".
///
/// Lifecycle: registration is append-only and may happen at any point — a
/// hot-swapped model can introduce names (e.g. per-class mc.* counters)
/// the process has never seen. Shards are sized to the schema at their
/// creation; one created before a later registration is a schema *prefix*
/// of a newer one and Absorb() folds it in by index, growing the totals
/// first. The registry must outlive its shards. Registration is idempotent
/// by name, so independent attach points can re-register a shared schema
/// and receive the same ids.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers a counter, returning its stable id. Re-registering an
  /// existing name returns the original id.
  size_t AddCounter(const std::string& name);

  /// Registers a histogram with the given bucket upper bounds (strictly
  /// increasing; a final +inf overflow bucket is implicit). Re-registering
  /// an existing name returns the original id (bounds must match).
  size_t AddHistogram(const std::string& name,
                      std::vector<double> upper_bounds);

  size_t counter_count() const { return counter_names_.size(); }
  size_t histogram_count() const { return histogram_names_.size(); }

  /// A fresh zeroed shard matching the current schema.
  std::unique_ptr<MetricsShard> NewShard() const;

  /// Folds a shard into the merged totals (thread-safe). The shard's
  /// schema must match the registry's (it came from NewShard()).
  void Absorb(const MetricsShard& shard);

  /// Merged total of a counter; 0 for unknown names.
  uint64_t CounterValue(const std::string& name) const;

  /// Point-in-time copy of one histogram's merged state.
  struct HistogramSnapshot {
    std::vector<double> upper_bounds;
    /// upper_bounds.size() + 1 entries; the last is the +inf overflow.
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  /// Merged snapshot of a histogram; empty snapshot for unknown names.
  HistogramSnapshot HistogramValue(const std::string& name) const;

  /// Serializes every merged counter and histogram as JSON:
  ///   {"counters": {name: value, ...},
  ///    "histograms": {name: {"count": n, "sum": s, "min": m, "max": M,
  ///                          "buckets": [{"le": bound, "count": c}, ...]}}}
  /// The final bucket's "le" is the string "inf". `indent` spaces prefix
  /// every line so callers can embed the object in a larger document.
  void WriteJson(std::ostream& out, int indent = 0) const;

  /// Exponential bucket bounds 1, 2, 4, ..., 2^(n-1) — the standard layout
  /// for per-query work counts (node expansions, kernel evaluations).
  static std::vector<double> PowerOfTwoBounds(size_t n);

  /// Decade bounds 10^lo, 10^(lo+1), ..., 10^hi for ratio-like values
  /// (relative bound gaps).
  static std::vector<double> DecadeBounds(int lo, int hi);

 private:
  friend class MetricsShard;

  size_t FindName(const std::vector<std::string>& names,
                  const std::string& name) const;

  std::vector<std::string> counter_names_;
  std::vector<std::string> histogram_names_;
  std::vector<std::vector<double>> histogram_bounds_;

  mutable std::mutex mutex_;
  std::unique_ptr<MetricsShard> totals_;  // Guarded by mutex_; lazily built.
};

/// One thread's slice of a registry's metrics: flat arrays indexed by the
/// ids AddCounter/AddHistogram returned. Owned by a single QueryContext —
/// never shared across threads — so recording needs no atomics.
class MetricsShard {
 public:
  /// Use MetricsRegistry::NewShard() instead of constructing directly.
  explicit MetricsShard(const MetricsRegistry& registry);

  void Inc(size_t counter_id, uint64_t delta = 1) {
    counters_[counter_id] += delta;
  }

  uint64_t counter(size_t counter_id) const { return counters_[counter_id]; }

  /// Records `value` into histogram `histogram_id` (linear scan over the
  /// fixed bounds: bucket layouts are small, ~20 entries).
  void Observe(size_t histogram_id, double value);

  /// Adds another shard into this one. `other` may have been created
  /// against an older (smaller) schema; its ids merge by index.
  void Merge(const MetricsShard& other);

  /// Zeroes every counter and bucket (schema unchanged).
  void Reset();

 private:
  friend class MetricsRegistry;

  struct HistogramState {
    std::vector<uint64_t> buckets;  // bounds.size() + 1, last = overflow.
    uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  /// Appends zeroed slots for ids registered after this shard was created.
  /// Only ever called on the registry's totals, under the registry mutex.
  void GrowTo(const MetricsRegistry& registry);

  std::vector<uint64_t> counters_;
  std::vector<HistogramState> histograms_;
  /// Bucket bounds copied at creation so Observe() never touches the
  /// registry's schema vectors, which may reallocate under late
  /// registration on another thread.
  std::vector<std::vector<double>> bounds_;
};

}  // namespace tkdc

#endif  // TKDC_COMMON_METRICS_H_
