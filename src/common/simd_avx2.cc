// AVX2 implementations of the simd distance/bound primitives. Compiled
// with -mavx2 (but NOT -mfma) and -ffp-contract=off, and using only
// separate multiply/add intrinsics, so every operation rounds exactly like
// the scalar backend's — see the determinism contract in common/simd.h.
// The TU is only part of the build when the toolchain supports AVX2;
// callers additionally gate on the running CPU via SimdBackendUsable().
#include "common/simd_internal.h"

#if defined(TKDC_SIMD_AVX2)

#include <immintrin.h>

#include <limits>

namespace tkdc {
namespace simd {
namespace {

void SoaScaledSquaredDistancesAvx2(const double* block, size_t padded,
                                   size_t count, size_t dims, const double* x,
                                   const double* inv_bw, double* out) {
  (void)count;
  for (size_t g = 0; g < padded; g += kSimdBlockWidth) {
    __m256d z = _mm256_setzero_pd();
    for (size_t j = 0; j < dims; ++j) {
      const __m256d row = _mm256_loadu_pd(block + j * padded + g);
      const __m256d diff = _mm256_sub_pd(_mm256_set1_pd(x[j]), row);
      const __m256d u = _mm256_mul_pd(diff, _mm256_set1_pd(inv_bw[j]));
      z = _mm256_add_pd(z, _mm256_mul_pd(u, u));
    }
    _mm256_storeu_pd(out + g, z);
  }
}

void BoxPairScaledSquaredDistanceBoundsAvx2(
    const double* lo0, const double* hi0, const double* lo1,
    const double* hi1, const double* x, const double* inv_bw, size_t dims,
    double out[4]) {
  // Lanes = {min0, max0, min1, max1}: one bound per lane, each accumulated
  // sequentially over dimensions (contract rule 3). The per-axis gaps are
  // computed with vector min/max/clamp so all four bounds share each
  // x[j] / inv_bw[j] load.
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc = zero;
  for (size_t j = 0; j < dims; ++j) {
    const __m256d xj = _mm256_set1_pd(x[j]);
    const __m256d lo = _mm256_set_pd(lo1[j], lo1[j], lo0[j], lo0[j]);
    const __m256d hi = _mm256_set_pd(hi1[j], hi1[j], hi0[j], hi0[j]);
    // Outside gap, clamped at zero: max(lo - x, x - hi, 0). Exactly the
    // scalar (x < lo ? lo - x : x > hi ? x - hi : 0) for lo <= hi.
    const __m256d gap_min = _mm256_max_pd(
        zero, _mm256_max_pd(_mm256_sub_pd(lo, xj), _mm256_sub_pd(xj, hi)));
    // Farthest-wall gap: max(x - lo, hi - x).
    const __m256d gap_max =
        _mm256_max_pd(_mm256_sub_pd(xj, lo), _mm256_sub_pd(hi, xj));
    // Lanes 0/2 take the min gap, lanes 1/3 the max gap.
    const __m256d gap = _mm256_blend_pd(gap_min, gap_max, 0b1010);
    const __m256d u = _mm256_mul_pd(gap, _mm256_set1_pd(inv_bw[j]));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(u, u));
  }
  _mm256_storeu_pd(out, acc);
}

void CentroidPairScaledSquaredDistancesAvx2(
    const double* c0, const double* c1, const double* x,
    const double* inv_bw, const double* inv_scale, size_t dims,
    double dist_sq[2], double* factor_hi, double* factor_lo) {
  __m128d acc = _mm_setzero_pd();
  __m128d f_hi = _mm_setzero_pd();
  __m128d f_lo = _mm_set1_pd(std::numeric_limits<double>::infinity());
  for (size_t j = 0; j < dims; ++j) {
    const __m128d xj = _mm_set1_pd(x[j]);
    const __m128d bj = _mm_set1_pd(inv_bw[j]);
    const __m128d c = _mm_set_pd(c1[j], c0[j]);
    const __m128d u = _mm_mul_pd(_mm_sub_pd(xj, c), bj);
    acc = _mm_add_pd(acc, _mm_mul_pd(u, u));
    const __m128d f = _mm_mul_pd(bj, _mm_set1_pd(inv_scale[j]));
    f_hi = _mm_max_pd(f_hi, f);
    f_lo = _mm_min_pd(f_lo, f);
  }
  _mm_storeu_pd(dist_sq, acc);
  *factor_hi = _mm_cvtsd_f64(f_hi);
  *factor_lo = _mm_cvtsd_f64(f_lo);
}

constexpr SimdOps kAvx2Ops = {
    &SoaScaledSquaredDistancesAvx2,
    &BoxPairScaledSquaredDistanceBoundsAvx2,
    &CentroidPairScaledSquaredDistancesAvx2,
};

}  // namespace

const SimdOps* Avx2SimdOpsImpl() { return &kAvx2Ops; }

}  // namespace simd
}  // namespace tkdc

#endif  // TKDC_SIMD_AVX2
