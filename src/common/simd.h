#ifndef TKDC_COMMON_SIMD_H_
#define TKDC_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace tkdc {

/// Instruction-set backends for the vectorized leaf primitives. Which
/// backends exist is a compile-time property (the AVX2/NEON translation
/// units are only built when the toolchain supports them — see the
/// TKDC_SIMD CMake option); which backend *runs* is resolved once at
/// startup from the CPU features, overridable via the TKDC_SIMD
/// environment variable ("off"/"scalar", "avx2", "neon").
enum class SimdBackend : int {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Fixed accumulation width of the determinism contract (see below). Every
/// backend — including the scalar one — accumulates leaf sums in exactly
/// this many interleaved partial sums, so changing the instruction set
/// never changes a result bit. NEON implements the 4-lane block as two
/// 2-lane vectors; a hypothetical AVX-512 backend would process two blocks
/// per register but keep the same per-block partials.
inline constexpr size_t kSimdBlockWidth = 4;

/// `count` rounded up to the next multiple of kSimdBlockWidth. SoA leaf
/// blocks are padded to this length per dimension; padding coordinates are
/// +infinity, which makes a padded point's scaled squared distance
/// +infinity and therefore its kernel contribution exactly +0.0 under
/// every kernel family (exp(-inf) == 0; compact kernels vanish for
/// z >= 1). Adding +0.0 is the identity, so padded lanes never perturb a
/// sum.
inline constexpr size_t SimdPaddedCount(size_t count) {
  return (count + (kSimdBlockWidth - 1)) & ~(kSimdBlockWidth - 1);
}

/// Human-readable backend name ("scalar", "avx2", "neon") for logs and
/// bench JSON.
const char* SimdBackendName(SimdBackend backend);

/// True when the backend's translation unit was compiled into this binary.
bool SimdBackendCompiled(SimdBackend backend);

/// True when the backend is compiled in AND the running CPU supports it
/// (e.g. AVX2 checked via cpuid, so a binary built with -mavx2 TUs still
/// falls back cleanly on older x86-64).
bool SimdBackendUsable(SimdBackend backend);

/// The backend the dispatched wrappers below currently use. Resolved once
/// on first use: the TKDC_SIMD environment variable if set (an unusable
/// request falls back to scalar), otherwise the best usable backend.
SimdBackend ActiveSimdBackend();

/// Test hook: re-points the dispatched wrappers at `backend` (which must
/// be usable) and returns the previously active backend. Not thread-safe
/// against in-flight queries — the scalar-vs-SIMD equality tests flip it
/// between single-threaded runs.
SimdBackend ForceSimdBackendForTesting(SimdBackend backend);

namespace simd {

// --- Determinism contract ------------------------------------------------
//
// Every primitive below (and the kernel sums in kde/kernel_simd.h) obeys
// one contract, shared bit-for-bit by all backends:
//
//  1. A *per-point* scaled squared distance is accumulated sequentially
//     over the dimensions: z += ((x_j - p_j) * inv_bw_j)^2 for j = 0..d-1,
//     in order — the same association the legacy scalar loops used. SIMD
//     parallelism runs ACROSS points (one point per lane), never across a
//     single point's dimensions, so each lane replays the scalar
//     recurrence exactly.
//  2. A *sum over points* (leaf kernel sums) is accumulated in
//     kSimdBlockWidth interleaved partials — point i adds into partial
//     i % 4 — reduced as (acc0 + acc2) + (acc1 + acc3). That reduction is
//     what one AVX2 register reduction performs (low half + high half,
//     then horizontal add), and the scalar backend executes the identical
//     schedule.
//  3. A *per-bound* box/centroid accumulation (Eq. 6 node bounds) is
//     sequential over dimensions, one bound per lane, so a batched
//     children call is bitwise equal to the per-child scalar calls it
//     replaces.
//
// The SIMD translation units are compiled without FMA contraction
// (-ffp-contract=off, and no fused intrinsics), so mul+add sequences round
// identically everywhere. Under this contract "scalar vs SIMD" is a pure
// scheduling choice: classifications are bit-identical by construction,
// and the equality test suite (tests/kde/simd_equivalence_test.cc) holds
// every backend to it.

/// Scaled squared distances from `x` to every point of an SoA leaf block:
/// out[k] = sum_j ((x[j] - block[j * padded + k]) * inv_bw[j])^2 for
/// k < count. `block` holds `dims` arrays of `padded` doubles each
/// (padded == SimdPaddedCount(count)); `out` must hold `padded` entries
/// (the padding lanes are written with +infinity garbage — callers consume
/// only the first `count`).
void SoaScaledSquaredDistances(const double* block, size_t padded,
                               size_t count, size_t dims, const double* x,
                               const double* inv_bw, double* out);

/// Eq. 6 min/max scaled squared distance bounds from point `x` to two
/// axis-aligned boxes in one pass: out = {min0, max0, min1, max1}.
/// Bitwise equal to BoundingBox::Min/MaxScaledSquaredDistance on each box
/// (contract rule 3).
void BoxPairScaledSquaredDistanceBounds(const double* lo0, const double* hi0,
                                        const double* lo1, const double* hi1,
                                        const double* x, const double* inv_bw,
                                        size_t dims, double out[4]);

/// Ball-tree companion: scaled squared centroid distances from `x` to two
/// centroids in one pass, plus the shared worst/best-axis radius
/// conversion factors max_j / min_j of inv_bw[j] * inv_scale[j]. Bitwise
/// equal to two BallTree::CentroidDistanceAndRadii dimension loops.
void CentroidPairScaledSquaredDistances(const double* c0, const double* c1,
                                        const double* x, const double* inv_bw,
                                        const double* inv_scale, size_t dims,
                                        double dist_sq[2], double* factor_hi,
                                        double* factor_lo);

/// Backend function table. The dispatched wrappers above route through
/// ActiveSimdBackend(); tests grab a specific table to compare backends
/// directly.
struct SimdOps {
  void (*soa_scaled_squared_distances)(const double* block, size_t padded,
                                       size_t count, size_t dims,
                                       const double* x, const double* inv_bw,
                                       double* out);
  void (*box_pair_bounds)(const double* lo0, const double* hi0,
                          const double* lo1, const double* hi1,
                          const double* x, const double* inv_bw, size_t dims,
                          double out[4]);
  void (*centroid_pair_distances)(const double* c0, const double* c1,
                                  const double* x, const double* inv_bw,
                                  const double* inv_scale, size_t dims,
                                  double dist_sq[2], double* factor_hi,
                                  double* factor_lo);
};

/// The table for `backend`; null when the backend is not compiled in.
/// ScalarSimdOps() is always available.
const SimdOps* SimdOpsFor(SimdBackend backend);
const SimdOps& ScalarSimdOps();

}  // namespace simd
}  // namespace tkdc

#endif  // TKDC_COMMON_SIMD_H_
