#include "common/timer.h"

namespace tkdc {

WallTimer::WallTimer() : start_(std::chrono::steady_clock::now()) {}

void WallTimer::Restart() { start_ = std::chrono::steady_clock::now(); }

double WallTimer::ElapsedSeconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double WallTimer::ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

double Throughput(uint64_t items, double elapsed_seconds) {
  if (elapsed_seconds <= 0.0) return 0.0;
  return static_cast<double>(items) / elapsed_seconds;
}

}  // namespace tkdc
