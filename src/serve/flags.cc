#include "serve/flags.h"

#include <charconv>
#include <cstdlib>

namespace tkdc::serve {
namespace {

constexpr const char kUsage[] =
    "usage: tkdc_serve --model M.tkdc [--port N | --pipe]\n"
    "  --model PATH            trained model file (required); also the\n"
    "                          target of SIGHUP / flagless RELOAD\n"
    "  --model-dir DIR         directory of additional \"<id>.tkdc\" model\n"
    "                          slots, addressed per request as @<id>;\n"
    "                          MODELS / LOAD / UNLOAD manage them at\n"
    "                          runtime\n"
    "  --max-resident BYTES    resident-set byte budget for --model-dir\n"
    "                          models; least-recently-used slots are\n"
    "                          evicted past it (default 0 = unbounded)\n"
    "  --preload-models        load every --model-dir slot at startup\n"
    "                          instead of on first use\n"
    "  --port N                TCP listen port on 127.0.0.1 (default 0 =\n"
    "                          ephemeral, announced on stdout);\n"
    "                          length-prefixed framing\n"
    "  --pipe                  serve stdin/stdout with line framing\n"
    "                          instead of TCP\n"
    "  --threads N             batch-engine worker threads (0 = hardware\n"
    "                          concurrency, 1 = serial; labels identical)\n"
    "  --batch-window-us U     micro-batch coalescing window (default 200)\n"
    "  --batch-pace-us U       minimum spacing between batch dispatches:\n"
    "                          caps the worker at ~max-batch/pace requests\n"
    "                          per second (default 0 = unpaced)\n"
    "  --max-batch N           max requests per batch (default 64)\n"
    "  --queue-depth N         admission bound; excess requests get\n"
    "                          OVERLOADED (default 1024)\n"
    "  --request-timeout-ms T  default per-request deadline, 0 = none\n"
    "                          (default 0); requests may override\n"
    "  --metrics-out PATH      write merged metrics JSON at shutdown\n"
    "  --overlay-capacity N    rows each streaming overlay buffer can\n"
    "                          stage before INSERT/DELETE are rejected\n"
    "                          pending a rebuild (default 4096; 0 turns\n"
    "                          streaming verbs off)\n"
    "  --rebuild-fraction F    retrain and hot-swap the base model when\n"
    "                          the overlay exceeds this fraction of the\n"
    "                          base points (default 0.1; 0 = only FLUSH\n"
    "                          rebuilds)\n"
    "Signals: SIGTERM drains (every admitted request is answered, then\n"
    "exit 0); SIGHUP hot-reloads the model without dropping requests.\n";

Status ParseSize(const std::string& flag, const std::string& text,
                 uint64_t max, uint64_t* out) {
  const char* begin = text.c_str();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  if (ec != std::errc() || ptr != end) {
    return Errorf() << flag << ": expected a non-negative integer, got \""
                    << text << "\"";
  }
  if (*out > max) {
    return Errorf() << flag << ": " << text << " exceeds the maximum " << max;
  }
  return Status::Ok();
}

}  // namespace

const char* ServeUsage() { return kUsage; }

Result<ServeFlags> ParseServeFlags(const std::vector<std::string>& args) {
  ServeFlags flags;
  bool port_given = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--pipe") {
      flags.pipe = true;
      continue;
    }
    if (arg == "--preload-models") {
      flags.options.preload_models = true;
      continue;
    }
    if (arg == "--help") return Errorf() << "help requested";
    const auto take_value = [&](std::string* value) -> Status {
      if (i + 1 >= args.size()) {
        return Errorf() << "missing value for " << arg;
      }
      *value = args[++i];
      return Status::Ok();
    };
    std::string value;
    uint64_t number = 0;
    Status status;
    if (arg == "--model") {
      if (status = take_value(&flags.options.model_path); !status.ok()) {
        return status;
      }
    } else if (arg == "--model-dir") {
      if (status = take_value(&flags.options.model_dir); !status.ok()) {
        return status;
      }
    } else if (arg == "--max-resident") {
      if (status = take_value(&value); !status.ok()) return status;
      if (status = ParseSize(arg, value, uint64_t{1} << 62, &number);
          !status.ok()) {
        return status;
      }
      flags.options.max_resident_bytes = static_cast<size_t>(number);
    } else if (arg == "--metrics-out") {
      if (status = take_value(&flags.options.metrics_out); !status.ok()) {
        return status;
      }
    } else if (arg == "--port") {
      if (status = take_value(&value); !status.ok()) return status;
      if (status = ParseSize(arg, value, 65535, &number); !status.ok()) {
        return status;
      }
      flags.port = static_cast<uint16_t>(number);
      port_given = true;
    } else if (arg == "--threads") {
      if (status = take_value(&value); !status.ok()) return status;
      if (status = ParseSize(arg, value, 4096, &number); !status.ok()) {
        return status;
      }
      flags.options.num_threads = static_cast<size_t>(number);
    } else if (arg == "--batch-window-us") {
      if (status = take_value(&value); !status.ok()) return status;
      if (status = ParseSize(arg, value, 10'000'000, &number); !status.ok()) {
        return status;
      }
      flags.options.batcher.batch_window_us = number;
    } else if (arg == "--batch-pace-us") {
      if (status = take_value(&value); !status.ok()) return status;
      if (status = ParseSize(arg, value, 10'000'000, &number); !status.ok()) {
        return status;
      }
      flags.options.batcher.batch_pace_us = number;
    } else if (arg == "--max-batch") {
      if (status = take_value(&value); !status.ok()) return status;
      if (status = ParseSize(arg, value, 1u << 20, &number); !status.ok()) {
        return status;
      }
      if (number < 1) return Errorf() << "--max-batch must be >= 1";
      flags.options.batcher.max_batch = static_cast<size_t>(number);
    } else if (arg == "--queue-depth") {
      if (status = take_value(&value); !status.ok()) return status;
      if (status = ParseSize(arg, value, 1u << 24, &number); !status.ok()) {
        return status;
      }
      if (number < 1) return Errorf() << "--queue-depth must be >= 1";
      flags.options.batcher.queue_depth = static_cast<size_t>(number);
    } else if (arg == "--request-timeout-ms") {
      if (status = take_value(&value); !status.ok()) return status;
      if (status = ParseSize(arg, value, 86'400'000, &number); !status.ok()) {
        return status;
      }
      flags.options.batcher.default_timeout_ms =
          static_cast<int64_t>(number);
    } else if (arg == "--overlay-capacity") {
      if (status = take_value(&value); !status.ok()) return status;
      if (status = ParseSize(arg, value, 1u << 24, &number); !status.ok()) {
        return status;
      }
      flags.options.overlay_capacity = static_cast<size_t>(number);
    } else if (arg == "--rebuild-fraction") {
      if (status = take_value(&value); !status.ok()) return status;
      char* end = nullptr;
      const double fraction = std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size() || !(fraction >= 0.0) ||
          fraction > 1.0) {
        return Errorf() << arg << ": expected a fraction in [0, 1], got \""
                        << value << "\"";
      }
      flags.options.rebuild_fraction = fraction;
    } else {
      return Errorf() << "unknown flag: " << arg;
    }
  }
  if (flags.options.model_path.empty()) {
    return Errorf() << "--model is required";
  }
  if (flags.pipe && port_given) {
    return Errorf() << "--pipe and --port are mutually exclusive";
  }
  return flags;
}

}  // namespace tkdc::serve
