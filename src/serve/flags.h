#ifndef TKDC_SERVE_FLAGS_H_
#define TKDC_SERVE_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/server.h"

namespace tkdc::serve {

/// Parsed `tkdc_serve` command line.
struct ServeFlags {
  ServerOptions options;
  /// TCP listen port (0 = ephemeral, announced on stdout). Ignored when
  /// `pipe` is set.
  uint16_t port = 0;
  /// Serve stdin/stdout with line framing instead of TCP.
  bool pipe = false;
};

/// Usage text for `tkdc_serve` (printed on parse errors and --help).
const char* ServeUsage();

/// Parses `args` (excluding the program name). Flags are user input, so
/// every malformed value — unknown flag, bad number, out-of-range knob —
/// returns an error Status naming the offender instead of aborting.
Result<ServeFlags> ParseServeFlags(const std::vector<std::string>& args);

}  // namespace tkdc::serve

#endif  // TKDC_SERVE_FLAGS_H_
