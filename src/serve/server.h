#ifndef TKDC_SERVE_SERVER_H_
#define TKDC_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/status.h"
#include "serve/batcher.h"
#include "serve/protocol.h"
#include "serve/registry.h"

namespace tkdc::serve {

struct ServerOptions {
  /// Trained model file served at startup and by flagless RELOAD/SIGHUP.
  std::string model_path;
  /// Directory of additional "<id>.tkdc" model slots, addressed per
  /// request as @<id>. Empty = no startup scan; LOAD can still register
  /// slots at runtime.
  std::string model_dir;
  /// Resident-set byte budget for registry models (0 = unbounded); LRU
  /// slots are evicted past it. The default model is exempt.
  size_t max_resident_bytes = 0;
  /// Load every scanned model-dir slot at startup instead of on first
  /// use.
  bool preload_models = false;
  /// Micro-batcher knobs (window, max batch, queue depth, default
  /// timeout).
  BatcherOptions batcher;
  /// Worker threads inside the batch engine (0 = hardware concurrency,
  /// 1 = serial). Labels are identical for every value.
  size_t num_threads = 0;
  /// When non-empty, the merged metrics registry is written there as JSON
  /// at shutdown.
  std::string metrics_out;
  /// Externally owned shutdown flag (SIGTERM handler sets it; tests set it
  /// directly). Null = only EOF / connection close stops the server.
  const std::atomic<bool>* terminate = nullptr;
  /// Externally owned reload flag (SIGHUP). Checked by connection loops;
  /// when set, the serving model is reloaded from `model_path` and the
  /// flag cleared. Null = reload only via RELOAD requests.
  std::atomic<bool>* reload = nullptr;

  // --- Streaming (INSERT / DELETE / FLUSH) knobs ------------------------
  /// Rows each overlay buffer (inserts, tombstones) can stage before
  /// mutations are rejected pending a rebuild. 0 disables streaming
  /// entirely (INSERT/DELETE answered with ERR, as for static models).
  size_t overlay_capacity = 4096;
  /// Background rebuild trigger: when the overlay holds more than this
  /// fraction of the base point count (but at least 16 rows), the base
  /// model is retrained on base ∪ overlay and hot-swapped. 0 = only
  /// explicit FLUSH rebuilds.
  double rebuild_fraction = 0.1;
};

/// The long-lived `tkdc_serve` daemon: owns the metrics registry, the
/// serving model, and the micro-batcher; speaks the serve protocol over
/// TCP connections (length-prefixed frames) or a pipe pair (line frames).
///
/// Request routing: classify/estimate verbs go through the admission
/// queue and the micro-batcher; control verbs (PING, STATS, RELOAD) are
/// answered inline on the connection thread so they stay responsive under
/// data-plane overload.
///
/// Shutdown contract (SIGTERM or EOF): stop admitting, execute everything
/// already admitted, write every response, then return 0 — a clean drain,
/// never an abort. Reload contract (SIGHUP or RELOAD): the new model is
/// published RCU-style; zero in-flight requests are dropped.
class Server {
 public:
  /// Loads the model and assembles the serving stack. Errors (bad path,
  /// malformed model) return Status instead of aborting.
  static Result<std::unique_ptr<Server>> Create(ServerOptions options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Pipe mode: serves line-framed requests from `in_fd` / responses to
  /// `out_fd` until EOF or terminate, then drains. Returns the process
  /// exit code (0 on clean drain).
  int RunPipe(int in_fd, int out_fd);

  /// TCP mode: listens on 127.0.0.1:`port` (0 = ephemeral) and serves
  /// length-prefixed frames, one thread per connection, until terminate.
  /// Announces "listening on 127.0.0.1:<port>" on `announce` once bound.
  /// Returns the process exit code.
  int RunTcp(uint16_t port, std::ostream& announce);

  /// Loads `path` (empty = the startup model path) and publishes it.
  /// In-flight and queued requests all complete; serialized internally.
  /// A reload discards any staged overlay (the file on disk is the new
  /// truth) and starts a fresh streaming generation.
  Status Reload(const std::string& path);

  /// Scoped RELOAD: loads `path` (empty = the slot's registered path) and
  /// publishes it into the registry slot `id`. Like default RELOAD, a
  /// path override does not change what the slot reloads from next time.
  Status ReloadScoped(const std::string& id, const std::string& path);

  /// Synchronously retrains `model_id`'s base model ("" = the default
  /// model) on base ∪ overlay and publishes it through the dispatcher
  /// (zero requests dropped; overlay mutations racing the retrain migrate
  /// into the new generation). Returns the new base point count. The
  /// FLUSH verb and the background rebuild worker both land here; calls
  /// serialize internally. Scoped rebuilds target resident slots only.
  Result<uint64_t> RebuildNow(const std::string& model_id = std::string());

  /// Drains the batcher and, when configured, writes --metrics-out.
  /// Idempotent; the Run loops call it on exit.
  void Shutdown();

  MicroBatcher& batcher() { return *batcher_; }
  MetricsRegistry& registry() { return registry_; }
  ModelRegistry& model_registry() { return *model_registry_; }

 private:
  explicit Server(ServerOptions options);

  /// Builds a ServingModel from `path`: load, thread-pool sizing, metrics
  /// attachment, and — when the engine supports the overlay fold —
  /// streaming state (overlay buffers, exported base data, DELETE
  /// validation counts, online threshold estimator).
  Result<std::shared_ptr<ServingModel>> LoadServingModel(
      const std::string& path);

  /// Fills the streaming fields of `model` (fresh generation, overlay,
  /// exported base data, estimator seeded/reseeded from `estimator`).
  void SetUpStreaming(ServingModel& model,
                      std::shared_ptr<OnlineThresholdEstimator> estimator);

  /// Non-blocking rebuild request from the dispatcher; flags the worker
  /// with the scope to rebuild ("" = the default model).
  void RequestRebuild(const std::string& model_id);
  /// Background rebuild worker loop.
  void RebuildWorker();

  /// Writes one model's STATS object ("{...}") — generation, algorithm,
  /// overlay counts, thresholds — to `json`.
  void WriteModelJson(std::ostream& json, const ServingModel& model) const;

  /// Serves one connection until EOF/terminate; does not drain the
  /// batcher (responses for still-queued requests are written later by
  /// the dispatcher through the connection's shared writer).
  void ServeConnection(int in_fd, int out_fd, Framing framing);

  /// Answers one parsed request: control verbs inline, data verbs via the
  /// batcher.
  void Dispatch(Request request, const std::shared_ptr<FrameWriter>& writer);

  bool ShouldStop() const {
    return options_.terminate != nullptr &&
           options_.terminate->load(std::memory_order_relaxed);
  }
  /// Consumes a pending SIGHUP-style reload flag, if any.
  void PollReloadFlag();

  ServerOptions options_;
  MetricsRegistry registry_;
  /// Named model slots (@<id> scopes); constructed before the batcher so
  /// SetRegistry can hand it over. The default model is not in it.
  std::unique_ptr<ModelRegistry> model_registry_;
  std::unique_ptr<MicroBatcher> batcher_;
  /// Serializes model publications: RELOAD, SIGHUP, FLUSH, and the
  /// background rebuild all load/train one at a time.
  std::mutex reload_mutex_;
  /// Monotonic generation counter feeding ServingModel::generation.
  std::atomic<uint64_t> generation_counter_{0};

  // Rebuild worker state.
  std::mutex rebuild_mutex_;
  std::condition_variable rebuild_cv_;
  /// Scopes with a rebuild pending ("" = the default model), deduped.
  std::vector<std::string> rebuild_requested_ids_;
  bool rebuild_worker_exit_ = false;
  std::thread rebuild_worker_;

  std::atomic<bool> shutdown_done_{false};
};

}  // namespace tkdc::serve

#endif  // TKDC_SERVE_SERVER_H_
