#ifndef TKDC_SERVE_ROUTER_H_
#define TKDC_SERVE_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "serve/protocol.h"

namespace tkdc::serve {

/// Consistent-hash ring over worker indices. Each worker contributes
/// `vnodes` points hashed from its seed string; a key routes to the first
/// point clockwise from its own hash, so removing a worker only moves the
/// keys that worker owned. Not internally synchronized — the router
/// guards it with its ring mutex.
class HashRing {
 public:
  explicit HashRing(size_t vnodes) : vnodes_(vnodes) {}

  /// Adds `worker`'s vnodes (seed is its address — stable across
  /// remove/re-add, so a recovered worker owns its old arcs again).
  void Add(size_t worker, const std::string& seed);
  /// Removes every vnode owned by `worker`.
  void Remove(size_t worker);
  /// Owner of `key`, or nullopt when the ring is empty.
  std::optional<size_t> Pick(std::string_view key) const;

  bool empty() const { return ring_.empty(); }
  size_t size() const { return ring_.size(); }

  /// FNV-1a, the repo-standard cheap string hash.
  static uint64_t Hash(std::string_view bytes);

 private:
  size_t vnodes_;
  /// vnode hash -> worker index, ordered for lower_bound routing.
  std::map<uint64_t, size_t> ring_;
};

struct RouterOptions {
  /// Worker addresses, "127.0.0.1:PORT" (or bare "PORT"); all loopback.
  std::vector<std::string> workers;
  /// Vnodes per worker on the ring.
  size_t vnodes = 64;
  /// Outstanding-request cap per worker; excess requests are answered
  /// OVERLOADED at the router without touching the worker.
  size_t max_outstanding = 256;
  /// Health-probe cadence; a worker missing 3 consecutive probe windows
  /// is failed, and a failed worker is redialed at this cadence.
  uint64_t probe_interval_ms = 500;
  /// Externally owned shutdown flag (SIGTERM handler). Null = only client
  /// EOF stops a pipe-mode router.
  const std::atomic<bool>* terminate = nullptr;
};

/// The fleet front door: accepts client connections speaking the ordinary
/// serve protocol and fans requests out across N workers by consistent-
/// hashing the request's model scope (scope-less requests key on
/// "default"). All models must be loadable by every worker (a shared
/// --model-dir); the ring only decides placement.
///
/// Forwarding preserves request/response bytes except the leading id
/// token, which is rewritten to a router-unique id on the way out and
/// back to the client's id on the way home — clients keep their own id
/// space, workers see globally unique ids, and responses match out of
/// order exactly as when talking to a worker directly.
///
/// Failure containment: a worker write failure, read EOF, or 3 missed
/// health probes removes the worker from the ring and answers its
/// outstanding requests with ERR (clients retry; the key now routes to a
/// surviving worker). A background prober redials failed workers and
/// splices them back into the ring on success. Per-worker outstanding
/// caps shed excess load with OVERLOADED before it queues anywhere.
class Router {
 public:
  /// Dials every worker; errors if none answer (a fleet with zero live
  /// workers cannot serve its first request). Workers that fail the
  /// initial dial start in the failed state and are redialed by the
  /// prober.
  static Result<std::unique_ptr<Router>> Create(RouterOptions options);

  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// TCP mode: listens on 127.0.0.1:`port` (0 = ephemeral, announced as
  /// "listening on 127.0.0.1:<port>"), one session thread per client.
  int RunTcp(uint16_t port, std::ostream& announce);

  /// Pipe mode: line-framed requests on `in_fd`, responses on `out_fd`;
  /// drains in-flight requests after EOF before returning.
  int RunPipe(int in_fd, int out_fd);

  /// Fails every link, answers all outstanding requests with ERR, joins
  /// the prober and reader threads. Idempotent; Run* call it on exit.
  void Shutdown();

  /// Live worker count (tests, bench instrumentation).
  size_t live_workers() const;

 private:
  /// One client request awaiting its worker response.
  struct Pending {
    std::shared_ptr<FrameWriter> client;
    uint64_t client_id = 0;
  };

  /// One worker connection. `up` flips false on failure; the prober owns
  /// the down->up transition (reconnect), any thread may take up->down
  /// (FailWorker).
  struct WorkerLink {
    std::string address;
    int fd = -1;
    std::unique_ptr<FrameWriter> writer;
    std::thread reader;
    std::mutex mutex;  ///< Guards `outstanding`.
    std::unordered_map<uint64_t, Pending> outstanding;
    std::atomic<bool> up{false};
    std::atomic<int64_t> last_pong_ms{0};
  };

  explicit Router(RouterOptions options);

  /// Routes one raw request payload; writes every failure response
  /// (OVERLOADED, no workers, worker lost) to `client` itself.
  void Forward(std::string_view payload,
               const std::shared_ptr<FrameWriter>& client);

  /// Reads worker responses, rewrites ids, and delivers them until the
  /// link dies.
  void ReaderLoop(size_t worker);

  /// Health probes + redials at the probe cadence.
  void ProberLoop();

  /// Takes the link down: off the ring, outstanding answered ERR, socket
  /// shut down to wake its reader. Idempotent per outage.
  void FailWorker(size_t worker);

  /// Dials `address` ("127.0.0.1:PORT" or "PORT"); -1 on failure.
  static int Dial(const std::string& address);

  /// Wires a fresh socket into the link and splices it onto the ring.
  void Activate(size_t worker, int fd);

  /// True when every link has no outstanding request for `client`.
  bool Drained(const std::shared_ptr<FrameWriter>& client) const;

  bool ShouldStop() const {
    return shutdown_.load(std::memory_order_relaxed) ||
           (options_.terminate != nullptr &&
            options_.terminate->load(std::memory_order_relaxed));
  }

  const RouterOptions options_;
  std::vector<std::unique_ptr<WorkerLink>> links_;

  mutable std::mutex ring_mutex_;
  HashRing ring_;

  /// Router-unique forwarded-request ids; 0 is reserved for health
  /// probes, so real ids start at 1.
  std::atomic<uint64_t> next_id_{1};

  std::atomic<bool> shutdown_{false};
  std::atomic<bool> shutdown_done_{false};
  std::thread prober_;
};

/// Command-line surface of tools/tkdc_router.cc.
struct RouterFlags {
  RouterOptions options;
  uint16_t port = 0;
  bool pipe = false;
};

const char* RouterUsage();
Result<RouterFlags> ParseRouterFlags(const std::vector<std::string>& args);

}  // namespace tkdc::serve

#endif  // TKDC_SERVE_ROUTER_H_
