#include "serve/batcher.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/macros.h"
#include "data/dataset.h"
#include "serve/registry.h"

namespace tkdc::serve {
namespace {

std::string FormatDensity(double density) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", density);
  return buffer;
}

}  // namespace

std::string PointKey(std::span<const double> x) {
  return std::string(reinterpret_cast<const char*>(x.data()),
                     x.size() * sizeof(double));
}

size_t ServingModel::effective_n() const {
  const size_t base = base_points();
  if (overlay == nullptr) return base;
  const DeltaOverlay::Snapshot snap = overlay->snapshot();
  return base + snap.inserted - snap.tombstones;
}

size_t ServingModel::dims() const {
  return classifier != nullptr ? classifier->dims() : mc_classifier->dims();
}

std::string ServingModel::algorithm() const {
  return classifier != nullptr ? classifier->name() : std::string("tkdc-mc");
}

size_t ServingModel::base_points() const {
  if (classifier != nullptr) return classifier->training_size();
  size_t total = 0;
  for (size_t c = 0; c < mc_classifier->num_classes(); ++c) {
    total += mc_classifier->class_part(c).training_size();
  }
  return total;
}

void ServingModel::FlushMetrics() {
  if (classifier != nullptr) classifier->FlushMetrics();
  if (mc_classifier != nullptr) mc_classifier->FlushMetrics();
}

MicroBatcher::MicroBatcher(const BatcherOptions& options,
                           std::shared_ptr<ServingModel> model,
                           MetricsRegistry* registry)
    : options_(options), registry_(registry), model_(std::move(model)) {
  TKDC_CHECK_MSG(options_.max_batch >= 1, "max_batch must be >= 1");
  TKDC_CHECK_MSG(options_.queue_depth >= 1, "queue_depth must be >= 1");
  TKDC_CHECK(model_ != nullptr && (model_->classifier != nullptr ||
                                   model_->mc_classifier != nullptr));
  if (registry_ != nullptr) {
    admitted_id_ = registry_->AddCounter(metric_names::kAdmitted);
    shed_id_ = registry_->AddCounter(metric_names::kShed);
    timed_out_id_ = registry_->AddCounter(metric_names::kTimedOut);
    completed_id_ = registry_->AddCounter(metric_names::kCompleted);
    batches_id_ = registry_->AddCounter(metric_names::kBatches);
    reloads_id_ = registry_->AddCounter(metric_names::kReloads);
    overlay_inserts_id_ = registry_->AddCounter(metric_names::kOverlayInserts);
    overlay_deletes_id_ = registry_->AddCounter(metric_names::kOverlayDeletes);
    overlay_rejected_id_ =
        registry_->AddCounter(metric_names::kOverlayRejected);
    stale_queries_id_ = registry_->AddCounter(metric_names::kStaleQueries);
    rebuilds_id_ = registry_->AddCounter(metric_names::kRebuilds);
    batch_size_id_ = registry_->AddHistogram(
        metric_names::kBatchSize, MetricsRegistry::PowerOfTwoBounds(12));
    queue_wait_us_id_ = registry_->AddHistogram(
        metric_names::kQueueWaitUs, MetricsRegistry::DecadeBounds(0, 7));
    shard_ = registry_->NewShard();
  }
}

MicroBatcher::~MicroBatcher() { Stop(); }

void MicroBatcher::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  TKDC_CHECK_MSG(!started_, "MicroBatcher started twice");
  started_ = true;
  dispatcher_ = std::thread([this] { Loop(); });
}

void MicroBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Already stopping; fall through to join below (idempotent callers).
    }
    stopping_ = true;
  }
  wake_cv_.notify_all();
  install_cv_.notify_all();  // Release PublishRebuild waiters.
  if (dispatcher_.joinable()) dispatcher_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  AbsorbShardLocked();
}

bool MicroBatcher::Submit(Request request, Completion done) {
  const Clock::time_point now = Clock::now();
  const int64_t timeout_ms = request.timeout_ms >= 0
                                 ? request.timeout_ms
                                 : options_.default_timeout_ms;
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued_at = now;
  pending.deadline = timeout_ms > 0
                         ? now + std::chrono::milliseconds(timeout_ms)
                         : Clock::time_point::max();
  pending.done = std::move(done);

  Response rejection;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      rejection = Response::Error(pending.request.id, "server draining");
    } else if (queue_.size() >= options_.queue_depth) {
      if (shard_ != nullptr) shard_->Inc(shed_id_);
      ++totals_.shed;
      rejection = Response::Overloaded(pending.request.id);
    } else {
      if (shard_ != nullptr) shard_->Inc(admitted_id_);
      ++totals_.admitted;
      queue_.push_back(std::move(pending));
      // Wake the dispatcher on first arrival; also cut the batch window
      // short the moment a full batch is available.
      wake_cv_.notify_all();
      return true;
    }
  }
  pending.done(rejection);
  return false;
}

void MicroBatcher::SwapModel(std::shared_ptr<ServingModel> model) {
  TKDC_CHECK(model != nullptr && (model->classifier != nullptr ||
                                  model->mc_classifier != nullptr));
  std::lock_guard<std::mutex> lock(mutex_);
  model_ = std::move(model);
  if (shard_ != nullptr) shard_->Inc(reloads_id_);
}

void MicroBatcher::SetRegistry(ModelRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  model_registry_ = registry;
}

void MicroBatcher::SetRebuildRequestCallback(
    std::function<void(const std::string&)> callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  rebuild_request_cb_ = std::move(callback);
}

bool MicroBatcher::PublishRebuild(std::shared_ptr<ServingModel> model,
                                  const std::string& model_id,
                                  size_t consumed_inserted,
                                  size_t consumed_tombstones) {
  TKDC_CHECK(model != nullptr && model->classifier != nullptr &&
             model->overlay != nullptr);
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) return false;
  // One rebuild in flight at a time: callers (the server) serialize via
  // their reload mutex, so a pending slot is never overwritten.
  TKDC_CHECK_MSG(!pending_rebuild_.has_value(),
                 "concurrent PublishRebuild calls");
  const uint64_t ticket = ++rebuild_tickets_;
  pending_rebuild_ = RebuildPublication{std::move(model), model_id,
                                        consumed_inserted, consumed_tombstones,
                                        ticket};
  wake_cv_.notify_all();
  install_cv_.wait(lock, [this, ticket] {
    return stopping_ || installed_ticket_ >= ticket;
  });
  return installed_ticket_ >= ticket;
}

std::shared_ptr<ServingModel> MicroBatcher::model() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return model_;
}

MicroBatcher::Snapshot MicroBatcher::snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  AbsorbShardLocked();
  return totals_;
}

void MicroBatcher::AbsorbShardLocked() {
  if (shard_ == nullptr || registry_ == nullptr) return;
  registry_->Absorb(*shard_);
  shard_->Reset();
}

void MicroBatcher::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    wake_cv_.wait(lock, [this] {
      return stopping_ || !queue_.empty() || pending_rebuild_.has_value();
    });
    if (pending_rebuild_.has_value()) {
      // Install between batches: no queries are in flight, so the old
      // overlay is quiescent and its unconsumed suffix can migrate.
      RebuildPublication publication = std::move(*pending_rebuild_);
      pending_rebuild_.reset();
      // The generation being replaced: the default model for scope-less
      // rebuilds, the registry's resident slot for scoped ones.
      std::shared_ptr<ServingModel> old_model;
      if (publication.model_id.empty()) {
        old_model = model_;
      } else if (model_registry_ != nullptr) {
        old_model = model_registry_->Resident(publication.model_id);
      }
      lock.unlock();
      InstallRebuild(std::move(publication), old_model);
      lock.lock();
      continue;
    }
    if (queue_.empty()) {
      if (stopping_) return;  // Drained.
      continue;
    }
    // Pacing: space dispatches at least batch_pace_us apart. Drains skip
    // it (capacity throttling is pointless once shutdown has begun), and a
    // rebuild publication still interrupts the sleep.
    if (options_.batch_pace_us > 0 && !stopping_) {
      const auto next_allowed =
          last_dispatch_ + std::chrono::microseconds(options_.batch_pace_us);
      if (Clock::now() < next_allowed) {
        wake_cv_.wait_until(lock, next_allowed, [this] {
          return stopping_ || pending_rebuild_.has_value();
        });
        if (stopping_ || pending_rebuild_.has_value()) continue;
      }
    }
    // Hold the batch open for the window unless it fills first. During a
    // drain (stopping_) the window is skipped: latency no longer matters,
    // getting every queued response out does.
    if (options_.batch_window_us > 0 && !stopping_ &&
        queue_.size() < options_.max_batch) {
      const auto window_end =
          Clock::now() + std::chrono::microseconds(options_.batch_window_us);
      wake_cv_.wait_until(lock, window_end, [this] {
        return stopping_ || queue_.size() >= options_.max_batch;
      });
    }
    std::vector<Pending> batch;
    batch.reserve(std::min(queue_.size(), options_.max_batch));
    while (!queue_.empty() && batch.size() < options_.max_batch) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    const std::shared_ptr<ServingModel> model = model_;  // RCU snapshot.
    last_dispatch_ = Clock::now();
    lock.unlock();
    ExecuteBatch(batch, model);
    lock.lock();
    AbsorbShardLocked();
  }
}

void MicroBatcher::ApplyMutation(Pending& pending, ServingModel& model,
                                 bool* rebuild_wanted) {
  const uint64_t id = pending.request.id;
  const std::span<const double> x = pending.request.point;
  if (!model.streaming) {
    pending.done(Response::Error(
        id, "model does not support streaming (INSERT/DELETE)"));
    return;
  }
  DeltaOverlay& overlay = *model.overlay;
  const bool is_insert = pending.request.verb == RequestVerb::kInsert;
  if (!is_insert) {
    // DELETE validation: the point must currently be live, and removing it
    // must leave a model (>= 2 points keeps every engine's invariants).
    if (model.effective_n() <= 2) {
      pending.done(Response::Error(
          id, "refusing DELETE: model would fall below 2 points"));
      return;
    }
    if (model.live_counts != nullptr) {
      const auto it = model.live_counts->find(PointKey(x));
      if (it == model.live_counts->end() || it->second <= 0) {
        pending.done(
            Response::Error(id, "DELETE of a point not in the model"));
        return;
      }
    }
  }
  const bool appended = is_insert ? overlay.Insert(x) : overlay.AddTombstone(x);
  if (!appended) {
    *rebuild_wanted = true;  // Capacity pressure: ask for a rebuild now.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (shard_ != nullptr) shard_->Inc(overlay_rejected_id_);
    }
    pending.done(Response::Error(
        id, "overlay full; retry after the rebuild (or FLUSH)"));
    return;
  }
  if (model.live_counts != nullptr) {
    (*model.live_counts)[PointKey(x)] += is_insert ? 1 : -1;
  }
  if (is_insert && model.estimator != nullptr) {
    // Feed the arrival's merged density (overlay included — the point is
    // already published, so this is its post-insert density; the K(0)/n
    // self-term is O(1/n) and washes out against the staleness widening)
    // into the online t(p) reservoir. Quiescent: mutations are applied
    // one at a time on this thread with no queries in flight.
    model.estimator->Observe(
        model.classifier->EstimateDensityWithOverlay(x, overlay));
  }
  if (model.rebuild_trigger > 0 &&
      overlay.snapshot().size() >= model.rebuild_trigger) {
    *rebuild_wanted = true;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shard_ != nullptr) {
      shard_->Inc(is_insert ? overlay_inserts_id_ : overlay_deletes_id_);
    }
  }
  pending.done(Response::Ok(id, is_insert ? "INSERTED" : "DELETED"));
}

void MicroBatcher::InstallRebuild(
    RebuildPublication publication,
    const std::shared_ptr<ServingModel>& old_model) {
  ServingModel& fresh = *publication.model;
  // Migrate every overlay row the rebuild's snapshot did not consume:
  // mutations that raced the retrain survive into the new generation.
  // Rows below the published counts are immutable and this thread is the
  // only writer of the new overlay, so no locking is needed.
  if (old_model != nullptr && old_model->overlay != nullptr &&
      fresh.overlay != nullptr) {
    const DeltaOverlay& old_overlay = *old_model->overlay;
    std::vector<double> row(old_overlay.dims());
    const size_t inserted = old_overlay.inserted_count();
    for (size_t i = publication.consumed_inserted; i < inserted; ++i) {
      old_overlay.CopyInsertedRow(i, row);
      TKDC_CHECK_MSG(fresh.overlay->Insert(row),
                     "rebuilt overlay cannot hold the migrated suffix");
      if (fresh.live_counts != nullptr) ++(*fresh.live_counts)[PointKey(row)];
    }
    const size_t tombstones = old_overlay.tombstone_count();
    for (size_t i = publication.consumed_tombstones; i < tombstones; ++i) {
      old_overlay.CopyTombstoneRow(i, row);
      TKDC_CHECK_MSG(fresh.overlay->AddTombstone(row),
                     "rebuilt overlay cannot hold the migrated suffix");
      if (fresh.live_counts != nullptr) --(*fresh.live_counts)[PointKey(row)];
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (publication.model_id.empty()) {
    model_ = std::move(publication.model);
  } else if (model_registry_ != nullptr) {
    const Status status = model_registry_->Publish(publication.model_id,
                                                   std::move(publication.model));
    if (!status.ok()) {
      // The slot was UNLOADed while the rebuild trained; the fresh
      // generation has no home and is simply dropped.
      std::fprintf(stderr, "rebuild install for @%s dropped: %s\n",
                   publication.model_id.c_str(), status.message().c_str());
    }
  }
  installed_ticket_ = publication.ticket;
  if (shard_ != nullptr) shard_->Inc(rebuilds_id_);
  install_cv_.notify_all();
}

void MicroBatcher::ExecuteBatch(
    std::vector<Pending>& batch,
    const std::shared_ptr<ServingModel>& default_model) {
  const Clock::time_point drained_at = Clock::now();

  // Group by model scope in arrival order; "@default" is the scope-less
  // slot. Group count is bounded by batch size, so linear lookup is fine.
  std::vector<std::pair<std::string, std::vector<Pending*>>> groups;
  for (Pending& pending : batch) {
    const std::string& raw = pending.request.model_id;
    const std::string scope = raw == kDefaultModelId ? std::string() : raw;
    std::vector<Pending*>* group = nullptr;
    for (auto& [id, members] : groups) {
      if (id == scope) {
        group = &members;
        break;
      }
    }
    if (group == nullptr) {
      groups.emplace_back(scope, std::vector<Pending*>());
      group = &groups.back().second;
    }
    group->push_back(&pending);
  }

  size_t executed = 0;
  size_t stale_queries = 0;
  std::vector<std::string> rebuild_ids;
  for (auto& [scope, group] : groups) {
    std::shared_ptr<ServingModel> resolved;
    if (scope.empty()) {
      resolved = default_model;
    } else if (model_registry_ == nullptr) {
      for (Pending* pending : group) {
        pending->done(Response::Error(
            pending->request.id,
            "no model registry (start the server with --model-dir)"));
      }
      continue;
    } else {
      // Resolve at drain time: a cold slot lazy-loads once per batch, and
      // a bad scope errors its own group without touching the others.
      auto acquired = model_registry_->Acquire(scope, group.size());
      if (!acquired.ok()) {
        for (Pending* pending : group) {
          pending->done(Response::Error(pending->request.id,
                                        acquired.status().message()));
        }
        continue;
      }
      resolved = acquired.take();
    }
    executed += ExecuteGroup(group, *resolved, scope, drained_at, rebuild_ids,
                             &stale_queries);
  }

  std::function<void(const std::string&)> rebuild_cb;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (executed != 0) {
      totals_.completed += executed;
      ++totals_.batches;
      if (shard_ != nullptr) {
        shard_->Inc(completed_id_, executed);
        shard_->Inc(batches_id_);
        if (stale_queries > 0) shard_->Inc(stale_queries_id_, stale_queries);
        shard_->Observe(batch_size_id_, static_cast<double>(executed));
        for (const Pending& pending : batch) {
          const auto wait =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  drained_at - pending.enqueued_at);
          shard_->Observe(queue_wait_us_id_,
                          static_cast<double>(wait.count()));
        }
      }
    }
    if (!rebuild_ids.empty()) rebuild_cb = rebuild_request_cb_;
  }
  // Fired outside the lock; the callback just flags the rebuild worker.
  if (rebuild_cb) {
    for (const std::string& id : rebuild_ids) rebuild_cb(id);
  }
}

size_t MicroBatcher::ExecuteGroup(std::vector<Pending*>& group,
                                  ServingModel& model,
                                  const std::string& scope,
                                  Clock::time_point drained_at,
                                  std::vector<std::string>& rebuild_ids,
                                  size_t* group_stale_queries) {
  const bool multiclass = model.multiclass();
  const size_t dims = model.dims();

  // Partition: expire deadlines and reject dimension mismatches first so
  // the batch datasets hold only executable rows. Verbs aimed at the other
  // model kind are rejected here too — a mixed CLASSIFY/CLASSIFY_MC stream
  // through one batcher answers each request against the right surface or
  // errors it, never misroutes it. Mutations apply immediately, in arrival
  // order, so every query in this batch folds a single quiescent overlay
  // state that includes them.
  std::vector<Pending*> classify, classify_training, estimate, classify_mc;
  size_t executed = 0;
  bool rebuild_wanted = false;
  for (Pending* pending_ptr : group) {
    Pending& pending = *pending_ptr;
    if (drained_at > pending.deadline) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shard_ != nullptr) shard_->Inc(timed_out_id_);
        ++totals_.timed_out;
      }
      pending.done(Response::Timeout(pending.request.id));
      continue;
    }
    if (pending.request.point.size() != dims) {
      Errorf error;
      error << "point has " << pending.request.point.size()
            << " dims, model has " << dims;
      pending.done(Response::Error(pending.request.id,
                                   static_cast<Status>(error).message()));
      continue;
    }
    const bool single_only =
        pending.request.verb == RequestVerb::kClassify ||
        pending.request.verb == RequestVerb::kClassifyTraining ||
        pending.request.verb == RequestVerb::kEstimateDensity;
    if (multiclass && single_only) {
      pending.done(Response::Error(
          pending.request.id,
          "model is multi-class; use CLASSIFY_MC"));
      continue;
    }
    if (!multiclass && pending.request.verb == RequestVerb::kClassifyMc) {
      pending.done(Response::Error(
          pending.request.id,
          "model is single-class; use CLASSIFY/CLASSIFY_TRAINING/ESTIMATE"));
      continue;
    }
    switch (pending.request.verb) {
      case RequestVerb::kClassify:
        classify.push_back(&pending);
        break;
      case RequestVerb::kClassifyTraining:
        classify_training.push_back(&pending);
        break;
      case RequestVerb::kClassifyMc:
        classify_mc.push_back(&pending);
        break;
      case RequestVerb::kEstimateDensity:
        estimate.push_back(&pending);
        break;
      case RequestVerb::kInsert:
      case RequestVerb::kDelete:
        // Multi-class generations never stream; ApplyMutation answers the
        // not-streaming error for them.
        ApplyMutation(pending, model, &rebuild_wanted);
        ++executed;
        break;
      default:
        // Control verbs are handled at the session layer and never
        // enqueued; seeing one here is a programmer error.
        pending.done(
            Response::Error(pending.request.id, "verb not batchable"));
        break;
    }
  }

  // Overlay state is frozen for the rest of the batch (mutation
  // quiescence): every query group folds the same Delta.
  const bool use_overlay =
      model.streaming && !model.overlay->snapshot().empty();
  size_t stale_queries = 0;
  const auto run_classify_group = [&](std::vector<Pending*>& group,
                                      bool training) {
    if (group.empty()) return;
    DensityClassifier& classifier = *model.classifier;
    Dataset queries(dims);
    queries.Reserve(group.size());
    for (const Pending* pending : group) {
      queries.AppendRow(pending->request.point);
    }
    const std::vector<Classification> labels =
        use_overlay
            ? classifier.ClassifyBatchWithOverlay(queries, *model.overlay,
                                                  training)
            : training ? classifier.ClassifyTrainingBatch(queries)
                       : classifier.ClassifyBatch(queries);
    for (size_t i = 0; i < group.size(); ++i) {
      group[i]->done(Response::Ok(
          group[i]->request.id,
          labels[i] == Classification::kHigh ? "HIGH" : "LOW"));
    }
    executed += group.size();
    if (use_overlay) stale_queries += group.size();
  };
  run_classify_group(classify, /*training=*/false);
  run_classify_group(classify_training, /*training=*/true);
  if (!classify_mc.empty()) {
    MultiClassClassifier& mc = *model.mc_classifier;
    Dataset queries(dims);
    queries.Reserve(classify_mc.size());
    for (const Pending* pending : classify_mc) {
      queries.AppendRow(pending->request.point);
    }
    const std::vector<uint32_t> labels = mc.ClassifyBatch(queries);
    for (size_t i = 0; i < classify_mc.size(); ++i) {
      classify_mc[i]->done(Response::Ok(classify_mc[i]->request.id,
                                        mc.class_labels()[labels[i]]));
    }
    executed += classify_mc.size();
  }
  for (Pending* pending : estimate) {
    DensityClassifier& classifier = *model.classifier;
    const double density =
        use_overlay
            ? classifier.EstimateDensityWithOverlay(pending->request.point,
                                                    *model.overlay)
            : classifier.EstimateDensity(pending->request.point);
    pending->done(
        Response::Ok(pending->request.id, FormatDensity(density)));
    ++executed;
    if (use_overlay) ++stale_queries;
  }
  model.FlushMetrics();  // Query-path shard → registry (no-op if
                         // detached).

  *group_stale_queries += stale_queries;
  if (rebuild_wanted) rebuild_ids.push_back(scope);
  return executed;
}

}  // namespace tkdc::serve
