#include "serve/batcher.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/macros.h"
#include "data/dataset.h"

namespace tkdc::serve {
namespace {

std::string FormatDensity(double density) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", density);
  return buffer;
}

}  // namespace

MicroBatcher::MicroBatcher(const BatcherOptions& options,
                           std::shared_ptr<ServingModel> model,
                           MetricsRegistry* registry)
    : options_(options), registry_(registry), model_(std::move(model)) {
  TKDC_CHECK_MSG(options_.max_batch >= 1, "max_batch must be >= 1");
  TKDC_CHECK_MSG(options_.queue_depth >= 1, "queue_depth must be >= 1");
  TKDC_CHECK(model_ != nullptr && model_->classifier != nullptr);
  if (registry_ != nullptr) {
    admitted_id_ = registry_->AddCounter(metric_names::kAdmitted);
    shed_id_ = registry_->AddCounter(metric_names::kShed);
    timed_out_id_ = registry_->AddCounter(metric_names::kTimedOut);
    completed_id_ = registry_->AddCounter(metric_names::kCompleted);
    batches_id_ = registry_->AddCounter(metric_names::kBatches);
    reloads_id_ = registry_->AddCounter(metric_names::kReloads);
    batch_size_id_ = registry_->AddHistogram(
        metric_names::kBatchSize, MetricsRegistry::PowerOfTwoBounds(12));
    queue_wait_us_id_ = registry_->AddHistogram(
        metric_names::kQueueWaitUs, MetricsRegistry::DecadeBounds(0, 7));
    shard_ = registry_->NewShard();
  }
}

MicroBatcher::~MicroBatcher() { Stop(); }

void MicroBatcher::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  TKDC_CHECK_MSG(!started_, "MicroBatcher started twice");
  started_ = true;
  dispatcher_ = std::thread([this] { Loop(); });
}

void MicroBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Already stopping; fall through to join below (idempotent callers).
    }
    stopping_ = true;
  }
  wake_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  AbsorbShardLocked();
}

bool MicroBatcher::Submit(Request request, Completion done) {
  const Clock::time_point now = Clock::now();
  const int64_t timeout_ms = request.timeout_ms >= 0
                                 ? request.timeout_ms
                                 : options_.default_timeout_ms;
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued_at = now;
  pending.deadline = timeout_ms > 0
                         ? now + std::chrono::milliseconds(timeout_ms)
                         : Clock::time_point::max();
  pending.done = std::move(done);

  Response rejection;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      rejection = Response::Error(pending.request.id, "server draining");
    } else if (queue_.size() >= options_.queue_depth) {
      if (shard_ != nullptr) shard_->Inc(shed_id_);
      ++totals_.shed;
      rejection = Response::Overloaded(pending.request.id);
    } else {
      if (shard_ != nullptr) shard_->Inc(admitted_id_);
      ++totals_.admitted;
      queue_.push_back(std::move(pending));
      // Wake the dispatcher on first arrival; also cut the batch window
      // short the moment a full batch is available.
      wake_cv_.notify_all();
      return true;
    }
  }
  pending.done(rejection);
  return false;
}

void MicroBatcher::SwapModel(std::shared_ptr<ServingModel> model) {
  TKDC_CHECK(model != nullptr && model->classifier != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  model_ = std::move(model);
  if (shard_ != nullptr) shard_->Inc(reloads_id_);
}

std::shared_ptr<ServingModel> MicroBatcher::model() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return model_;
}

MicroBatcher::Snapshot MicroBatcher::snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  AbsorbShardLocked();
  return totals_;
}

void MicroBatcher::AbsorbShardLocked() {
  if (shard_ == nullptr || registry_ == nullptr) return;
  registry_->Absorb(*shard_);
  shard_->Reset();
}

void MicroBatcher::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    wake_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;  // Drained.
      continue;
    }
    // Hold the batch open for the window unless it fills first. During a
    // drain (stopping_) the window is skipped: latency no longer matters,
    // getting every queued response out does.
    if (options_.batch_window_us > 0 && !stopping_ &&
        queue_.size() < options_.max_batch) {
      const auto window_end =
          Clock::now() + std::chrono::microseconds(options_.batch_window_us);
      wake_cv_.wait_until(lock, window_end, [this] {
        return stopping_ || queue_.size() >= options_.max_batch;
      });
    }
    std::vector<Pending> batch;
    batch.reserve(std::min(queue_.size(), options_.max_batch));
    while (!queue_.empty() && batch.size() < options_.max_batch) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    const std::shared_ptr<ServingModel> model = model_;  // RCU snapshot.
    lock.unlock();
    ExecuteBatch(batch, *model);
    lock.lock();
    AbsorbShardLocked();
  }
}

void MicroBatcher::ExecuteBatch(std::vector<Pending>& batch,
                                ServingModel& model) {
  DensityClassifier& classifier = *model.classifier;
  const size_t dims = classifier.dims();
  const Clock::time_point drained_at = Clock::now();

  // Partition: expire deadlines and reject dimension mismatches first so
  // the batch datasets hold only executable rows.
  std::vector<Pending*> classify, classify_training, estimate;
  for (Pending& pending : batch) {
    if (drained_at > pending.deadline) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shard_ != nullptr) shard_->Inc(timed_out_id_);
        ++totals_.timed_out;
      }
      pending.done(Response::Timeout(pending.request.id));
      continue;
    }
    if (pending.request.point.size() != dims) {
      Errorf error;
      error << "point has " << pending.request.point.size()
            << " dims, model has " << dims;
      pending.done(Response::Error(pending.request.id,
                                   static_cast<Status>(error).message()));
      continue;
    }
    switch (pending.request.verb) {
      case RequestVerb::kClassify:
        classify.push_back(&pending);
        break;
      case RequestVerb::kClassifyTraining:
        classify_training.push_back(&pending);
        break;
      case RequestVerb::kEstimateDensity:
        estimate.push_back(&pending);
        break;
      default:
        // Control verbs are handled at the session layer and never
        // enqueued; seeing one here is a programmer error.
        pending.done(
            Response::Error(pending.request.id, "verb not batchable"));
        break;
    }
  }

  size_t executed = 0;
  const auto run_classify_group = [&](std::vector<Pending*>& group,
                                      bool training) {
    if (group.empty()) return;
    Dataset queries(dims);
    queries.Reserve(group.size());
    for (const Pending* pending : group) {
      queries.AppendRow(pending->request.point);
    }
    const std::vector<Classification> labels =
        training ? classifier.ClassifyTrainingBatch(queries)
                 : classifier.ClassifyBatch(queries);
    for (size_t i = 0; i < group.size(); ++i) {
      group[i]->done(Response::Ok(
          group[i]->request.id,
          labels[i] == Classification::kHigh ? "HIGH" : "LOW"));
    }
    executed += group.size();
  };
  run_classify_group(classify, /*training=*/false);
  run_classify_group(classify_training, /*training=*/true);
  for (Pending* pending : estimate) {
    const double density = classifier.EstimateDensity(pending->request.point);
    pending->done(
        Response::Ok(pending->request.id, FormatDensity(density)));
    ++executed;
  }
  classifier.FlushMetrics();  // Query-path shard → registry (no-op if
                              // detached).

  if (executed == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  totals_.completed += executed;
  ++totals_.batches;
  if (shard_ == nullptr) return;
  shard_->Inc(completed_id_, executed);
  shard_->Inc(batches_id_);
  shard_->Observe(batch_size_id_, static_cast<double>(executed));
  for (const Pending& pending : batch) {
    const auto wait = std::chrono::duration_cast<std::chrono::microseconds>(
        drained_at - pending.enqueued_at);
    shard_->Observe(queue_wait_us_id_, static_cast<double>(wait.count()));
  }
}

}  // namespace tkdc::serve
