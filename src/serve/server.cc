#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tkdc/classifier.h"
#include "tkdc_api.h"

namespace tkdc::serve {
namespace {

/// Poll interval of the accept loop; bounds shutdown/reload latency.
constexpr int kAcceptPollMs = 50;

/// Reservoir size of the online threshold estimator.
constexpr size_t kThresholdReservoir = 1024;

/// Failure probability of the online threshold band.
constexpr double kThresholdDelta = 0.05;

int64_t NowUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() { Shutdown(); }

Result<std::unique_ptr<Server>> Server::Create(ServerOptions options) {
  // A client that disconnects mid-response must not kill the daemon with
  // SIGPIPE; failed writes are handled per-connection (FrameWriter).
  std::signal(SIGPIPE, SIG_IGN);
  std::unique_ptr<Server> server(new Server(std::move(options)));
  Server* raw = server.get();
  auto model = server->LoadServingModel(server->options_.model_path);
  if (!model.ok()) return model.status();
  // Named slots resolve through the same loader as the default model, so
  // a registry generation gets identical threading/metrics/streaming
  // setup. Registered metrics appear append-only, which the late
  // registration contract permits mid-serving.
  RegistryOptions registry_options;
  registry_options.max_resident_bytes = server->options_.max_resident_bytes;
  registry_options.preload = server->options_.preload_models;
  server->model_registry_ = std::make_unique<ModelRegistry>(
      registry_options,
      [raw](const std::string& path)
          -> Result<std::shared_ptr<ServingModel>> {
        return raw->LoadServingModel(path);
      },
      &server->registry_);
  if (!server->options_.model_dir.empty()) {
    const Status scan =
        server->model_registry_->ScanModelDir(server->options_.model_dir);
    if (!scan.ok()) return scan;
  }
  // Order matters: the model attachment above registered the query-path
  // metric schema; the batcher registers the serve schema and then sizes
  // its shard, so every registration must precede it.
  server->batcher_ = std::make_unique<MicroBatcher>(
      server->options_.batcher, model.take(), &server->registry_);
  server->batcher_->SetRegistry(server->model_registry_.get());
  // The rebuild worker always runs: even when the default model is
  // static, LOAD can register streaming slots at any time.
  server->batcher_->SetRebuildRequestCallback(
      [raw](const std::string& id) { raw->RequestRebuild(id); });
  server->rebuild_worker_ = std::thread([raw] { raw->RebuildWorker(); });
  server->batcher_->Start();
  return server;
}

Result<std::shared_ptr<ServingModel>> Server::LoadServingModel(
    const std::string& path) {
  auto loaded = api::LoadAny(path);
  if (!loaded.ok()) return loaded.status();
  api::ModelHandle handle = loaded.take();
  handle.SetNumThreads(options_.num_threads);
  handle.AttachMetrics(&registry_);
  auto model = std::make_shared<ServingModel>();
  model->source_path = path;
  if (handle.kind() == ModelKind::kMultiClass) {
    model->mc_classifier = handle.TakeMulti();
  } else {
    model->classifier = handle.TakeSingle();
  }
  model->generation =
      generation_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  model->last_rebuild_ms = NowUnixMs();
  // Multi-class generations never stream: mutations have no class label in
  // the wire grammar, so INSERT/DELETE/FLUSH are answered with ERR.
  if (options_.overlay_capacity > 0 && model->classifier != nullptr &&
      model->classifier->supports_overlay()) {
    // Fresh streaming generation: a (re)load discards any prior overlay —
    // the file on disk is the new truth — and seeds a new estimator.
    SetUpStreaming(*model, nullptr);
  }
  return model;
}

void Server::SetUpStreaming(
    ServingModel& model, std::shared_ptr<OnlineThresholdEstimator> estimator) {
  DensityClassifier& classifier = *model.classifier;
  const size_t dims = classifier.dims();
  model.overlay =
      std::make_shared<DeltaOverlay>(dims, options_.overlay_capacity);
  model.streaming = true;

  Dataset base(dims);
  if (classifier.ExportTrainingData(&base)) {
    model.base_data = std::make_shared<const Dataset>(std::move(base));
    model.live_counts =
        std::make_unique<std::unordered_map<std::string, int64_t>>();
    model.live_counts->reserve(model.base_data->size());
    for (size_t i = 0; i < model.base_data->size(); ++i) {
      ++(*model.live_counts)[PointKey(model.base_data->Row(i))];
    }
    if (options_.rebuild_fraction > 0.0) {
      const double fraction =
          options_.rebuild_fraction *
          static_cast<double>(model.base_data->size());
      model.rebuild_trigger =
          std::min(options_.overlay_capacity,
                   std::max<size_t>(16, static_cast<size_t>(fraction)));
    }
  }

  // Seed densities for the online t(p) reservoir: the cached training
  // densities when the model carries them (tkdc/nocut), else fresh
  // estimates over a prefix of the exported base rows. Engines exporting
  // neither (binned) start with an empty reservoir that fills from
  // arrivals.
  std::vector<double> seed;
  if (const auto* tkdc_classifier =
          dynamic_cast<const TkdcClassifier*>(&classifier);
      tkdc_classifier != nullptr &&
      !tkdc_classifier->training_densities().empty()) {
    const auto& densities = tkdc_classifier->training_densities();
    seed.assign(densities.begin(), densities.end());
  } else if (model.base_data != nullptr) {
    const size_t rows =
        std::min(kThresholdReservoir, model.base_data->size());
    seed.reserve(rows);
    for (size_t i = 0; i < rows; ++i) {
      seed.push_back(classifier.EstimateDensity(model.base_data->Row(i)));
    }
  }
  if (estimator == nullptr) {
    auto options = api::RecoverTrainOptions(classifier);
    const double p = options.ok() ? options.value().config.p : 0.01;
    estimator = std::make_shared<OnlineThresholdEstimator>(
        p, kThresholdDelta, kThresholdReservoir,
        options.ok() ? options.value().config.seed : 0);
  }
  estimator->Reseed(seed);
  model.estimator = std::move(estimator);
}

Status Server::Reload(const std::string& path) {
  // Serialized: concurrent RELOAD requests (or RELOAD racing SIGHUP) load
  // one at a time; each publishes atomically via SwapModel.
  std::lock_guard<std::mutex> lock(reload_mutex_);
  const std::string& effective = path.empty() ? options_.model_path : path;
  auto model = LoadServingModel(effective);
  if (!model.ok()) return model.status();
  batcher_->SwapModel(model.take());
  return Status::Ok();
}

Status Server::ReloadScoped(const std::string& id, const std::string& path) {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  std::string effective = path;
  if (effective.empty()) {
    for (const ModelRegistry::Entry& entry : model_registry_->List()) {
      if (entry.id == id) {
        effective = entry.path;
        break;
      }
    }
    if (effective.empty()) {
      return Errorf() << "unknown model \"" << id << "\"";
    }
  }
  auto model = LoadServingModel(effective);
  if (!model.ok()) return model.status();
  return model_registry_->Publish(id, model.take());
}

Result<uint64_t> Server::RebuildNow(const std::string& model_id) {
  // Same lock as Reload: publications are serialized, so at most one
  // PublishRebuild is pending at any time (the batcher checks this).
  std::lock_guard<std::mutex> lock(reload_mutex_);
  std::shared_ptr<ServingModel> old_model;
  if (model_id.empty()) {
    old_model = batcher_->model();
  } else {
    // Resident slots only: a rebuild folds live overlay state, which a
    // non-resident (or unknown) slot does not have.
    old_model = model_registry_->Resident(model_id);
    if (old_model == nullptr) {
      return Errorf() << "model \"" << model_id
                      << "\" is not resident; nothing to flush";
    }
  }
  if (!old_model->streaming) {
    return Errorf() << "model is not streaming-capable; nothing to flush";
  }
  if (old_model->base_data == nullptr) {
    return Errorf() << "model retains no training points ("
                    << old_model->classifier->name()
                    << "); cannot rebuild from the overlay";
  }
  const DeltaOverlay& overlay = *old_model->overlay;
  const DeltaOverlay::Snapshot snap = overlay.snapshot();

  // Merge: base ∪ inserted[0, snap.inserted) minus one point per
  // tombstone (coordinate multiset match — the same identity the kernel
  // cancellation uses). Tombstones loaded before inserts in the snapshot,
  // so every tombstone's target is present.
  const Dataset& base = *old_model->base_data;
  const size_t dims = base.dims();
  std::unordered_map<std::string, int64_t> tombstones;
  std::vector<double> row(dims);
  for (size_t i = 0; i < snap.tombstones; ++i) {
    overlay.CopyTombstoneRow(i, row);
    ++tombstones[PointKey(std::span<const double>(row))];
  }
  const auto keep = [&tombstones](std::span<const double> r) {
    if (tombstones.empty()) return true;
    const auto it = tombstones.find(PointKey(r));
    if (it == tombstones.end() || it->second <= 0) return true;
    --it->second;
    return false;
  };
  Dataset merged(dims);
  merged.Reserve(base.size() + snap.inserted);
  for (size_t i = 0; i < base.size(); ++i) {
    const std::span<const double> r = base.Row(i);
    if (keep(r)) merged.AppendRow(r);
  }
  for (size_t i = 0; i < snap.inserted; ++i) {
    overlay.CopyInsertedRow(i, row);
    if (keep(row)) merged.AppendRow(row);
  }
  if (merged.size() < 2) {
    return Errorf() << "rebuild needs at least 2 points, overlay leaves "
                    << merged.size();
  }

  auto options = api::RecoverTrainOptions(*old_model->classifier);
  if (!options.ok()) return options.status();
  auto trained = api::Train(merged, options.value());
  if (!trained.ok()) return trained.status();

  auto fresh = std::make_shared<ServingModel>();
  fresh->classifier = trained.take();
  fresh->source_path = old_model->source_path;
  fresh->classifier->SetNumThreads(options_.num_threads);
  fresh->classifier->AttachMetrics(&registry_);
  fresh->generation =
      generation_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  fresh->last_rebuild_ms = NowUnixMs();
  // Carry the estimator: SetUpStreaming reseeds it from the rebuilt
  // model, re-tightening the band the staleness widening had loosened.
  SetUpStreaming(*fresh, old_model->estimator);
  const uint64_t new_base = fresh->classifier->training_size();
  if (!batcher_->PublishRebuild(std::move(fresh), model_id, snap.inserted,
                                snap.tombstones)) {
    return Errorf() << "server stopping; rebuild not installed";
  }
  return new_base;
}

void Server::RequestRebuild(const std::string& model_id) {
  {
    std::lock_guard<std::mutex> lock(rebuild_mutex_);
    if (rebuild_worker_exit_) return;
    for (const std::string& pending : rebuild_requested_ids_) {
      if (pending == model_id) return;  // Already queued.
    }
    rebuild_requested_ids_.push_back(model_id);
  }
  rebuild_cv_.notify_one();
}

void Server::RebuildWorker() {
  std::unique_lock<std::mutex> lock(rebuild_mutex_);
  while (true) {
    rebuild_cv_.wait(lock, [this] {
      return rebuild_worker_exit_ || !rebuild_requested_ids_.empty();
    });
    if (rebuild_worker_exit_) return;
    const std::string model_id = rebuild_requested_ids_.front();
    rebuild_requested_ids_.erase(rebuild_requested_ids_.begin());
    lock.unlock();
    const Result<uint64_t> result = RebuildNow(model_id);
    if (!result.ok()) {
      // Keep serving base + overlay; an operator-visible note, never an
      // abort. The next trigger retries.
      std::fprintf(stderr, "background rebuild%s%s failed: %s\n",
                   model_id.empty() ? "" : " for @",
                   model_id.empty() ? "" : model_id.c_str(),
                   result.status().message().c_str());
    }
    lock.lock();
  }
}

void Server::PollReloadFlag() {
  if (options_.reload == nullptr ||
      !options_.reload->exchange(false, std::memory_order_relaxed)) {
    return;
  }
  const Status status = Reload("");
  if (!status.ok()) {
    // Keep serving the old model; the operator asked for a swap that
    // failed, which must not take the daemon down.
    std::fprintf(stderr, "reload failed: %s\n", status.message().c_str());
  }
}

void Server::WriteModelJson(std::ostream& json,
                            const ServingModel& model) const {
  const DeltaOverlay::Snapshot overlay =
      model.overlay != nullptr ? model.overlay->snapshot()
                               : DeltaOverlay::Snapshot{};
  const size_t base_n = model.base_points();
  json << "{\"generation\":" << model.generation
       << ",\"algorithm\":\"" << model.algorithm() << "\""
       << ",\"base_points\":" << base_n
       << ",\"streaming\":" << (model.streaming ? "true" : "false")
       << ",\"overlay_inserted\":" << overlay.inserted
       << ",\"overlay_tombstones\":" << overlay.tombstones
       << ",\"last_rebuild_unix_ms\":" << model.last_rebuild_ms;
  const auto budget_json = [&json](const ErrorBudget& budget,
                                   const CoresetInfo& coreset,
                                   uint64_t points) {
    json << ",\"error_budget\":{\"total\":" << budget.total
         << ",\"traversal\":" << budget.traversal
         << ",\"coreset\":" << budget.coreset
         << ",\"fast_math\":" << budget.fast_math << "}"
         << ",\"coreset\":{\"enabled\":"
         << (coreset.enabled ? "true" : "false")
         << ",\"points\":" << points
         << ",\"original_points\":" << coreset.original_size
         << ",\"compression_ratio\":" << coreset.CompressionRatio(points)
         << ",\"achieved_error\":" << coreset.achieved_error
         << ",\"halvings\":" << coreset.halvings << "}";
  };
  double coreset_band = 0.0;
  if (model.classifier != nullptr) {
    json << ",\"trained_threshold\":" << model.classifier->threshold();
    if (const auto* tkdc_classifier = dynamic_cast<const TkdcClassifier*>(
            model.classifier.get())) {
      const CoresetInfo& coreset = tkdc_classifier->coreset_info();
      budget_json(tkdc_classifier->error_budget(), coreset,
                  tkdc_classifier->training_size());
      if (coreset.enabled) {
        coreset_band = tkdc_classifier->error_budget().coreset;
      }
    }
  } else {
    const MultiClassClassifier& mc = *model.mc_classifier;
    json << ",\"classes\":" << mc.num_classes();
    // Aggregate across classes: summed point counts, and compression
    // counts as engaged if any class compressed.
    CoresetInfo merged;
    uint64_t points = 0;
    for (size_t c = 0; c < mc.num_classes(); ++c) {
      const CoresetInfo& part = mc.class_part(c).coreset_info();
      merged.enabled = merged.enabled || part.enabled;
      merged.original_size += part.original_size;
      merged.achieved_error =
          std::max(merged.achieved_error, part.achieved_error);
      merged.halvings = std::max(merged.halvings, part.halvings);
      points += mc.class_part(c).training_size();
    }
    budget_json(mc.config().ResolveBudget(), merged, points);
  }
  if (model.estimator != nullptr) {
    const double n_eff = static_cast<double>(base_n) +
                         static_cast<double>(overlay.inserted) -
                         static_cast<double>(overlay.tombstones);
    const double staleness =
        n_eff > 0.0 ? static_cast<double>(overlay.size()) / n_eff : 0.0;
    // A compressed model's densities (and so the reservoir feeding the
    // online estimator) deviate from the exact KDE by up to the coreset
    // share; widen the published band by it so the interval still
    // covers the exact-KDE threshold.
    const OnlineThresholdEstimator::Band band =
        model.estimator->Estimate(staleness, coreset_band);
    json << ",\"online_threshold\":" << band.threshold
         << ",\"online_threshold_lower\":" << band.lower
         << ",\"online_threshold_upper\":" << band.upper
         << ",\"online_threshold_sample\":" << band.sample_size
         << ",\"observed_inserts\":" << band.observed;
  }
  json << "}";
}

void Server::Dispatch(Request request,
                      const std::shared_ptr<FrameWriter>& writer) {
  // "@default" means the batcher's own model everywhere.
  const std::string scope =
      request.model_id == kDefaultModelId ? "" : request.model_id;
  switch (request.verb) {
    case RequestVerb::kPing:
      writer->Write(Response::Ok(request.id, "PONG"));
      return;
    case RequestVerb::kStats: {
      // snapshot() folds pending serve counters into the registry first,
      // so the JSON is current as of this request.
      batcher_->snapshot();
      std::ostringstream json;
      json << std::setprecision(17);
      if (!scope.empty()) {
        const std::shared_ptr<ServingModel> model =
            model_registry_->Resident(scope);
        if (model == nullptr) {
          writer->Write(Response::Error(
              request.id, "model \"" + scope +
                              "\" is not resident (unknown, unloaded, or "
                              "evicted)"));
          return;
        }
        json << "{\"model_id\":\"" << scope << "\",\"model\":";
        WriteModelJson(json, *model);
      } else {
        const std::shared_ptr<ServingModel> model = batcher_->model();
        // The flat block keeps its PR-9 shape for scope-less clients; the
        // "models" map nests one block per resident model.
        json << "{\"model\":";
        WriteModelJson(json, *model);
        json << ",\"models\":{\"" << kDefaultModelId << "\":";
        WriteModelJson(json, *model);
        for (const std::string& id : model_registry_->ResidentIds()) {
          const std::shared_ptr<ServingModel> resident =
              model_registry_->Resident(id);
          if (resident == nullptr) continue;  // Evicted since listing.
          json << ",\"" << id << "\":";
          WriteModelJson(json, *resident);
        }
        json << "}";
      }
      json << ",\"metrics\":";
      registry_.WriteJson(json);
      json << "}";
      writer->Write(Response::Ok(request.id, json.str()));
      return;
    }
    case RequestVerb::kModels: {
      const std::shared_ptr<ServingModel> model = batcher_->model();
      std::ostringstream json;
      json << "{\"models\":[{\"id\":\"" << kDefaultModelId << "\",\"path\":\""
           << model->source_path
           << "\",\"resident\":true,\"generation\":" << model->generation
           << ",\"approx_bytes\":" << ApproxModelBytes(*model) << "}";
      for (const ModelRegistry::Entry& entry : model_registry_->List()) {
        json << ",{\"id\":\"" << entry.id << "\",\"path\":\"" << entry.path
             << "\",\"resident\":" << (entry.resident ? "true" : "false")
             << ",\"generation\":" << entry.generation
             << ",\"approx_bytes\":" << entry.approx_bytes << "}";
      }
      json << "],\"registry_resident_bytes\":"
           << model_registry_->resident_bytes()
           << ",\"max_resident_bytes\":" << options_.max_resident_bytes
           << "}";
      writer->Write(Response::Ok(request.id, json.str()));
      return;
    }
    case RequestVerb::kLoad: {
      const Status status =
          model_registry_->Load(request.model_id, request.path);
      writer->Write(status.ok()
                        ? Response::Ok(request.id, "LOADED " + request.model_id)
                        : Response::Error(request.id, status.message()));
      return;
    }
    case RequestVerb::kUnload: {
      const Status status = model_registry_->Unload(request.model_id);
      writer->Write(
          status.ok()
              ? Response::Ok(request.id, "UNLOADED " + request.model_id)
              : Response::Error(request.id, status.message()));
      return;
    }
    case RequestVerb::kReload: {
      const Status status = scope.empty()
                                ? Reload(request.path)
                                : ReloadScoped(scope, request.path);
      writer->Write(status.ok()
                        ? Response::Ok(request.id, "RELOADED")
                        : Response::Error(request.id, status.message()));
      return;
    }
    case RequestVerb::kFlush: {
      // Control plane, but potentially slow (a full retrain): runs on this
      // connection thread, serialized with RELOAD. The data plane keeps
      // batching against base + overlay until the swap installs.
      const Result<uint64_t> result = RebuildNow(scope);
      writer->Write(result.ok()
                        ? Response::Ok(request.id,
                                       "REBUILT " +
                                           std::to_string(result.value()))
                        : Response::Error(request.id, result.message()));
      return;
    }
    case RequestVerb::kClassify:
    case RequestVerb::kClassifyTraining:
    case RequestVerb::kClassifyMc:
    case RequestVerb::kEstimateDensity:
    case RequestVerb::kInsert:
    case RequestVerb::kDelete:
      // Data plane: through admission control and the micro-batcher. The
      // completion (OK/ERR/OVERLOADED/TIMEOUT) is written exactly once —
      // inline on rejection, from the dispatcher otherwise. The writer is
      // captured shared so it outlives this connection's read loop if the
      // response lands during the final drain.
      batcher_->Submit(std::move(request), [writer](const Response& response) {
        writer->Write(response);
      });
      return;
  }
}

void Server::ServeConnection(int in_fd, int out_fd, Framing framing) {
  FrameReader reader(in_fd, framing);
  const auto writer = std::make_shared<FrameWriter>(
      out_fd, framing, /*owns_fd=*/in_fd == out_fd);
  const auto stop = [this] {
    // Piggybacked on the read poll: reload flags are consumed within one
    // poll interval even on an idle connection.
    PollReloadFlag();
    return ShouldStop();
  };
  while (true) {
    auto frame = reader.Next(stop);
    if (!frame.ok()) {
      // Broken framing: tell the peer (best effort) and drop the
      // connection; the daemon itself keeps serving.
      writer->Write(Response::Error(0, frame.message()));
      return;
    }
    if (!frame.value().has_value()) return;  // EOF or shutdown.
    auto request = ParseRequest(*frame.value());
    if (!request.ok()) {
      writer->Write(Response::Error(BestEffortRequestId(*frame.value()),
                                    request.message()));
      continue;
    }
    Dispatch(request.take(), writer);
  }
}

int Server::RunPipe(int in_fd, int out_fd) {
  ServeConnection(in_fd, out_fd, Framing::kLine);
  Shutdown();
  return 0;
}

int Server::RunTcp(uint16_t port, std::ostream& announce) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::fprintf(stderr, "socket failed: %s\n", std::strerror(errno));
    return 1;
  }
  const int enable = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 64) < 0) {
    std::fprintf(stderr, "bind/listen failed: %s\n", std::strerror(errno));
    ::close(listener);
    return 1;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  announce << "listening on 127.0.0.1:" << ntohs(addr.sin_port) << "\n"
           << std::flush;

  std::vector<std::thread> sessions;
  while (!ShouldStop()) {
    PollReloadFlag();
    struct pollfd pfd;
    pfd.fd = listener;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready < 0 && errno != EINTR) {
      std::fprintf(stderr, "poll failed: %s\n", std::strerror(errno));
      break;
    }
    if (ready <= 0) continue;
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) continue;
    sessions.emplace_back([this, conn] {
      // One socket for both directions; the FrameWriter owns and closes it.
      ServeConnection(conn, conn, Framing::kLengthPrefixed);
    });
  }
  ::close(listener);
  // Sessions observe the same terminate flag within a poll interval; their
  // admitted requests are answered by Shutdown()'s drain through the
  // writers the completions hold alive.
  for (std::thread& session : sessions) session.join();
  Shutdown();
  return 0;
}

void Server::Shutdown() {
  if (shutdown_done_.exchange(true)) return;
  // Retire the rebuild worker first: flag it, then stop the batcher so a
  // PublishRebuild it may be blocked in returns, then join.
  {
    std::lock_guard<std::mutex> lock(rebuild_mutex_);
    rebuild_worker_exit_ = true;
  }
  rebuild_cv_.notify_all();
  if (batcher_ == nullptr) {
    if (rebuild_worker_.joinable()) rebuild_worker_.join();
    return;  // Create() failed before assembly.
  }
  batcher_->Stop();  // Drains: every admitted request answered.
  if (rebuild_worker_.joinable()) rebuild_worker_.join();
  // Final fold of the current model's query-path counters (the dispatcher
  // flushed per batch; this catches work since the last batch).
  batcher_->model()->FlushMetrics();
  if (options_.metrics_out.empty()) return;
  std::ofstream out(options_.metrics_out);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 options_.metrics_out.c_str());
    return;
  }
  registry_.WriteJson(out);
  out << "\n";
}

}  // namespace tkdc::serve
