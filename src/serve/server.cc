#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "tkdc_api.h"

namespace tkdc::serve {
namespace {

/// Poll interval of the accept loop; bounds shutdown/reload latency.
constexpr int kAcceptPollMs = 50;

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() { Shutdown(); }

Result<std::unique_ptr<Server>> Server::Create(ServerOptions options) {
  // A client that disconnects mid-response must not kill the daemon with
  // SIGPIPE; failed writes are handled per-connection (FrameWriter).
  std::signal(SIGPIPE, SIG_IGN);
  std::unique_ptr<Server> server(new Server(std::move(options)));
  auto model = server->LoadServingModel(server->options_.model_path);
  if (!model.ok()) return model.status();
  // Order matters: the model attachment above registered the query-path
  // metric schema; the batcher registers the serve schema and then sizes
  // its shard, so every registration must precede it.
  server->batcher_ = std::make_unique<MicroBatcher>(
      server->options_.batcher, model.take(), &server->registry_);
  server->batcher_->Start();
  return server;
}

Result<std::shared_ptr<ServingModel>> Server::LoadServingModel(
    const std::string& path) {
  auto loaded = api::LoadModel(path);
  if (!loaded.ok()) return loaded.status();
  auto model = std::make_shared<ServingModel>();
  model->classifier = loaded.take();
  model->source_path = path;
  model->classifier->SetNumThreads(options_.num_threads);
  model->classifier->AttachMetrics(&registry_);
  return model;
}

Status Server::Reload(const std::string& path) {
  // Serialized: concurrent RELOAD requests (or RELOAD racing SIGHUP) load
  // one at a time; each publishes atomically via SwapModel.
  std::lock_guard<std::mutex> lock(reload_mutex_);
  const std::string& effective = path.empty() ? options_.model_path : path;
  auto model = LoadServingModel(effective);
  if (!model.ok()) return model.status();
  batcher_->SwapModel(model.take());
  return Status::Ok();
}

void Server::PollReloadFlag() {
  if (options_.reload == nullptr ||
      !options_.reload->exchange(false, std::memory_order_relaxed)) {
    return;
  }
  const Status status = Reload("");
  if (!status.ok()) {
    // Keep serving the old model; the operator asked for a swap that
    // failed, which must not take the daemon down.
    std::fprintf(stderr, "reload failed: %s\n", status.message().c_str());
  }
}

void Server::Dispatch(Request request,
                      const std::shared_ptr<FrameWriter>& writer) {
  switch (request.verb) {
    case RequestVerb::kPing:
      writer->Write(Response::Ok(request.id, "PONG"));
      return;
    case RequestVerb::kStats: {
      // snapshot() folds pending serve counters into the registry first,
      // so the JSON is current as of this request.
      batcher_->snapshot();
      std::ostringstream json;
      registry_.WriteJson(json);
      writer->Write(Response::Ok(request.id, json.str()));
      return;
    }
    case RequestVerb::kReload: {
      const Status status = Reload(request.path);
      writer->Write(status.ok()
                        ? Response::Ok(request.id, "RELOADED")
                        : Response::Error(request.id, status.message()));
      return;
    }
    case RequestVerb::kClassify:
    case RequestVerb::kClassifyTraining:
    case RequestVerb::kEstimateDensity:
      // Data plane: through admission control and the micro-batcher. The
      // completion (OK/ERR/OVERLOADED/TIMEOUT) is written exactly once —
      // inline on rejection, from the dispatcher otherwise. The writer is
      // captured shared so it outlives this connection's read loop if the
      // response lands during the final drain.
      batcher_->Submit(std::move(request), [writer](const Response& response) {
        writer->Write(response);
      });
      return;
  }
}

void Server::ServeConnection(int in_fd, int out_fd, Framing framing) {
  FrameReader reader(in_fd, framing);
  const auto writer = std::make_shared<FrameWriter>(
      out_fd, framing, /*owns_fd=*/in_fd == out_fd);
  const auto stop = [this] {
    // Piggybacked on the read poll: reload flags are consumed within one
    // poll interval even on an idle connection.
    PollReloadFlag();
    return ShouldStop();
  };
  while (true) {
    auto frame = reader.Next(stop);
    if (!frame.ok()) {
      // Broken framing: tell the peer (best effort) and drop the
      // connection; the daemon itself keeps serving.
      writer->Write(Response::Error(0, frame.message()));
      return;
    }
    if (!frame.value().has_value()) return;  // EOF or shutdown.
    auto request = ParseRequest(*frame.value());
    if (!request.ok()) {
      writer->Write(Response::Error(BestEffortRequestId(*frame.value()),
                                    request.message()));
      continue;
    }
    Dispatch(request.take(), writer);
  }
}

int Server::RunPipe(int in_fd, int out_fd) {
  ServeConnection(in_fd, out_fd, Framing::kLine);
  Shutdown();
  return 0;
}

int Server::RunTcp(uint16_t port, std::ostream& announce) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::fprintf(stderr, "socket failed: %s\n", std::strerror(errno));
    return 1;
  }
  const int enable = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 64) < 0) {
    std::fprintf(stderr, "bind/listen failed: %s\n", std::strerror(errno));
    ::close(listener);
    return 1;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  announce << "listening on 127.0.0.1:" << ntohs(addr.sin_port) << "\n"
           << std::flush;

  std::vector<std::thread> sessions;
  while (!ShouldStop()) {
    PollReloadFlag();
    struct pollfd pfd;
    pfd.fd = listener;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready < 0 && errno != EINTR) {
      std::fprintf(stderr, "poll failed: %s\n", std::strerror(errno));
      break;
    }
    if (ready <= 0) continue;
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) continue;
    sessions.emplace_back([this, conn] {
      // One socket for both directions; the FrameWriter owns and closes it.
      ServeConnection(conn, conn, Framing::kLengthPrefixed);
    });
  }
  ::close(listener);
  // Sessions observe the same terminate flag within a poll interval; their
  // admitted requests are answered by Shutdown()'s drain through the
  // writers the completions hold alive.
  for (std::thread& session : sessions) session.join();
  Shutdown();
  return 0;
}

void Server::Shutdown() {
  if (shutdown_done_.exchange(true)) return;
  if (batcher_ == nullptr) return;  // Create() failed before assembly.
  batcher_->Stop();  // Drains: every admitted request answered.
  // Final fold of the current model's query-path counters (the dispatcher
  // flushed per batch; this catches work since the last batch).
  batcher_->model()->classifier->FlushMetrics();
  if (options_.metrics_out.empty()) return;
  std::ofstream out(options_.metrics_out);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 options_.metrics_out.c_str());
    return;
  }
  registry_.WriteJson(out);
  out << "\n";
}

}  // namespace tkdc::serve
