#include "serve/protocol.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace tkdc::serve {
namespace {

/// Poll interval for blocking reads: the latency bound on noticing a
/// shutdown/reload flag while a connection is idle.
constexpr int kPollIntervalMs = 50;

std::vector<std::string_view> SplitTokens(std::string_view payload) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < payload.size()) {
    while (i < payload.size() && payload[i] == ' ') ++i;
    size_t start = i;
    while (i < payload.size() && payload[i] != ' ') ++i;
    if (i > start) tokens.push_back(payload.substr(start, i - start));
  }
  return tokens;
}

bool ParseUint64(std::string_view token, uint64_t* value) {
  const char* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, *value);
  return ec == std::errc() && ptr == end;
}

bool ParseInt64(std::string_view token, int64_t* value) {
  const char* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, *value);
  return ec == std::errc() && ptr == end;
}

Status ParsePoint(std::string_view csv, std::vector<double>* point) {
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string_view::npos) comma = csv.size();
    const std::string cell(csv.substr(start, comma - start));
    if (cell.empty()) return Errorf() << "empty coordinate in point";
    char* cell_end = nullptr;
    const double value = std::strtod(cell.c_str(), &cell_end);
    if (cell_end != cell.c_str() + cell.size()) {
      return Errorf() << "bad coordinate \"" << cell << "\"";
    }
    if (!std::isfinite(value)) {
      return Errorf() << "non-finite coordinate \"" << cell << "\"";
    }
    point->push_back(value);
    start = comma + 1;
    if (comma == csv.size()) break;
  }
  if (point->empty()) return Errorf() << "empty point";
  return Status::Ok();
}

Status ParseTimeout(std::string_view token, int64_t* timeout_ms) {
  int64_t value = 0;
  if (!ParseInt64(token, &value) || value < 0) {
    return Errorf() << "bad timeout_ms \"" << token << "\"";
  }
  *timeout_ms = value;
  return Status::Ok();
}

}  // namespace

const char* ResponseCodeName(ResponseCode code) {
  switch (code) {
    case ResponseCode::kOk:
      return "OK";
    case ResponseCode::kError:
      return "ERR";
    case ResponseCode::kOverloaded:
      return "OVERLOADED";
    case ResponseCode::kTimeout:
      return "TIMEOUT";
  }
  return "ERR";
}

Response Response::Ok(uint64_t id, std::string body) {
  return Response{id, ResponseCode::kOk, std::move(body)};
}
Response Response::Error(uint64_t id, std::string message) {
  return Response{id, ResponseCode::kError, std::move(message)};
}
Response Response::Overloaded(uint64_t id) {
  return Response{id, ResponseCode::kOverloaded, ""};
}
Response Response::Timeout(uint64_t id) {
  return Response{id, ResponseCode::kTimeout, ""};
}

Result<Request> ParseRequest(std::string_view payload) {
  // Tolerate CRLF line endings from naive TCP clients.
  if (!payload.empty() && payload.back() == '\r') payload.remove_suffix(1);
  const std::vector<std::string_view> tokens = SplitTokens(payload);
  if (tokens.size() < 2) {
    return Errorf() << "expected \"<id> <verb> [args]\", got \"" << payload
                    << "\"";
  }
  Request request;
  if (!ParseUint64(tokens[0], &request.id)) {
    return Errorf() << "bad request id \"" << tokens[0] << "\"";
  }
  const std::string_view verb = tokens[1];
  // Optional `@<model_id>` scope right after the verb (mandatory for
  // LOAD/UNLOAD, handled below). Coordinates, paths, and timeouts never
  // start with '@', so the prefix is unambiguous.
  size_t arg = 2;
  if (tokens.size() > 2 && tokens[2].front() == '@' && verb != "MODELS") {
    const std::string_view id = tokens[2].substr(1);
    if (!IsValidModelId(id)) {
      return Errorf() << "bad model id \"" << tokens[2]
                      << "\" (want @ then 1-64 chars of [A-Za-z0-9_.-])";
    }
    request.model_id = std::string(id);
    arg = 3;
  }
  const size_t args = tokens.size() - arg;
  const bool takes_point = verb == "CLASSIFY" || verb == "CLASSIFY_TRAINING" ||
                           verb == "CLASSIFY_MC" || verb == "ESTIMATE" ||
                           verb == "INSERT" || verb == "DELETE";
  if (takes_point) {
    request.verb = verb == "CLASSIFY"            ? RequestVerb::kClassify
                   : verb == "CLASSIFY_TRAINING" ? RequestVerb::kClassifyTraining
                   : verb == "CLASSIFY_MC"       ? RequestVerb::kClassifyMc
                   : verb == "ESTIMATE"          ? RequestVerb::kEstimateDensity
                   : verb == "INSERT"            ? RequestVerb::kInsert
                                                 : RequestVerb::kDelete;
    if (args < 1 || args > 2) {
      return Errorf() << verb << " takes [@model] <v1,v2,...> [timeout_ms]";
    }
    if (const Status status = ParsePoint(tokens[arg], &request.point);
        !status.ok()) {
      return status;
    }
    if (args == 2) {
      if (const Status status =
              ParseTimeout(tokens[arg + 1], &request.timeout_ms);
          !status.ok()) {
        return status;
      }
    }
    return request;
  }
  if (verb == "STATS" || verb == "PING" || verb == "FLUSH") {
    if (args != 0) {
      return Errorf() << verb << " takes no arguments beyond [@model]";
    }
    request.verb = verb == "STATS"  ? RequestVerb::kStats
                   : verb == "PING" ? RequestVerb::kPing
                                    : RequestVerb::kFlush;
    return request;
  }
  if (verb == "RELOAD") {
    if (args > 1) return Errorf() << "RELOAD takes [@model] [path]";
    request.verb = RequestVerb::kReload;
    if (args == 1) request.path = std::string(tokens[arg]);
    return request;
  }
  if (verb == "MODELS") {
    if (tokens.size() != 2) return Errorf() << "MODELS takes no arguments";
    request.verb = RequestVerb::kModels;
    return request;
  }
  if (verb == "LOAD") {
    if (request.model_id.empty() || args != 1) {
      return Errorf() << "LOAD takes @model <path>";
    }
    request.verb = RequestVerb::kLoad;
    request.path = std::string(tokens[arg]);
    return request;
  }
  if (verb == "UNLOAD") {
    if (request.model_id.empty() || args != 0) {
      return Errorf() << "UNLOAD takes @model";
    }
    request.verb = RequestVerb::kUnload;
    return request;
  }
  return Errorf() << "unknown verb \"" << verb
                  << "\" (known: CLASSIFY CLASSIFY_TRAINING CLASSIFY_MC "
                     "ESTIMATE INSERT DELETE FLUSH STATS RELOAD PING "
                     "MODELS LOAD UNLOAD)";
}

uint64_t BestEffortRequestId(std::string_view payload) {
  if (!payload.empty() && payload.back() == '\r') payload.remove_suffix(1);
  const std::vector<std::string_view> tokens = SplitTokens(payload);
  uint64_t id = 0;
  if (!tokens.empty() && ParseUint64(tokens[0], &id)) return id;
  return 0;
}

bool IsValidModelId(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string BestEffortModelScope(std::string_view payload) {
  if (!payload.empty() && payload.back() == '\r') payload.remove_suffix(1);
  const std::vector<std::string_view> tokens = SplitTokens(payload);
  if (tokens.size() < 3 || tokens[2].front() != '@') return "";
  const std::string_view id = tokens[2].substr(1);
  return IsValidModelId(id) ? std::string(id) : "";
}

std::string RenderResponse(const Response& response) {
  std::string payload = std::to_string(response.id);
  payload += ' ';
  payload += ResponseCodeName(response.code);
  if (!response.body.empty()) {
    payload += ' ';
    payload += response.body;
  }
  return payload;
}

std::string EncodeFrame(std::string_view payload, Framing framing) {
  if (framing == Framing::kLine) {
    std::string frame(payload);
    for (char& c : frame) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    frame += '\n';
    return frame;
  }
  std::string frame;
  frame.reserve(payload.size() + 4);
  const uint32_t length = static_cast<uint32_t>(payload.size());
  frame.push_back(static_cast<char>((length >> 24) & 0xff));
  frame.push_back(static_cast<char>((length >> 16) & 0xff));
  frame.push_back(static_cast<char>((length >> 8) & 0xff));
  frame.push_back(static_cast<char>(length & 0xff));
  frame.append(payload);
  return frame;
}

Result<bool> FrameReader::FillSome(const std::function<bool()>& stop,
                                   bool* stopped) {
  *stopped = false;
  while (true) {
    if (stop != nullptr && stop()) {
      *stopped = true;
      return true;
    }
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0) {
      if (errno == EINTR) continue;  // Signal; loop re-checks stop().
      return Errorf() << "poll failed: " << std::strerror(errno);
    }
    if (ready == 0) continue;  // Idle; re-check stop().
    char chunk[4096];
    const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errorf() << "read failed: " << std::strerror(errno);
    }
    if (got == 0) return false;  // EOF.
    buffer_.append(chunk, static_cast<size_t>(got));
    return true;
  }
}

Result<std::optional<std::string>> FrameReader::Next(
    const std::function<bool()>& stop) {
  while (true) {
    if (framing_ == Framing::kLine) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string payload = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return std::optional<std::string>(std::move(payload));
      }
      if (buffer_.size() > kMaxFrameBytes) {
        return Errorf() << "line frame exceeds " << kMaxFrameBytes
                        << " bytes without a newline";
      }
    } else if (buffer_.size() >= 4) {
      const auto* bytes = reinterpret_cast<const unsigned char*>(
          buffer_.data());
      const uint32_t length = (static_cast<uint32_t>(bytes[0]) << 24) |
                              (static_cast<uint32_t>(bytes[1]) << 16) |
                              (static_cast<uint32_t>(bytes[2]) << 8) |
                              static_cast<uint32_t>(bytes[3]);
      if (length > kMaxFrameBytes) {
        return Errorf() << "frame length " << length << " exceeds "
                        << kMaxFrameBytes;
      }
      if (buffer_.size() >= 4 + static_cast<size_t>(length)) {
        std::string payload = buffer_.substr(4, length);
        buffer_.erase(0, 4 + static_cast<size_t>(length));
        return std::optional<std::string>(std::move(payload));
      }
    }
    bool stopped = false;
    const Result<bool> filled = FillSome(stop, &stopped);
    if (!filled.ok()) return filled.status();
    if (stopped) return std::optional<std::string>();
    if (!filled.value()) {
      // EOF: a clean end between frames, an error mid-frame. An unfinished
      // line is tolerated as a final frame (shell here-docs often lack the
      // trailing newline).
      if (framing_ == Framing::kLine && !buffer_.empty()) {
        std::string payload = std::move(buffer_);
        buffer_.clear();
        return std::optional<std::string>(std::move(payload));
      }
      if (!buffer_.empty()) {
        return Errorf() << "EOF inside a frame (" << buffer_.size()
                        << " bytes buffered)";
      }
      return std::optional<std::string>();
    }
  }
}

FrameWriter::FrameWriter(int fd, Framing framing, bool owns_fd)
    : fd_(fd), framing_(framing), owns_fd_(owns_fd) {}

FrameWriter::~FrameWriter() {
  if (owns_fd_ && fd_ >= 0) ::close(fd_);
}

void FrameWriter::Write(const Response& response) {
  WriteRaw(RenderResponse(response));
}

void FrameWriter::WriteRaw(std::string_view payload) {
  const std::string frame = EncodeFrame(payload, framing_);
  std::lock_guard<std::mutex> lock(mutex_);
  if (broken_) return;
  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t put =
        ::write(fd_, frame.data() + written, frame.size() - written);
    if (put < 0) {
      if (errno == EINTR) continue;
      broken_ = true;  // Peer vanished; stop writing, keep serving others.
      return;
    }
    written += static_cast<size_t>(put);
  }
}

bool FrameWriter::broken() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return broken_;
}

}  // namespace tkdc::serve
