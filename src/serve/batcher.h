#ifndef TKDC_SERVE_BATCHER_H_
#define TKDC_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "kde/delta_overlay.h"
#include "kde/density_classifier.h"
#include "serve/protocol.h"
#include "tkdc/multiclass.h"
#include "tkdc/threshold.h"

namespace tkdc::serve {

/// One published model generation: the trained classifier plus where it
/// came from. Reload builds a fresh ServingModel and swaps the shared_ptr
/// (RCU-style): batches in flight keep their generation alive through
/// their own reference; the old model is destroyed when its last batch
/// finishes. The classifier inside is driven only by the dispatcher
/// thread (its facade is externally single-threaded); parallelism lives
/// inside ClassifyBatch via the shared BatchExecutor thread pool.
///
/// Streaming generations additionally carry a DeltaOverlay staging
/// INSERT/DELETE mutations on top of the immutable classifier. The
/// overlay (and `live_counts`) are mutated only by the dispatcher thread;
/// `generation`, the overlay's published counts, and `last_rebuild_ms`
/// may be read from any thread (STATS).
struct ServingModel {
  /// Exactly one of `classifier` / `mc_classifier` is set: a generation
  /// serves either a single-class model (HIGH/LOW verbs) or a multi-class
  /// container (CLASSIFY_MC). A verb aimed at the other kind is answered
  /// with ERR, never misrouted.
  std::unique_ptr<DensityClassifier> classifier;
  std::unique_ptr<MultiClassClassifier> mc_classifier;
  std::string source_path;

  // --- Streaming state (defaults describe a static, non-streaming model).
  /// Monotonic model version; bumped by RELOAD and every rebuild.
  uint64_t generation = 0;
  /// Staged mutations; null = static serving (no streaming verbs).
  std::shared_ptr<DeltaOverlay> overlay;
  /// Whether streaming verbs are accepted (overlay != null and the
  /// classifier supports the fold).
  bool streaming = false;
  /// Training rows of the base model (original row order) — the base half
  /// of a rebuild's merged dataset. Null when the engine cannot export
  /// (binned): INSERT/DELETE still work, rebuilds don't.
  std::shared_ptr<const Dataset> base_data;
  /// Online t(p) estimator fed by INSERT densities; carried across
  /// rebuilds (reseeded) so its arrival history survives. Null for static
  /// models.
  std::shared_ptr<OnlineThresholdEstimator> estimator;
  /// Wall-clock of the last rebuild/reload publication (unix ms).
  int64_t last_rebuild_ms = 0;
  /// Overlay size (inserted + tombstones) at which the dispatcher asks
  /// the server to rebuild; 0 = never.
  size_t rebuild_trigger = 0;
  /// Live multiplicity of every point (base + inserts - tombstones),
  /// keyed by the raw bytes of its coordinates. DELETE validation: a
  /// point absent here cannot be tombstoned. Dispatcher thread only.
  /// Null when base_data is unavailable (DELETE is then unvalidated).
  std::unique_ptr<std::unordered_map<std::string, int64_t>> live_counts;

  /// Effective point count: base + inserted - tombstoned.
  size_t effective_n() const;

  // --- Kind-agnostic accessors (single- or multi-class generation) ------
  bool multiclass() const { return mc_classifier != nullptr; }
  /// Query dimensionality of whichever classifier is installed.
  size_t dims() const;
  /// Wire name of the served algorithm ("tkdc", ..., or "tkdc-mc").
  std::string algorithm() const;
  /// Base training rows (multi-class: summed over the per-class models).
  size_t base_points() const;
  /// Folds the installed classifier's query-path shard into its registry.
  void FlushMetrics();
};

/// Hash key of a point: the raw bytes of its coordinates (exact-match
/// semantics, bitwise — the same contract the overlay's tombstone
/// cancellation uses).
std::string PointKey(std::span<const double> x);

struct BatcherOptions {
  /// Most requests coalesced into one ClassifyBatch call.
  size_t max_batch = 64;
  /// How long the dispatcher holds an open batch waiting for more arrivals
  /// once at least one request is queued. 0 = dispatch immediately.
  uint64_t batch_window_us = 200;
  /// Minimum time between batch dispatches (0 = none): a per-worker
  /// capacity throttle. Where the window bounds how long a request waits
  /// for company, the pace bounds how often the engine runs at all,
  /// capping a worker at ~max_batch/pace requests per second and keeping
  /// CPU headroom for the other workers sharing the host — the QoS knob a
  /// fleet deployment sizes worker count against. Drains ignore it.
  uint64_t batch_pace_us = 0;
  /// Admission bound: requests beyond this many queued are shed with
  /// OVERLOADED instead of growing latency without bound.
  size_t queue_depth = 1024;
  /// Default per-request deadline in ms (0 = none); requests may override.
  int64_t default_timeout_ms = 0;
};

/// Metric names the batcher registers (exported via STATS/--metrics-out).
namespace metric_names {
inline constexpr char kAdmitted[] = "serve.requests_admitted";
inline constexpr char kShed[] = "serve.requests_shed";
inline constexpr char kTimedOut[] = "serve.requests_timed_out";
inline constexpr char kCompleted[] = "serve.requests_completed";
inline constexpr char kBatches[] = "serve.batches";
inline constexpr char kReloads[] = "serve.model_reloads";
inline constexpr char kBatchSize[] = "serve.batch_size";
inline constexpr char kQueueWaitUs[] = "serve.queue_wait_us";
// Streaming counters.
inline constexpr char kOverlayInserts[] = "serve.overlay_inserts";
inline constexpr char kOverlayDeletes[] = "serve.overlay_deletes";
inline constexpr char kOverlayRejected[] = "serve.overlay_rejected";
inline constexpr char kStaleQueries[] = "serve.stale_queries";
inline constexpr char kRebuilds[] = "serve.model_rebuilds";
}  // namespace metric_names

class ModelRegistry;  // serve/registry.h; it includes this header.

/// Dynamic micro-batcher: coalesces concurrently arriving classify /
/// estimate requests into batch calls against the current model.
///
/// Life of a request: Submit() (any thread) either enqueues it — bounded
/// queue, excess shed with OVERLOADED — or rejects it; the dispatcher
/// thread wakes on the first arrival, holds the batch open for up to
/// `batch_window_us` (cut short when `max_batch` fills), drains up to
/// `max_batch` entries, expires requests whose deadline passed (TIMEOUT),
/// groups the rest by verb, and answers them through one
/// ClassifyBatch / ClassifyTrainingBatch call (plus a serial
/// EstimateDensity loop) on a model snapshot taken at drain time. Every
/// admitted request gets exactly one completion callback, on the
/// dispatcher thread; labels are bit-identical to serial Classify because
/// the batch engine is deterministic at any thread count.
///
/// Stop() drains: no new admissions, every queued request still executes,
/// then the dispatcher joins — the graceful-SIGTERM contract.
///
/// Multi-model serving: each drained batch is grouped by Request.model_id.
/// The scope-less group runs against the default model snapshot; scoped
/// groups resolve through the attached ModelRegistry at drain time (so a
/// cold slot lazy-loads at most once per batch, not per request). Scoped
/// requests without a registry, or naming unknown slots, are answered ERR
/// individually — a bad scope never poisons the rest of the batch.
class MicroBatcher {
 public:
  using Completion = std::function<void(const Response&)>;

  /// `registry` (borrowed, must outlive the batcher) receives the serve
  /// counters/histograms; the full serve schema is registered before any
  /// shard is created, so callers must finish registering *their* metrics
  /// (e.g. AttachMetrics on the classifier) before constructing the
  /// batcher.
  MicroBatcher(const BatcherOptions& options,
               std::shared_ptr<ServingModel> model, MetricsRegistry* registry);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Starts the dispatcher thread. Call once.
  void Start();

  /// Stops admissions, drains every queued request, joins the dispatcher.
  /// Idempotent.
  void Stop();

  /// Submits a classify/estimate request. On rejection (queue full:
  /// OVERLOADED; stopped: ERR) the completion is invoked inline and false
  /// is returned. Admitted requests complete exactly once, from the
  /// dispatcher thread. Thread-safe.
  bool Submit(Request request, Completion done);

  /// Publishes a new model generation (RCU-style). In-flight batches keep
  /// the old generation alive; queued requests not yet drained execute
  /// against the new one. Thread-safe.
  void SwapModel(std::shared_ptr<ServingModel> model);

  /// Attaches the model registry scoped requests resolve through (null =
  /// scoped requests answered ERR). Borrowed; must outlive the batcher.
  /// Call before Start().
  void SetRegistry(ModelRegistry* registry);

  /// Publishes a *rebuilt* streaming generation for `model_id` ("" = the
  /// default model). Unlike SwapModel, the install happens on the
  /// dispatcher thread between batches: the dispatcher migrates every
  /// overlay row the rebuild did NOT consume (inserted rows >=
  /// consumed_inserted, tombstones >= consumed_tombstones in the old
  /// overlay) into the new model's fresh overlay, so mutations that raced
  /// the rebuild survive the swap and zero requests are dropped or
  /// answered against missing state. Scoped installs publish into the
  /// registry slot instead of the default generation. Blocks until the
  /// install completes (or the batcher is stopping — returns false then).
  /// Thread-safe; callers serialize rebuilds among themselves.
  bool PublishRebuild(std::shared_ptr<ServingModel> model,
                      const std::string& model_id, size_t consumed_inserted,
                      size_t consumed_tombstones);

  /// Asks the server to rebuild the named model ("" = default): invoked
  /// (without the queue lock, on the dispatcher thread) when a streaming
  /// model's overlay reaches its rebuild trigger or rejects a mutation
  /// for want of capacity. The callback must not block; it flags a worker
  /// and returns.
  void SetRebuildRequestCallback(
      std::function<void(const std::string&)> callback);

  /// Current model generation (for control-plane peeks, e.g. RELOAD
  /// resolving the default path).
  std::shared_ptr<ServingModel> model() const;

  /// Exact point-in-time totals (under the queue lock); also folds the
  /// pending metric shard into the registry so a subsequent
  /// registry read (the STATS response) is up to date.
  struct Snapshot {
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t timed_out = 0;
    uint64_t completed = 0;
    uint64_t batches = 0;
  };
  Snapshot snapshot();

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Request request;
    Clock::time_point enqueued_at;
    Clock::time_point deadline;  // time_point::max() = none.
    Completion done;
  };

  struct RebuildPublication {
    std::shared_ptr<ServingModel> model;
    std::string model_id;  // "" = the default model.
    size_t consumed_inserted = 0;
    size_t consumed_tombstones = 0;
    uint64_t ticket = 0;
  };

  void Loop();
  /// Groups `batch` by model scope, resolves each group's model, and runs
  /// the groups. `default_model` is the drain-time snapshot.
  void ExecuteBatch(std::vector<Pending>& batch,
                    const std::shared_ptr<ServingModel>& default_model);
  /// Runs one model's share of a batch. Returns the executed count and
  /// appends scopes wanting a rebuild to `rebuild_ids`.
  size_t ExecuteGroup(std::vector<Pending*>& group, ServingModel& model,
                      const std::string& scope, Clock::time_point drained_at,
                      std::vector<std::string>& rebuild_ids,
                      size_t* stale_queries);
  /// Applies one INSERT/DELETE to `model` and answers it. Dispatcher
  /// thread; mutation-quiescence is upheld because no queries run
  /// concurrently with this.
  void ApplyMutation(Pending& pending, ServingModel& model,
                     bool* rebuild_wanted);
  /// Migrates the unconsumed overlay suffix and installs `publication`.
  /// Dispatcher thread, called without the lock held.
  void InstallRebuild(RebuildPublication publication,
                      const std::shared_ptr<ServingModel>& old_model);
  /// Folds the shard into the registry and zeroes it. Caller holds mutex_.
  void AbsorbShardLocked();

  const BatcherOptions options_;
  MetricsRegistry* const registry_;
  /// Scoped-request resolver; null = single-model serving.
  ModelRegistry* model_registry_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable wake_cv_;
  /// Signals rebuild installs to PublishRebuild waiters.
  std::condition_variable install_cv_;
  std::deque<Pending> queue_;
  std::shared_ptr<ServingModel> model_;
  /// Rebuild handed over by PublishRebuild, awaiting dispatcher install.
  std::optional<RebuildPublication> pending_rebuild_;
  uint64_t rebuild_tickets_ = 0;
  uint64_t installed_ticket_ = 0;
  std::function<void(const std::string&)> rebuild_request_cb_;
  /// End of the last dispatch; start of the pacing interval.
  Clock::time_point last_dispatch_ = Clock::time_point::min();
  bool stopping_ = false;
  bool started_ = false;
  Snapshot totals_;
  /// Serve-schema shard; mutated under mutex_ (Submit sheds/admits from
  /// many threads, the dispatcher books batch stats), absorbed into the
  /// registry after each batch and on snapshot()/Stop().
  std::unique_ptr<MetricsShard> shard_;

  // Metric ids into shard_.
  size_t admitted_id_ = 0, shed_id_ = 0, timed_out_id_ = 0, completed_id_ = 0,
         batches_id_ = 0, reloads_id_ = 0;
  size_t overlay_inserts_id_ = 0, overlay_deletes_id_ = 0,
         overlay_rejected_id_ = 0, stale_queries_id_ = 0, rebuilds_id_ = 0;
  size_t batch_size_id_ = 0, queue_wait_us_id_ = 0;

  std::thread dispatcher_;
};

}  // namespace tkdc::serve

#endif  // TKDC_SERVE_BATCHER_H_
