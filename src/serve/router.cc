#include "serve/router.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <utility>

namespace tkdc::serve {
namespace {

/// Accept-loop poll interval; bounds shutdown latency (same as the
/// server's).
constexpr int kAcceptPollMs = 50;

/// Prober sleep granularity, so shutdown is observed well inside one
/// probe interval.
constexpr int64_t kProbeSliceMs = 50;

/// Missed-probe budget: a worker silent for this many probe intervals is
/// failed.
constexpr int64_t kProbeMissBudget = 3;

/// Scope-less requests key the ring on the default model's name.
constexpr char kDefaultScopeKey[] = "default";

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Leading id token of `payload` (after optional whitespace). Returns the
/// byte range so the caller can splice a rewritten id in front of the
/// untouched remainder.
struct IdToken {
  bool ok = false;
  uint64_t id = 0;
  size_t begin = 0;  ///< First byte of the token.
  size_t end = 0;    ///< One past the last byte.
};

IdToken ParseIdToken(std::string_view payload) {
  IdToken token;
  size_t begin = 0;
  while (begin < payload.size() &&
         (payload[begin] == ' ' || payload[begin] == '\t')) {
    ++begin;
  }
  size_t end = begin;
  while (end < payload.size() && payload[end] != ' ' &&
         payload[end] != '\t' && payload[end] != '\r' &&
         payload[end] != '\n') {
    ++end;
  }
  if (end == begin) return token;
  const char* first = payload.data() + begin;
  const char* last = payload.data() + end;
  const auto [ptr, ec] = std::from_chars(first, last, token.id);
  if (ec != std::errc() || ptr != last) return token;
  token.ok = true;
  token.begin = begin;
  token.end = end;
  return token;
}

}  // namespace

void HashRing::Add(size_t worker, const std::string& seed) {
  for (size_t i = 0; i < vnodes_; ++i) {
    ring_.emplace(Hash(seed + "#" + std::to_string(i)), worker);
  }
}

void HashRing::Remove(size_t worker) {
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == worker ? ring_.erase(it) : std::next(it);
  }
}

std::optional<size_t> HashRing::Pick(std::string_view key) const {
  if (ring_.empty()) return std::nullopt;
  auto it = ring_.lower_bound(Hash(key));
  if (it == ring_.end()) it = ring_.begin();  // Wrap around.
  return it->second;
}

uint64_t HashRing::Hash(std::string_view bytes) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis.
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime.
  }
  // Raw FNV-1a barely avalanches its final bytes, so the short ids this
  // ring hashes ("m3", "users-eu") would cluster on one arc and starve
  // whole workers. A 64-bit finalizer (murmur3's fmix64) fixes the
  // dispersion without changing the streaming accumulation above.
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ull;
  hash ^= hash >> 33;
  return hash;
}

Router::Router(RouterOptions options)
    : options_(std::move(options)), ring_(options_.vnodes) {
  links_.reserve(options_.workers.size());
  for (const std::string& address : options_.workers) {
    auto link = std::make_unique<WorkerLink>();
    link->address = address;
    links_.push_back(std::move(link));
  }
}

Router::~Router() { Shutdown(); }

Result<std::unique_ptr<Router>> Router::Create(RouterOptions options) {
  // Same rationale as the server: a vanished peer must not SIGPIPE us.
  std::signal(SIGPIPE, SIG_IGN);
  if (options.workers.empty()) {
    return Errorf() << "router needs at least one --worker";
  }
  if (options.vnodes < 1) return Errorf() << "--vnodes must be >= 1";
  if (options.max_outstanding < 1) {
    return Errorf() << "--max-outstanding must be >= 1";
  }
  std::unique_ptr<Router> router(new Router(std::move(options)));
  size_t live = 0;
  for (size_t w = 0; w < router->links_.size(); ++w) {
    const int fd = Dial(router->links_[w]->address);
    if (fd >= 0) {
      router->Activate(w, fd);
      ++live;
    } else {
      std::fprintf(stderr, "router: worker %s not answering; will redial\n",
                   router->links_[w]->address.c_str());
    }
  }
  if (live == 0) return Errorf() << "no worker answered the initial dial";
  Router* raw = router.get();
  router->prober_ = std::thread([raw] { raw->ProberLoop(); });
  return router;
}

int Router::Dial(const std::string& address) {
  const size_t colon = address.rfind(':');
  const std::string port_text =
      colon == std::string::npos ? address : address.substr(colon + 1);
  uint64_t port = 0;
  const char* begin = port_text.c_str();
  const char* end = begin + port_text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, port);
  if (ec != std::errc() || ptr != end || port == 0 || port > 65535) {
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void Router::Activate(size_t worker, int fd) {
  WorkerLink& link = *links_[worker];
  {
    std::lock_guard<std::mutex> lock(link.mutex);
    link.fd = fd;
    // The link owns the fd lifecycle itself (shutdown-to-wake, close
    // after joining the reader), so the writer must not close it.
    link.writer =
        std::make_unique<FrameWriter>(fd, Framing::kLengthPrefixed,
                                      /*owns_fd=*/false);
    link.last_pong_ms.store(NowMs(), std::memory_order_relaxed);
  }
  link.up.store(true, std::memory_order_release);
  link.reader = std::thread([this, worker] { ReaderLoop(worker); });
  std::lock_guard<std::mutex> lock(ring_mutex_);
  ring_.Add(worker, link.address);
}

void Router::FailWorker(size_t worker) {
  WorkerLink& link = *links_[worker];
  if (!link.up.exchange(false)) return;  // Someone else took it down.
  std::fprintf(stderr, "router: worker %s marked down\n",
               link.address.c_str());
  {
    std::lock_guard<std::mutex> lock(ring_mutex_);
    ring_.Remove(worker);
  }
  // Wake the reader out of its blocking poll; the prober joins it and
  // closes the fd on the redial path.
  ::shutdown(link.fd, SHUT_RDWR);
  std::vector<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(link.mutex);
    orphans.reserve(link.outstanding.size());
    for (auto& [rid, pending] : link.outstanding) {
      orphans.push_back(std::move(pending));
    }
    link.outstanding.clear();
  }
  // ERR, not silence: the client learns immediately and retries; the ring
  // now routes the key to a surviving worker.
  for (const Pending& orphan : orphans) {
    orphan.client->Write(Response::Error(
        orphan.client_id, "worker " + link.address + " lost; retry"));
  }
}

void Router::Forward(std::string_view payload,
                     const std::shared_ptr<FrameWriter>& client) {
  const IdToken token = ParseIdToken(payload);
  if (!token.ok) {
    client->Write(Response::Error(
        0, "bad request id (want a uint64 first token)"));
    return;
  }
  const std::string scope = BestEffortModelScope(payload);
  // Both branches must already be views: a mixed char*/string ternary
  // would materialize (and immediately destroy) a temporary string.
  const std::string_view key = scope.empty()
                                   ? std::string_view(kDefaultScopeKey)
                                   : std::string_view(scope);
  std::optional<size_t> picked;
  {
    std::lock_guard<std::mutex> lock(ring_mutex_);
    picked = ring_.Pick(key);
  }
  if (!picked.has_value()) {
    client->Write(Response::Error(token.id, "no live workers"));
    return;
  }
  WorkerLink& link = *links_[*picked];
  const uint64_t rid = next_id_.fetch_add(1, std::memory_order_relaxed);
  bool write_failed = false;
  {
    std::lock_guard<std::mutex> lock(link.mutex);
    if (!link.up.load(std::memory_order_acquire)) {
      client->Write(Response::Error(
          token.id, "worker " + link.address + " lost; retry"));
      return;
    }
    if (link.outstanding.size() >= options_.max_outstanding) {
      // Shed at the router: the cap bounds what a slow worker can queue.
      client->Write(Response::Overloaded(token.id));
      return;
    }
    link.outstanding.emplace(rid, Pending{client, token.id});
    // Rewrite only the leading id; every other byte survives the hop.
    std::string rewritten;
    rewritten.reserve(payload.size() + 20);
    rewritten += std::to_string(rid);
    rewritten.append(payload.substr(token.end));
    // Written under the link mutex so the writer cannot be torn down
    // (redial) mid-call; FrameWriter's own lock serializes the bytes.
    link.writer->WriteRaw(rewritten);
    write_failed = link.writer->broken();
  }
  if (write_failed) FailWorker(*picked);
}

void Router::ReaderLoop(size_t worker) {
  WorkerLink& link = *links_[worker];
  FrameReader reader(link.fd, Framing::kLengthPrefixed);
  const auto stop = [this] { return ShouldStop(); };
  while (true) {
    auto frame = reader.Next(stop);
    if (!frame.ok() || !frame.value().has_value()) break;
    const std::string& payload = *frame.value();
    const IdToken token = ParseIdToken(payload);
    if (!token.ok) continue;  // Not a protocol response; drop.
    if (token.id == 0) {
      // Health-probe pong (id 0 is reserved for the prober's PING).
      link.last_pong_ms.store(NowMs(), std::memory_order_relaxed);
      continue;
    }
    Pending pending;
    {
      std::lock_guard<std::mutex> lock(link.mutex);
      const auto it = link.outstanding.find(token.id);
      if (it == link.outstanding.end()) continue;  // Drained by an outage.
      pending = std::move(it->second);
      link.outstanding.erase(it);
    }
    std::string rewritten;
    rewritten.reserve(payload.size() + 20);
    rewritten += std::to_string(pending.client_id);
    rewritten.append(payload.substr(token.end));
    pending.client->WriteRaw(rewritten);
  }
  if (!ShouldStop()) FailWorker(worker);
}

void Router::ProberLoop() {
  const int64_t interval =
      static_cast<int64_t>(options_.probe_interval_ms);
  int64_t next_probe = NowMs() + interval;
  while (!ShouldStop()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min<int64_t>(kProbeSliceMs, interval)));
    const int64_t now = NowMs();
    if (now < next_probe || ShouldStop()) continue;
    next_probe = now + interval;
    for (size_t w = 0; w < links_.size(); ++w) {
      WorkerLink& link = *links_[w];
      if (link.up.load(std::memory_order_acquire)) {
        if (now - link.last_pong_ms.load(std::memory_order_relaxed) >
            kProbeMissBudget * interval) {
          FailWorker(w);  // Silent across the miss budget: presumed dead.
          continue;
        }
        std::lock_guard<std::mutex> lock(link.mutex);
        if (link.writer != nullptr) {
          link.writer->WriteRaw("0 PING");
          if (link.writer->broken()) {
            // Fail outside the link mutex (FailWorker retakes it).
            continue;
          }
        }
      } else {
        // Redial: retire the dead connection, then splice a fresh one
        // back onto the ring.
        if (link.reader.joinable()) link.reader.join();
        {
          std::lock_guard<std::mutex> lock(link.mutex);
          link.writer.reset();
          if (link.fd >= 0) {
            ::close(link.fd);
            link.fd = -1;
          }
        }
        const int fd = Dial(link.address);
        if (fd >= 0) Activate(w, fd);
      }
    }
    // Sweep write failures detected under the lock above.
    for (size_t w = 0; w < links_.size(); ++w) {
      WorkerLink& link = *links_[w];
      if (link.up.load(std::memory_order_acquire)) {
        std::unique_lock<std::mutex> lock(link.mutex);
        const bool broken = link.writer != nullptr && link.writer->broken();
        lock.unlock();
        if (broken) FailWorker(w);
      }
    }
  }
}

size_t Router::live_workers() const {
  size_t live = 0;
  for (const auto& link : links_) {
    if (link->up.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

bool Router::Drained(const std::shared_ptr<FrameWriter>& client) const {
  for (const auto& link_ptr : links_) {
    WorkerLink& link = *link_ptr;
    std::lock_guard<std::mutex> lock(link.mutex);
    for (const auto& [rid, pending] : link.outstanding) {
      if (pending.client == client) return false;
    }
  }
  return true;
}

int Router::RunPipe(int in_fd, int out_fd) {
  FrameReader reader(in_fd, Framing::kLine);
  const auto writer = std::make_shared<FrameWriter>(
      out_fd, Framing::kLine, /*owns_fd=*/in_fd == out_fd);
  const auto stop = [this] { return ShouldStop(); };
  while (true) {
    auto frame = reader.Next(stop);
    if (!frame.ok()) {
      writer->Write(Response::Error(0, frame.message()));
      break;
    }
    if (!frame.value().has_value()) break;  // EOF or shutdown.
    Forward(*frame.value(), writer);
  }
  // Drain before exiting: forwarded requests still in flight get their
  // responses (or an outage ERR) written first.
  const int64_t deadline = NowMs() + 10'000;
  while (!Drained(writer) && NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Shutdown();
  return 0;
}

int Router::RunTcp(uint16_t port, std::ostream& announce) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::fprintf(stderr, "socket failed: %s\n", std::strerror(errno));
    return 1;
  }
  const int enable = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 64) < 0) {
    std::fprintf(stderr, "bind/listen failed: %s\n", std::strerror(errno));
    ::close(listener);
    return 1;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  announce << "listening on 127.0.0.1:" << ntohs(addr.sin_port) << "\n"
           << std::flush;

  std::vector<std::thread> sessions;
  while (!ShouldStop()) {
    struct pollfd pfd;
    pfd.fd = listener;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready < 0 && errno != EINTR) {
      std::fprintf(stderr, "poll failed: %s\n", std::strerror(errno));
      break;
    }
    if (ready <= 0) continue;
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) continue;
    sessions.emplace_back([this, conn] {
      FrameReader reader(conn, Framing::kLengthPrefixed);
      const auto writer = std::make_shared<FrameWriter>(
          conn, Framing::kLengthPrefixed, /*owns_fd=*/true);
      const auto stop = [this] { return ShouldStop(); };
      while (true) {
        auto frame = reader.Next(stop);
        if (!frame.ok()) {
          writer->Write(Response::Error(0, frame.message()));
          return;
        }
        if (!frame.value().has_value()) return;
        Forward(*frame.value(), writer);
      }
      // The shared writer outlives this loop through Pending references,
      // so late worker responses still reach the client.
    });
  }
  ::close(listener);
  for (std::thread& session : sessions) session.join();
  Shutdown();
  return 0;
}

void Router::Shutdown() {
  if (shutdown_done_.exchange(true)) return;
  shutdown_.store(true, std::memory_order_release);
  if (prober_.joinable()) prober_.join();
  for (const auto& link_ptr : links_) {
    WorkerLink& link = *link_ptr;
    link.up.store(false, std::memory_order_release);
    if (link.fd >= 0) ::shutdown(link.fd, SHUT_RDWR);
    if (link.reader.joinable()) link.reader.join();
    std::vector<Pending> orphans;
    {
      std::lock_guard<std::mutex> lock(link.mutex);
      for (auto& [rid, pending] : link.outstanding) {
        orphans.push_back(std::move(pending));
      }
      link.outstanding.clear();
      link.writer.reset();
      if (link.fd >= 0) {
        ::close(link.fd);
        link.fd = -1;
      }
    }
    for (const Pending& orphan : orphans) {
      orphan.client->Write(
          Response::Error(orphan.client_id, "router shutting down"));
    }
  }
}

namespace {

constexpr const char kRouterUsage[] =
    "usage: tkdc_router --worker 127.0.0.1:P [--worker ...] "
    "[--port N | --pipe]\n"
    "  --worker ADDR           worker address, \"PORT\" or \"HOST:PORT\"\n"
    "                          (loopback only); repeat once per worker\n"
    "  --port N                client-facing TCP port on 127.0.0.1\n"
    "                          (default 0 = ephemeral, announced on\n"
    "                          stdout); length-prefixed framing\n"
    "  --pipe                  serve stdin/stdout with line framing\n"
    "                          instead of TCP\n"
    "  --vnodes N              consistent-hash points per worker\n"
    "                          (default 64)\n"
    "  --max-outstanding N     per-worker in-flight cap; excess requests\n"
    "                          are answered OVERLOADED (default 256)\n"
    "  --probe-interval-ms T   health-probe cadence; a worker silent for\n"
    "                          3 intervals is failed and redialed\n"
    "                          (default 500)\n"
    "Requests route by their @<model_id> scope (scope-less requests key\n"
    "on \"default\"); every worker must be able to load every model.\n"
    "Signals: SIGTERM drains in-flight requests and exits 0.\n";

}  // namespace

const char* RouterUsage() { return kRouterUsage; }

Result<RouterFlags> ParseRouterFlags(const std::vector<std::string>& args) {
  RouterFlags flags;
  bool port_given = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--pipe") {
      flags.pipe = true;
      continue;
    }
    if (arg == "--help") return Errorf() << "help requested";
    const auto take_value = [&](std::string* value) -> Status {
      if (i + 1 >= args.size()) {
        return Errorf() << "missing value for " << arg;
      }
      *value = args[++i];
      return Status::Ok();
    };
    const auto take_number = [&](uint64_t max, uint64_t* out) -> Status {
      std::string value;
      if (Status status = take_value(&value); !status.ok()) return status;
      const char* begin = value.c_str();
      const char* end = begin + value.size();
      const auto [ptr, ec] = std::from_chars(begin, end, *out);
      if (ec != std::errc() || ptr != end) {
        return Errorf() << arg << ": expected a non-negative integer, got \""
                        << value << "\"";
      }
      if (*out > max) {
        return Errorf() << arg << ": " << value << " exceeds the maximum "
                        << max;
      }
      return Status::Ok();
    };
    Status status;
    uint64_t number = 0;
    if (arg == "--worker") {
      std::string worker;
      if (status = take_value(&worker); !status.ok()) return status;
      flags.options.workers.push_back(std::move(worker));
    } else if (arg == "--port") {
      if (status = take_number(65535, &number); !status.ok()) return status;
      flags.port = static_cast<uint16_t>(number);
      port_given = true;
    } else if (arg == "--vnodes") {
      if (status = take_number(4096, &number); !status.ok()) return status;
      if (number < 1) return Errorf() << "--vnodes must be >= 1";
      flags.options.vnodes = static_cast<size_t>(number);
    } else if (arg == "--max-outstanding") {
      if (status = take_number(1u << 24, &number); !status.ok()) {
        return status;
      }
      if (number < 1) return Errorf() << "--max-outstanding must be >= 1";
      flags.options.max_outstanding = static_cast<size_t>(number);
    } else if (arg == "--probe-interval-ms") {
      if (status = take_number(600'000, &number); !status.ok()) {
        return status;
      }
      if (number < 1) return Errorf() << "--probe-interval-ms must be >= 1";
      flags.options.probe_interval_ms = number;
    } else {
      return Errorf() << "unknown flag: " << arg;
    }
  }
  if (flags.options.workers.empty()) {
    return Errorf() << "at least one --worker is required";
  }
  if (flags.pipe && port_given) {
    return Errorf() << "--pipe and --port are mutually exclusive";
  }
  return flags;
}

}  // namespace tkdc::serve
