#ifndef TKDC_SERVE_REGISTRY_H_
#define TKDC_SERVE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "serve/batcher.h"

namespace tkdc::serve {

/// Reserved id of the process's default model (the --model flag). The
/// default generation lives in the micro-batcher, not in the registry;
/// scope-less requests and `@default` both resolve to it there. The
/// registry refuses the id so the two ownership domains never overlap.
inline constexpr char kDefaultModelId[] = "default";

/// Name of a per-model metric: "serve.model.<id>.<suffix>".
std::string ModelMetricName(const std::string& id, const char* suffix);

/// Per-model metric suffixes registered for every slot.
namespace model_metric_names {
inline constexpr char kRequests[] = "requests";
inline constexpr char kLoads[] = "loads";
inline constexpr char kEvictions[] = "evictions";
inline constexpr char kReloads[] = "reloads";
}  // namespace model_metric_names

struct RegistryOptions {
  /// Resident-set budget in bytes (estimated from point counts); 0 =
  /// unbounded. When a load pushes the estimate over, least-recently-used
  /// models are evicted — but never one with staged overlay mutations
  /// (its inserts/tombstones exist nowhere else).
  size_t max_resident_bytes = 0;
  /// Load every scanned model-dir slot eagerly at startup instead of on
  /// first use.
  bool preload = false;
};

/// In-process model registry: named slots keyed by model id, each holding
/// its own shared_ptr<ServingModel> with independent RCU hot-reload.
///
/// A slot is (id, source path, optionally a resident generation). Slots
/// come from a --model-dir scan (every "<id>.tkdc" stem) or the LOAD
/// verb; Acquire() resolves an id to its resident generation, lazily
/// loading it through the injected Loader on first use. Publication is
/// RCU-style throughout: swapping or evicting a slot's shared_ptr never
/// invalidates the generations in-flight batches still reference.
///
/// Eviction: when `max_resident_bytes` is set, every load re-checks the
/// resident estimate and drops least-recently-used generations (clean
/// overlays only) until back under budget — the slot stays registered and
/// reloads on its next Acquire. The budget is soft: models that cannot be
/// evicted (dirty overlays) may hold the estimate above it.
///
/// Metrics: each slot registers serve.model.<id>.{requests,loads,
/// evictions,reloads} in the process registry at registration time —
/// late, append-only registration per the metrics contract, so slots can
/// appear (LOAD) long after serving started.
///
/// Thread safety: every method is mutex-guarded. Lazy loads run under the
/// mutex, so a cold Acquire (one file read + model deserialize) briefly
/// blocks other registry lookups — never the default-model data plane,
/// which does not touch the registry.
class ModelRegistry {
 public:
  /// Builds a ServingModel from a model file. The server's loader injects
  /// thread-pool sizing, metrics attachment, and streaming setup.
  using Loader =
      std::function<Result<std::shared_ptr<ServingModel>>(const std::string&)>;

  ModelRegistry(RegistryOptions options, Loader loader,
                MetricsRegistry* metrics);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers every "<id>.tkdc" file directly under `dir` as a slot
  /// (stem = id; invalid stems and the reserved "default" are skipped
  /// with a note on stderr). With options.preload the models load now,
  /// eviction policy applied as they do; otherwise on first Acquire.
  Status ScanModelDir(const std::string& dir);

  /// Registers and loads a new slot (the LOAD verb). Errors if the id is
  /// invalid, reserved, or already registered (use RELOAD to refresh an
  /// existing slot).
  Status Load(const std::string& id, const std::string& path);

  /// Drops a slot entirely (the UNLOAD verb): its generation, its LRU
  /// entry, and its registration. In-flight batches keep the dropped
  /// generation alive until they finish. Errors on unknown ids.
  Status Unload(const std::string& id);

  /// Resolves `id` to its resident generation, lazily loading it if
  /// needed; touches the LRU order and adds `requests` to the slot's
  /// request counter. Errors on unknown ids and failed loads.
  Result<std::shared_ptr<ServingModel>> Acquire(const std::string& id,
                                                uint64_t requests);

  /// The resident generation of `id`, or null when the slot is unknown
  /// or not resident. Never loads; used by scoped rebuilds, which must
  /// target live state only.
  std::shared_ptr<ServingModel> Resident(const std::string& id) const;

  /// Publishes a fresh generation into an existing slot (scoped RELOAD,
  /// scoped rebuild install). RCU: the previous generation stays alive
  /// through in-flight references. Errors on unknown ids.
  Status Publish(const std::string& id, std::shared_ptr<ServingModel> model);

  struct Entry {
    std::string id;
    std::string path;
    bool resident = false;
    /// Generation of the resident model; 0 when not resident.
    uint64_t generation = 0;
    /// Resident-byte estimate; 0 when not resident.
    size_t approx_bytes = 0;
  };
  /// Every slot in id order (the MODELS verb; the default model is the
  /// server's to report).
  std::vector<Entry> List() const;

  /// Ids of the currently resident models, in id order (STATS blocks).
  std::vector<std::string> ResidentIds() const;

  /// Current resident-set byte estimate.
  size_t resident_bytes() const;

  size_t slot_count() const;

 private:
  struct Slot {
    std::string path;
    std::shared_ptr<ServingModel> model;  // Null when not resident.
    size_t approx_bytes = 0;
    /// Position in lru_ when resident.
    std::list<std::string>::iterator lru_pos;
    // Metric ids in metrics_ (0s when metrics_ is null).
    size_t requests_id = 0, loads_id = 0, evictions_id = 0, reloads_id = 0;
  };

  /// Registers the slot's metric names and refreshes the shard (the
  /// schema grew, so the old shard no longer spans it).
  void RegisterSlotMetricsLocked(const std::string& id, Slot& slot);
  /// Books `count` onto a slot counter and folds it into the registry
  /// immediately (control-plane rates are low; immediacy beats shaving a
  /// mutex acquisition).
  void IncLocked(size_t metric_id, uint64_t count);
  /// Loads a non-resident slot through loader_ and applies eviction.
  Status LoadSlotLocked(const std::string& id, Slot& slot);
  /// Marks `id` most recently used.
  void TouchLocked(const std::string& id, Slot& slot);
  /// Evicts LRU generations with clean overlays until under budget.
  /// `keep` is the id just loaded — evicting it would thrash.
  void EvictOverBudgetLocked(const std::string& keep);

  const RegistryOptions options_;
  const Loader loader_;
  MetricsRegistry* const metrics_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Slot> slots_;
  /// Resident ids, least recently used first.
  std::list<std::string> lru_;
  size_t resident_bytes_ = 0;
  /// Vehicle for counter folds; recreated whenever a new slot's names
  /// grow the schema.
  std::unique_ptr<MetricsShard> shard_;
};

/// Resident-byte estimate of one generation: coordinate storage across
/// the dataset, tree, and SoA mirrors (x3), the overlay's reserved
/// buffers, plus a fixed allowance for node/threshold state.
size_t ApproxModelBytes(const ServingModel& model);

}  // namespace tkdc::serve

#endif  // TKDC_SERVE_REGISTRY_H_
