#ifndef TKDC_SERVE_PROTOCOL_H_
#define TKDC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tkdc::serve {

/// Wire protocol of `tkdc_serve`.
///
/// A connection carries a stream of *frames*, each holding one request or
/// one response payload. Two framings exist:
///   - kLengthPrefixed (TCP): 4-byte big-endian payload length, then the
///     payload bytes. Lengths above kMaxFrameBytes are a protocol error
///     (the peer is garbage or hostile; the connection is dropped rather
///     than buffering unbounded input).
///   - kLine (pipe mode, stdin/stdout): newline-terminated text payloads,
///     so a shell can drive the server with printf. Response bodies have
///     embedded newlines flattened to spaces to keep one-frame-per-line.
///
/// Request payload grammar (text in both framings):
///   <id> CLASSIFY [@model] <v1,v2,...> [timeout_ms]
///   <id> CLASSIFY_TRAINING [@model] <v1,v2,...> [timeout_ms]
///   <id> CLASSIFY_MC [@model] <v1,v2,...> [timeout_ms]
///   <id> ESTIMATE [@model] <v1,v2,...> [timeout_ms]
///   <id> INSERT [@model] <v1,v2,...> [timeout_ms]
///   <id> DELETE [@model] <v1,v2,...> [timeout_ms]
///   <id> FLUSH [@model]
///   <id> STATS [@model]
///   <id> RELOAD [@model] [path]
///   <id> PING
///   <id> MODELS
///   <id> LOAD @model <path>
///   <id> UNLOAD @model
/// `id` is a client-chosen uint64 echoed in the response, so responses may
/// be matched out of order (the micro-batcher completes requests by batch,
/// not arrival order). `timeout_ms` overrides the server's default
/// per-request deadline (0 = no deadline).
///
/// Model scope: a server holds many models in its registry, each addressed
/// by a `@<model_id>` token right after the verb (e.g.
/// `7 CLASSIFY @users-eu 1.2,3.4`). Scope-less requests route to the
/// default model (`--model`), keeping every pre-fleet client unchanged;
/// `@default` names it explicitly. Ids are 1-64 chars of [A-Za-z0-9_.-]
/// (see IsValidModelId). MODELS lists every registered slot; LOAD
/// registers + loads a new slot from a model file; UNLOAD drops one
/// (in-flight requests keep the evicted generation alive, RCU-style).
///
/// Streaming verbs: INSERT adds a training point to the serving model's
/// delta overlay, DELETE tombstones an existing point (matched by exact
/// coordinates), and FLUSH synchronously rebuilds the base model on
/// base ∪ overlay and swaps it in. INSERT/DELETE flow through the same
/// micro-batcher queue as queries, so a classify enqueued after an insert
/// observes it.
///
/// CLASSIFY_MC queries a multi-class model (a tag-7 container serving K
/// per-class KDEs); the OK body is the predicted class *label*. It is an
/// error against a single-class model, as CLASSIFY/ESTIMATE are against a
/// multi-class one — the verb must match the loaded model kind.
///
/// Response payload grammar:
///   <id> OK <body>         body: HIGH | LOW | <class label> | <density> |
///                                PONG | RELOADED | INSERTED | DELETED |
///                                REBUILT <n> | <stats json>
///   <id> ERR <message>     malformed/unsatisfiable request (never aborts)
///   <id> OVERLOADED        admission queue full; retry later
///   <id> TIMEOUT           deadline expired before execution
/// Unparseable requests are answered with the leading id token when it
/// parses (e.g. a known id with an unknown verb) and id 0 otherwise.
enum class RequestVerb {
  kClassify,
  kClassifyTraining,
  kClassifyMc,
  kEstimateDensity,
  kInsert,
  kDelete,
  kFlush,
  kStats,
  kReload,
  kPing,
  kModels,
  kLoad,
  kUnload,
};

struct Request {
  uint64_t id = 0;
  RequestVerb verb = RequestVerb::kPing;
  /// Query point; classify/estimate verbs only.
  std::vector<double> point;
  /// Model path override; RELOAD (empty = reload the slot's path) and
  /// LOAD (required) only.
  std::string path;
  /// Target model id (`@<id>` scope); empty = the default model.
  std::string model_id;
  /// Per-request deadline override in ms; -1 = server default, 0 = none.
  int64_t timeout_ms = -1;
};

enum class ResponseCode { kOk, kError, kOverloaded, kTimeout };

/// Wire token of a response code ("OK", "ERR", "OVERLOADED", "TIMEOUT").
const char* ResponseCodeName(ResponseCode code);

struct Response {
  uint64_t id = 0;
  ResponseCode code = ResponseCode::kOk;
  /// Body after the code token; empty for OVERLOADED / TIMEOUT.
  std::string body;

  static Response Ok(uint64_t id, std::string body);
  static Response Error(uint64_t id, std::string message);
  static Response Overloaded(uint64_t id);
  static Response Timeout(uint64_t id);
};

/// Parses one request payload. Errors never abort: a malformed frame
/// yields a Status whose message goes back to the client as an ERR
/// response. Rejects non-finite coordinates (they would poison density
/// sums server-side).
Result<Request> ParseRequest(std::string_view payload);

/// Best-effort request id for ERR responses to payloads ParseRequest
/// rejected: the leading token when it is a valid id, else 0. Lets a
/// client match "unknown verb"-style errors to the request that caused
/// them instead of receiving an unattributable id-0 error.
uint64_t BestEffortRequestId(std::string_view payload);

/// Whether `id` is a legal model id: 1-64 chars of [A-Za-z0-9_.-]. The
/// alphabet is closed under filenames and the wire grammar (no spaces, no
/// '@'), so a model-dir stem is always addressable and vice versa.
bool IsValidModelId(std::string_view id);

/// Best-effort model scope of a request payload: the `@`-token after the
/// verb, or "" when absent or malformed. Routers key the consistent-hash
/// ring on this without validating the rest of the request — the owning
/// worker is the single source of protocol errors.
std::string BestEffortModelScope(std::string_view payload);

/// Renders a response payload (without framing).
std::string RenderResponse(const Response& response);

enum class Framing { kLengthPrefixed, kLine };

/// Frames a payload per `framing` (adds the length prefix or the trailing
/// newline; flattens interior newlines in line mode).
std::string EncodeFrame(std::string_view payload, Framing framing);

/// Hard cap on a single frame payload (1 MiB). A length prefix above this
/// is treated as a protocol error, bounding per-connection memory.
inline constexpr size_t kMaxFrameBytes = 1u << 20;

/// Buffered frame reader over a file descriptor. Blocking reads are split
/// into short poll() waits so the caller's `stop` predicate (shutdown or
/// reload flags) is observed within ~50 ms even when the peer is idle.
/// Owned and used by exactly one thread.
class FrameReader {
 public:
  FrameReader(int fd, Framing framing) : fd_(fd), framing_(framing) {}

  /// Next payload. Outcomes:
  ///   - a payload string: one complete frame;
  ///   - nullopt: clean end of stream (EOF with no partial frame) or
  ///     `stop` returned true;
  ///   - error Status: malformed frame (oversized length, EOF mid-frame)
  ///     or a read error. The connection should be dropped.
  Result<std::optional<std::string>> Next(const std::function<bool()>& stop);

 private:
  /// Waits (poll) then reads once into `buffer_`. Returns false on EOF.
  Result<bool> FillSome(const std::function<bool()>& stop, bool* stopped);

  int fd_;
  Framing framing_;
  std::string buffer_;
};

/// Mutex-guarded frame writer shared between a connection's reader thread
/// (parse errors, control responses) and the micro-batcher's dispatcher
/// (batch completions). A failed write marks the writer broken and later
/// writes become no-ops — a vanished client must not take down the
/// daemon. Closes `fd` on destruction when `owns_fd`.
class FrameWriter {
 public:
  FrameWriter(int fd, Framing framing, bool owns_fd);
  ~FrameWriter();

  FrameWriter(const FrameWriter&) = delete;
  FrameWriter& operator=(const FrameWriter&) = delete;

  /// Serializes, frames, and writes `response`. Thread-safe.
  void Write(const Response& response);

  /// Frames and writes an already-rendered payload verbatim. The fleet
  /// router forwards request/response payloads through this so the bytes
  /// between client and worker survive the hop unmodified (only the
  /// leading id token is rewritten). Thread-safe.
  void WriteRaw(std::string_view payload);

  bool broken() const;

 private:
  mutable std::mutex mutex_;
  int fd_;
  Framing framing_;
  bool owns_fd_;
  bool broken_ = false;
};

}  // namespace tkdc::serve

#endif  // TKDC_SERVE_PROTOCOL_H_
