#include "serve/registry.h"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/macros.h"

namespace tkdc::serve {
namespace {

/// Fixed per-model allowance for tree nodes, thresholds, and bookkeeping
/// the point-count estimate does not see.
constexpr size_t kModelOverheadBytes = 64 * 1024;

/// Model files are "<id>.tkdc"; the stem is the wire id.
constexpr char kModelSuffix[] = ".tkdc";

}  // namespace

std::string ModelMetricName(const std::string& id, const char* suffix) {
  std::string name = "serve.model.";
  name += id;
  name += '.';
  name += suffix;
  return name;
}

size_t ApproxModelBytes(const ServingModel& model) {
  // Coordinates are stored roughly three times: the training rows, the
  // spatial index's reordered copy, and the SoA leaf mirror. An estimate
  // is all the budget needs — it gates eviction, not allocation.
  size_t bytes =
      model.base_points() * model.dims() * sizeof(double) * 3;
  if (model.overlay != nullptr) {
    // Two buffers (inserts, tombstones), reserved up front.
    bytes += model.overlay->capacity() * model.overlay->dims() *
             sizeof(double) * 2;
  }
  if (model.base_data != nullptr) {
    bytes += model.base_data->size() * model.base_data->dims() *
             sizeof(double);
  }
  return bytes + kModelOverheadBytes;
}

ModelRegistry::ModelRegistry(RegistryOptions options, Loader loader,
                             MetricsRegistry* metrics)
    : options_(options), loader_(std::move(loader)), metrics_(metrics) {
  TKDC_CHECK_MSG(loader_ != nullptr, "ModelRegistry needs a loader");
}

void ModelRegistry::RegisterSlotMetricsLocked(const std::string& id,
                                              Slot& slot) {
  if (metrics_ == nullptr) return;
  slot.requests_id = metrics_->AddCounter(
      ModelMetricName(id, model_metric_names::kRequests));
  slot.loads_id =
      metrics_->AddCounter(ModelMetricName(id, model_metric_names::kLoads));
  slot.evictions_id = metrics_->AddCounter(
      ModelMetricName(id, model_metric_names::kEvictions));
  slot.reloads_id = metrics_->AddCounter(
      ModelMetricName(id, model_metric_names::kReloads));
  // The schema grew: the previous shard no longer spans it.
  shard_ = metrics_->NewShard();
}

void ModelRegistry::IncLocked(size_t metric_id, uint64_t count) {
  if (metrics_ == nullptr || shard_ == nullptr || count == 0) return;
  shard_->Inc(metric_id, count);
  metrics_->Absorb(*shard_);
  shard_->Reset();
}

Status ModelRegistry::ScanModelDir(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return Errorf() << "cannot open model dir " << dir;
  }
  std::vector<std::string> ids;
  while (const dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    const size_t suffix_len = sizeof(kModelSuffix) - 1;
    if (name.size() <= suffix_len ||
        name.compare(name.size() - suffix_len, suffix_len, kModelSuffix) !=
            0) {
      continue;
    }
    const std::string id = name.substr(0, name.size() - suffix_len);
    if (!IsValidModelId(id) || id == kDefaultModelId) {
      std::fprintf(stderr,
                   "model dir: skipping %s (stem is not a usable model id)\n",
                   name.c_str());
      continue;
    }
    ids.push_back(id);
  }
  ::closedir(handle);
  std::sort(ids.begin(), ids.end());

  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& id : ids) {
    if (slots_.count(id) != 0) continue;  // LOAD beat the scan; keep it.
    Slot slot;
    slot.path = prefix + id + kModelSuffix;
    slot.lru_pos = lru_.end();
    RegisterSlotMetricsLocked(id, slot);
    auto [it, inserted] = slots_.emplace(id, std::move(slot));
    if (options_.preload) {
      if (const Status status = LoadSlotLocked(id, it->second);
          !status.ok()) {
        return Errorf() << "preload of " << id << " failed: "
                        << status.message();
      }
    }
  }
  return Status::Ok();
}

Status ModelRegistry::Load(const std::string& id, const std::string& path) {
  if (!IsValidModelId(id)) {
    return Errorf() << "bad model id \"" << id
                    << "\" (want 1-64 chars of [A-Za-z0-9_.-])";
  }
  if (id == kDefaultModelId) {
    return Errorf() << "\"default\" is the --model slot; use RELOAD";
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (slots_.count(id) != 0) {
    return Errorf() << "model \"" << id
                    << "\" is already registered; use RELOAD @" << id;
  }
  Slot slot;
  slot.path = path;
  slot.lru_pos = lru_.end();
  RegisterSlotMetricsLocked(id, slot);
  auto [it, inserted] = slots_.emplace(id, std::move(slot));
  const Status status = LoadSlotLocked(id, it->second);
  if (!status.ok()) {
    // A LOAD that cannot load registers nothing: drop the slot so a
    // corrected retry is not forced through RELOAD.
    slots_.erase(it);
    return status;
  }
  return Status::Ok();
}

Status ModelRegistry::Unload(const std::string& id) {
  if (id == kDefaultModelId) {
    return Errorf() << "cannot unload the default model";
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(id);
  if (it == slots_.end()) {
    return Errorf() << "unknown model \"" << id << "\"";
  }
  Slot& slot = it->second;
  if (slot.model != nullptr) {
    resident_bytes_ -= slot.approx_bytes;
    lru_.erase(slot.lru_pos);
  }
  // In-flight batches holding the shared_ptr keep the generation alive;
  // dropping the slot only severs the registry's reference.
  slots_.erase(it);
  return Status::Ok();
}

Result<std::shared_ptr<ServingModel>> ModelRegistry::Acquire(
    const std::string& id, uint64_t requests) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(id);
  if (it == slots_.end()) {
    return Errorf() << "unknown model \"" << id
                    << "\" (LOAD it or add it to --model-dir)";
  }
  Slot& slot = it->second;
  if (slot.model == nullptr) {
    if (const Status status = LoadSlotLocked(id, slot); !status.ok()) {
      return status;
    }
  }
  TouchLocked(id, slot);
  IncLocked(slot.requests_id, requests);
  return slot.model;
}

std::shared_ptr<ServingModel> ModelRegistry::Resident(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(id);
  return it == slots_.end() ? nullptr : it->second.model;
}

Status ModelRegistry::Publish(const std::string& id,
                              std::shared_ptr<ServingModel> model) {
  TKDC_CHECK(model != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(id);
  if (it == slots_.end()) {
    return Errorf() << "unknown model \"" << id << "\"";
  }
  Slot& slot = it->second;
  if (slot.model != nullptr) {
    resident_bytes_ -= slot.approx_bytes;
  } else {
    slot.lru_pos = lru_.insert(lru_.end(), id);
  }
  slot.model = std::move(model);
  slot.approx_bytes = ApproxModelBytes(*slot.model);
  resident_bytes_ += slot.approx_bytes;
  TouchLocked(id, slot);
  IncLocked(slot.reloads_id, 1);
  EvictOverBudgetLocked(id);
  return Status::Ok();
}

std::vector<ModelRegistry::Entry> ModelRegistry::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> entries;
  entries.reserve(slots_.size());
  for (const auto& [id, slot] : slots_) {
    Entry entry;
    entry.id = id;
    entry.path = slot.path;
    entry.resident = slot.model != nullptr;
    entry.generation = entry.resident ? slot.model->generation : 0;
    entry.approx_bytes = entry.resident ? slot.approx_bytes : 0;
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
  return entries;
}

std::vector<std::string> ModelRegistry::ResidentIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  for (const auto& [id, slot] : slots_) {
    if (slot.model != nullptr) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t ModelRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

size_t ModelRegistry::slot_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

Status ModelRegistry::LoadSlotLocked(const std::string& id, Slot& slot) {
  auto loaded = loader_(slot.path);
  if (!loaded.ok()) return loaded.status();
  slot.model = loaded.take();
  slot.approx_bytes = ApproxModelBytes(*slot.model);
  slot.lru_pos = lru_.insert(lru_.end(), id);
  resident_bytes_ += slot.approx_bytes;
  IncLocked(slot.loads_id, 1);
  EvictOverBudgetLocked(id);
  return Status::Ok();
}

void ModelRegistry::TouchLocked(const std::string& id, Slot& slot) {
  lru_.erase(slot.lru_pos);
  slot.lru_pos = lru_.insert(lru_.end(), id);
}

void ModelRegistry::EvictOverBudgetLocked(const std::string& keep) {
  if (options_.max_resident_bytes == 0) return;
  auto it = lru_.begin();
  while (resident_bytes_ > options_.max_resident_bytes &&
         it != lru_.end()) {
    const std::string& id = *it;
    Slot& slot = slots_.at(id);
    const bool dirty =
        slot.model->overlay != nullptr && !slot.model->overlay->snapshot().empty();
    if (id == keep || dirty) {
      // Staged mutations exist nowhere but this overlay; evicting would
      // lose them. Skip and look further up the LRU order.
      ++it;
      continue;
    }
    resident_bytes_ -= slot.approx_bytes;
    slot.model.reset();  // In-flight references keep it alive (RCU).
    slot.approx_bytes = 0;
    IncLocked(slot.evictions_id, 1);
    it = lru_.erase(it);
    slot.lru_pos = lru_.end();
  }
}

}  // namespace tkdc::serve
