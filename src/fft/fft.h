#ifndef TKDC_FFT_FFT_H_
#define TKDC_FFT_FFT_H_

#include <complex>
#include <cstddef>
#include <vector>

namespace tkdc {

/// True when n is a power of two (n >= 1).
bool IsPowerOfTwo(size_t n);

/// Smallest power of two >= n (n >= 1).
size_t NextPowerOfTwo(size_t n);

/// In-place iterative radix-2 Cooley-Tukey FFT. `data.size()` must be a
/// power of two. With `inverse`, computes the inverse transform including
/// the 1/n normalization, so Fft(Fft(x), inverse) == x.
void Fft(std::vector<std::complex<double>>& data, bool inverse);

/// In-place multi-dimensional FFT over a row-major array of the given
/// `shape` (all extents powers of two, product equal to data.size()).
/// Applies the 1-d transform separably along every axis.
void FftNd(std::vector<std::complex<double>>& data,
           const std::vector<size_t>& shape, bool inverse);

}  // namespace tkdc

#endif  // TKDC_FFT_FFT_H_
