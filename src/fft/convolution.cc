#include "fft/convolution.h"

#include <complex>

#include "common/macros.h"
#include "fft/fft.h"

namespace tkdc {
namespace {

size_t TotalSize(const std::vector<size_t>& shape) {
  size_t total = 1;
  for (size_t extent : shape) total *= extent;
  return total;
}

void CheckArgs(const std::vector<double>& data,
               const std::vector<size_t>& shape,
               const std::vector<double>& kernel,
               const std::vector<size_t>& kernel_shape) {
  TKDC_CHECK(!shape.empty());
  TKDC_CHECK(shape.size() == kernel_shape.size());
  TKDC_CHECK(data.size() == TotalSize(shape));
  TKDC_CHECK(kernel.size() == TotalSize(kernel_shape));
  for (size_t extent : kernel_shape) {
    TKDC_CHECK_MSG(extent % 2 == 1, "kernel extents must be odd");
  }
}

// Row-major strides for `shape`.
std::vector<size_t> Strides(const std::vector<size_t>& shape) {
  std::vector<size_t> strides(shape.size());
  size_t stride = 1;
  for (size_t axis = shape.size(); axis-- > 0;) {
    strides[axis] = stride;
    stride *= shape[axis];
  }
  return strides;
}

// Advances a multi-index through `shape` in row-major order. Returns false
// after the last index.
bool NextIndex(std::vector<size_t>& index, const std::vector<size_t>& shape) {
  for (size_t axis = shape.size(); axis-- > 0;) {
    if (++index[axis] < shape[axis]) return true;
    index[axis] = 0;
  }
  return false;
}

}  // namespace

std::vector<double> DirectConvolveSame(
    const std::vector<double>& data, const std::vector<size_t>& shape,
    const std::vector<double>& kernel,
    const std::vector<size_t>& kernel_shape) {
  CheckArgs(data, shape, kernel, kernel_shape);
  const size_t d = shape.size();
  const std::vector<size_t> data_strides = Strides(shape);
  std::vector<double> out(data.size(), 0.0);
  std::vector<long> half(d);
  for (size_t a = 0; a < d; ++a) {
    half[a] = static_cast<long>(kernel_shape[a] / 2);
  }

  std::vector<size_t> out_idx(d, 0);
  do {
    double acc = 0.0;
    std::vector<size_t> k_idx(d, 0);
    do {
      bool in_bounds = true;
      size_t src_offset = 0;
      for (size_t a = 0; a < d; ++a) {
        const long coord = static_cast<long>(out_idx[a]) +
                           static_cast<long>(k_idx[a]) - half[a];
        if (coord < 0 || coord >= static_cast<long>(shape[a])) {
          in_bounds = false;
          break;
        }
        src_offset += static_cast<size_t>(coord) * data_strides[a];
      }
      if (in_bounds) {
        size_t k_offset = 0;
        size_t k_stride = 1;
        for (size_t a = d; a-- > 0;) {
          // Flip the kernel, as linear convolution requires.
          k_offset += (kernel_shape[a] - 1 - k_idx[a]) * k_stride;
          k_stride *= kernel_shape[a];
        }
        acc += data[src_offset] * kernel[k_offset];
      }
    } while (NextIndex(k_idx, kernel_shape));
    size_t out_offset = 0;
    for (size_t a = 0; a < d; ++a) out_offset += out_idx[a] * data_strides[a];
    out[out_offset] = acc;
  } while (NextIndex(out_idx, shape));
  return out;
}

std::vector<double> FftConvolveSame(const std::vector<double>& data,
                                    const std::vector<size_t>& shape,
                                    const std::vector<double>& kernel,
                                    const std::vector<size_t>& kernel_shape) {
  CheckArgs(data, shape, kernel, kernel_shape);
  const size_t d = shape.size();

  // Pad each axis to a power of two at least shape + kernel - 1 so circular
  // convolution equals linear convolution.
  std::vector<size_t> padded(d);
  for (size_t a = 0; a < d; ++a) {
    padded[a] = NextPowerOfTwo(shape[a] + kernel_shape[a] - 1);
  }
  const size_t padded_total = TotalSize(padded);
  const std::vector<size_t> padded_strides = Strides(padded);
  const std::vector<size_t> data_strides = Strides(shape);

  std::vector<std::complex<double>> a_freq(padded_total, {0.0, 0.0});
  std::vector<std::complex<double>> b_freq(padded_total, {0.0, 0.0});

  // Embed data at the origin of the padded array.
  std::vector<size_t> idx(d, 0);
  do {
    size_t src = 0, dst = 0;
    for (size_t axis = 0; axis < d; ++axis) {
      src += idx[axis] * data_strides[axis];
      dst += idx[axis] * padded_strides[axis];
    }
    a_freq[dst] = data[src];
  } while (NextIndex(idx, shape));

  // Embed the kernel at the origin too.
  const std::vector<size_t> kernel_strides = Strides(kernel_shape);
  idx.assign(d, 0);
  do {
    size_t src = 0, dst = 0;
    for (size_t axis = 0; axis < d; ++axis) {
      src += idx[axis] * kernel_strides[axis];
      dst += idx[axis] * padded_strides[axis];
    }
    b_freq[dst] = kernel[src];
  } while (NextIndex(idx, kernel_shape));

  FftNd(a_freq, padded, /*inverse=*/false);
  FftNd(b_freq, padded, /*inverse=*/false);
  for (size_t i = 0; i < padded_total; ++i) a_freq[i] *= b_freq[i];
  FftNd(a_freq, padded, /*inverse=*/true);

  // The "same" window starts at kernel_shape/2 along each axis of the full
  // linear-convolution result.
  std::vector<double> out(data.size(), 0.0);
  idx.assign(d, 0);
  do {
    size_t src = 0, dst = 0;
    for (size_t axis = 0; axis < d; ++axis) {
      src += (idx[axis] + kernel_shape[axis] / 2) * padded_strides[axis];
      dst += idx[axis] * data_strides[axis];
    }
    out[dst] = a_freq[src].real();
  } while (NextIndex(idx, shape));
  return out;
}

}  // namespace tkdc
