#ifndef TKDC_FFT_CONVOLUTION_H_
#define TKDC_FFT_CONVOLUTION_H_

#include <cstddef>
#include <vector>

namespace tkdc {

/// Multi-dimensional "same" linear convolution of a real row-major array
/// `data` of the given `shape` with a real kernel of odd extents
/// `kernel_shape` (the kernel is centered). Returns an array of `shape`.
///
/// `DirectConvolveSame` is the O(|data| * |kernel|) reference;
/// `FftConvolveSame` zero-pads each axis to a power of two covering
/// shape + kernel - 1 and multiplies in the frequency domain. Both produce
/// identical results up to round-off; the binned KDE baseline picks
/// whichever is cheaper.
std::vector<double> DirectConvolveSame(const std::vector<double>& data,
                                       const std::vector<size_t>& shape,
                                       const std::vector<double>& kernel,
                                       const std::vector<size_t>& kernel_shape);

std::vector<double> FftConvolveSame(const std::vector<double>& data,
                                    const std::vector<size_t>& shape,
                                    const std::vector<double>& kernel,
                                    const std::vector<size_t>& kernel_shape);

}  // namespace tkdc

#endif  // TKDC_FFT_CONVOLUTION_H_
