#include "fft/fft.h"

#include <numbers>

#include "common/macros.h"

namespace tkdc {

bool IsPowerOfTwo(size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

size_t NextPowerOfTwo(size_t n) {
  TKDC_CHECK(n >= 1);
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<std::complex<double>>& data, bool inverse) {
  const size_t n = data.size();
  TKDC_CHECK(IsPowerOfTwo(n));
  if (n == 1) return;

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

void FftNd(std::vector<std::complex<double>>& data,
           const std::vector<size_t>& shape, bool inverse) {
  TKDC_CHECK(!shape.empty());
  size_t total = 1;
  for (size_t extent : shape) {
    TKDC_CHECK(IsPowerOfTwo(extent));
    total *= extent;
  }
  TKDC_CHECK(data.size() == total);

  // Transform along each axis in turn: gather each 1-d line, FFT it,
  // scatter it back. Strides are row-major.
  std::vector<size_t> strides(shape.size());
  size_t stride = 1;
  for (size_t axis = shape.size(); axis-- > 0;) {
    strides[axis] = stride;
    stride *= shape[axis];
  }

  std::vector<std::complex<double>> line;
  for (size_t axis = 0; axis < shape.size(); ++axis) {
    const size_t extent = shape[axis];
    const size_t axis_stride = strides[axis];
    const size_t num_lines = total / extent;
    line.resize(extent);
    for (size_t l = 0; l < num_lines; ++l) {
      // Map line index l to the base offset of this line: iterate all
      // coordinates except `axis`.
      size_t rem = l;
      size_t base = 0;
      for (size_t a = 0; a < shape.size(); ++a) {
        if (a == axis) continue;
        const size_t coord = rem % shape[a];
        rem /= shape[a];
        base += coord * strides[a];
      }
      for (size_t k = 0; k < extent; ++k) line[k] = data[base + k * axis_stride];
      Fft(line, inverse);
      for (size_t k = 0; k < extent; ++k) data[base + k * axis_stride] = line[k];
    }
  }
}

}  // namespace tkdc
