#ifndef TKDC_TKDC_API_H_
#define TKDC_TKDC_API_H_

/// The stable public surface of the tkdc library (`tkdc::api`).
///
/// Everything an embedding application needs — training, model
/// persistence, classification, density estimation — is reachable through
/// this one header; `tkdc_cli`, `tkdc_serve`, and the benches build on it
/// instead of reaching into per-algorithm internals. Types that appear in
/// the surface (Dataset, TkdcConfig, Classification, DensityClassifier,
/// MetricsRegistry, Status/Result) are re-exported by inclusion; anything
/// not reachable from here (query engines, spatial indexes, bound
/// evaluators, model wire structs) is internal and may change freely
/// between versions. See DESIGN.md § "Public API surface".
///
/// Error policy: every function taking user-supplied input (configs,
/// file paths, datasets) returns Status / Result instead of aborting, so
/// long-lived callers (the tkdc_serve daemon) can surface the message and
/// keep running. The per-point call helpers mirror the DensityClassifier
/// facade and keep its CHECK-on-misuse semantics (classifying before
/// training is a programmer error, not user input).

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "data/dataset.h"
#include "kde/density_classifier.h"
#include "tkdc/config.h"
#include "tkdc/model_io.h"
#include "tkdc/multiclass.h"

namespace tkdc::api {

/// How to build a classifier: which algorithm from the paper's lineup, the
/// shared tkdc-style knobs, and the knn-only neighbor count.
struct TrainOptions {
  /// One of KnownAlgorithms(): "tkdc" (default), "nocut", "simple",
  /// "rkde", "binned", or "knn".
  std::string algorithm = "tkdc";
  /// Shared knobs (p, epsilon, bandwidth, kernel, index backend, threads,
  /// seed, ...). Baselines map the subset they understand.
  TkdcConfig config;
  /// Neighbor count; knn only.
  size_t k = 10;
};

/// The algorithm names NewClassifier/Train accept, in the paper's order.
const std::vector<std::string>& KnownAlgorithms();

/// Builds an untrained classifier per `options`. Errors (with the allowed
/// values listed) on an unknown algorithm name or an invalid config.
Result<std::unique_ptr<DensityClassifier>> NewClassifier(
    const TrainOptions& options);

/// Builds and trains a classifier on `data` (fixing the quantile
/// threshold t(p)). Errors on bad options or an unusable dataset instead
/// of aborting; the returned classifier is ready to Classify().
Result<std::unique_ptr<DensityClassifier>> Train(const Dataset& data,
                                                 const TrainOptions& options);

/// Loads any model saved by SaveModel, dispatching on the stored
/// algorithm tag. The result is fully trained.
Result<std::unique_ptr<DensityClassifier>> LoadModel(const std::string& path);

/// Persists a trained classifier (any algorithm) to `path`.
/// `training_data` must be the dataset it was trained on;
/// `include_densities` keeps the cached training-density vector (tkdc /
/// nocut models only — larger file, faster ClassifyTraining).
Status SaveModel(const std::string& path, const DensityClassifier& classifier,
                 const Dataset& training_data, bool include_densities = true);

/// Human-readable description of a trained model (the `tkdc_cli info`
/// body): algorithm, dimensions, threshold, and per-algorithm extras.
std::string Describe(const DensityClassifier& classifier);

/// Reconstructs the TrainOptions a classifier was built with, so the
/// streaming rebuild path can retrain an equivalent model on base ∪
/// overlay without the caller having kept the original options around.
/// Errors for classifier types the API did not construct.
Result<TrainOptions> RecoverTrainOptions(const DensityClassifier& classifier);

// --- Multi-class classification (tkdc/multiclass.h) ---------------------
//
// One tkdc model per class, classification by simultaneous cross-class
// bound refinement. The multi-class classifier is its own facade (labels,
// not high/low), so it rides beside the DensityClassifier surface rather
// than behind it; model files use the same container format under
// algorithm tag 7 and are distinguished from single-class files by
// ProbeModel.

/// Trains one tkdc model per distinct label in `row_labels` (one label
/// per row of `data`; classes ordered lexicographically). `priors` is
/// empty for empirical class frequencies, or one positive weight per
/// class in label order summing to 1. Errors (not aborts) on degenerate
/// input: fewer than two classes, a class with fewer than two rows, bad
/// priors, or an invalid config.
Result<std::unique_ptr<MultiClassClassifier>> TrainMultiClass(
    const Dataset& data, const std::vector<std::string>& row_labels,
    const TkdcConfig& config, std::vector<double> priors = {});

/// Persists a trained multi-class classifier to `path` (tag-7 container:
/// K per-class tkdc sections plus the label/prior table).
Status SaveMultiClassModel(const std::string& path,
                           const MultiClassClassifier& classifier,
                           bool include_densities = true);

/// Loads a multi-class container saved by SaveMultiClassModel. Errors on
/// single-class files (use LoadModel) and on any corruption.
Result<std::unique_ptr<MultiClassClassifier>> LoadMultiClassModel(
    const std::string& path);

/// What `path` holds — single-class or multi-class — decided from the
/// file header alone, so callers can dispatch to the right loader without
/// parsing (and without triggering the wrong loader's error).
Result<ModelKind> ProbeModel(const std::string& path);

/// Human-readable description of a trained multi-class model (the
/// `tkdc_cli info` body for tag-7 files).
std::string DescribeMultiClass(const MultiClassClassifier& classifier);

// --- Query calls (thin, stable aliases over the classifier facade) ------

inline Classification Classify(DensityClassifier& classifier,
                               std::span<const double> x) {
  return classifier.Classify(x);
}

inline Classification ClassifyTraining(DensityClassifier& classifier,
                                       std::span<const double> x) {
  return classifier.ClassifyTraining(x);
}

inline std::vector<Classification> ClassifyBatch(DensityClassifier& classifier,
                                                 const Dataset& queries) {
  return classifier.ClassifyBatch(queries);
}

inline std::vector<Classification> ClassifyTrainingBatch(
    DensityClassifier& classifier, const Dataset& queries) {
  return classifier.ClassifyTrainingBatch(queries);
}

inline double EstimateDensity(DensityClassifier& classifier,
                              std::span<const double> x) {
  return classifier.EstimateDensity(x);
}

// --- Streaming overlay calls (see kde/delta_overlay.h) ------------------
//
// The overlay variants answer against base model + delta overlay without
// retraining; classifier.supports_overlay() gates them. The serve daemon
// is the primary consumer.

inline Classification ClassifyWithOverlay(DensityClassifier& classifier,
                                          std::span<const double> x,
                                          const DeltaOverlay& overlay) {
  return classifier.ClassifyWithOverlay(x, overlay);
}

inline std::vector<Classification> ClassifyBatchWithOverlay(
    DensityClassifier& classifier, const Dataset& queries,
    const DeltaOverlay& overlay, bool training = false) {
  return classifier.ClassifyBatchWithOverlay(queries, overlay, training);
}

inline double EstimateDensityWithOverlay(DensityClassifier& classifier,
                                         std::span<const double> x,
                                         const DeltaOverlay& overlay) {
  return classifier.EstimateDensityWithOverlay(x, overlay);
}

}  // namespace tkdc::api

#endif  // TKDC_TKDC_API_H_
