#ifndef TKDC_TKDC_API_H_
#define TKDC_TKDC_API_H_

/// The stable public surface of the tkdc library (`tkdc::api`).
///
/// Everything an embedding application needs — training, model
/// persistence, classification, density estimation — is reachable through
/// this one header; `tkdc_cli`, `tkdc_serve`, and the benches build on it
/// instead of reaching into per-algorithm internals. Types that appear in
/// the surface (Dataset, TkdcConfig, Classification, DensityClassifier,
/// MetricsRegistry, Status/Result) are re-exported by inclusion; anything
/// not reachable from here (query engines, spatial indexes, bound
/// evaluators, model wire structs) is internal and may change freely
/// between versions. See DESIGN.md § "Public API surface".
///
/// Error policy: every function taking user-supplied input (configs,
/// file paths, datasets) returns Status / Result instead of aborting, so
/// long-lived callers (the tkdc_serve daemon) can surface the message and
/// keep running. The per-point call helpers mirror the DensityClassifier
/// facade and keep its CHECK-on-misuse semantics (classifying before
/// training is a programmer error, not user input).

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "data/dataset.h"
#include "kde/density_classifier.h"
#include "tkdc/config.h"
#include "tkdc/model_io.h"
#include "tkdc/multiclass.h"

namespace tkdc::api {

/// How to build a classifier: which algorithm from the paper's lineup, the
/// shared tkdc-style knobs, and the knn-only neighbor count.
struct TrainOptions {
  /// One of KnownAlgorithms(): "tkdc" (default), "nocut", "simple",
  /// "rkde", "binned", or "knn".
  std::string algorithm = "tkdc";
  /// Shared knobs (p, epsilon, bandwidth, kernel, index backend, threads,
  /// seed, ...). Baselines map the subset they understand.
  TkdcConfig config;
  /// Neighbor count; knn only.
  size_t k = 10;
};

/// The algorithm names NewClassifier/Train accept, in the paper's order.
const std::vector<std::string>& KnownAlgorithms();

/// Builds an untrained classifier per `options`. Errors (with the allowed
/// values listed) on an unknown algorithm name or an invalid config.
Result<std::unique_ptr<DensityClassifier>> NewClassifier(
    const TrainOptions& options);

/// Builds and trains a classifier on `data` (fixing the quantile
/// threshold t(p)). Errors on bad options or an unusable dataset instead
/// of aborting; the returned classifier is ready to Classify().
Result<std::unique_ptr<DensityClassifier>> Train(const Dataset& data,
                                                 const TrainOptions& options);

/// Persistence knobs, named at the call site instead of trailing bools.
struct SaveOptions {
  /// Keep the cached training-density vector (tkdc / nocut models only —
  /// larger file, faster ClassifyTraining).
  bool include_densities = true;
};

/// Persists a trained classifier (any algorithm) to `path`.
/// `training_data` must be the dataset it was trained on.
Status SaveModel(const std::string& path, const DensityClassifier& classifier,
                 const Dataset& training_data, const SaveOptions& options);

/// Deprecated positional-bool form; prefer the SaveOptions overload.
Status SaveModel(const std::string& path, const DensityClassifier& classifier,
                 const Dataset& training_data, bool include_densities = true);

/// Loads a single-class model saved by SaveModel, dispatching on the
/// stored algorithm tag. The result is fully trained. Deprecated entry
/// point: prefer LoadAny, which also handles multi-class files.
Result<std::unique_ptr<DensityClassifier>> LoadModel(const std::string& path);

/// Human-readable description of a trained model (the `tkdc_cli info`
/// body): algorithm, dimensions, threshold, and per-algorithm extras.
std::string Describe(const DensityClassifier& classifier);

/// Reconstructs the TrainOptions a classifier was built with, so the
/// streaming rebuild path can retrain an equivalent model on base ∪
/// overlay without the caller having kept the original options around.
/// Errors for classifier types the API did not construct.
Result<TrainOptions> RecoverTrainOptions(const DensityClassifier& classifier);

// --- Multi-class classification (tkdc/multiclass.h) ---------------------
//
// One tkdc model per class, classification by simultaneous cross-class
// bound refinement. The multi-class classifier is its own facade (labels,
// not high/low), so it rides beside the DensityClassifier surface rather
// than behind it; model files use the same container format under
// algorithm tag 7 and are distinguished from single-class files by
// ProbeModel.

/// Trains one tkdc model per distinct label in `row_labels` (one label
/// per row of `data`; classes ordered lexicographically). `priors` is
/// empty for empirical class frequencies, or one positive weight per
/// class in label order summing to 1. Errors (not aborts) on degenerate
/// input: fewer than two classes, a class with fewer than two rows, bad
/// priors, or an invalid config.
Result<std::unique_ptr<MultiClassClassifier>> TrainMultiClass(
    const Dataset& data, const std::vector<std::string>& row_labels,
    const TkdcConfig& config, std::vector<double> priors = {});

/// Persists a trained multi-class classifier to `path` (tag-7 container:
/// K per-class tkdc sections plus the label/prior table).
Status SaveMultiClassModel(const std::string& path,
                           const MultiClassClassifier& classifier,
                           const SaveOptions& options);

/// Deprecated positional-bool form; prefer the SaveOptions overload.
Status SaveMultiClassModel(const std::string& path,
                           const MultiClassClassifier& classifier,
                           bool include_densities = true);

/// Loads a multi-class container saved by SaveMultiClassModel. Errors on
/// single-class files (use LoadAny) and on any corruption. Deprecated
/// entry point: prefer LoadAny, which dispatches on the file kind.
Result<std::unique_ptr<MultiClassClassifier>> LoadMultiClassModel(
    const std::string& path);

/// What `path` holds — single-class or multi-class — decided from the
/// file header alone, so callers can dispatch to the right loader without
/// parsing (and without triggering the wrong loader's error).
Result<ModelKind> ProbeModel(const std::string& path);

// --- Kind-agnostic model handles ----------------------------------------

/// A loaded model of either kind behind one kind-agnostic surface.
///
/// Exactly one of single()/multi() is non-null. Callers that can serve
/// both kinds keep the handle and branch on kind(); callers built for one
/// kind Take*() the owning pointer out (the handle goes empty) and use
/// the concrete facade.
class ModelHandle {
 public:
  ModelHandle() = default;
  explicit ModelHandle(std::unique_ptr<DensityClassifier> single)
      : single_(std::move(single)) {}
  explicit ModelHandle(std::unique_ptr<MultiClassClassifier> multi)
      : multi_(std::move(multi)) {}

  ModelHandle(ModelHandle&&) = default;
  ModelHandle& operator=(ModelHandle&&) = default;

  /// kSingleClass, kMultiClass, or kInvalid for an empty handle.
  ModelKind kind() const {
    if (single_ != nullptr) return ModelKind::kSingleClass;
    if (multi_ != nullptr) return ModelKind::kMultiClass;
    return ModelKind::kInvalid;
  }
  bool valid() const { return kind() != ModelKind::kInvalid; }

  DensityClassifier* single() { return single_.get(); }
  const DensityClassifier* single() const { return single_.get(); }
  MultiClassClassifier* multi() { return multi_.get(); }
  const MultiClassClassifier* multi() const { return multi_.get(); }

  /// Transfer ownership out (the handle goes empty). Null when the handle
  /// holds the other kind.
  std::unique_ptr<DensityClassifier> TakeSingle() {
    return std::move(single_);
  }
  std::unique_ptr<MultiClassClassifier> TakeMulti() {
    return std::move(multi_);
  }

  /// Query dimensionality of whichever kind is held.
  size_t dims() const;
  /// Wire name of the held algorithm ("tkdc", ..., or "tkdc-mc").
  std::string algorithm() const;
  /// Human-readable description (the `tkdc_cli info` body) of either kind.
  std::string Describe() const;
  /// Persists the held model to `path`. Single-class models re-export
  /// their training rows; errors for engines that cannot (binned) — save
  /// those with SaveModel and the original dataset.
  Status SaveTo(const std::string& path, const SaveOptions& options) const;
  /// Threading/metrics pass-throughs to whichever kind is held.
  void SetNumThreads(size_t num_threads);
  void AttachMetrics(MetricsRegistry* registry);

 private:
  std::unique_ptr<DensityClassifier> single_;
  std::unique_ptr<MultiClassClassifier> multi_;
};

/// Loads any model file — single- or multi-class — dispatching on the
/// header probe. The one entry point callers need; LoadModel /
/// LoadMultiClassModel remain as deprecated kind-specific wrappers.
Result<ModelHandle> LoadAny(const std::string& path);

/// Human-readable description of a trained multi-class model (the
/// `tkdc_cli info` body for tag-7 files).
std::string DescribeMultiClass(const MultiClassClassifier& classifier);

// --- Query calls (thin, stable aliases over the classifier facade) ------

inline Classification Classify(DensityClassifier& classifier,
                               std::span<const double> x) {
  return classifier.Classify(x);
}

inline Classification ClassifyTraining(DensityClassifier& classifier,
                                       std::span<const double> x) {
  return classifier.ClassifyTraining(x);
}

inline std::vector<Classification> ClassifyBatch(DensityClassifier& classifier,
                                                 const Dataset& queries) {
  return classifier.ClassifyBatch(queries);
}

inline std::vector<Classification> ClassifyTrainingBatch(
    DensityClassifier& classifier, const Dataset& queries) {
  return classifier.ClassifyTrainingBatch(queries);
}

inline double EstimateDensity(DensityClassifier& classifier,
                              std::span<const double> x) {
  return classifier.EstimateDensity(x);
}

// --- Streaming overlay calls (see kde/delta_overlay.h) ------------------
//
// The overlay variants answer against base model + delta overlay without
// retraining; classifier.supports_overlay() gates them. The serve daemon
// is the primary consumer.

inline Classification ClassifyWithOverlay(DensityClassifier& classifier,
                                          std::span<const double> x,
                                          const DeltaOverlay& overlay) {
  return classifier.ClassifyWithOverlay(x, overlay);
}

inline std::vector<Classification> ClassifyBatchWithOverlay(
    DensityClassifier& classifier, const Dataset& queries,
    const DeltaOverlay& overlay, bool training = false) {
  return classifier.ClassifyBatchWithOverlay(queries, overlay, training);
}

inline double EstimateDensityWithOverlay(DensityClassifier& classifier,
                                         std::span<const double> x,
                                         const DeltaOverlay& overlay) {
  return classifier.EstimateDensityWithOverlay(x, overlay);
}

}  // namespace tkdc::api

#endif  // TKDC_TKDC_API_H_
