#include "cli/cli.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <optional>

// The CLI is a consumer of the stable public surface: everything it does
// (train, persist, load, classify) goes through tkdc_api.h rather than
// per-algorithm internals.
#include "common/timer.h"
#include "data/csv.h"
#include "data/datasets.h"
#include "tkdc_api.h"

namespace tkdc {
namespace {

constexpr const char kUsage[] =
    "usage: tkdc_cli <train|classify|info|generate> [options]\n"
    "  train     --input X.csv --model M.tkdc [--algorithm NAME] [--p F]\n"
    "            [--epsilon F] [--coreset-epsilon F] [--b F] [--k N]\n"
    "            [--kernel gaussian|epanechnikov|uniform|biweight]\n"
    "            [--split trimmed|median|midpoint] [--index kdtree|balltree]\n"
    "            [--no-grid] [--fast-math-leaf] [--seed N]\n"
    "            [--threads N] [--header] [--no-densities]\n"
    "  (--algorithm: tkdc (default), nocut, simple, rkde, binned, knn, or\n"
    "   tkdc-mc; --k applies to knn only; --index picks the spatial-index\n"
    "   backend for tree-based algorithms, default kdtree or $TKDC_INDEX;\n"
    "   --fast-math-leaf: vectorized exp approximation in Gaussian leaf\n"
    "   scans — near-exact densities, not bit-identical to the default.\n"
    "   --coreset-epsilon: spend this share of --epsilon on epsilon-coreset\n"
    "   training-set compression (tkdc/nocut/tkdc-mc; must be < epsilon;\n"
    "   0 disables, the default). Smaller model, same accuracy contract.\n"
    "   tkdc-mc trains a multi-class model: the input CSV's LAST column is\n"
    "   the string class label, the preceding columns are features; one\n"
    "   tkdc model is trained per class with empirical priors.)\n"
    "  classify  --model M.tkdc --input Q.csv --output R.csv [--header]\n"
    "            [--training] [--density] [--threads N] [--metrics-out J]\n"
    "  (--input/--output may repeat, pairwise: the model is loaded ONCE and\n"
    "   each query file is classified against it in turn.\n"
    "   Multi-class models write a `label` column of predicted class\n"
    "   labels; --training/--density do not apply to them.\n"
    "   --threads: worker threads for training densities and batch\n"
    "   classification; 0 = hardware concurrency (default), 1 = serial.\n"
    "   Results are identical for any value.\n"
    "   --metrics-out: write query-path metrics (prune-depth, kernel-eval,\n"
    "   and cutoff-reason histograms) as JSON covering all query files.)\n"
    "  info      --model M.tkdc\n"
    "  generate  --dataset NAME --n N --output X.csv [--dims D] [--seed N]\n";

// Parsed command line: --key value pairs plus boolean --flag switches.
// Repeated options accumulate in order; Value() keeps the familiar
// last-one-wins reading for options that should be scalar.
struct ParsedArgs {
  std::map<std::string, std::vector<std::string>> values;
  std::map<std::string, bool> flags;

  std::optional<std::string> Value(const std::string& key) const {
    const auto it = values.find(key);
    if (it == values.end()) return std::nullopt;
    return it->second.back();
  }

  std::vector<std::string> Values(const std::string& key) const {
    const auto it = values.find(key);
    return it == values.end() ? std::vector<std::string>() : it->second;
  }

  bool Flag(const std::string& key) const {
    const auto it = flags.find(key);
    return it != flags.end() && it->second;
  }
};

const char* const kBooleanFlags[] = {"--header", "--training",
                                     "--density", "--no-grid",
                                     "--no-densities", "--fast-math-leaf"};

bool IsBooleanFlag(const std::string& arg) {
  for (const char* flag : kBooleanFlags) {
    if (arg == flag) return true;
  }
  return false;
}

// Parses `args` after the subcommand. Returns false on malformed input.
bool ParseArgs(const std::vector<std::string>& args, size_t start,
               ParsedArgs* parsed, std::ostream& err) {
  for (size_t i = start; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      err << "unexpected argument: " << arg << "\n";
      return false;
    }
    if (IsBooleanFlag(arg)) {
      parsed->flags[arg] = true;
      continue;
    }
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      parsed->values[arg.substr(0, eq)].push_back(arg.substr(eq + 1));
      continue;
    }
    if (i + 1 >= args.size()) {
      err << "missing value for " << arg << "\n";
      return false;
    }
    parsed->values[arg].push_back(args[++i]);
  }
  return true;
}

bool RequireValues(const ParsedArgs& parsed,
                   const std::vector<std::string>& keys, std::ostream& err) {
  for (const std::string& key : keys) {
    if (!parsed.Value(key).has_value()) {
      err << "missing required option " << key << "\n";
      return false;
    }
  }
  return true;
}

// `train --algorithm tkdc-mc`: the input CSV's last column is the string
// class label; one tkdc model per class, empirical priors, one tag-7
// container file out.
int CmdTrainMultiClass(const ParsedArgs& parsed, const TkdcConfig& config,
                       std::ostream& out, std::ostream& err) {
  std::string error;
  const auto table =
      ReadLabeledCsv(*parsed.Value("--input"), parsed.Flag("--header"), &error);
  if (!table.has_value()) {
    err << error << "\n";
    return 1;
  }
  out << "training tkdc-mc on " << table->data.size() << " x "
      << table->data.dims() << " labeled points...\n";
  WallTimer timer;
  auto trained = api::TrainMultiClass(table->data, table->labels, config);
  if (!trained.ok()) {
    err << trained.message() << "\n";
    return 1;
  }
  std::unique_ptr<MultiClassClassifier> classifier = trained.take();
  out << "trained " << classifier->num_classes() << " classes in "
      << timer.ElapsedSeconds() << "s:";
  for (size_t c = 0; c < classifier->num_classes(); ++c) {
    out << " " << classifier->class_labels()[c] << " (prior "
        << classifier->priors()[c] << ")";
  }
  out << "\n";
  api::SaveOptions save_options;
  save_options.include_densities = !parsed.Flag("--no-densities");
  const Status saved = api::SaveMultiClassModel(*parsed.Value("--model"),
                                                *classifier, save_options);
  if (!saved.ok()) {
    err << saved.message() << "\n";
    return 1;
  }
  out << "model written to " << *parsed.Value("--model") << "\n";
  return 0;
}

int CmdTrain(const ParsedArgs& parsed, std::ostream& out, std::ostream& err) {
  if (!RequireValues(parsed, {"--input", "--model"}, err)) return 2;
  TkdcConfig config;
  if (const auto p = parsed.Value("--p")) config.p = std::atof(p->c_str());
  if (const auto eps = parsed.Value("--epsilon")) {
    config.epsilon = std::atof(eps->c_str());
  }
  if (const auto coreset_eps = parsed.Value("--coreset-epsilon")) {
    config.coreset_epsilon = std::atof(coreset_eps->c_str());
  }
  if (const auto b = parsed.Value("--b")) {
    config.bandwidth_scale = std::atof(b->c_str());
  }
  if (const auto kernel = parsed.Value("--kernel")) {
    if (*kernel == "gaussian") {
      config.kernel = KernelType::kGaussian;
    } else if (*kernel == "epanechnikov") {
      config.kernel = KernelType::kEpanechnikov;
    } else if (*kernel == "uniform") {
      config.kernel = KernelType::kUniform;
    } else if (*kernel == "biweight") {
      config.kernel = KernelType::kBiweight;
    } else {
      err << "unknown kernel: " << *kernel << "\n";
      return 2;
    }
  }
  if (const auto split = parsed.Value("--split")) {
    const auto rule = SplitRuleFromName(*split);
    if (!rule.has_value()) {
      err << "unknown split rule: " << *split << "\n";
      return 2;
    }
    config.split_rule = *rule;
  }
  if (const auto index = parsed.Value("--index")) {
    const auto backend = IndexBackendFromName(*index);
    if (!backend.has_value()) {
      err << "unknown index backend: " << *index
          << " (available: kdtree balltree)\n";
      return 2;
    }
    config.index_backend = *backend;
  }
  if (parsed.Flag("--no-grid")) config.use_grid = false;
  if (parsed.Flag("--fast-math-leaf")) config.fast_math_leaf = true;
  if (const auto seed = parsed.Value("--seed")) {
    config.seed = static_cast<uint64_t>(std::atoll(seed->c_str()));
  }
  if (const auto threads = parsed.Value("--threads")) {
    const long long parsed_threads = std::atoll(threads->c_str());
    if (parsed_threads < 0) {
      err << "--threads must be >= 0\n";
      return 2;
    }
    config.num_threads = static_cast<size_t>(parsed_threads);
  }
  api::TrainOptions options;
  options.config = config;
  if (const auto k_arg = parsed.Value("--k")) {
    const long long parsed_k = std::atoll(k_arg->c_str());
    if (parsed_k < 1) {
      err << "--k must be positive\n";
      return 2;
    }
    options.k = static_cast<size_t>(parsed_k);
  }
  options.algorithm = parsed.Value("--algorithm").value_or("tkdc");
  if (options.algorithm == "tkdc-mc") {
    return CmdTrainMultiClass(parsed, config, out, err);
  }
  // Fail on bad options (unknown algorithm, out-of-range knobs) before
  // reading the training file.
  auto untrained = api::NewClassifier(options);
  if (!untrained.ok()) {
    err << untrained.message() << "\n";
    return 2;
  }

  std::string error;
  const auto table =
      ReadCsv(*parsed.Value("--input"), parsed.Flag("--header"), &error);
  if (!table.has_value()) {
    err << error << "\n";
    return 1;
  }
  out << "training " << options.algorithm << " on " << table->data.size()
      << " x " << table->data.dims() << " points...\n";
  WallTimer timer;
  auto trained = api::Train(table->data, options);
  if (!trained.ok()) {
    err << trained.message() << "\n";
    return 1;
  }
  std::unique_ptr<DensityClassifier> classifier = trained.take();
  out << "trained in " << timer.ElapsedSeconds()
      << "s; threshold t(p=" << config.p << ") = " << classifier->threshold()
      << "\n";
  api::SaveOptions save_options;
  save_options.include_densities = !parsed.Flag("--no-densities");
  const Status saved = api::SaveModel(*parsed.Value("--model"), *classifier,
                                      table->data, save_options);
  if (!saved.ok()) {
    err << saved.message() << "\n";
    return 1;
  }
  out << "model written to " << *parsed.Value("--model") << "\n";
  return 0;
}

// Classification against a tag-7 multi-class container: one `label`
// column of predicted class labels per query file.
int CmdClassifyMultiClass(const ParsedArgs& parsed,
                          const std::vector<std::string>& inputs,
                          const std::vector<std::string>& outputs,
                          std::ostream& out, std::ostream& err) {
  if (parsed.Flag("--training") || parsed.Flag("--density")) {
    err << "--training/--density do not apply to multi-class models\n";
    return 2;
  }
  auto loaded = api::LoadAny(*parsed.Value("--model"));
  if (!loaded.ok()) {
    err << loaded.message() << "\n";
    return 1;
  }
  std::unique_ptr<MultiClassClassifier> classifier =
      loaded.value().TakeMulti();
  MetricsRegistry registry;
  const auto metrics_out = parsed.Value("--metrics-out");
  if (metrics_out.has_value()) classifier->AttachMetrics(&registry);
  if (const auto threads = parsed.Value("--threads")) {
    const long long parsed_threads = std::atoll(threads->c_str());
    if (parsed_threads < 0) {
      err << "--threads must be >= 0\n";
      return 2;
    }
    classifier->SetNumThreads(static_cast<size_t>(parsed_threads));
  }
  std::string error;
  for (size_t file = 0; file < inputs.size(); ++file) {
    const auto table = ReadCsv(inputs[file], parsed.Flag("--header"), &error);
    if (!table.has_value()) {
      err << error << "\n";
      return 1;
    }
    if (table->data.dims() != classifier->dims()) {
      err << inputs[file] << ": query dimensionality " << table->data.dims()
          << " does not match model dimensionality " << classifier->dims()
          << "\n";
      return 1;
    }
    const std::vector<uint32_t> labels = classifier->ClassifyBatch(table->data);
    std::vector<size_t> counts(classifier->num_classes(), 0);
    std::ofstream results(outputs[file]);
    if (!results) {
      err << "cannot open " << outputs[file] << " for writing\n";
      return 1;
    }
    results << "label\n";
    for (const uint32_t label : labels) {
      ++counts[label];
      results << classifier->class_labels()[label] << "\n";
    }
    results.flush();
    if (!results) {
      err << "write to " << outputs[file] << " failed\n";
      return 1;
    }
    out << "classified " << table->data.size() << " points:";
    for (size_t c = 0; c < counts.size(); ++c) {
      out << " " << classifier->class_labels()[c] << "=" << counts[c];
    }
    out << "\nresults written to " << outputs[file] << "\n";
  }
  if (metrics_out.has_value()) {
    classifier->FlushMetrics();
    std::ofstream metrics_stream(*metrics_out);
    if (!metrics_stream) {
      err << "cannot open " << *metrics_out << " for writing\n";
      return 1;
    }
    registry.WriteJson(metrics_stream);
    metrics_stream << "\n";
    if (!metrics_stream.flush()) {
      err << "write to " << *metrics_out << " failed\n";
      return 1;
    }
    out << "metrics written to " << *metrics_out << "\n";
  }
  return 0;
}

int CmdClassify(const ParsedArgs& parsed, std::ostream& out,
                std::ostream& err) {
  if (!RequireValues(parsed, {"--model", "--input", "--output"}, err)) {
    return 2;
  }
  const std::vector<std::string> inputs = parsed.Values("--input");
  const std::vector<std::string> outputs = parsed.Values("--output");
  if (inputs.size() != outputs.size()) {
    err << "--input and --output must be given the same number of times ("
        << inputs.size() << " vs " << outputs.size() << ")\n";
    return 2;
  }
  // Dispatch on the file header: multi-class containers have their own
  // loader and output shape.
  const auto kind = api::ProbeModel(*parsed.Value("--model"));
  if (!kind.ok()) {
    err << kind.message() << "\n";
    return 1;
  }
  if (kind.value() == ModelKind::kMultiClass) {
    return CmdClassifyMultiClass(parsed, inputs, outputs, out, err);
  }
  // One load serves every query file: the model is an immutable artifact,
  // so classifying never retrains or mutates it.
  auto loaded = api::LoadAny(*parsed.Value("--model"));
  if (!loaded.ok()) {
    err << loaded.message() << "\n";
    return 1;
  }
  std::unique_ptr<DensityClassifier> classifier =
      loaded.value().TakeSingle();
  std::string error;
  const bool training = parsed.Flag("--training");
  const bool with_density = parsed.Flag("--density");
  // Observability is opt-in: without --metrics-out the classifier stays
  // detached and the query path records nothing beyond its plain counters.
  MetricsRegistry registry;
  const auto metrics_out = parsed.Value("--metrics-out");
  if (metrics_out.has_value()) classifier->AttachMetrics(&registry);
  if (const auto threads = parsed.Value("--threads")) {
    const long long parsed_threads = std::atoll(threads->c_str());
    if (parsed_threads < 0) {
      err << "--threads must be >= 0\n";
      return 2;
    }
    classifier->SetNumThreads(static_cast<size_t>(parsed_threads));
  }
  for (size_t file = 0; file < inputs.size(); ++file) {
    const auto table = ReadCsv(inputs[file], parsed.Flag("--header"), &error);
    if (!table.has_value()) {
      err << error << "\n";
      return 1;
    }
    if (table->data.dims() != classifier->dims()) {
      err << inputs[file] << ": query dimensionality " << table->data.dims()
          << " does not match model dimensionality " << classifier->dims()
          << "\n";
      return 1;
    }
    // Labels come from the (possibly multi-threaded) batch engine; the
    // optional density column stays a serial pass since EstimateDensity is
    // per-point.
    const std::vector<Classification> labels =
        training ? classifier->ClassifyTrainingBatch(table->data)
                 : classifier->ClassifyBatch(table->data);
    Dataset results(with_density ? 2 : 1);
    results.Reserve(table->data.size());
    size_t high = 0;
    for (size_t i = 0; i < table->data.size(); ++i) {
      if (labels[i] == Classification::kHigh) ++high;
      std::vector<double> result_row{
          labels[i] == Classification::kHigh ? 1.0 : 0.0};
      if (with_density) {
        result_row.push_back(classifier->EstimateDensity(table->data.Row(i)));
      }
      results.AppendRow(result_row);
    }
    std::vector<std::string> header{"high"};
    if (with_density) header.push_back("density");
    if (!WriteCsv(outputs[file], results, header, &error)) {
      err << error << "\n";
      return 1;
    }
    out << "classified " << table->data.size() << " points: " << high
        << " HIGH, " << (table->data.size() - high) << " LOW\n"
        << "results written to " << outputs[file] << "\n";
  }
  if (metrics_out.has_value()) {
    classifier->FlushMetrics();
    std::ofstream metrics_stream(*metrics_out);
    if (!metrics_stream) {
      err << "cannot open " << *metrics_out << " for writing\n";
      return 1;
    }
    registry.WriteJson(metrics_stream);
    metrics_stream << "\n";
    if (!metrics_stream.flush()) {
      err << "write to " << *metrics_out << " failed\n";
      return 1;
    }
    out << "metrics written to " << *metrics_out << "\n";
  }
  return 0;
}

int CmdInfo(const ParsedArgs& parsed, std::ostream& out, std::ostream& err) {
  if (!RequireValues(parsed, {"--model"}, err)) return 2;
  // One kind-agnostic load: the handle knows its algorithm name and how
  // to describe itself, whichever kind the file holds.
  auto loaded = api::LoadAny(*parsed.Value("--model"));
  if (!loaded.ok()) {
    err << loaded.message() << "\n";
    return 1;
  }
  out << loaded.value().algorithm() << " model: " << *parsed.Value("--model")
      << "\n"
      << loaded.value().Describe();
  return 0;
}

int CmdGenerate(const ParsedArgs& parsed, std::ostream& out,
                std::ostream& err) {
  if (!RequireValues(parsed, {"--dataset", "--n", "--output"}, err)) return 2;
  const auto id = DatasetIdFromName(*parsed.Value("--dataset"));
  if (!id.has_value()) {
    err << "unknown dataset: " << *parsed.Value("--dataset")
        << " (available:";
    for (const DatasetSpec& spec : AllDatasetSpecs()) {
      err << " " << spec.name;
    }
    err << ")\n";
    return 2;
  }
  const long long n = std::atoll(parsed.Value("--n")->c_str());
  if (n < 1) {
    err << "--n must be positive\n";
    return 2;
  }
  uint64_t seed = 42;
  if (const auto s = parsed.Value("--seed")) {
    seed = static_cast<uint64_t>(std::atoll(s->c_str()));
  }
  size_t dims = GetDatasetSpec(*id).dims;
  if (const auto d = parsed.Value("--dims")) {
    const long long parsed_dims = std::atoll(d->c_str());
    if (parsed_dims < 1) {
      err << "--dims must be positive\n";
      return 2;
    }
    dims = static_cast<size_t>(parsed_dims);
  }
  const Dataset data =
      MakeDataset(*id, static_cast<size_t>(n), dims, seed);
  std::string error;
  if (!WriteCsv(*parsed.Value("--output"), data, {}, &error)) {
    err << error << "\n";
    return 1;
  }
  out << "wrote " << data.size() << " x " << data.dims() << " rows to "
      << *parsed.Value("--output") << "\n";
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return 2;
  }
  ParsedArgs parsed;
  if (!ParseArgs(args, 1, &parsed, err)) {
    err << kUsage;
    return 2;
  }
  const std::string& command = args[0];
  if (command == "train") return CmdTrain(parsed, out, err);
  if (command == "classify") return CmdClassify(parsed, out, err);
  if (command == "info") return CmdInfo(parsed, out, err);
  if (command == "generate") return CmdGenerate(parsed, out, err);
  err << "unknown command: " << command << "\n" << kUsage;
  return 2;
}

}  // namespace tkdc
