#ifndef TKDC_CLI_CLI_H_
#define TKDC_CLI_CLI_H_

#include <ostream>
#include <string>
#include <vector>

namespace tkdc {

/// Entry point of the `tkdc_cli` command-line tool, factored into the
/// library so the test suite can drive it directly. `args` excludes the
/// program name. Normal output goes to `out`, diagnostics to `err`.
/// Returns a process exit code (0 success, 1 runtime failure, 2 usage).
///
/// Subcommands:
///   train     --input X.csv --model M.tkdc [--p F] [--epsilon F] [--b F]
///             [--kernel gaussian|epanechnikov|uniform|biweight]
///             [--split trimmed|median|midpoint] [--no-grid] [--seed N]
///             [--threads N] [--header] [--no-densities]
///   classify  --model M.tkdc --input Q.csv --output R.csv [--header]
///             [--training] [--density] [--threads N]
///   info      --model M.tkdc
///   generate  --dataset NAME --n N --output X.csv [--dims D] [--seed N]
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace tkdc

#endif  // TKDC_CLI_CLI_H_
