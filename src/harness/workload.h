#ifndef TKDC_HARNESS_WORKLOAD_H_
#define TKDC_HARNESS_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "data/datasets.h"
#include "index/index_backend.h"

namespace tkdc {

/// One benchmark workload: a dataset id at a chosen size/dimensionality.
struct Workload {
  DatasetId id = DatasetId::kGauss;
  size_t n = 0;
  size_t dims = 0;  // 0 means the dataset's Table 3 dimensionality.
  uint64_t seed = 42;

  /// Generates the data deterministically.
  Dataset Make() const;

  /// "gauss, n=200k, d=2" style label for bench output.
  std::string Label() const;
};

/// Command-line arguments shared by all figure benches. Every bench binary
/// runs with no arguments at laptop scale and accepts:
///   --scale=<float>     multiply default workload sizes
///   --seed=<int>        RNG seed
///   --budget=<seconds>  per-measurement query time budget
///   --threads=<int>     worker threads for batch-capable algorithms
///                       (0 = hardware concurrency, 1 = serial)
///   --index=<name>      spatial-index backend for tree-backed algorithms
///                       (kdtree | balltree; default kdtree or $TKDC_INDEX)
struct BenchArgs {
  double scale = 1.0;
  uint64_t seed = 42;
  double budget_seconds = 1.5;
  size_t threads = 0;
  IndexBackend index_backend = DefaultIndexBackend();

  /// Parses argv; unknown flags abort with a usage message.
  static BenchArgs Parse(int argc, char** argv);
};

/// Human-friendly count like the paper's axis labels: 55.2k, 6.36M, 12.6.
std::string FormatSi(double value);

}  // namespace tkdc

#endif  // TKDC_HARNESS_WORKLOAD_H_
