#include "harness/runner.h"

#include <algorithm>

#include "common/macros.h"
#include "common/timer.h"

namespace tkdc {

RunResult RunClassifier(DensityClassifier& classifier, const Dataset& data,
                        const RunOptions& options) {
  TKDC_CHECK(!data.empty());
  RunResult result;
  result.algorithm = classifier.name();
  result.dataset_size = data.size();
  result.dims = data.dims();

  WallTimer timer;
  classifier.Train(data);
  result.train_seconds = timer.ElapsedSeconds();
  result.threshold = classifier.threshold();
  result.kernel_evals_train = classifier.kernel_evaluations();

  const size_t n = data.size();
  const size_t max_queries = std::min(options.max_queries, n);
  constexpr size_t kMinQueries = 16;
  // Stride so the measured prefix covers the whole dataset rather than one
  // corner of space.
  const size_t stride = std::max<size_t>(1, n / max_queries);

  size_t high = 0;
  size_t measured = 0;
  timer.Restart();
  for (size_t i = 0; measured < max_queries; i = (i + stride) % n) {
    // Queries are the training points themselves (the outlier-detection
    // workload of Section 4.1), so use the self-corrected classification.
    if (classifier.ClassifyTraining(data.Row(i)) == Classification::kHigh) {
      ++high;
    }
    ++measured;
    if (measured >= kMinQueries &&
        timer.ElapsedSeconds() > options.budget_seconds) {
      break;
    }
  }
  result.query_seconds = timer.ElapsedSeconds();
  result.queries_measured = measured;
  result.per_query_seconds =
      result.query_seconds / static_cast<double>(measured);
  result.kernel_evals_query =
      classifier.kernel_evaluations() - result.kernel_evals_train;
  result.kernel_evals_per_query =
      static_cast<double>(result.kernel_evals_query) /
      static_cast<double>(measured);
  result.high_fraction =
      static_cast<double>(high) / static_cast<double>(measured);

  const double total_seconds =
      result.train_seconds +
      result.per_query_seconds * static_cast<double>(n);
  result.amortized_throughput =
      total_seconds > 0.0 ? static_cast<double>(n) / total_seconds : 0.0;
  result.query_throughput = result.per_query_seconds > 0.0
                                ? 1.0 / result.per_query_seconds
                                : 0.0;
  return result;
}

Dataset MakeQuerySubset(const Dataset& data, size_t max_queries) {
  TKDC_CHECK(!data.empty());
  const size_t n = data.size();
  const size_t count = std::min(max_queries, n);
  const size_t stride = std::max<size_t>(1, n / count);
  Dataset queries(data.dims());
  queries.Reserve(count);
  size_t i = 0;
  for (size_t taken = 0; taken < count; ++taken, i = (i + stride) % n) {
    queries.AppendRow(data.Row(i));
  }
  return queries;
}

RunResult RunClassifierBatch(DensityClassifier& classifier,
                             const Dataset& data, const RunOptions& options) {
  TKDC_CHECK(!data.empty());
  RunResult result;
  result.algorithm = classifier.name();
  result.dataset_size = data.size();
  result.dims = data.dims();
  result.threads = classifier.num_threads();

  WallTimer timer;
  classifier.Train(data);
  result.train_seconds = timer.ElapsedSeconds();
  result.threshold = classifier.threshold();
  result.kernel_evals_train = classifier.kernel_evaluations();

  const Dataset queries = MakeQuerySubset(data, options.max_queries);
  timer.Restart();
  const std::vector<Classification> labels =
      classifier.ClassifyTrainingBatch(queries);
  result.query_seconds = timer.ElapsedSeconds();
  result.queries_measured = labels.size();
  result.per_query_seconds =
      result.query_seconds / static_cast<double>(labels.size());
  result.kernel_evals_query =
      classifier.kernel_evaluations() - result.kernel_evals_train;
  result.kernel_evals_per_query =
      static_cast<double>(result.kernel_evals_query) /
      static_cast<double>(labels.size());
  size_t high = 0;
  for (const Classification label : labels) {
    if (label == Classification::kHigh) ++high;
  }
  result.high_fraction =
      static_cast<double>(high) / static_cast<double>(labels.size());

  const size_t n = data.size();
  const double total_seconds =
      result.train_seconds +
      result.per_query_seconds * static_cast<double>(n);
  result.amortized_throughput =
      total_seconds > 0.0 ? static_cast<double>(n) / total_seconds : 0.0;
  result.query_throughput = result.per_query_seconds > 0.0
                                ? 1.0 / result.per_query_seconds
                                : 0.0;
  return result;
}

}  // namespace tkdc
