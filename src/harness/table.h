#ifndef TKDC_HARNESS_TABLE_H_
#define TKDC_HARNESS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace tkdc {

/// Fixed-width text table for bench output: the rows/series the paper's
/// figures plot, printed in a form that diffs cleanly across runs.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header rule.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal ("0.000123").
std::string FormatFixed(double value, int precision);

/// Compact scientific/decimal hybrid ("1.23e-04" below 1e-3).
std::string FormatCompact(double value);

}  // namespace tkdc

#endif  // TKDC_HARNESS_TABLE_H_
