#include "harness/workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/macros.h"

namespace tkdc {

Dataset Workload::Make() const {
  TKDC_CHECK(n >= 1);
  const DatasetSpec& spec = GetDatasetSpec(id);
  const size_t d = dims == 0 ? spec.dims : dims;
  return MakeDataset(id, n, d, seed);
}

std::string Workload::Label() const {
  const DatasetSpec& spec = GetDatasetSpec(id);
  const size_t d = dims == 0 ? spec.dims : dims;
  std::ostringstream out;
  out << spec.name << ", n=" << FormatSi(static_cast<double>(n))
      << ", d=" << d;
  return out.str();
}

BenchArgs BenchArgs::Parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      args.scale = std::atof(arg + 8);
      TKDC_CHECK_MSG(args.scale > 0.0, "--scale must be positive");
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--budget=", 9) == 0) {
      args.budget_seconds = std::atof(arg + 9);
      TKDC_CHECK_MSG(args.budget_seconds > 0.0, "--budget must be positive");
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      args.threads = static_cast<size_t>(std::atoll(arg + 10));
    } else if (std::strncmp(arg, "--index=", 8) == 0) {
      const auto backend = IndexBackendFromName(arg + 8);
      TKDC_CHECK_MSG(backend.has_value(),
                     "--index must be kdtree or balltree");
      args.index_backend = *backend;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale=F] [--seed=N] [--budget=SECONDS] "
                   "[--threads=N] [--index=kdtree|balltree]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

std::string FormatSi(double value) {
  char buffer[32];
  const double magnitude = value < 0.0 ? -value : value;
  if (magnitude >= 1e9) {
    std::snprintf(buffer, sizeof(buffer), "%.3gB", value / 1e9);
  } else if (magnitude >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.3gM", value / 1e6);
  } else if (magnitude >= 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.3gk", value / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3g", value);
  }
  return buffer;
}

}  // namespace tkdc
