#include "harness/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/macros.h"

namespace tkdc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TKDC_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  TKDC_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + 2;
  for (size_t i = 0; i + 2 < total; ++i) out << '-';
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string FormatFixed(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string FormatCompact(double value) {
  char buffer[64];
  const double magnitude = std::fabs(value);
  if (value != 0.0 && (magnitude < 1e-3 || magnitude >= 1e7)) {
    std::snprintf(buffer, sizeof(buffer), "%.3e", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  }
  return buffer;
}

}  // namespace tkdc
