#ifndef TKDC_HARNESS_RUNNER_H_
#define TKDC_HARNESS_RUNNER_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "kde/density_classifier.h"

namespace tkdc {

/// Measurement of one (algorithm, workload) pair, replicating the paper's
/// Section 4.1 methodology: queries are the training points themselves
/// (the outlier-detection workload), training time is amortized across all
/// n points, and slow algorithms are measured on a prefix of queries within
/// a time budget and extrapolated.
struct RunResult {
  std::string algorithm;
  size_t dataset_size = 0;
  size_t dims = 0;
  double train_seconds = 0.0;
  size_t queries_measured = 0;
  double query_seconds = 0.0;
  /// Mean seconds per query.
  double per_query_seconds = 0.0;
  /// The paper's headline metric: n / (train + n * per_query) — effective
  /// classification throughput including amortized training.
  double amortized_throughput = 0.0;
  /// Pure query throughput 1 / per_query (Figures 9 and 10 exclude
  /// training time).
  double query_throughput = 0.0;
  uint64_t kernel_evals_train = 0;
  uint64_t kernel_evals_query = 0;
  double kernel_evals_per_query = 0.0;
  double threshold = 0.0;
  /// Fraction of measured queries classified HIGH.
  double high_fraction = 0.0;
  /// Worker threads the measurement ran with (1 for the serial per-point
  /// path; RunClassifierBatch fills it from the classifier's engine).
  size_t threads = 1;
};

/// Measurement knobs.
struct RunOptions {
  /// Hard cap on measured queries (queries beyond it are extrapolated).
  size_t max_queries = 20000;
  /// Stop measuring queries once this much time is spent (min 16 queries
  /// are always measured so the average is meaningful).
  double budget_seconds = 3.0;
};

/// Trains `classifier` on `data`, then classifies query points drawn
/// round-robin from the dataset under the measurement budget.
RunResult RunClassifier(DensityClassifier& classifier, const Dataset& data,
                        const RunOptions& options);

/// The strided query subset RunClassifier walks (up to max_queries rows
/// covering the whole dataset), materialized as a Dataset for the batch
/// APIs. Exposed so benches can time ClassifyTrainingBatch on exactly the
/// workload the serial runner measures.
Dataset MakeQuerySubset(const Dataset& data, size_t max_queries);

/// Batch-mode counterpart of RunClassifier: trains, then classifies the
/// strided query subset in ONE ClassifyTrainingBatch call so classifiers
/// with a parallel engine fan the rows across their worker pool. The whole
/// batch is timed (no budget extrapolation), and `result.threads` records
/// the classifier's configured thread count.
RunResult RunClassifierBatch(DensityClassifier& classifier,
                             const Dataset& data, const RunOptions& options);

}  // namespace tkdc

#endif  // TKDC_HARNESS_RUNNER_H_
