#ifndef TKDC_BASELINES_KNN_H_
#define TKDC_BASELINES_KNN_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "index/kdtree.h"
#include "kde/density_classifier.h"

namespace tkdc {

/// Options for the k-nearest-neighbor density classifier.
struct KnnOptions {
  /// Classification rate p (as for tKDC).
  double p = 0.01;
  /// Number of neighbors. The classic distance-to-k-th-neighbor outlier
  /// score (Ramaswamy et al., cited as [43] in the paper).
  size_t k = 10;
  /// k-d tree leaf capacity.
  size_t leaf_size = 32;
  /// Training points sampled to fix the threshold quantile (0 = all).
  size_t threshold_sample = 0;
  uint64_t seed = 0;
};

/// k-nearest-neighbor density classification — the non-parametric
/// alternative the paper's related work contrasts KDE against (Section 5):
/// score each point by its distance to the k-th nearest training point and
/// threshold the implied density estimate
///
///   f_knn(x) = k / (n * V_d * r_k(x)^d)
///
/// (V_d = unit-ball volume). Fast and knob-light, but the paper's point
/// stands: the implied density is neither smooth nor normalized, so it
/// cannot feed the statistical use cases KDE serves. Included as a
/// comparator and as a consumer of the k-d tree's kNN search.
class KnnClassifier : public DensityClassifier {
 public:
  explicit KnnClassifier(KnnOptions options = KnnOptions());

  std::string name() const override { return "knn"; }
  void Train(const Dataset& data) override;
  Classification Classify(std::span<const double> x) override;
  Classification ClassifyTraining(std::span<const double> x) override;
  double EstimateDensity(std::span<const double> x) override;
  double threshold() const override;
  uint64_t kernel_evaluations() const override;

  /// Scaled distance to the k-th neighbor (the raw outlier score).
  double KthNeighborDistance(std::span<const double> x, bool training);

 private:
  double Density(std::span<const double> x, bool training);

  KnnOptions options_;
  std::unique_ptr<KdTree> tree_;
  std::vector<double> unit_scale_;  // All-ones: kNN uses raw coordinates.
  double log_ball_volume_ = 0.0;    // log V_d of the unit ball.
  double threshold_ = 0.0;
  uint64_t distance_computations_ = 0;
  std::vector<std::pair<double, size_t>> neighbor_buffer_;
};

}  // namespace tkdc

#endif  // TKDC_BASELINES_KNN_H_
