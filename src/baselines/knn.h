#ifndef TKDC_BASELINES_KNN_H_
#define TKDC_BASELINES_KNN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "index/spatial_index.h"
#include "kde/density_classifier.h"

namespace tkdc {

/// Options for the k-nearest-neighbor density classifier.
struct KnnOptions {
  /// Classification rate p (as for tKDC).
  double p = 0.01;
  /// Number of neighbors. The classic distance-to-k-th-neighbor outlier
  /// score (Ramaswamy et al., cited as [43] in the paper).
  size_t k = 10;
  /// Index leaf capacity.
  size_t leaf_size = 32;
  /// Spatial-index backend; honors the TKDC_INDEX env override like
  /// TkdcConfig does.
  IndexBackend index_backend = DefaultIndexBackend();
  /// Training points sampled to fix the threshold quantile (0 = all).
  size_t threshold_sample = 0;
  uint64_t seed = 0;
};

/// The immutable trained artifact of knn: the spatial index over the raw
/// (unscaled) training coordinates plus the threshold on the implied
/// density.
struct KnnModel {
  std::unique_ptr<const SpatialIndex> tree;
  std::vector<double> unit_scale;  // All-ones: kNN uses raw coordinates.
  double log_ball_volume = 0.0;    // log V_d of the unit ball.
  double threshold = 0.0;
};

/// Per-thread scratch for the kNN engine: the best-k neighbor heap.
class KnnQueryContext : public QueryContext {
 public:
  KnnQueryContext() { neighbors.reserve(64); }
  std::vector<std::pair<double, size_t>> neighbors;
};

/// k-nearest-neighbor density classification — the non-parametric
/// alternative the paper's related work contrasts KDE against (Section 5):
/// score each point by its distance to the k-th nearest training point and
/// threshold the implied density estimate
///
///   f_knn(x) = k / (n * V_d * r_k(x)^d)
///
/// (V_d = unit-ball volume). Fast and knob-light, but the paper's point
/// stands: the implied density is neither smooth nor normalized, so it
/// cannot feed the statistical use cases KDE serves. Included as a
/// comparator and as a consumer of the k-d tree's kNN search. Distance
/// computations are reported through the kernel-evaluation counter so
/// Figure 7's work column is uniform.
class KnnClassifier : public DensityClassifier {
 public:
  explicit KnnClassifier(KnnOptions options = KnnOptions());

  std::string name() const override { return "knn"; }
  void Train(const Dataset& data) override;
  bool trained() const override { return model_ != nullptr; }
  size_t training_size() const override {
    return model_ != nullptr ? model_->tree->size() : 0;
  }
  size_t dims() const override {
    return model_ != nullptr ? model_->tree->dims() : 0;
  }
  double threshold() const override;
  std::optional<IndexBackend> index_backend() const override {
    return model_ != nullptr ? std::optional(model_->tree->backend())
                             : std::nullopt;
  }

  std::unique_ptr<QueryContext> MakeQueryContext() const override {
    return std::make_unique<KnnQueryContext>();
  }
  Classification ClassifyInContext(QueryContext& ctx,
                                   std::span<const double> x,
                                   bool training) const override;
  double EstimateDensityInContext(QueryContext& ctx,
                                  std::span<const double> x) const override;

  /// Streaming: the knn density is an order statistic of distances, not an
  /// additive kernel sum, so a DeltaOverlay cannot fold in — the inherited
  /// supports_overlay() stays false and the serving layer rejects INSERT /
  /// DELETE for knn models. The training points are still exportable.
  bool ExportTrainingData(Dataset* out) const override;

  const KnnOptions& options() const { return options_; }
  const KnnModel& model() const { return *model_; }

  /// Scaled distance to the k-th neighbor (the raw outlier score).
  double KthNeighborDistance(std::span<const double> x, bool training);

  /// Restores a trained state from serialized parts (model_io): rebuilds
  /// the index from `data` (or adopts `prebuilt_index`) and installs the
  /// threshold without re-running the quantile pass. k and leaf_size come
  /// from options().
  void Restore(const Dataset& data, double threshold,
               std::unique_ptr<const SpatialIndex> prebuilt_index = nullptr);

 private:
  static double KthDistance(const KnnModel& m, KnnQueryContext& ctx, size_t k,
                            std::span<const double> x, bool training);
  double Density(const KnnModel& m, KnnQueryContext& ctx,
                 std::span<const double> x, bool training) const;

  /// Index build shared by Train and Restore.
  std::shared_ptr<KnnModel> BuildModel(
      const Dataset& data,
      std::unique_ptr<const SpatialIndex> prebuilt_index = nullptr) const;

  KnnOptions options_;
  std::shared_ptr<const KnnModel> model_;
};

}  // namespace tkdc

#endif  // TKDC_BASELINES_KNN_H_
