#include "baselines/knn.h"

#include <cmath>
#include <numbers>

#include "common/macros.h"
#include "common/rng.h"
#include "common/stats.h"

namespace tkdc {

KnnClassifier::KnnClassifier(KnnOptions options) : options_(options) {
  TKDC_CHECK(options_.p > 0.0 && options_.p < 1.0);
  TKDC_CHECK(options_.k >= 1);
}

void KnnClassifier::Train(const Dataset& data) {
  TKDC_CHECK(data.size() >= 2);
  KdTreeOptions tree_options;
  tree_options.leaf_size = options_.leaf_size;
  tree_ = std::make_unique<KdTree>(data, tree_options);
  unit_scale_.assign(data.dims(), 1.0);
  const double d = static_cast<double>(data.dims());
  // log V_d = (d/2) log(pi) - log Gamma(d/2 + 1).
  log_ball_volume_ =
      0.5 * d * std::log(std::numbers::pi) - std::lgamma(0.5 * d + 1.0);

  const size_t n = data.size();
  std::vector<size_t> rows;
  if (options_.threshold_sample == 0 || options_.threshold_sample >= n) {
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) rows[i] = i;
  } else {
    Rng rng(options_.seed * 0x9e3779b97f4a7c15ULL + 31);
    rows = rng.SampleWithoutReplacement(n, options_.threshold_sample);
  }
  std::vector<double> densities;
  densities.reserve(rows.size());
  for (size_t row : rows) {
    densities.push_back(Density(data.Row(row), /*training=*/true));
  }
  threshold_ = Quantile(std::move(densities), options_.p);
}

double KnnClassifier::KthNeighborDistance(std::span<const double> x,
                                          bool training) {
  TKDC_CHECK_MSG(tree_ != nullptr, "query before Train");
  // Training points find themselves at distance 0; ask for one more
  // neighbor and drop the self-match.
  const size_t k = options_.k + (training ? 1 : 0);
  distance_computations_ +=
      tree_->KNearestScaled(x, unit_scale_, k, &neighbor_buffer_);
  TKDC_CHECK(!neighbor_buffer_.empty());
  return std::sqrt(neighbor_buffer_.back().first);
}

double KnnClassifier::Density(std::span<const double> x, bool training) {
  const double radius = KthNeighborDistance(x, training);
  const double d = static_cast<double>(tree_->dims());
  if (radius <= 0.0) {
    // k-fold duplicate points: report a huge density.
    return std::numeric_limits<double>::max();
  }
  // f = k / (n * V_d * r^d), computed in log space to survive high d.
  const double log_density =
      std::log(static_cast<double>(options_.k)) -
      std::log(static_cast<double>(tree_->size())) - log_ball_volume_ -
      d * std::log(radius);
  return std::exp(log_density);
}

Classification KnnClassifier::Classify(std::span<const double> x) {
  return Density(x, /*training=*/false) > threshold_ ? Classification::kHigh
                                                     : Classification::kLow;
}

Classification KnnClassifier::ClassifyTraining(std::span<const double> x) {
  return Density(x, /*training=*/true) > threshold_ ? Classification::kHigh
                                                    : Classification::kLow;
}

double KnnClassifier::EstimateDensity(std::span<const double> x) {
  return Density(x, /*training=*/false);
}

double KnnClassifier::threshold() const {
  TKDC_CHECK_MSG(tree_ != nullptr, "threshold read before Train");
  return threshold_;
}

uint64_t KnnClassifier::kernel_evaluations() const {
  return distance_computations_;
}

}  // namespace tkdc
