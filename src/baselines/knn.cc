#include "baselines/knn.h"

#include <cmath>
#include <limits>
#include <numbers>

#include "common/macros.h"
#include "common/rng.h"
#include "common/stats.h"

namespace tkdc {

KnnClassifier::KnnClassifier(KnnOptions options) : options_(options) {
  TKDC_CHECK(options_.p > 0.0 && options_.p < 1.0);
  TKDC_CHECK(options_.k >= 1);
}

std::shared_ptr<KnnModel> KnnClassifier::BuildModel(
    const Dataset& data,
    std::unique_ptr<const SpatialIndex> prebuilt_index) const {
  TKDC_CHECK(data.size() >= 2);
  auto model = std::make_shared<KnnModel>();
  if (prebuilt_index != nullptr) {
    TKDC_CHECK(prebuilt_index->size() == data.size() &&
               prebuilt_index->dims() == data.dims());
    model->tree = std::move(prebuilt_index);
  } else {
    // kNN searches raw coordinates, so the ball-tree radius metric is the
    // unscaled Euclidean one (empty scale = all-ones).
    IndexOptions tree_options;
    tree_options.leaf_size = options_.leaf_size;
    tree_options.backend = options_.index_backend;
    model->tree = BuildIndex(data, std::move(tree_options));
  }
  model->unit_scale.assign(data.dims(), 1.0);
  const double d = static_cast<double>(data.dims());
  // log V_d = (d/2) log(pi) - log Gamma(d/2 + 1).
  model->log_ball_volume =
      0.5 * d * std::log(std::numbers::pi) - std::lgamma(0.5 * d + 1.0);
  return model;
}

void KnnClassifier::Train(const Dataset& data) {
  auto model = BuildModel(data);

  const size_t n = data.size();
  std::vector<size_t> rows;
  if (options_.threshold_sample == 0 || options_.threshold_sample >= n) {
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) rows[i] = i;
  } else {
    Rng rng(options_.seed * 0x9e3779b97f4a7c15ULL + 31);
    rows = rng.SampleWithoutReplacement(n, options_.threshold_sample);
  }
  KnnQueryContext train_ctx;
  std::vector<double> densities;
  densities.reserve(rows.size());
  for (size_t row : rows) {
    densities.push_back(
        Density(*model, train_ctx, data.Row(row), /*training=*/true));
  }
  model->threshold = Quantile(std::move(densities), options_.p);
  model_ = std::move(model);  // Published: immutable from here on.

  train_stats_ = train_ctx.stats;
  train_grid_prunes_ = 0;
  ResetQueryState();
}

double KnnClassifier::KthDistance(const KnnModel& m, KnnQueryContext& ctx,
                                  size_t k, std::span<const double> x,
                                  bool training) {
  // Training points find themselves at distance 0; ask for one more
  // neighbor and drop the self-match.
  const size_t want = k + (training ? 1 : 0);
  ctx.stats.kernel_evaluations +=
      m.tree->KNearestScaled(x, m.unit_scale, want, &ctx.neighbors);
  TKDC_CHECK(!ctx.neighbors.empty());
  return std::sqrt(ctx.neighbors.back().first);
}

double KnnClassifier::Density(const KnnModel& m, KnnQueryContext& ctx,
                              std::span<const double> x, bool training) const {
  const double radius = KthDistance(m, ctx, options_.k, x, training);
  ++ctx.stats.queries;
  if (radius <= 0.0) {
    // k-fold duplicate points: report a huge density.
    return std::numeric_limits<double>::max();
  }
  // f = k / (n * V_d * r^d), computed in log space to survive high d.
  const double d = static_cast<double>(m.tree->dims());
  const double log_density =
      std::log(static_cast<double>(options_.k)) -
      std::log(static_cast<double>(m.tree->size())) - m.log_ball_volume -
      d * std::log(radius);
  return std::exp(log_density);
}

double KnnClassifier::KthNeighborDistance(std::span<const double> x,
                                          bool training) {
  TKDC_CHECK_MSG(trained(), "query before Train");
  auto& ctx = static_cast<KnnQueryContext&>(live_context());
  return KthDistance(*model_, ctx, options_.k, x, training);
}

Classification KnnClassifier::ClassifyInContext(QueryContext& ctx,
                                                std::span<const double> x,
                                                bool training) const {
  TKDC_CHECK_MSG(trained(), "Classify called before Train");
  return Density(*model_, static_cast<KnnQueryContext&>(ctx), x, training) >
                 model_->threshold
             ? Classification::kHigh
             : Classification::kLow;
}

double KnnClassifier::EstimateDensityInContext(
    QueryContext& ctx, std::span<const double> x) const {
  TKDC_CHECK_MSG(trained(), "EstimateDensity called before Train");
  return Density(*model_, static_cast<KnnQueryContext&>(ctx), x,
                 /*training=*/false);
}

bool KnnClassifier::ExportTrainingData(Dataset* out) const {
  if (model_ == nullptr) return false;
  *out = model_->tree->ExportPoints();
  return true;
}

double KnnClassifier::threshold() const {
  TKDC_CHECK_MSG(trained(), "threshold read before Train");
  return model_->threshold;
}

void KnnClassifier::Restore(const Dataset& data, double threshold,
                            std::unique_ptr<const SpatialIndex> prebuilt_index) {
  auto model = BuildModel(data, std::move(prebuilt_index));
  model->threshold = threshold;
  model_ = std::move(model);
  train_stats_ = TraversalStats();
  train_grid_prunes_ = 0;
  ResetQueryState();
}

}  // namespace tkdc
