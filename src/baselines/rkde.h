#ifndef TKDC_BASELINES_RKDE_H_
#define TKDC_BASELINES_RKDE_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "index/kdtree.h"
#include "kde/density_classifier.h"
#include "kde/kernel.h"
#include "tkdc/config.h"

namespace tkdc {

/// Options for the radial-KDE baseline.
struct RkdeOptions {
  /// Shared task parameters (p, bandwidth, kernel, tree, bootstrap).
  TkdcConfig base;
  /// Query radius in bandwidth multiples. <= 0 means "auto": the smallest
  /// radius whose truncation error is guaranteed below eps * t based on the
  /// points excluded, i.e. K(r) <= eps * t_lo (paper Section 4.1). The
  /// Figure 13 sweep sets explicit values.
  double radius_bandwidths = -1.0;
  /// Training points sampled to fix the threshold quantile (0 = all).
  size_t threshold_sample = 2000;
};

/// The paper's "rkde" baseline (Table 2): for each query, a k-d tree range
/// query collects every training point within a fixed scaled radius and
/// sums their exact kernel contributions, ignoring the rest. Unlike tKDC
/// the work per query stays proportional to the number of in-radius
/// neighbors, which grows linearly with n — hence O(n) per query.
class RkdeClassifier : public DensityClassifier {
 public:
  explicit RkdeClassifier(RkdeOptions options = RkdeOptions());

  std::string name() const override { return "rkde"; }
  void Train(const Dataset& data) override;
  Classification Classify(std::span<const double> x) override;
  Classification ClassifyTraining(std::span<const double> x) override;
  double EstimateDensity(std::span<const double> x) override;
  double threshold() const override;
  uint64_t kernel_evaluations() const override;

  /// The scaled squared radius actually used (after auto-selection).
  double radius_scaled_squared() const { return radius_sq_; }

 private:
  double RadialDensity(std::span<const double> x);

  RkdeOptions options_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<KdTree> tree_;
  double radius_sq_ = 0.0;
  double threshold_ = 0.0;
  double self_contribution_ = 0.0;
  uint64_t kernel_evaluations_ = 0;
  std::vector<size_t> neighbor_buffer_;
};

}  // namespace tkdc

#endif  // TKDC_BASELINES_RKDE_H_
