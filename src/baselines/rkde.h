#ifndef TKDC_BASELINES_RKDE_H_
#define TKDC_BASELINES_RKDE_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "index/spatial_index.h"
#include "kde/density_classifier.h"
#include "kde/kernel.h"
#include "tkdc/config.h"
#include "tkdc/density_bounds.h"

namespace tkdc {

/// Options for the radial-KDE baseline.
struct RkdeOptions {
  /// Shared task parameters (p, bandwidth, kernel, tree, bootstrap).
  TkdcConfig base;
  /// Query radius in bandwidth multiples. <= 0 means "auto": the smallest
  /// radius whose truncation error is guaranteed below eps * t based on the
  /// points excluded, i.e. K(r) <= eps * t_lo (paper Section 4.1). The
  /// Figure 13 sweep sets explicit values.
  double radius_bandwidths = -1.0;
  /// Training points sampled to fix the threshold quantile (0 = all).
  size_t threshold_sample = 2000;
};

/// The immutable trained artifact of rkde: the spatial index over the
/// training set, the kernel, the (possibly auto-selected) scaled squared
/// query radius, and the quantile threshold.
struct RkdeModel {
  std::unique_ptr<const Kernel> kernel;
  std::unique_ptr<const SpatialIndex> tree;
  double radius_sq = 0.0;
  double threshold = 0.0;
  double self_contribution = 0.0;
};

/// The paper's "rkde" baseline (Table 2): for each query, a k-d tree range
/// query collects every training point within a fixed scaled radius and
/// sums their exact kernel contributions, ignoring the rest. Unlike tKDC
/// the work per query stays proportional to the number of in-radius
/// neighbors, which grows linearly with n — hence O(n) per query. The
/// range-query hit list is per-thread scratch (TreeQueryContext), so batch
/// calls parallelize like every other classifier.
class RkdeClassifier : public DensityClassifier {
 public:
  explicit RkdeClassifier(RkdeOptions options = RkdeOptions());

  std::string name() const override { return "rkde"; }
  void Train(const Dataset& data) override;
  bool trained() const override { return model_ != nullptr; }
  size_t training_size() const override {
    return model_ != nullptr ? model_->tree->size() : 0;
  }
  size_t dims() const override {
    return model_ != nullptr ? model_->tree->dims() : 0;
  }
  double threshold() const override;
  std::optional<IndexBackend> index_backend() const override {
    return model_ != nullptr ? std::optional(model_->tree->backend())
                             : std::nullopt;
  }

  std::unique_ptr<QueryContext> MakeQueryContext() const override {
    return std::make_unique<TreeQueryContext>();
  }
  Classification ClassifyInContext(QueryContext& ctx,
                                   std::span<const double> x,
                                   bool training) const override;
  double EstimateDensityInContext(QueryContext& ctx,
                                  std::span<const double> x) const override;

  /// Streaming: the truncated radial sum is additive, so the overlay folds
  /// in like every kernel-sum engine. The overlay half is an exact (not
  /// radius-truncated) scan — strictly tighter than the base estimate.
  bool supports_overlay() const override { return true; }
  Classification ClassifyOverlayInContext(
      QueryContext& ctx, std::span<const double> x, bool training,
      const DeltaOverlay& overlay) const override;
  double EstimateDensityOverlayInContext(
      QueryContext& ctx, std::span<const double> x,
      const DeltaOverlay& overlay) const override;
  bool ExportTrainingData(Dataset* out) const override;

  const RkdeOptions& options() const { return options_; }
  const RkdeModel& model() const { return *model_; }

  /// The scaled squared radius actually used (after auto-selection).
  double radius_scaled_squared() const {
    return model_ != nullptr ? model_->radius_sq : 0.0;
  }

  /// Restores a trained state from serialized parts (model_io): rebuilds
  /// the index from `data` (or adopts `prebuilt_index` when the artifact
  /// carried one) and installs the given bandwidths, radius, and threshold
  /// without re-running the bootstrap or the quantile pass.
  void Restore(const Dataset& data, const std::vector<double>& bandwidths,
               double radius_sq, double threshold,
               std::unique_ptr<const SpatialIndex> prebuilt_index = nullptr);

 private:
  /// Truncated density at `x`: range query + exact kernel sum over the
  /// in-radius neighbors (counted into ctx).
  static double RadialDensity(const RkdeModel& m, TreeQueryContext& ctx,
                              std::span<const double> x);

  /// Index build shared by Train and Restore.
  static std::shared_ptr<RkdeModel> BuildModel(
      const TkdcConfig& config, const Dataset& data,
      std::vector<double> bandwidths,
      std::unique_ptr<const SpatialIndex> prebuilt_index = nullptr);

  RkdeOptions options_;
  std::shared_ptr<const RkdeModel> model_;
};

}  // namespace tkdc

#endif  // TKDC_BASELINES_RKDE_H_
