#include "baselines/binned_kde.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "common/rng.h"
#include "common/stats.h"
#include "fft/convolution.h"
#include "fft/fft.h"
#include "kde/delta_overlay.h"

namespace tkdc {
namespace {

size_t DefaultGridSize(size_t dims) {
  switch (dims) {
    case 1:
      return 512;
    case 2:
      return 256;
    case 3:
      return 64;
    default:
      return 16;
  }
}

size_t TotalSize(const std::vector<size_t>& shape) {
  size_t total = 1;
  for (size_t extent : shape) total *= extent;
  return total;
}

}  // namespace

BinnedKdeClassifier::BinnedKdeClassifier(BinnedKdeOptions options)
    : options_(options) {
  TKDC_CHECK(options_.p > 0.0 && options_.p < 1.0);
  TKDC_CHECK(options_.truncation_radius > 0.0);
}

std::shared_ptr<BinnedKdeModel> BinnedKdeClassifier::BuildModel(
    const Dataset& data, std::vector<double> bandwidths,
    QueryContext& build_ctx) const {
  TKDC_CHECK(data.size() >= 2);
  auto model = std::make_shared<BinnedKdeModel>();
  model->dims = data.dims();
  TKDC_CHECK_MSG(model->dims <= 4, "binned KDE supports at most 4 dimensions");
  model->kernel =
      std::make_unique<const Kernel>(options_.kernel, std::move(bandwidths));
  const size_t dims = model->dims;

  // Grid geometry: data bounding box padded by the truncation radius so
  // boundary densities are not clipped.
  const size_t grid_nodes = options_.grid_size_override > 0
                                ? NextPowerOfTwo(options_.grid_size_override)
                                : DefaultGridSize(dims);
  model->shape.assign(dims, grid_nodes);
  model->grid_lo.assign(dims, 0.0);
  model->grid_step.assign(dims, 0.0);
  std::vector<double> lo(dims, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dims, -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < dims; ++j) {
      lo[j] = std::min(lo[j], row[j]);
      hi[j] = std::max(hi[j], row[j]);
    }
  }
  for (size_t j = 0; j < dims; ++j) {
    const double pad =
        options_.truncation_radius * model->kernel->bandwidths()[j];
    model->grid_lo[j] = lo[j] - pad;
    const double span = (hi[j] + pad) - model->grid_lo[j];
    model->grid_step[j] =
        span > 0.0 ? span / static_cast<double>(model->shape[j] - 1) : 1.0;
  }
  model->strides.assign(dims, 0);
  size_t stride = 1;
  for (size_t j = dims; j-- > 0;) {
    model->strides[j] = stride;
    stride *= model->shape[j];
  }

  // Linear binning: each point spreads its unit mass multilinearly over the
  // 2^d surrounding grid nodes (Wand 1994).
  const size_t total = TotalSize(model->shape);
  std::vector<double> counts(total, 0.0);
  std::vector<size_t> base_index(dims);
  std::vector<double> frac(dims);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < dims; ++j) {
      double pos = (row[j] - model->grid_lo[j]) / model->grid_step[j];
      pos = std::clamp(pos, 0.0,
                       static_cast<double>(model->shape[j] - 1) - 1e-9);
      base_index[j] = static_cast<size_t>(pos);
      frac[j] = pos - static_cast<double>(base_index[j]);
    }
    for (size_t corner = 0; corner < (size_t{1} << dims); ++corner) {
      double weight = 1.0;
      size_t offset = 0;
      for (size_t j = 0; j < dims; ++j) {
        const bool upper = (corner >> j) & 1;
        weight *= upper ? frac[j] : 1.0 - frac[j];
        offset += (base_index[j] + (upper ? 1 : 0)) * model->strides[j];
      }
      counts[offset] += weight;
    }
  }

  // Kernel taps: the kernel evaluated at grid-offset vectors out to the
  // truncation radius along each axis.
  std::vector<size_t> tap_shape(dims);
  std::vector<long> tap_half(dims);
  for (size_t j = 0; j < dims; ++j) {
    const double radius =
        options_.truncation_radius * model->kernel->bandwidths()[j];
    long half = static_cast<long>(std::ceil(radius / model->grid_step[j]));
    half = std::min<long>(half, static_cast<long>(model->shape[j]) - 1);
    tap_half[j] = half;
    tap_shape[j] = static_cast<size_t>(2 * half + 1);
  }
  std::vector<double> taps(TotalSize(tap_shape));
  std::vector<size_t> tap_index(dims, 0);
  size_t flat = 0;
  for (;;) {
    double z = 0.0;
    for (size_t j = 0; j < dims; ++j) {
      const double delta = (static_cast<double>(tap_index[j]) -
                            static_cast<double>(tap_half[j])) *
                           model->grid_step[j] / model->kernel->bandwidths()[j];
      z += delta * delta;
    }
    taps[flat++] = model->kernel->EvaluateScaled(z);
    ++build_ctx.stats.kernel_evaluations;
    size_t axis = dims;
    while (axis-- > 0) {
      if (++tap_index[axis] < tap_shape[axis]) break;
      tap_index[axis] = 0;
    }
    if (flat == taps.size()) break;
  }

  // Convolve: FFT when the direct cost dominates.
  const double direct_cost = static_cast<double>(total) *
                             static_cast<double>(TotalSize(tap_shape));
  model->used_fft = direct_cost > 4e7;
  model->density_grid =
      model->used_fft ? FftConvolveSame(counts, model->shape, taps, tap_shape)
                      : DirectConvolveSame(counts, model->shape, taps,
                                           tap_shape);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (double& v : model->density_grid) {
    v = std::max(0.0, v * inv_n);  // FFT round-off can dip below zero.
  }
  model->n = data.size();
  model->self_contribution = model->kernel->MaxValue() * inv_n;
  return model;
}

void BinnedKdeClassifier::Train(const Dataset& data) {
  QueryContext build_ctx;
  auto model = BuildModel(data,
                          SelectBandwidths(options_.bandwidth_rule, data,
                                           options_.bandwidth_scale),
                          build_ctx);

  // Threshold quantile from interpolated training densities.
  const double self = model->self_contribution;
  const size_t n = data.size();
  std::vector<size_t> rows;
  if (options_.threshold_sample == 0 || options_.threshold_sample >= n) {
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) rows[i] = i;
  } else {
    Rng rng(options_.seed * 0x9e3779b97f4a7c15ULL + 29);
    rows = rng.SampleWithoutReplacement(n, options_.threshold_sample);
  }
  std::vector<double> densities;
  densities.reserve(rows.size());
  for (size_t row : rows) {
    densities.push_back(Interpolate(*model, data.Row(row)) - self);
    ++build_ctx.stats.queries;
  }
  model->threshold = Quantile(std::move(densities), options_.p);
  model_ = std::move(model);  // Published: immutable from here on.

  train_stats_ = build_ctx.stats;
  train_grid_prunes_ = 0;
  ResetQueryState();
}

double BinnedKdeClassifier::Interpolate(const BinnedKdeModel& m,
                                        std::span<const double> x) {
  TKDC_DCHECK(x.size() == m.dims);
  size_t base = 0;
  double frac[4] = {0, 0, 0, 0};
  size_t idx[4] = {0, 0, 0, 0};
  for (size_t j = 0; j < m.dims; ++j) {
    const double pos = (x[j] - m.grid_lo[j]) / m.grid_step[j];
    if (pos < 0.0 || pos > static_cast<double>(m.shape[j] - 1)) {
      return 0.0;  // Outside the grid: beyond every training point + pad.
    }
    const double clamped =
        std::min(pos, static_cast<double>(m.shape[j] - 1) - 1e-9);
    idx[j] = static_cast<size_t>(clamped);
    frac[j] = clamped - static_cast<double>(idx[j]);
    base += idx[j] * m.strides[j];
  }
  double value = 0.0;
  for (size_t corner = 0; corner < (size_t{1} << m.dims); ++corner) {
    double weight = 1.0;
    size_t offset = base;
    for (size_t j = 0; j < m.dims; ++j) {
      const bool upper = (corner >> j) & 1;
      weight *= upper ? frac[j] : 1.0 - frac[j];
      if (upper) offset += m.strides[j];
    }
    value += weight * m.density_grid[offset];
  }
  return value;
}

Classification BinnedKdeClassifier::ClassifyInContext(
    QueryContext& ctx, std::span<const double> x, bool training) const {
  TKDC_CHECK_MSG(trained(), "Classify called before Train");
  ++ctx.stats.queries;
  const double correction = training ? model_->self_contribution : 0.0;
  return Interpolate(*model_, x) - correction > model_->threshold
             ? Classification::kHigh
             : Classification::kLow;
}

double BinnedKdeClassifier::EstimateDensityInContext(
    QueryContext& ctx, std::span<const double> x) const {
  TKDC_CHECK_MSG(trained(), "EstimateDensity called before Train");
  ++ctx.stats.queries;
  return Interpolate(*model_, x);
}

Classification BinnedKdeClassifier::ClassifyOverlayInContext(
    QueryContext& ctx, std::span<const double> x, bool training,
    const DeltaOverlay& overlay) const {
  TKDC_CHECK_MSG(trained(), "ClassifyWithOverlay called before Train");
  const BinnedKdeModel& m = *model_;
  const OverlayContribution fold = ComputeOverlayContribution(
      overlay, m.n, *m.kernel, x, /*fast_math=*/false);
  ctx.stats.kernel_evaluations += fold.evaluations;
  ++ctx.stats.queries;
  const double merged = fold.Merge(Interpolate(m, x));
  const double correction =
      training ? m.self_contribution * fold.scale : 0.0;
  return merged - correction > m.threshold ? Classification::kHigh
                                           : Classification::kLow;
}

double BinnedKdeClassifier::EstimateDensityOverlayInContext(
    QueryContext& ctx, std::span<const double> x,
    const DeltaOverlay& overlay) const {
  TKDC_CHECK_MSG(trained(), "EstimateDensityWithOverlay called before Train");
  const BinnedKdeModel& m = *model_;
  const OverlayContribution fold = ComputeOverlayContribution(
      overlay, m.n, *m.kernel, x, /*fast_math=*/false);
  ctx.stats.kernel_evaluations += fold.evaluations;
  ++ctx.stats.queries;
  return fold.Merge(Interpolate(m, x));
}

double BinnedKdeClassifier::threshold() const {
  TKDC_CHECK_MSG(trained(), "threshold read before Train");
  return model_->threshold;
}

void BinnedKdeClassifier::Restore(const Dataset& data,
                                  const std::vector<double>& bandwidths,
                                  double threshold) {
  TKDC_CHECK(bandwidths.size() == data.dims());
  QueryContext build_ctx;
  auto model = BuildModel(data, bandwidths, build_ctx);
  model->threshold = threshold;
  model_ = std::move(model);
  train_stats_ = TraversalStats();
  train_grid_prunes_ = 0;
  ResetQueryState();
}

}  // namespace tkdc
