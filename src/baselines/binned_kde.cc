#include "baselines/binned_kde.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "common/rng.h"
#include "common/stats.h"
#include "fft/convolution.h"
#include "fft/fft.h"

namespace tkdc {
namespace {

size_t DefaultGridSize(size_t dims) {
  switch (dims) {
    case 1:
      return 512;
    case 2:
      return 256;
    case 3:
      return 64;
    default:
      return 16;
  }
}

size_t TotalSize(const std::vector<size_t>& shape) {
  size_t total = 1;
  for (size_t extent : shape) total *= extent;
  return total;
}

}  // namespace

BinnedKdeClassifier::BinnedKdeClassifier(BinnedKdeOptions options)
    : options_(options) {
  TKDC_CHECK(options_.p > 0.0 && options_.p < 1.0);
  TKDC_CHECK(options_.truncation_radius > 0.0);
}

void BinnedKdeClassifier::Train(const Dataset& data) {
  TKDC_CHECK(data.size() >= 2);
  dims_ = data.dims();
  TKDC_CHECK_MSG(dims_ <= 4, "binned KDE supports at most 4 dimensions");
  kernel_ = std::make_unique<Kernel>(
      options_.kernel, SelectBandwidths(options_.bandwidth_rule, data,
                                        options_.bandwidth_scale));

  // Grid geometry: data bounding box padded by the truncation radius so
  // boundary densities are not clipped.
  const size_t grid_nodes = options_.grid_size_override > 0
                                ? NextPowerOfTwo(options_.grid_size_override)
                                : DefaultGridSize(dims_);
  shape_.assign(dims_, grid_nodes);
  grid_lo_.assign(dims_, 0.0);
  grid_step_.assign(dims_, 0.0);
  std::vector<double> lo(dims_, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dims_, -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < dims_; ++j) {
      lo[j] = std::min(lo[j], row[j]);
      hi[j] = std::max(hi[j], row[j]);
    }
  }
  for (size_t j = 0; j < dims_; ++j) {
    const double pad =
        options_.truncation_radius * kernel_->bandwidths()[j];
    grid_lo_[j] = lo[j] - pad;
    const double span = (hi[j] + pad) - grid_lo_[j];
    grid_step_[j] =
        span > 0.0 ? span / static_cast<double>(shape_[j] - 1) : 1.0;
  }

  // Linear binning: each point spreads its unit mass multilinearly over the
  // 2^d surrounding grid nodes (Wand 1994).
  const size_t total = TotalSize(shape_);
  std::vector<double> counts(total, 0.0);
  std::vector<size_t> strides(dims_);
  size_t stride = 1;
  for (size_t j = dims_; j-- > 0;) {
    strides[j] = stride;
    stride *= shape_[j];
  }
  std::vector<size_t> base_index(dims_);
  std::vector<double> frac(dims_);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < dims_; ++j) {
      double pos = (row[j] - grid_lo_[j]) / grid_step_[j];
      pos = std::clamp(pos, 0.0, static_cast<double>(shape_[j] - 1) - 1e-9);
      base_index[j] = static_cast<size_t>(pos);
      frac[j] = pos - static_cast<double>(base_index[j]);
    }
    for (size_t corner = 0; corner < (size_t{1} << dims_); ++corner) {
      double weight = 1.0;
      size_t offset = 0;
      for (size_t j = 0; j < dims_; ++j) {
        const bool upper = (corner >> j) & 1;
        weight *= upper ? frac[j] : 1.0 - frac[j];
        offset += (base_index[j] + (upper ? 1 : 0)) * strides[j];
      }
      counts[offset] += weight;
    }
  }

  // Kernel taps: the kernel evaluated at grid-offset vectors out to the
  // truncation radius along each axis.
  std::vector<size_t> tap_shape(dims_);
  std::vector<long> tap_half(dims_);
  for (size_t j = 0; j < dims_; ++j) {
    const double radius =
        options_.truncation_radius * kernel_->bandwidths()[j];
    long half = static_cast<long>(std::ceil(radius / grid_step_[j]));
    half = std::min<long>(half, static_cast<long>(shape_[j]) - 1);
    tap_half[j] = half;
    tap_shape[j] = static_cast<size_t>(2 * half + 1);
  }
  std::vector<double> taps(TotalSize(tap_shape));
  std::vector<size_t> tap_index(dims_, 0);
  size_t flat = 0;
  for (;;) {
    double z = 0.0;
    for (size_t j = 0; j < dims_; ++j) {
      const double delta = (static_cast<double>(tap_index[j]) -
                            static_cast<double>(tap_half[j])) *
                           grid_step_[j] / kernel_->bandwidths()[j];
      z += delta * delta;
    }
    taps[flat++] = kernel_->EvaluateScaled(z);
    ++kernel_evaluations_;
    size_t axis = dims_;
    while (axis-- > 0) {
      if (++tap_index[axis] < tap_shape[axis]) break;
      tap_index[axis] = 0;
    }
    if (flat == taps.size()) break;
  }

  // Convolve: FFT when the direct cost dominates.
  const double direct_cost = static_cast<double>(total) *
                             static_cast<double>(TotalSize(tap_shape));
  used_fft_ = direct_cost > 4e7;
  density_grid_ = used_fft_
                      ? FftConvolveSame(counts, shape_, taps, tap_shape)
                      : DirectConvolveSame(counts, shape_, taps, tap_shape);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (double& v : density_grid_) {
    v = std::max(0.0, v * inv_n);  // FFT round-off can dip below zero.
  }

  // Threshold quantile from interpolated training densities.
  self_contribution_ = kernel_->MaxValue() * inv_n;
  const double self = self_contribution_;
  const size_t n = data.size();
  std::vector<size_t> rows;
  if (options_.threshold_sample == 0 || options_.threshold_sample >= n) {
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) rows[i] = i;
  } else {
    Rng rng(options_.seed * 0x9e3779b97f4a7c15ULL + 29);
    rows = rng.SampleWithoutReplacement(n, options_.threshold_sample);
  }
  std::vector<double> densities;
  densities.reserve(rows.size());
  for (size_t row : rows) {
    densities.push_back(Interpolate(data.Row(row)) - self);
  }
  threshold_ = Quantile(std::move(densities), options_.p);
}

double BinnedKdeClassifier::Interpolate(std::span<const double> x) const {
  TKDC_DCHECK(x.size() == dims_);
  std::vector<size_t> strides(dims_);
  size_t stride = 1;
  for (size_t j = dims_; j-- > 0;) {
    strides[j] = stride;
    stride *= shape_[j];
  }
  size_t base = 0;
  double frac[4] = {0, 0, 0, 0};
  std::vector<size_t> idx(dims_);
  for (size_t j = 0; j < dims_; ++j) {
    const double pos = (x[j] - grid_lo_[j]) / grid_step_[j];
    if (pos < 0.0 || pos > static_cast<double>(shape_[j] - 1)) {
      return 0.0;  // Outside the grid: beyond every training point + pad.
    }
    const double clamped =
        std::min(pos, static_cast<double>(shape_[j] - 1) - 1e-9);
    idx[j] = static_cast<size_t>(clamped);
    frac[j] = clamped - static_cast<double>(idx[j]);
    base += idx[j] * strides[j];
  }
  double value = 0.0;
  for (size_t corner = 0; corner < (size_t{1} << dims_); ++corner) {
    double weight = 1.0;
    size_t offset = base;
    for (size_t j = 0; j < dims_; ++j) {
      const bool upper = (corner >> j) & 1;
      weight *= upper ? frac[j] : 1.0 - frac[j];
      if (upper) offset += strides[j];
    }
    value += weight * density_grid_[offset];
  }
  return value;
}

Classification BinnedKdeClassifier::Classify(std::span<const double> x) {
  TKDC_CHECK_MSG(kernel_ != nullptr, "Classify called before Train");
  return Interpolate(x) > threshold_ ? Classification::kHigh
                                     : Classification::kLow;
}

Classification BinnedKdeClassifier::ClassifyTraining(
    std::span<const double> x) {
  TKDC_CHECK_MSG(kernel_ != nullptr, "ClassifyTraining called before Train");
  return Interpolate(x) - self_contribution_ > threshold_
             ? Classification::kHigh
             : Classification::kLow;
}

double BinnedKdeClassifier::EstimateDensity(std::span<const double> x) {
  TKDC_CHECK_MSG(kernel_ != nullptr, "EstimateDensity called before Train");
  return Interpolate(x);
}

double BinnedKdeClassifier::threshold() const {
  TKDC_CHECK_MSG(kernel_ != nullptr, "threshold read before Train");
  return threshold_;
}

uint64_t BinnedKdeClassifier::kernel_evaluations() const {
  return kernel_evaluations_;
}

}  // namespace tkdc
