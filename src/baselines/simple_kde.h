#ifndef TKDC_BASELINES_SIMPLE_KDE_H_
#define TKDC_BASELINES_SIMPLE_KDE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "kde/bandwidth.h"
#include "kde/density_classifier.h"
#include "kde/naive_kde.h"

namespace tkdc {

/// Options for the naive baseline.
struct SimpleKdeOptions {
  double p = 0.01;
  double bandwidth_scale = 1.0;
  KernelType kernel = KernelType::kGaussian;
  BandwidthRule bandwidth_rule = BandwidthRule::kScott;
  /// Training points whose densities fix the threshold quantile. Computing
  /// all n is Theta(n^2); a sample of this size estimates the same
  /// quantile. Set to 0 to use every training point (exact, quadratic).
  size_t threshold_sample = 2000;
  uint64_t seed = 0;
};

/// The paper's "simple" algorithm: exact KDE by a full scan per query
/// (Table 2). Its per-query cost is O(n) kernel evaluations — the quadratic
/// total cost tKDC is built to avoid.
class SimpleKdeClassifier : public DensityClassifier {
 public:
  explicit SimpleKdeClassifier(SimpleKdeOptions options = SimpleKdeOptions());

  std::string name() const override { return "simple"; }
  void Train(const Dataset& data) override;
  Classification Classify(std::span<const double> x) override;
  Classification ClassifyTraining(std::span<const double> x) override;
  double EstimateDensity(std::span<const double> x) override;
  double threshold() const override;
  uint64_t kernel_evaluations() const override;

  const NaiveKde& kde() const { return *kde_; }

 private:
  SimpleKdeOptions options_;
  std::unique_ptr<NaiveKde> kde_;
  double threshold_ = 0.0;
};

}  // namespace tkdc

#endif  // TKDC_BASELINES_SIMPLE_KDE_H_
