#ifndef TKDC_BASELINES_SIMPLE_KDE_H_
#define TKDC_BASELINES_SIMPLE_KDE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "kde/bandwidth.h"
#include "kde/density_classifier.h"
#include "kde/kernel.h"
#include "kde/soa_matrix.h"

namespace tkdc {

/// Options for the naive baseline.
struct SimpleKdeOptions {
  double p = 0.01;
  double bandwidth_scale = 1.0;
  KernelType kernel = KernelType::kGaussian;
  BandwidthRule bandwidth_rule = BandwidthRule::kScott;
  /// Training points whose densities fix the threshold quantile. Computing
  /// all n is Theta(n^2); a sample of this size estimates the same
  /// quantile. Set to 0 to use every training point (exact, quadratic).
  size_t threshold_sample = 2000;
  uint64_t seed = 0;
};

/// The immutable trained artifact of the naive baseline: the training data
/// (its own "index" — a full scan needs nothing else), the kernel, and the
/// quantile threshold.
struct SimpleKdeModel {
  Dataset data;
  Kernel kernel;
  /// SoA mirror of `data` for the vectorized full scan (kde/soa_matrix.h).
  /// Derived state, built at construction, never serialized.
  SoaMatrix soa;
  double threshold = 0.0;
  /// K_H(0) / n, subtracted when classifying training points.
  double self_contribution = 0.0;

  SimpleKdeModel(Dataset data_in, Kernel kernel_in)
      : data(std::move(data_in)), kernel(std::move(kernel_in)), soa(data) {}
};

/// The paper's "simple" algorithm: exact KDE by a full scan per query
/// (Table 2). Its per-query cost is O(n) kernel evaluations — the quadratic
/// total cost tKDC is built to avoid. The scan engine is stateless (the
/// base QueryContext carries only counters), so batch calls parallelize
/// like every other classifier.
class SimpleKdeClassifier : public DensityClassifier {
 public:
  explicit SimpleKdeClassifier(SimpleKdeOptions options = SimpleKdeOptions());

  std::string name() const override { return "simple"; }
  void Train(const Dataset& data) override;
  bool trained() const override { return model_ != nullptr; }
  size_t training_size() const override {
    return model_ != nullptr ? model_->data.size() : 0;
  }
  size_t dims() const override {
    return model_ != nullptr ? model_->data.dims() : 0;
  }
  double threshold() const override;

  std::unique_ptr<QueryContext> MakeQueryContext() const override {
    return std::make_unique<QueryContext>();
  }
  Classification ClassifyInContext(QueryContext& ctx,
                                   std::span<const double> x,
                                   bool training) const override;
  double EstimateDensityInContext(QueryContext& ctx,
                                  std::span<const double> x) const override;

  /// Streaming: the scan density is an additive kernel sum, so the overlay
  /// fold (n_b * f + Delta) / n_eff is exact — the one engine whose merged
  /// answers carry no approximation at all.
  bool supports_overlay() const override { return true; }
  Classification ClassifyOverlayInContext(
      QueryContext& ctx, std::span<const double> x, bool training,
      const DeltaOverlay& overlay) const override;
  double EstimateDensityOverlayInContext(
      QueryContext& ctx, std::span<const double> x,
      const DeltaOverlay& overlay) const override;
  bool ExportTrainingData(Dataset* out) const override;

  const SimpleKdeOptions& options() const { return options_; }
  const SimpleKdeModel& model() const { return *model_; }
  const Kernel& kernel() const { return model_->kernel; }
  /// The training data the model scans (copied at Train time).
  const Dataset& training_data() const { return model_->data; }

  /// Restores a trained state from serialized parts (model_io): rebuilds
  /// the model from `data` and the given bandwidths/threshold without
  /// re-estimating the quantile.
  void Restore(const Dataset& data, const std::vector<double>& bandwidths,
               double threshold);

 private:
  /// Exact density at `x` (O(n) kernel evaluations, counted into ctx).
  static double ScanDensity(const SimpleKdeModel& m, QueryContext& ctx,
                            std::span<const double> x);

  SimpleKdeOptions options_;
  std::shared_ptr<const SimpleKdeModel> model_;
};

}  // namespace tkdc

#endif  // TKDC_BASELINES_SIMPLE_KDE_H_
