#include "baselines/simple_kde.h"

#include "common/macros.h"
#include "common/stats.h"
#include "kde/kernel.h"

namespace tkdc {

SimpleKdeClassifier::SimpleKdeClassifier(SimpleKdeOptions options)
    : options_(options) {
  TKDC_CHECK(options_.p > 0.0 && options_.p < 1.0);
  TKDC_CHECK(options_.bandwidth_scale > 0.0);
}

void SimpleKdeClassifier::Train(const Dataset& data) {
  TKDC_CHECK(data.size() >= 2);
  Kernel kernel(options_.kernel,
                SelectBandwidths(options_.bandwidth_rule, data,
                                 options_.bandwidth_scale));
  kde_ = std::make_unique<NaiveKde>(data, std::move(kernel));

  // Threshold t(p): quantile of self-corrected training densities, over the
  // full set or a subsample (Eq. 1).
  const size_t n = data.size();
  std::vector<size_t> rows;
  if (options_.threshold_sample == 0 || options_.threshold_sample >= n) {
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) rows[i] = i;
  } else {
    Rng rng(options_.seed * 0x9e3779b97f4a7c15ULL + 7);
    rows = rng.SampleWithoutReplacement(n, options_.threshold_sample);
  }
  std::vector<double> densities;
  densities.reserve(rows.size());
  for (size_t row : rows) densities.push_back(kde_->TrainingDensity(row));
  threshold_ = Quantile(std::move(densities), options_.p);
}

Classification SimpleKdeClassifier::Classify(std::span<const double> x) {
  TKDC_CHECK_MSG(kde_ != nullptr, "Classify called before Train");
  return kde_->Density(x) > threshold_ ? Classification::kHigh
                                       : Classification::kLow;
}

Classification SimpleKdeClassifier::ClassifyTraining(
    std::span<const double> x) {
  TKDC_CHECK_MSG(kde_ != nullptr, "ClassifyTraining called before Train");
  const double self =
      kde_->kernel().MaxValue() / static_cast<double>(kde_->size());
  return kde_->Density(x) - self > threshold_ ? Classification::kHigh
                                              : Classification::kLow;
}

double SimpleKdeClassifier::EstimateDensity(std::span<const double> x) {
  TKDC_CHECK_MSG(kde_ != nullptr, "EstimateDensity called before Train");
  return kde_->Density(x);
}

double SimpleKdeClassifier::threshold() const {
  TKDC_CHECK_MSG(kde_ != nullptr, "threshold read before Train");
  return threshold_;
}

uint64_t SimpleKdeClassifier::kernel_evaluations() const {
  return kde_ == nullptr ? 0 : kde_->kernel_evaluations();
}

}  // namespace tkdc
