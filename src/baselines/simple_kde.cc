#include "baselines/simple_kde.h"

#include "common/macros.h"
#include "common/stats.h"
#include "kde/delta_overlay.h"

namespace tkdc {

SimpleKdeClassifier::SimpleKdeClassifier(SimpleKdeOptions options)
    : options_(options) {
  TKDC_CHECK(options_.p > 0.0 && options_.p < 1.0);
  TKDC_CHECK(options_.bandwidth_scale > 0.0);
}

double SimpleKdeClassifier::ScanDensity(const SimpleKdeModel& m,
                                        QueryContext& ctx,
                                        std::span<const double> x) {
  const size_t n = m.data.size();
  // Vectorized SoA full scan; exact (no fast-math) so the baseline stays
  // the reference the accuracy experiments compare against.
  const double sum =
      m.soa.KernelSum(x.data(), m.kernel.inverse_bandwidths().data(),
                      m.kernel.type(), m.kernel.norm(), /*fast_math=*/false);
  ctx.stats.kernel_evaluations += n;
  ++ctx.stats.queries;
  return sum / static_cast<double>(n);
}

void SimpleKdeClassifier::Train(const Dataset& data) {
  TKDC_CHECK(data.size() >= 2);
  auto model = std::make_shared<SimpleKdeModel>(
      data, Kernel(options_.kernel,
                   SelectBandwidths(options_.bandwidth_rule, data,
                                    options_.bandwidth_scale)));
  model->self_contribution =
      model->kernel.MaxValue() / static_cast<double>(data.size());

  // Threshold t(p): quantile of self-corrected training densities, over the
  // full set or a subsample (Eq. 1).
  const size_t n = data.size();
  std::vector<size_t> rows;
  if (options_.threshold_sample == 0 || options_.threshold_sample >= n) {
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) rows[i] = i;
  } else {
    Rng rng(options_.seed * 0x9e3779b97f4a7c15ULL + 7);
    rows = rng.SampleWithoutReplacement(n, options_.threshold_sample);
  }
  QueryContext train_ctx;
  std::vector<double> densities;
  densities.reserve(rows.size());
  for (size_t row : rows) {
    densities.push_back(ScanDensity(*model, train_ctx, data.Row(row)) -
                        model->self_contribution);
  }
  model->threshold = Quantile(std::move(densities), options_.p);
  model_ = std::move(model);  // Published: immutable from here on.

  train_stats_ = train_ctx.stats;
  train_grid_prunes_ = 0;
  ResetQueryState();
}

Classification SimpleKdeClassifier::ClassifyInContext(
    QueryContext& ctx, std::span<const double> x, bool training) const {
  TKDC_CHECK_MSG(trained(), "Classify called before Train");
  const double correction = training ? model_->self_contribution : 0.0;
  return ScanDensity(*model_, ctx, x) - correction > model_->threshold
             ? Classification::kHigh
             : Classification::kLow;
}

double SimpleKdeClassifier::EstimateDensityInContext(
    QueryContext& ctx, std::span<const double> x) const {
  TKDC_CHECK_MSG(trained(), "EstimateDensity called before Train");
  return ScanDensity(*model_, ctx, x);
}

Classification SimpleKdeClassifier::ClassifyOverlayInContext(
    QueryContext& ctx, std::span<const double> x, bool training,
    const DeltaOverlay& overlay) const {
  TKDC_CHECK_MSG(trained(), "ClassifyWithOverlay called before Train");
  const SimpleKdeModel& m = *model_;
  const OverlayContribution fold = ComputeOverlayContribution(
      overlay, m.data.size(), m.kernel, x, /*fast_math=*/false);
  ctx.stats.kernel_evaluations += fold.evaluations;
  const double merged = fold.Merge(ScanDensity(m, ctx, x));
  // Training points discount K(0)/n_eff; self_contribution is K(0)/n_b.
  const double correction =
      training ? m.self_contribution * fold.scale : 0.0;
  return merged - correction > m.threshold ? Classification::kHigh
                                           : Classification::kLow;
}

double SimpleKdeClassifier::EstimateDensityOverlayInContext(
    QueryContext& ctx, std::span<const double> x,
    const DeltaOverlay& overlay) const {
  TKDC_CHECK_MSG(trained(), "EstimateDensityWithOverlay called before Train");
  const SimpleKdeModel& m = *model_;
  const OverlayContribution fold = ComputeOverlayContribution(
      overlay, m.data.size(), m.kernel, x, /*fast_math=*/false);
  ctx.stats.kernel_evaluations += fold.evaluations;
  return fold.Merge(ScanDensity(m, ctx, x));
}

bool SimpleKdeClassifier::ExportTrainingData(Dataset* out) const {
  if (model_ == nullptr) return false;
  *out = model_->data;
  return true;
}

double SimpleKdeClassifier::threshold() const {
  TKDC_CHECK_MSG(trained(), "threshold read before Train");
  return model_->threshold;
}

void SimpleKdeClassifier::Restore(const Dataset& data,
                                  const std::vector<double>& bandwidths,
                                  double threshold) {
  TKDC_CHECK(data.size() >= 2);
  TKDC_CHECK(bandwidths.size() == data.dims());
  auto model = std::make_shared<SimpleKdeModel>(
      data, Kernel(options_.kernel, bandwidths));
  model->self_contribution =
      model->kernel.MaxValue() / static_cast<double>(data.size());
  model->threshold = threshold;
  model_ = std::move(model);
  train_stats_ = TraversalStats();
  train_grid_prunes_ = 0;
  ResetQueryState();
}

}  // namespace tkdc
