#ifndef TKDC_BASELINES_BINNED_KDE_H_
#define TKDC_BASELINES_BINNED_KDE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "kde/bandwidth.h"
#include "kde/density_classifier.h"
#include "kde/kernel.h"

namespace tkdc {

/// Options for the binning baseline.
struct BinnedKdeOptions {
  double p = 0.01;
  double bandwidth_scale = 1.0;
  KernelType kernel = KernelType::kGaussian;
  BandwidthRule bandwidth_rule = BandwidthRule::kScott;
  /// Grid nodes per axis by dimensionality d = 1..4 (0 entries use the
  /// defaults 512 / 128 / 32 / 16, mirroring the coarsening the R "ks"
  /// package applies as d grows). Extents are rounded up to powers of two.
  size_t grid_size_override = 0;
  /// Kernel truncation radius in bandwidth multiples for the convolution
  /// taps (Gaussian mass beyond 4 bandwidths is negligible).
  double truncation_radius = 4.0;
  /// Training points sampled to fix the threshold quantile (0 = all).
  size_t threshold_sample = 0;
  uint64_t seed = 0;
};

/// The paper's "ks" baseline (Table 2): linear binning onto a regular grid
/// followed by a kernel convolution (FFT-based when profitable), with
/// density queries answered by multilinear interpolation. Extremely fast in
/// low dimensions but with no accuracy guarantee — the Figure 8 accuracy
/// collapse at d = 4 comes from the coarse grid. Supports d <= 4, like the
/// R package it reproduces.
class BinnedKdeClassifier : public DensityClassifier {
 public:
  explicit BinnedKdeClassifier(BinnedKdeOptions options = BinnedKdeOptions());

  std::string name() const override { return "binned"; }
  void Train(const Dataset& data) override;
  Classification Classify(std::span<const double> x) override;
  Classification ClassifyTraining(std::span<const double> x) override;
  double EstimateDensity(std::span<const double> x) override;
  double threshold() const override;
  uint64_t kernel_evaluations() const override;

  /// Grid nodes per axis after rounding.
  const std::vector<size_t>& grid_shape() const { return shape_; }
  /// True when the convolution went through the FFT path.
  bool used_fft() const { return used_fft_; }

 private:
  /// Density at `x` by multilinear interpolation (0 outside the grid).
  double Interpolate(std::span<const double> x) const;

  BinnedKdeOptions options_;
  std::unique_ptr<Kernel> kernel_;
  size_t dims_ = 0;
  std::vector<size_t> shape_;
  std::vector<double> grid_lo_;
  std::vector<double> grid_step_;
  std::vector<double> density_grid_;
  double threshold_ = 0.0;
  double self_contribution_ = 0.0;
  bool used_fft_ = false;
  uint64_t kernel_evaluations_ = 0;
};

}  // namespace tkdc

#endif  // TKDC_BASELINES_BINNED_KDE_H_
