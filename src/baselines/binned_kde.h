#ifndef TKDC_BASELINES_BINNED_KDE_H_
#define TKDC_BASELINES_BINNED_KDE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "kde/bandwidth.h"
#include "kde/density_classifier.h"
#include "kde/kernel.h"

namespace tkdc {

/// Options for the binning baseline.
struct BinnedKdeOptions {
  double p = 0.01;
  double bandwidth_scale = 1.0;
  KernelType kernel = KernelType::kGaussian;
  BandwidthRule bandwidth_rule = BandwidthRule::kScott;
  /// Grid nodes per axis by dimensionality d = 1..4 (0 entries use the
  /// defaults 512 / 128 / 32 / 16, mirroring the coarsening the R "ks"
  /// package applies as d grows). Extents are rounded up to powers of two.
  size_t grid_size_override = 0;
  /// Kernel truncation radius in bandwidth multiples for the convolution
  /// taps (Gaussian mass beyond 4 bandwidths is negligible).
  double truncation_radius = 4.0;
  /// Training points sampled to fix the threshold quantile (0 = all).
  size_t threshold_sample = 0;
  uint64_t seed = 0;
};

/// The immutable trained artifact of the binning baseline: the convolved
/// density grid plus the geometry needed to interpolate it. Queries never
/// touch the training data again.
struct BinnedKdeModel {
  std::unique_ptr<const Kernel> kernel;
  size_t dims = 0;
  /// Training-set size; the grid itself forgets it, but the streaming
  /// overlay fold needs n_b to weight base vs overlay contributions.
  size_t n = 0;
  std::vector<size_t> shape;
  std::vector<size_t> strides;  // Row-major, precomputed at build time.
  std::vector<double> grid_lo;
  std::vector<double> grid_step;
  std::vector<double> density_grid;
  double threshold = 0.0;
  double self_contribution = 0.0;
  bool used_fft = false;
};

/// The paper's "ks" baseline (Table 2): linear binning onto a regular grid
/// followed by a kernel convolution (FFT-based when profitable), with
/// density queries answered by multilinear interpolation. Extremely fast in
/// low dimensions but with no accuracy guarantee — the Figure 8 accuracy
/// collapse at d = 4 comes from the coarse grid. Supports d <= 4, like the
/// R package it reproduces. Interpolation reads only the immutable grid, so
/// batch calls parallelize like every other classifier.
class BinnedKdeClassifier : public DensityClassifier {
 public:
  explicit BinnedKdeClassifier(BinnedKdeOptions options = BinnedKdeOptions());

  std::string name() const override { return "binned"; }
  void Train(const Dataset& data) override;
  bool trained() const override { return model_ != nullptr; }
  size_t training_size() const override {
    return model_ != nullptr ? model_->n : 0;
  }
  size_t dims() const override {
    return model_ != nullptr ? model_->dims : 0;
  }
  double threshold() const override;

  std::unique_ptr<QueryContext> MakeQueryContext() const override {
    return std::make_unique<QueryContext>();
  }
  Classification ClassifyInContext(QueryContext& ctx,
                                   std::span<const double> x,
                                   bool training) const override;
  double EstimateDensityInContext(QueryContext& ctx,
                                  std::span<const double> x) const override;

  /// Streaming: the overlay's exact signed kernel sum folds into the
  /// interpolated base density (the base half keeps the grid's usual
  /// approximation; the overlay half is exact). The grid retains no
  /// training points, so ExportTrainingData stays false and the serving
  /// layer cannot *rebuild* a binned model from its overlay — INSERT and
  /// DELETE still work, FLUSH reports the limitation.
  bool supports_overlay() const override { return true; }
  Classification ClassifyOverlayInContext(
      QueryContext& ctx, std::span<const double> x, bool training,
      const DeltaOverlay& overlay) const override;
  double EstimateDensityOverlayInContext(
      QueryContext& ctx, std::span<const double> x,
      const DeltaOverlay& overlay) const override;

  const BinnedKdeOptions& options() const { return options_; }
  const BinnedKdeModel& model() const { return *model_; }

  /// Grid nodes per axis after rounding.
  const std::vector<size_t>& grid_shape() const { return model_->shape; }
  /// True when the convolution went through the FFT path.
  bool used_fft() const { return model_ != nullptr && model_->used_fft; }

  /// Restores a trained state from serialized parts (model_io): re-bins and
  /// re-convolves `data` with the given bandwidths (deterministic, so the
  /// grid is bit-identical to the one trained) and installs the threshold
  /// without re-running the quantile pass.
  void Restore(const Dataset& data, const std::vector<double>& bandwidths,
               double threshold);

 private:
  /// Binning + taps + convolution shared by Train and Restore; tap kernel
  /// evaluations are counted into `build_ctx`.
  std::shared_ptr<BinnedKdeModel> BuildModel(const Dataset& data,
                                             std::vector<double> bandwidths,
                                             QueryContext& build_ctx) const;

  /// Density at `x` by multilinear interpolation (0 outside the grid).
  static double Interpolate(const BinnedKdeModel& m, std::span<const double> x);

  BinnedKdeOptions options_;
  std::shared_ptr<const BinnedKdeModel> model_;
};

}  // namespace tkdc

#endif  // TKDC_BASELINES_BINNED_KDE_H_
