#ifndef TKDC_BASELINES_NOCUT_H_
#define TKDC_BASELINES_NOCUT_H_

#include <string>

#include "tkdc/classifier.h"

namespace tkdc {

/// The paper's "nocut" baseline (Table 2): the tKDC machinery with the
/// threshold pruning rule and the grid cache disabled, leaving only the
/// Gray & Moore tolerance rule — i.e. a k-d tree KDE approximator in the
/// style of scikit-learn's implementation. One order of magnitude slower
/// than full tKDC on the paper's workloads, because it must resolve every
/// density to within eps * t instead of merely deciding which side of the
/// threshold it falls on.
class NocutClassifier : public TkdcClassifier {
 public:
  explicit NocutClassifier(TkdcConfig config = TkdcConfig())
      : TkdcClassifier(DisableCuts(std::move(config))) {}

  std::string name() const override { return "nocut"; }

 private:
  static TkdcConfig DisableCuts(TkdcConfig config) {
    config.use_threshold_rule = false;
    config.use_grid = false;
    config.use_tolerance_rule = true;
    return config;
  }
};

}  // namespace tkdc

#endif  // TKDC_BASELINES_NOCUT_H_
