#include "baselines/rkde.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/rng.h"
#include "common/stats.h"
#include "kde/bandwidth.h"
#include "kde/delta_overlay.h"
#include "kde/kernel_simd.h"
#include "tkdc/threshold.h"

namespace tkdc {

RkdeClassifier::RkdeClassifier(RkdeOptions options)
    : options_(std::move(options)) {
  options_.base.CheckValid();
}

std::shared_ptr<RkdeModel> RkdeClassifier::BuildModel(
    const TkdcConfig& config, const Dataset& data,
    std::vector<double> bandwidths,
    std::unique_ptr<const SpatialIndex> prebuilt_index) {
  TKDC_CHECK(data.size() >= 2);
  auto model = std::make_shared<RkdeModel>();
  model->kernel =
      std::make_unique<const Kernel>(config.kernel, std::move(bandwidths));
  if (prebuilt_index != nullptr) {
    TKDC_CHECK(prebuilt_index->size() == data.size() &&
               prebuilt_index->dims() == data.dims());
    model->tree = std::move(prebuilt_index);
  } else {
    model->tree = BuildIndex(
        data, config.MakeIndexOptions(model->kernel->inverse_bandwidths()));
  }
  model->self_contribution =
      model->kernel->MaxValue() / static_cast<double>(data.size());
  return model;
}

double RkdeClassifier::RadialDensity(const RkdeModel& m, TreeQueryContext& ctx,
                                     std::span<const double> x) {
  // Direct SoA traversal (replacing collect-then-evaluate): prune nodes
  // entirely outside the radius, sum fully-covered leaves unmasked, and
  // radius-mask partially-covered leaves — all through the vectorized
  // leaf-sum primitives. The work counters keep the old semantics:
  // kernel_evaluations counts distance tests on partial leaves plus kernel
  // terms of included points; fully-covered subtrees cost only their
  // kernel terms.
  const SpatialIndex& tree = *m.tree;
  const auto inv_bw = std::span<const double>(m.kernel->inverse_bandwidths());
  const KernelType type = m.kernel->type();
  const double norm = m.kernel->norm();
  const double radius_sq = m.radius_sq;
  uint64_t scanned = 0;  // Distance tests on partially-covered leaves.
  uint64_t inside = 0;   // Points whose kernel term entered the sum.
  double sum = 0.0;
  // The neighbor buffer doubles as the traversal stack; entries encode
  // node * 2 + covered, where covered means an ancestor's z_max already
  // proved every point inside the radius (so no bound recomputation —
  // this also keeps ball-tree children, which can poke outside their
  // parent, on the unmasked path their parent certified).
  std::vector<size_t>& stack = ctx.neighbors;
  stack.clear();
  stack.push_back(SpatialIndex::kRoot * 2);
  while (!stack.empty()) {
    const size_t item = stack.back();
    stack.pop_back();
    const size_t node_index = item / 2;
    bool covered = (item & 1) != 0;
    if (!covered) {
      double z_min = 0.0;
      double z_max = 0.0;
      tree.NodeScaledSquaredDistanceBounds(node_index, x, inv_bw, &z_min,
                                           &z_max);
      if (z_min > radius_sq) continue;
      covered = z_max <= radius_sq;
    }
    const IndexNode& node = tree.node(node_index);
    if (!node.is_leaf()) {
      const size_t flag = covered ? 1 : 0;
      stack.push_back(static_cast<size_t>(node.left) * 2 + flag);
      stack.push_back(static_cast<size_t>(node.right) * 2 + flag);
      continue;
    }
    const SpatialIndex::SoaLeaf leaf = tree.LeafSoa(node_index);
    if (covered) {
      sum += simd::SoaKernelSum(leaf.block, leaf.padded, leaf.count,
                                tree.dims(), x.data(), inv_bw.data(), type,
                                norm, /*fast_math=*/false);
      inside += leaf.count;
    } else {
      uint64_t hits = 0;
      sum += simd::SoaKernelSumWithinRadius(
          leaf.block, leaf.padded, leaf.count, tree.dims(), x.data(),
          inv_bw.data(), radius_sq, type, norm, /*fast_math=*/false, &hits);
      scanned += leaf.count;
      inside += hits;
    }
  }
  ctx.stats.kernel_evaluations += scanned + inside;
  ctx.stats.leaf_points_evaluated += inside;
  ++ctx.stats.queries;
  return sum / static_cast<double>(tree.size());
}

void RkdeClassifier::Train(const Dataset& data) {
  const TkdcConfig& config = options_.base;
  auto model = BuildModel(
      config, data,
      SelectBandwidths(config.bandwidth_rule, data, config.bandwidth_scale));

  TraversalStats bootstrap_stats;
  if (options_.radius_bandwidths > 0.0) {
    model->radius_sq =
        options_.radius_bandwidths * options_.radius_bandwidths;
  } else {
    // Auto radius: the same bootstrap as tKDC yields a lower bound t_lo on
    // the threshold; excluding all points beyond radius r changes the
    // density by at most K(r), so K(r) <= eps * t_lo guarantees error
    // below the Problem 1 tolerance.
    ThresholdEstimator estimator(&config);
    const ThresholdBootstrapResult bootstrap =
        estimator.Bootstrap(data, *model->tree, *model->kernel);
    bootstrap_stats = bootstrap.stats;
    // The radius spends the traversal share of the error budget (rkde does
    // not compress, so with coreset_epsilon == 0 this is exactly epsilon).
    const double target = config.ResolveBudget().traversal * bootstrap.lower;
    model->radius_sq =
        model->kernel->ScaledSquaredDistanceForValue(target);
    // Guard against a degenerate bootstrap (t_lo == 0): fall back to a wide
    // but finite radius.
    const double max_radius_sq = 64.0;  // 8 bandwidths.
    if (!(model->radius_sq < max_radius_sq)) model->radius_sq = max_radius_sq;
  }

  // Threshold from (a sample of) training densities, computed the same way
  // queries will be answered.
  const size_t n = data.size();
  std::vector<size_t> rows;
  if (options_.threshold_sample == 0 || options_.threshold_sample >= n) {
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) rows[i] = i;
  } else {
    Rng rng(config.seed * 0x9e3779b97f4a7c15ULL + 13);
    rows = rng.SampleWithoutReplacement(n, options_.threshold_sample);
  }
  TreeQueryContext train_ctx;
  std::vector<double> densities;
  densities.reserve(rows.size());
  for (size_t row : rows) {
    densities.push_back(RadialDensity(*model, train_ctx, data.Row(row)) -
                        model->self_contribution);
  }
  model->threshold = Quantile(std::move(densities), config.p);
  model_ = std::move(model);  // Published: immutable from here on.

  train_stats_ = bootstrap_stats;
  train_stats_.Add(train_ctx.stats);
  train_grid_prunes_ = 0;
  ResetQueryState();
}

Classification RkdeClassifier::ClassifyInContext(QueryContext& ctx,
                                                 std::span<const double> x,
                                                 bool training) const {
  TKDC_CHECK_MSG(trained(), "Classify called before Train");
  const double correction = training ? model_->self_contribution : 0.0;
  return RadialDensity(*model_, static_cast<TreeQueryContext&>(ctx), x) -
                     correction >
                 model_->threshold
             ? Classification::kHigh
             : Classification::kLow;
}

double RkdeClassifier::EstimateDensityInContext(
    QueryContext& ctx, std::span<const double> x) const {
  TKDC_CHECK_MSG(trained(), "EstimateDensity called before Train");
  return RadialDensity(*model_, static_cast<TreeQueryContext&>(ctx), x);
}

Classification RkdeClassifier::ClassifyOverlayInContext(
    QueryContext& ctx, std::span<const double> x, bool training,
    const DeltaOverlay& overlay) const {
  TKDC_CHECK_MSG(trained(), "ClassifyWithOverlay called before Train");
  const RkdeModel& m = *model_;
  const OverlayContribution fold = ComputeOverlayContribution(
      overlay, m.tree->size(), *m.kernel, x, /*fast_math=*/false);
  ctx.stats.kernel_evaluations += fold.evaluations;
  const double merged = fold.Merge(
      RadialDensity(m, static_cast<TreeQueryContext&>(ctx), x));
  const double correction =
      training ? m.self_contribution * fold.scale : 0.0;
  return merged - correction > m.threshold ? Classification::kHigh
                                           : Classification::kLow;
}

double RkdeClassifier::EstimateDensityOverlayInContext(
    QueryContext& ctx, std::span<const double> x,
    const DeltaOverlay& overlay) const {
  TKDC_CHECK_MSG(trained(), "EstimateDensityWithOverlay called before Train");
  const RkdeModel& m = *model_;
  const OverlayContribution fold = ComputeOverlayContribution(
      overlay, m.tree->size(), *m.kernel, x, /*fast_math=*/false);
  ctx.stats.kernel_evaluations += fold.evaluations;
  return fold.Merge(RadialDensity(m, static_cast<TreeQueryContext&>(ctx), x));
}

bool RkdeClassifier::ExportTrainingData(Dataset* out) const {
  if (model_ == nullptr) return false;
  *out = model_->tree->ExportPoints();
  return true;
}

double RkdeClassifier::threshold() const {
  TKDC_CHECK_MSG(trained(), "threshold read before Train");
  return model_->threshold;
}

void RkdeClassifier::Restore(const Dataset& data,
                             const std::vector<double>& bandwidths,
                             double radius_sq, double threshold,
                             std::unique_ptr<const SpatialIndex> prebuilt_index) {
  TKDC_CHECK(bandwidths.size() == data.dims());
  TKDC_CHECK(radius_sq > 0.0);
  auto model =
      BuildModel(options_.base, data, bandwidths, std::move(prebuilt_index));
  model->radius_sq = radius_sq;
  model->threshold = threshold;
  model_ = std::move(model);
  train_stats_ = TraversalStats();
  train_grid_prunes_ = 0;
  ResetQueryState();
}

}  // namespace tkdc
