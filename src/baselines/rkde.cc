#include "baselines/rkde.h"

#include <algorithm>

#include "common/macros.h"
#include "common/rng.h"
#include "common/stats.h"
#include "kde/bandwidth.h"
#include "tkdc/threshold.h"

namespace tkdc {

RkdeClassifier::RkdeClassifier(RkdeOptions options)
    : options_(std::move(options)) {
  options_.base.Validate();
}

void RkdeClassifier::Train(const Dataset& data) {
  TKDC_CHECK(data.size() >= 2);
  const TkdcConfig& config = options_.base;
  kernel_ = std::make_unique<Kernel>(
      config.kernel, SelectBandwidths(config.bandwidth_rule, data,
                                      config.bandwidth_scale));
  KdTreeOptions tree_options;
  tree_options.leaf_size = config.leaf_size;
  tree_options.split_rule = config.split_rule;
  tree_options.axis_rule = config.axis_rule;
  tree_ = std::make_unique<KdTree>(data, tree_options);
  self_contribution_ = kernel_->MaxValue() / static_cast<double>(data.size());

  if (options_.radius_bandwidths > 0.0) {
    radius_sq_ = options_.radius_bandwidths * options_.radius_bandwidths;
  } else {
    // Auto radius: the same bootstrap as tKDC yields a lower bound t_lo on
    // the threshold; excluding all points beyond radius r changes the
    // density by at most K(r), so K(r) <= eps * t_lo guarantees error
    // below the Problem 1 tolerance.
    ThresholdEstimator estimator(&config);
    const ThresholdBootstrapResult bootstrap =
        estimator.Bootstrap(data, *tree_, *kernel_);
    kernel_evaluations_ += bootstrap.stats.kernel_evaluations;
    const double target = config.epsilon * bootstrap.lower;
    radius_sq_ = kernel_->ScaledSquaredDistanceForValue(target);
    // Guard against a degenerate bootstrap (t_lo == 0): fall back to a wide
    // but finite radius.
    const double max_radius_sq = 64.0;  // 8 bandwidths.
    if (!(radius_sq_ < max_radius_sq)) radius_sq_ = max_radius_sq;
  }

  // Threshold from (a sample of) training densities, computed the same way
  // queries will be answered.
  const size_t n = data.size();
  std::vector<size_t> rows;
  if (options_.threshold_sample == 0 || options_.threshold_sample >= n) {
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) rows[i] = i;
  } else {
    Rng rng(config.seed * 0x9e3779b97f4a7c15ULL + 13);
    rows = rng.SampleWithoutReplacement(n, options_.threshold_sample);
  }
  std::vector<double> densities;
  densities.reserve(rows.size());
  for (size_t row : rows) {
    densities.push_back(RadialDensity(data.Row(row)) - self_contribution_);
  }
  threshold_ = Quantile(std::move(densities), config.p);
}

double RkdeClassifier::RadialDensity(std::span<const double> x) {
  neighbor_buffer_.clear();
  kernel_evaluations_ += tree_->CollectWithinScaledRadius(
      x, kernel_->inverse_bandwidths(), radius_sq_, &neighbor_buffer_);
  double sum = 0.0;
  for (size_t idx : neighbor_buffer_) {
    sum += kernel_->EvaluateScaled(
        kernel_->ScaledSquaredDistance(x, tree_->Point(idx)));
  }
  kernel_evaluations_ += neighbor_buffer_.size();
  return sum / static_cast<double>(tree_->size());
}

Classification RkdeClassifier::Classify(std::span<const double> x) {
  TKDC_CHECK_MSG(tree_ != nullptr, "Classify called before Train");
  return RadialDensity(x) > threshold_ ? Classification::kHigh
                                       : Classification::kLow;
}

Classification RkdeClassifier::ClassifyTraining(std::span<const double> x) {
  TKDC_CHECK_MSG(tree_ != nullptr, "ClassifyTraining called before Train");
  return RadialDensity(x) - self_contribution_ > threshold_
             ? Classification::kHigh
             : Classification::kLow;
}

double RkdeClassifier::EstimateDensity(std::span<const double> x) {
  TKDC_CHECK_MSG(tree_ != nullptr, "EstimateDensity called before Train");
  return RadialDensity(x);
}

double RkdeClassifier::threshold() const {
  TKDC_CHECK_MSG(tree_ != nullptr, "threshold read before Train");
  return threshold_;
}

uint64_t RkdeClassifier::kernel_evaluations() const {
  return kernel_evaluations_;
}

}  // namespace tkdc
