#ifndef TKDC_INDEX_KDTREE_H_
#define TKDC_INDEX_KDTREE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "index/bounding_box.h"
#include "index/spatial_index.h"

namespace tkdc {

/// Static k-d tree over a dataset: the SpatialIndex backend whose per-node
/// geometry is an exact axis-aligned bounding box (paper Figure 3). The
/// min/max scaled distances from a query to the box give the kernel
/// contribution bounds of Eq. 6 — tight at low dimension, increasingly
/// slack as the farthest-corner bound grows with d.
class KdTree : public SpatialIndex {
 public:
  /// Builds the tree over `data` (non-empty). O(n log n).
  KdTree(const Dataset& data, IndexOptions options);

  /// Restore path (model_io): adopts a validated topology plus per-node
  /// boxes over already-reordered points.
  KdTree(size_t dims, std::vector<double> reordered_points,
         std::vector<size_t> original_index, std::vector<IndexNode> nodes,
         std::vector<BoundingBox> boxes, IndexOptions options);

  IndexBackend backend() const override { return IndexBackend::kKdTree; }

  /// Exact bounding box of node `i`'s points.
  const BoundingBox& box(size_t i) const { return boxes_[i]; }

  double NodeMinScaledSquaredDistance(
      size_t node_index, std::span<const double> x,
      std::span<const double> inv_bw) const override {
    return boxes_[node_index].MinScaledSquaredDistance(x, inv_bw);
  }

  void NodeScaledSquaredDistanceBounds(size_t node_index,
                                       std::span<const double> x,
                                       std::span<const double> inv_bw,
                                       double* z_min,
                                       double* z_max) const override {
    const BoundingBox& b = boxes_[node_index];
    *z_min = b.MinScaledSquaredDistance(x, inv_bw);
    *z_max = b.MaxScaledSquaredDistance(x, inv_bw);
  }

  void NodeScaledSquaredDistanceBoundsToBox(
      size_t node_index, const BoundingBox& query_box,
      std::span<const double> inv_bw, double* z_min,
      double* z_max) const override {
    const BoundingBox& b = boxes_[node_index];
    *z_min = b.MinScaledSquaredDistanceToBox(query_box, inv_bw);
    *z_max = b.MaxScaledSquaredDistanceToBox(query_box, inv_bw);
  }

  /// Both children's Eq. 6 box bounds in one vectorized pass (one lane per
  /// bound, dimensions sequential — bit-identical to two single-node
  /// calls; see common/simd.h).
  void NodeChildrenScaledSquaredDistanceBounds(
      size_t node_index, std::span<const double> x,
      std::span<const double> inv_bw, double out[4]) const override {
    const IndexNode& n = node(node_index);
    const BoundingBox& lb = boxes_[static_cast<size_t>(n.left)];
    const BoundingBox& rb = boxes_[static_cast<size_t>(n.right)];
    simd::BoxPairScaledSquaredDistanceBounds(
        lb.min().data(), lb.max().data(), rb.min().data(), rb.max().data(),
        x.data(), inv_bw.data(), dims(), out);
  }

 protected:
  void SetNodeGeometry(size_t node_index, const BoundingBox& box) override {
    if (boxes_.size() <= node_index) boxes_.resize(node_index + 1);
    boxes_[node_index] = box;
  }

 private:
  std::vector<BoundingBox> boxes_;  // Parallel to nodes_.
};

}  // namespace tkdc

#endif  // TKDC_INDEX_KDTREE_H_
