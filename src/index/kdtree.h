#ifndef TKDC_INDEX_KDTREE_H_
#define TKDC_INDEX_KDTREE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "index/bounding_box.h"
#include "index/split_rule.h"

namespace tkdc {

/// Build-time options for the k-d tree.
struct KdTreeOptions {
  /// Maximum points in a leaf before splitting stops.
  size_t leaf_size = 32;
  /// Split-position rule; the paper's tKDC default is the trimmed midpoint.
  SplitRule split_rule = SplitRule::kTrimmedMidpoint;
  /// Split-axis rule; the paper cycles through dimensions per level.
  SplitAxisRule axis_rule = SplitAxisRule::kCycle;
};

/// One node of the k-d tree. Nodes are stored in a flat vector; children are
/// referenced by index (-1 marks a leaf). Every node knows its point range
/// [begin, end) in the tree's reordered point array, its exact bounding box,
/// and therefore its point count — the multi-resolution structure of paper
/// Figure 3.
struct KdNode {
  BoundingBox box;
  size_t begin = 0;
  size_t end = 0;
  int32_t left = -1;
  int32_t right = -1;
  uint8_t split_axis = 0;

  bool is_leaf() const { return left < 0; }
  size_t count() const { return end - begin; }
};

/// Static k-d tree over a dataset. Points are copied and reordered into a
/// contiguous array so leaf scans are cache-friendly; OriginalIndex() maps
/// back to dataset row ids.
class KdTree {
 public:
  /// Builds the tree over `data` (non-empty). O(n log n).
  KdTree(const Dataset& data, KdTreeOptions options);

  size_t size() const { return size_; }
  size_t dims() const { return dims_; }
  const KdTreeOptions& options() const { return options_; }

  size_t num_nodes() const { return nodes_.size(); }
  const KdNode& node(size_t i) const { return nodes_[i]; }
  static constexpr size_t kRoot = 0;
  const KdNode& root() const { return nodes_[kRoot]; }

  /// Coordinates of reordered point `i` (0 <= i < size()).
  std::span<const double> Point(size_t i) const {
    return {points_.data() + i * dims_, dims_};
  }

  /// Dataset row id of reordered point `i`.
  size_t OriginalIndex(size_t i) const { return original_index_[i]; }

  /// Appends to `out` the reordered indices of all points whose *scaled*
  /// squared distance to `x` (per-axis division by bandwidths, i.e.
  /// multiplication by `inv_bw`) is <= `radius_sq`. Used by the rkde
  /// baseline's range queries. Returns the number of point-distance
  /// computations performed (for cost accounting).
  uint64_t CollectWithinScaledRadius(std::span<const double> x,
                                     std::span<const double> inv_bw,
                                     double radius_sq,
                                     std::vector<size_t>* out) const;

  /// Finds the `k` nearest points to `x` under the scaled metric (per-axis
  /// multiplication by `inv_bw`). Fills `out` with (scaled squared
  /// distance, reordered point index) pairs sorted ascending. Returns the
  /// number of distance computations performed. k is clamped to size().
  uint64_t KNearestScaled(std::span<const double> x,
                          std::span<const double> inv_bw, size_t k,
                          std::vector<std::pair<double, size_t>>* out) const;

  /// Depth of the deepest leaf (root = depth 0). For diagnostics.
  size_t MaxDepth() const;

 private:
  struct BuildFrame;

  void Build(size_t node_index, size_t depth);

  size_t dims_;
  size_t size_;
  KdTreeOptions options_;
  std::vector<double> points_;          // Reordered, row-major.
  std::vector<size_t> original_index_;  // Reordered -> dataset row.
  std::vector<KdNode> nodes_;
  std::vector<double> scratch_;  // Split-coordinate scratch buffer.
};

}  // namespace tkdc

#endif  // TKDC_INDEX_KDTREE_H_
