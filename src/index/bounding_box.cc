#include "index/bounding_box.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace tkdc {

BoundingBox::BoundingBox(size_t dims)
    : min_(dims, std::numeric_limits<double>::infinity()),
      max_(dims, -std::numeric_limits<double>::infinity()) {
  TKDC_CHECK(dims >= 1);
}

BoundingBox BoundingBox::FromPoints(const double* points, size_t dims,
                                    size_t begin, size_t end) {
  TKDC_CHECK(begin < end);
  BoundingBox box(dims);
  for (size_t i = begin; i < end; ++i) {
    box.Extend({points + i * dims, dims});
  }
  return box;
}

void BoundingBox::Extend(std::span<const double> point) {
  TKDC_DCHECK(point.size() == dims());
  for (size_t j = 0; j < point.size(); ++j) {
    min_[j] = std::min(min_[j], point[j]);
    max_[j] = std::max(max_[j], point[j]);
  }
}

bool BoundingBox::Contains(std::span<const double> point) const {
  TKDC_DCHECK(point.size() == dims());
  for (size_t j = 0; j < point.size(); ++j) {
    if (point[j] < min_[j] || point[j] > max_[j]) return false;
  }
  return true;
}

double BoundingBox::MinScaledSquaredDistance(
    std::span<const double> x, std::span<const double> inv_bw) const {
  TKDC_DCHECK(x.size() == dims());
  double z = 0.0;
  for (size_t j = 0; j < x.size(); ++j) {
    double gap = 0.0;
    if (x[j] < min_[j]) {
      gap = min_[j] - x[j];
    } else if (x[j] > max_[j]) {
      gap = x[j] - max_[j];
    }
    const double u = gap * inv_bw[j];
    z += u * u;
  }
  return z;
}

double BoundingBox::MaxScaledSquaredDistance(
    std::span<const double> x, std::span<const double> inv_bw) const {
  TKDC_DCHECK(x.size() == dims());
  double z = 0.0;
  for (size_t j = 0; j < x.size(); ++j) {
    const double gap = std::max(x[j] - min_[j], max_[j] - x[j]);
    const double u = gap * inv_bw[j];
    z += u * u;
  }
  return z;
}

double BoundingBox::MinScaledSquaredDistanceToBox(
    const BoundingBox& other, std::span<const double> inv_bw) const {
  TKDC_DCHECK(other.dims() == dims());
  double z = 0.0;
  for (size_t j = 0; j < dims(); ++j) {
    double gap = 0.0;
    if (other.min_[j] > max_[j]) {
      gap = other.min_[j] - max_[j];
    } else if (min_[j] > other.max_[j]) {
      gap = min_[j] - other.max_[j];
    }
    const double u = gap * inv_bw[j];
    z += u * u;
  }
  return z;
}

double BoundingBox::MaxScaledSquaredDistanceToBox(
    const BoundingBox& other, std::span<const double> inv_bw) const {
  TKDC_DCHECK(other.dims() == dims());
  double z = 0.0;
  for (size_t j = 0; j < dims(); ++j) {
    // Farthest pair per axis: one interval's low end against the other's
    // high end, whichever spread is larger.
    const double gap =
        std::max(max_[j] - other.min_[j], other.max_[j] - min_[j]);
    const double u = gap * inv_bw[j];
    z += u * u;
  }
  return z;
}

size_t BoundingBox::WidestAxis() const {
  size_t best = 0;
  double best_extent = -std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < dims(); ++j) {
    const double extent = Extent(j);
    if (extent > best_extent) {
      best_extent = extent;
      best = j;
    }
  }
  return best;
}

}  // namespace tkdc
