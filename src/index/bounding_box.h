#ifndef TKDC_INDEX_BOUNDING_BOX_H_
#define TKDC_INDEX_BOUNDING_BOX_H_

#include <cstddef>
#include <span>
#include <vector>

namespace tkdc {

/// Axis-aligned bounding box over d-dimensional points. Every k-d tree node
/// carries one (paper Figure 3); the min/max scaled distances from a query
/// to the box give the kernel contribution bounds of Eq. 6.
class BoundingBox {
 public:
  /// Uninitialized zero-dimensional box; assign before use. Exists so
  /// containers of nodes can default-construct.
  BoundingBox() = default;

  /// Empty box of the given dimensionality (min > max until Extend).
  explicit BoundingBox(size_t dims);

  /// Tight box around `points` rows [begin, end) of a flat row-major array.
  static BoundingBox FromPoints(const double* points, size_t dims,
                                size_t begin, size_t end);

  size_t dims() const { return min_.size(); }
  const std::vector<double>& min() const { return min_; }
  const std::vector<double>& max() const { return max_; }

  /// Grows the box to contain `point`.
  void Extend(std::span<const double> point);

  /// True when `point` lies inside (inclusive).
  bool Contains(std::span<const double> point) const;

  /// Smallest scaled squared distance sum_j ((gap_j) * inv_bw_j)^2 from `x`
  /// to any point of the box (0 when x is inside).
  double MinScaledSquaredDistance(std::span<const double> x,
                                  std::span<const double> inv_bw) const;

  /// Largest scaled squared distance from `x` to any point of the box (the
  /// farthest corner).
  double MaxScaledSquaredDistance(std::span<const double> x,
                                  std::span<const double> inv_bw) const;

  /// Smallest scaled squared distance between any point of this box and
  /// any point of `other` (0 when they overlap). Used by the dual-tree
  /// batch classifier to bound contributions for whole query nodes.
  double MinScaledSquaredDistanceToBox(const BoundingBox& other,
                                       std::span<const double> inv_bw) const;

  /// Largest scaled squared distance between any point of this box and any
  /// point of `other`.
  double MaxScaledSquaredDistanceToBox(const BoundingBox& other,
                                       std::span<const double> inv_bw) const;

  /// Box extent along `axis`.
  double Extent(size_t axis) const { return max_[axis] - min_[axis]; }

  /// Axis with the largest extent.
  size_t WidestAxis() const;

 private:
  std::vector<double> min_;
  std::vector<double> max_;
};

}  // namespace tkdc

#endif  // TKDC_INDEX_BOUNDING_BOX_H_
