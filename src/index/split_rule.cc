#include "index/split_rule.h"

#include <algorithm>

#include "common/macros.h"

namespace tkdc {

std::optional<SplitRule> SplitRuleFromName(const std::string& name) {
  if (name == "median") return SplitRule::kMedian;
  if (name == "midpoint") return SplitRule::kMidpoint;
  if (name == "trimmed") return SplitRule::kTrimmedMidpoint;
  return std::nullopt;
}

std::string SplitRuleName(SplitRule rule) {
  switch (rule) {
    case SplitRule::kMedian:
      return "median";
    case SplitRule::kMidpoint:
      return "midpoint";
    case SplitRule::kTrimmedMidpoint:
      return "trimmed";
  }
  return "unknown";
}

double ComputeSplitPosition(SplitRule rule, double* values, size_t size) {
  TKDC_CHECK(size >= 2);
  switch (rule) {
    case SplitRule::kMedian: {
      const size_t mid = size / 2;
      std::nth_element(values, values + mid, values + size);
      return values[mid];
    }
    case SplitRule::kMidpoint: {
      const auto [lo, hi] = std::minmax_element(values, values + size);
      return 0.5 * (*lo + *hi);
    }
    case SplitRule::kTrimmedMidpoint: {
      // (x_(10) + x_(90)) / 2 with percentile ranks floor(size * p),
      // clamped to valid indices.
      size_t lo_idx = static_cast<size_t>(0.10 * static_cast<double>(size));
      size_t hi_idx = static_cast<size_t>(0.90 * static_cast<double>(size));
      if (hi_idx >= size) hi_idx = size - 1;
      if (lo_idx > hi_idx) lo_idx = hi_idx;
      std::nth_element(values, values + lo_idx, values + size);
      const double lo = values[lo_idx];
      std::nth_element(values + lo_idx, values + hi_idx, values + size);
      const double hi = values[hi_idx];
      return 0.5 * (lo + hi);
    }
  }
  TKDC_CHECK_MSG(false, "unknown split rule");
  return 0.0;  // Unreachable.
}

}  // namespace tkdc
