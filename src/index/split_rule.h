#ifndef TKDC_INDEX_SPLIT_RULE_H_
#define TKDC_INDEX_SPLIT_RULE_H_

#include <cstddef>
#include <optional>
#include <string>

namespace tkdc {

/// How a k-d tree node chooses the split position along its split axis.
enum class SplitRule {
  /// Median of the coordinates: balanced tree (the textbook rule).
  kMedian,
  /// Midpoint of the node's bounding box along the axis.
  kMidpoint,
  /// The paper's "equi-width" rule (Section 3.7): split at
  /// (x_(10) + x_(90)) / 2, the midpoint of the 10th and 90th percentiles.
  /// Resists outliers while producing tight boxes, which matters more than
  /// balance because the Gaussian kernel decays exponentially.
  kTrimmedMidpoint,
};

/// How a node chooses which axis to split.
enum class SplitAxisRule {
  /// Cycle through dimensions by tree level (the paper's default).
  kCycle,
  /// Split the widest extent of the node's bounding box (ablation option).
  kWidestExtent,
};

/// Parses "median" / "midpoint" / "trimmed" into a SplitRule.
std::optional<SplitRule> SplitRuleFromName(const std::string& name);

/// Human-readable rule name.
std::string SplitRuleName(SplitRule rule);

/// Computes the split position for `values` (the coordinates of a node's
/// points along the split axis; modified in place by partial sorting).
/// Returns the coordinate to split at. `values_size` >= 2.
double ComputeSplitPosition(SplitRule rule, double* values, size_t size);

}  // namespace tkdc

#endif  // TKDC_INDEX_SPLIT_RULE_H_
