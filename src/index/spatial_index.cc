#include "index/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/macros.h"
#include "index/ball_tree.h"
#include "index/kdtree.h"

namespace tkdc {

SpatialIndex::SpatialIndex(const Dataset& data, IndexOptions options)
    : dims_(data.dims()), size_(data.size()), options_(std::move(options)) {
  TKDC_CHECK(!data.empty());
  TKDC_CHECK_MSG(options_.leaf_size >= 1, "index leaf_size must be >= 1");
  points_ = data.values();
  original_index_.resize(size_);
  for (size_t i = 0; i < size_; ++i) original_index_[i] = i;
}

SpatialIndex::SpatialIndex(size_t dims, std::vector<double> reordered_points,
                           std::vector<size_t> original_index,
                           std::vector<IndexNode> nodes, IndexOptions options)
    : dims_(dims),
      size_(original_index.size()),
      options_(std::move(options)),
      points_(std::move(reordered_points)),
      original_index_(std::move(original_index)),
      nodes_(std::move(nodes)) {
  TKDC_CHECK(dims_ >= 1 && size_ >= 1);
  TKDC_CHECK(points_.size() == size_ * dims_);
  TKDC_CHECK(!nodes_.empty());
  TKDC_CHECK_MSG(options_.leaf_size >= 1, "index leaf_size must be >= 1");
  // The SoA mirror is derived state: rebuilt from the restored reordered
  // points, never read from the model payload.
  BuildLeafSoa();
}

void SpatialIndex::BuildTree() {
  // Conservative node-count reservation: a binary tree with ceil(n / leaf)
  // leaves has < 4 * n / leaf nodes.
  nodes_.reserve(4 * (size_ / options_.leaf_size + 1));
  IndexNode root;
  root.begin = 0;
  root.end = size_;
  nodes_.push_back(root);

  // The split-coordinate scratch is a build-local buffer: it dies with this
  // frame, so the finished index carries no build-only state.
  std::vector<double> scratch;
  struct BuildFrame {
    size_t node_index;
    size_t depth;
  };
  std::vector<BuildFrame> stack;
  stack.push_back({kRoot, 0});
  while (!stack.empty()) {
    const BuildFrame frame = stack.back();
    stack.pop_back();
    const IndexNode& pre = nodes_[frame.node_index];
    // The node's point set is final once it exists (its own partition only
    // reorders within the range), so the geometry is computed before
    // splitting and both see the same points.
    const BoundingBox box =
        BoundingBox::FromPoints(points_.data(), dims_, pre.begin, pre.end);
    SetNodeGeometry(frame.node_index, box);
    SplitNode(frame.node_index, frame.depth, box, scratch);
    const IndexNode& node = nodes_[frame.node_index];
    if (!node.is_leaf()) {
      stack.push_back({static_cast<size_t>(node.left), frame.depth + 1});
      stack.push_back({static_cast<size_t>(node.right), frame.depth + 1});
    }
  }
  BuildLeafSoa();
}

void SpatialIndex::BuildLeafSoa() {
  soa_offsets_.assign(nodes_.size(), kNoSoaBlock);
  soa_leaf_count_ = 0;
  max_soa_padded_ = 0;
  size_t total = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_leaf()) continue;
    const size_t padded = SimdPaddedCount(nodes_[i].count());
    soa_offsets_[i] = total;
    total += padded * dims_;
    max_soa_padded_ = std::max(max_soa_padded_, padded);
    ++soa_leaf_count_;
  }
  // Fill with +infinity first so padding lanes need no special-casing in
  // the transpose below.
  soa_points_.assign(total, std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const IndexNode& node = nodes_[i];
    if (!node.is_leaf()) continue;
    const size_t padded = SimdPaddedCount(node.count());
    double* block = soa_points_.data() + soa_offsets_[i];
    for (size_t k = 0; k < node.count(); ++k) {
      const double* p = points_.data() + (node.begin + k) * dims_;
      for (size_t j = 0; j < dims_; ++j) block[j * padded + k] = p[j];
    }
  }
}

void SpatialIndex::LeafScaledSquaredDistances(size_t node_index,
                                              std::span<const double> x,
                                              std::span<const double> inv_bw,
                                              double* out) const {
  const SoaLeaf leaf = LeafSoa(node_index);
  simd::SoaScaledSquaredDistances(leaf.block, leaf.padded, leaf.count, dims_,
                                  x.data(), inv_bw.data(), out);
}

void SpatialIndex::NodeChildrenScaledSquaredDistanceBounds(
    size_t node_index, std::span<const double> x,
    std::span<const double> inv_bw, double out[4]) const {
  const IndexNode& node = nodes_[node_index];
  NodeScaledSquaredDistanceBounds(static_cast<size_t>(node.left), x, inv_bw,
                                  &out[0], &out[1]);
  NodeScaledSquaredDistanceBounds(static_cast<size_t>(node.right), x, inv_bw,
                                  &out[2], &out[3]);
}

void SpatialIndex::SwapPoints(size_t a, size_t b) {
  if (a == b) return;
  for (size_t j = 0; j < dims_; ++j) {
    std::swap(points_[a * dims_ + j], points_[b * dims_ + j]);
  }
  std::swap(original_index_[a], original_index_[b]);
}

void SpatialIndex::SplitNode(size_t node_index, size_t depth,
                             const BoundingBox& box,
                             std::vector<double>& scratch) {
  if (nodes_[node_index].count() <= options_.leaf_size) return;

  uint8_t split_axis = 0;
  const size_t mid =
      PartitionNode(node_index, depth, box, scratch, &split_axis);
  IndexNode& node = nodes_[node_index];
  if (mid <= node.begin || mid >= node.end) return;  // Split refused.

  IndexNode left_child;
  left_child.begin = node.begin;
  left_child.end = mid;
  IndexNode right_child;
  right_child.begin = mid;
  right_child.end = node.end;

  node.split_axis = split_axis;
  node.left = static_cast<int32_t>(nodes_.size());
  node.right = static_cast<int32_t>(nodes_.size() + 1);
  nodes_.push_back(left_child);
  nodes_.push_back(right_child);
}

size_t SpatialIndex::PartitionNode(size_t node_index, size_t depth,
                                   const BoundingBox& box,
                                   std::vector<double>& scratch,
                                   uint8_t* split_axis) {
  const IndexNode& node = nodes_[node_index];
  const size_t count = node.count();

  // Choose the split axis: cycle by level, or widest box extent. Either
  // way, fall through to other axes if the chosen one is degenerate
  // (zero extent).
  size_t axis = options_.axis_rule == SplitAxisRule::kCycle
                    ? depth % dims_
                    : box.WidestAxis();
  if (box.Extent(axis) <= 0.0) {
    axis = box.WidestAxis();
    if (box.Extent(axis) <= 0.0) return node.begin;  // All points identical.
  }

  // Gather this node's coordinates along the axis and compute the split
  // position with the configured rule.
  scratch.resize(count);
  for (size_t i = 0; i < count; ++i) {
    scratch[i] = points_[(node.begin + i) * dims_ + axis];
  }
  double split = ComputeSplitPosition(options_.split_rule, scratch.data(),
                                      count);

  // Partition rows: left gets coord < split. If that is degenerate (all on
  // one side), fall back to the median, then to strict inequality around
  // it, which always separates a non-degenerate axis.
  auto partition_rows = [&](double pivot) {
    size_t left = node.begin;
    size_t right = node.end;
    while (left < right) {
      if (points_[left * dims_ + axis] < pivot) {
        ++left;
      } else {
        --right;
        SwapPoints(left, right);
      }
    }
    return left;
  };

  size_t mid = partition_rows(split);
  if (mid == node.begin || mid == node.end) {
    const size_t median_rank = count / 2;
    std::nth_element(scratch.begin(), scratch.begin() + median_rank,
                     scratch.begin() + count);
    split = scratch[median_rank];
    mid = partition_rows(split);
    if (mid == node.begin) {
      // All coordinates >= split; move strictly-greater to the right.
      mid = partition_rows(std::nextafter(
          split, std::numeric_limits<double>::infinity()));
    }
  }
  *split_axis = static_cast<uint8_t>(axis);
  return mid;
}

uint64_t SpatialIndex::CollectWithinScaledRadius(
    std::span<const double> x, std::span<const double> inv_bw,
    double radius_sq, std::vector<size_t>* out) const {
  TKDC_CHECK(out != nullptr);
  TKDC_CHECK(x.size() == dims_ && inv_bw.size() == dims_);
  uint64_t distance_computations = 0;
  std::vector<double> leaf_z(max_soa_padded_);
  std::vector<size_t> stack{kRoot};
  while (!stack.empty()) {
    const size_t node_index = stack.back();
    stack.pop_back();
    double z_min = 0.0;
    double z_max = 0.0;
    NodeScaledSquaredDistanceBounds(node_index, x, inv_bw, &z_min, &z_max);
    if (z_min > radius_sq) continue;
    const IndexNode& node = nodes_[node_index];
    if (z_max <= radius_sq) {
      // Whole node inside the ball: take every point without distance
      // tests.
      for (size_t i = node.begin; i < node.end; ++i) out->push_back(i);
      continue;
    }
    if (node.is_leaf()) {
      // One vectorized pass over the leaf's SoA block; each lane replays
      // the scalar per-point recurrence, so the distances (and the points
      // collected) are bit-identical to the former row-major loop.
      LeafScaledSquaredDistances(node_index, x, inv_bw, leaf_z.data());
      distance_computations += node.count();
      for (size_t k = 0; k < node.count(); ++k) {
        if (leaf_z[k] <= radius_sq) out->push_back(node.begin + k);
      }
    } else {
      stack.push_back(static_cast<size_t>(node.left));
      stack.push_back(static_cast<size_t>(node.right));
    }
  }
  return distance_computations;
}

uint64_t SpatialIndex::KNearestScaled(
    std::span<const double> x, std::span<const double> inv_bw, size_t k,
    std::vector<std::pair<double, size_t>>* out) const {
  TKDC_CHECK(out != nullptr);
  TKDC_CHECK(x.size() == dims_ && inv_bw.size() == dims_);
  if (k > size_) k = size_;
  out->clear();
  if (k == 0) return 0;

  // Max-heap of the current k best (worst on top).
  std::vector<std::pair<double, size_t>>& best = *out;
  uint64_t distance_computations = 0;
  std::vector<double> leaf_z(max_soa_padded_);

  // Best-first traversal: a min-heap of (node min-distance, node index)
  // visits the most promising subtree next and prunes any node farther
  // than the current k-th best.
  using NodeEntry = std::pair<double, size_t>;
  std::vector<NodeEntry> frontier;
  auto push_node = [&](size_t node_index) {
    frontier.emplace_back(
        -NodeMinScaledSquaredDistance(node_index, x, inv_bw), node_index);
    std::push_heap(frontier.begin(), frontier.end());
  };
  push_node(kRoot);
  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end());
    const auto [neg_min_dist, node_index] = frontier.back();
    frontier.pop_back();
    if (best.size() == k && -neg_min_dist > best.front().first) break;
    const IndexNode& node = nodes_[node_index];
    if (node.is_leaf()) {
      // Vectorized leaf distances (bit-identical to the scalar loop, see
      // common/simd.h); the heap updates then run in the same ascending
      // point order as before, so ties resolve identically.
      LeafScaledSquaredDistances(node_index, x, inv_bw, leaf_z.data());
      distance_computations += node.count();
      for (size_t s = 0; s < node.count(); ++s) {
        const double z = leaf_z[s];
        const size_t i = node.begin + s;
        if (best.size() < k) {
          best.emplace_back(z, i);
          std::push_heap(best.begin(), best.end());
        } else if (z < best.front().first) {
          std::pop_heap(best.begin(), best.end());
          best.back() = {z, i};
          std::push_heap(best.begin(), best.end());
        }
      }
    } else {
      push_node(static_cast<size_t>(node.left));
      push_node(static_cast<size_t>(node.right));
    }
  }
  std::sort_heap(best.begin(), best.end());
  return distance_computations;
}

Dataset SpatialIndex::ExportPoints() const {
  std::vector<double> values(size_ * dims_);
  for (size_t i = 0; i < size_; ++i) {
    const std::span<const double> point = Point(i);
    double* row = values.data() + OriginalIndex(i) * dims_;
    for (size_t j = 0; j < dims_; ++j) row[j] = point[j];
  }
  return Dataset(dims_, std::move(values));
}

size_t SpatialIndex::MaxDepth() const {
  size_t max_depth = 0;
  std::vector<std::pair<size_t, size_t>> stack{{kRoot, 0}};
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    const IndexNode& node = nodes_[index];
    if (node.is_leaf()) {
      max_depth = std::max(max_depth, depth);
    } else {
      stack.push_back({static_cast<size_t>(node.left), depth + 1});
      stack.push_back({static_cast<size_t>(node.right), depth + 1});
    }
  }
  return max_depth;
}

std::unique_ptr<const SpatialIndex> BuildIndex(const Dataset& data,
                                               IndexOptions options) {
  switch (options.backend) {
    case IndexBackend::kBallTree:
      return std::make_unique<const BallTree>(data, std::move(options));
    case IndexBackend::kKdTree:
      break;
  }
  return std::make_unique<const KdTree>(data, std::move(options));
}

}  // namespace tkdc
