#ifndef TKDC_INDEX_BALL_TREE_H_
#define TKDC_INDEX_BALL_TREE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "index/bounding_box.h"
#include "index/spatial_index.h"

namespace tkdc {

/// Ball-tree SpatialIndex backend: each node's geometry is the centroid of
/// its points plus the annulus [r_min, r_max] of centroid distances its
/// points occupy. The same reordered-contiguous-points layout as the k-d
/// tree, but nodes are partitioned metrically (farthest-pair pivots)
/// rather than on axis-aligned planes, and the per-node bound changes: one
/// centroid distance dc gives both ends of the Eq. 6 interval via the
/// triangle inequality, [max(0, dc - r_max, r_min - dc), dc + r_max]. The
/// r_min - dc term is what a plain bounding ball lacks: an internal node
/// spanning several clusters is hollow around its centroid, and queries
/// that land in the hole still get a positive distance floor.
///
/// Radii are measured in the metric given by options.scale (per-axis
/// multipliers; for KDE indexes the kernel's inverse bandwidths, so radii
/// live in the same space queries measure distances in and the bounds are
/// tight). Queries under a different per-axis scaling stay *valid* through
/// the worst-axis correction factor max_j(inv_bw_j / scale_j), merely
/// looser.
///
/// The trade-off against the box: the radius reflects the actual spread of
/// the node's points, while the box's farthest-corner bound grows with the
/// full diagonal — so ball bounds tighten relative to box bounds as
/// dimension rises (the regime where the paper's Fig. 11 sweeps slow
/// down), at the cost of slightly looser minimum-distance bounds at low d.
class BallTree : public SpatialIndex {
 public:
  /// Builds the tree over `data` (non-empty). O(n log n).
  BallTree(const Dataset& data, IndexOptions options);

  /// Restore path (model_io): adopts a validated topology plus per-node
  /// centroids and annulus radii over already-reordered points. `scale`
  /// must have one positive entry per dimension.
  BallTree(size_t dims, std::vector<double> reordered_points,
           std::vector<size_t> original_index, std::vector<IndexNode> nodes,
           std::vector<double> centroids, std::vector<double> radii,
           std::vector<double> radii_min, std::vector<double> scale,
           IndexOptions options);

  IndexBackend backend() const override { return IndexBackend::kBallTree; }

  /// Centroid of node `i`'s points.
  std::span<const double> Centroid(size_t i) const {
    return {centroids_.data() + i * dims_, dims_};
  }

  /// Radius of node `i`'s ball (the farthest centroid distance of its
  /// points), in the build scale metric.
  double Radius(size_t i) const { return radii_[i]; }

  /// Inner annulus radius of node `i` (the nearest centroid distance of
  /// its points), in the build scale metric. Zero for single-point leaves
  /// whose point is the centroid.
  double MinRadius(size_t i) const { return radii_min_[i]; }

  /// The per-axis metric radii are measured in (resolved: always dims()
  /// entries, all ones when options.scale was empty).
  const std::vector<double>& scale() const { return scale_; }

  double NodeMinScaledSquaredDistance(
      size_t node_index, std::span<const double> x,
      std::span<const double> inv_bw) const override;

  void NodeScaledSquaredDistanceBounds(size_t node_index,
                                       std::span<const double> x,
                                       std::span<const double> inv_bw,
                                       double* z_min,
                                       double* z_max) const override;

  void NodeScaledSquaredDistanceBoundsToBox(
      size_t node_index, const BoundingBox& query_box,
      std::span<const double> inv_bw, double* z_min,
      double* z_max) const override;

  /// Both children's Eq. 6 ball bounds from one fused pass that computes
  /// the two centroid distances (one lane each) and the shared metric
  /// correction factors together — bit-identical to two single-node calls
  /// (see common/simd.h).
  void NodeChildrenScaledSquaredDistanceBounds(
      size_t node_index, std::span<const double> x,
      std::span<const double> inv_bw, double out[4]) const override;

 protected:
  void SetNodeGeometry(size_t node_index, const BoundingBox& box) override;

  /// Farthest-pair metric split: pivot A is the point farthest from the
  /// node's centroid, pivot B the point farthest from A (both in the build
  /// metric); the children collect the points nearer their pivot. The
  /// pivot axis tracks the direction the points actually spread — which on
  /// rotated or correlated data no axis-aligned plane can — so the child
  /// balls stay tight where the k-d tree's boxes go slack.
  size_t PartitionNode(size_t node_index, size_t depth,
                       const BoundingBox& box, std::vector<double>& scratch,
                       uint8_t* split_axis) override;

 private:
  /// Centroid distance dc (in the query metric) plus the annulus radii
  /// converted to the query metric, fused into one pass over the
  /// dimensions. The outer radius converts through the worst-axis factor
  /// max_j(inv_bw_j / scale_j) (so dc + r_hi stays an upper bound); the
  /// inner radius through the best-axis factor min_j(inv_bw_j / scale_j)
  /// (so r_lo - dc stays a lower bound). When the query metric equals the
  /// build scale both factors are exactly 1 and the annulus is tight.
  void CentroidDistanceAndRadii(size_t node_index, std::span<const double> x,
                                std::span<const double> inv_bw, double* dc,
                                double* radius_hi, double* radius_lo) const;

  void ResolveScale();

  std::vector<double> centroids_;  // num_nodes x dims, row-major.
  std::vector<double> radii_;      // Parallel to nodes_, in scale_ metric.
  std::vector<double> radii_min_;  // Inner annulus radii, same metric.
  std::vector<double> scale_;      // Build metric, one entry per axis.
  std::vector<double> inv_scale_;  // 1 / scale_, for the query correction.
};

}  // namespace tkdc

#endif  // TKDC_INDEX_BALL_TREE_H_
