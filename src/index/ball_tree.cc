#include "index/ball_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace tkdc {

BallTree::BallTree(const Dataset& data, IndexOptions options)
    : SpatialIndex(data, std::move(options)) {
  ResolveScale();
  BuildTree();
  // Per-node geometry arrives out of order (SetNodeGeometry resizes as the
  // build discovers nodes); the counts must agree once the build is done.
  TKDC_CHECK(centroids_.size() == nodes_.size() * dims_);
  TKDC_CHECK(radii_.size() == nodes_.size());
  TKDC_CHECK(radii_min_.size() == nodes_.size());
}

BallTree::BallTree(size_t dims, std::vector<double> reordered_points,
                   std::vector<size_t> original_index,
                   std::vector<IndexNode> nodes, std::vector<double> centroids,
                   std::vector<double> radii, std::vector<double> radii_min,
                   std::vector<double> scale, IndexOptions options)
    : SpatialIndex(dims, std::move(reordered_points),
                   std::move(original_index), std::move(nodes),
                   std::move(options)),
      centroids_(std::move(centroids)),
      radii_(std::move(radii)),
      radii_min_(std::move(radii_min)) {
  options_.scale = std::move(scale);
  ResolveScale();
  TKDC_CHECK(centroids_.size() == nodes_.size() * dims_);
  TKDC_CHECK(radii_.size() == nodes_.size());
  TKDC_CHECK(radii_min_.size() == nodes_.size());
}

void BallTree::ResolveScale() {
  scale_ = options_.scale;
  if (scale_.empty()) scale_.assign(dims_, 1.0);
  TKDC_CHECK_MSG(scale_.size() == dims_, "index scale must match dims");
  inv_scale_.resize(dims_);
  for (size_t j = 0; j < dims_; ++j) {
    TKDC_CHECK_MSG(scale_[j] > 0.0, "index scale must be positive");
    inv_scale_[j] = 1.0 / scale_[j];
  }
}

void BallTree::SetNodeGeometry(size_t node_index, const BoundingBox& box) {
  (void)box;  // The ball geometry comes from the points, not the box.
  if (radii_.size() <= node_index) {
    radii_.resize(node_index + 1, 0.0);
    radii_min_.resize(node_index + 1, 0.0);
    centroids_.resize((node_index + 1) * dims_, 0.0);
  }
  const IndexNode& node = nodes_[node_index];
  double* centroid = centroids_.data() + node_index * dims_;
  std::fill(centroid, centroid + dims_, 0.0);
  const double inv_count = 1.0 / static_cast<double>(node.count());
  for (size_t i = node.begin; i < node.end; ++i) {
    const double* p = points_.data() + i * dims_;
    for (size_t j = 0; j < dims_; ++j) centroid[j] += p[j];
  }
  for (size_t j = 0; j < dims_; ++j) centroid[j] *= inv_count;

  double max_sq = 0.0;
  double min_sq = std::numeric_limits<double>::infinity();
  for (size_t i = node.begin; i < node.end; ++i) {
    const double* p = points_.data() + i * dims_;
    double z = 0.0;
    for (size_t j = 0; j < dims_; ++j) {
      const double u = (p[j] - centroid[j]) * scale_[j];
      z += u * u;
    }
    max_sq = std::max(max_sq, z);
    min_sq = std::min(min_sq, z);
  }
  radii_[node_index] = std::sqrt(max_sq);
  radii_min_[node_index] = std::sqrt(min_sq);
}

size_t BallTree::PartitionNode(size_t node_index, size_t depth,
                               const BoundingBox& box,
                               std::vector<double>& scratch,
                               uint8_t* split_axis) {
  (void)depth;
  (void)box;
  const IndexNode& node = nodes_[node_index];
  const size_t count = node.count();
  auto dist_sq = [&](const double* p, const double* q) {
    double z = 0.0;
    for (size_t j = 0; j < dims_; ++j) {
      const double u = (p[j] - q[j]) * scale_[j];
      z += u * u;
    }
    return z;
  };

  // SetNodeGeometry ran before the split, so this node's centroid is
  // final. Pivot A: the point farthest from it.
  const double* centroid = centroids_.data() + node_index * dims_;
  size_t a_row = node.begin;
  double farthest = -1.0;
  for (size_t i = node.begin; i < node.end; ++i) {
    const double z = dist_sq(points_.data() + i * dims_, centroid);
    if (z > farthest) {
      farthest = z;
      a_row = i;
    }
  }
  if (farthest <= 0.0) return node.begin;  // All points identical.

  // Pivot B: the point farthest from A. The pivots are copied out because
  // the partition below moves rows.
  const std::vector<double> a(Point(a_row).begin(), Point(a_row).end());
  size_t b_row = node.begin;
  farthest = -1.0;
  for (size_t i = node.begin; i < node.end; ++i) {
    const double z = dist_sq(points_.data() + i * dims_, a.data());
    if (z > farthest) {
      farthest = z;
      b_row = i;
    }
  }
  const std::vector<double> b(Point(b_row).begin(), Point(b_row).end());

  // Split along the A -> B direction with the configured split-position
  // rule: the same median/midpoint rules as the k-d tree, but applied to
  // the projection onto the direction the points actually spread, so the
  // children stay as balanced as an axis split while shrinking along the
  // cloud's principal extent. The projection weight folds the build metric
  // in once: proj_i = sum_j p_ij * scale_j^2 * (B_j - A_j).
  std::vector<double> w(dims_);
  for (size_t j = 0; j < dims_; ++j) {
    w[j] = (b[j] - a[j]) * scale_[j] * scale_[j];
  }
  scratch.resize(count);
  for (size_t i = 0; i < count; ++i) {
    const double* p = points_.data() + (node.begin + i) * dims_;
    double proj = 0.0;
    for (size_t j = 0; j < dims_; ++j) proj += p[j] * w[j];
    scratch[i] = proj;
  }
  // A and B project to opposite ends (proj(B) - proj(A) = distSq(A, B) in
  // the build metric, which is > 0 here), so the projection spread is
  // never degenerate; the fallbacks mirror the k-d path for numeric edge
  // cases. The split-position rule gets a copy because the partition needs
  // scratch to stay parallel to the rows it swaps.
  std::vector<double> proj(scratch.begin(), scratch.begin() + count);
  double split = ComputeSplitPosition(options_.split_rule, proj.data(), count);
  auto partition_rows = [&](double pivot) {
    size_t left = node.begin;
    size_t right = node.end;
    while (left < right) {
      if (scratch[left - node.begin] < pivot) {
        ++left;
      } else {
        --right;
        SwapPoints(left, right);
        std::swap(scratch[left - node.begin], scratch[right - node.begin]);
      }
    }
    return left;
  };
  size_t mid = partition_rows(split);
  if (mid == node.begin || mid == node.end) {
    const size_t median_rank = count / 2;
    std::nth_element(proj.begin(), proj.begin() + median_rank, proj.end());
    split = proj[median_rank];
    mid = partition_rows(split);
    if (mid == node.begin) {
      mid = partition_rows(std::nextafter(
          split, std::numeric_limits<double>::infinity()));
    }
  }
  *split_axis = 0;  // No split plane; the serialized field stays valid.
  return mid;
}

void BallTree::CentroidDistanceAndRadii(size_t node_index,
                                        std::span<const double> x,
                                        std::span<const double> inv_bw,
                                        double* dc, double* radius_hi,
                                        double* radius_lo) const {
  const double* centroid = centroids_.data() + node_index * dims_;
  double dist_sq = 0.0;
  double factor_hi = 0.0;
  double factor_lo = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < dims_; ++j) {
    const double u = (x[j] - centroid[j]) * inv_bw[j];
    dist_sq += u * u;
    const double f = inv_bw[j] * inv_scale_[j];
    factor_hi = std::max(factor_hi, f);
    factor_lo = std::min(factor_lo, f);
  }
  *dc = std::sqrt(dist_sq);
  *radius_hi = radii_[node_index] * factor_hi;
  *radius_lo = radii_min_[node_index] * factor_lo;
}

double BallTree::NodeMinScaledSquaredDistance(
    size_t node_index, std::span<const double> x,
    std::span<const double> inv_bw) const {
  double dc = 0.0, r_hi = 0.0, r_lo = 0.0;
  CentroidDistanceAndRadii(node_index, x, inv_bw, &dc, &r_hi, &r_lo);
  const double lo = std::max({0.0, dc - r_hi, r_lo - dc});
  return lo * lo;
}

void BallTree::NodeScaledSquaredDistanceBounds(size_t node_index,
                                               std::span<const double> x,
                                               std::span<const double> inv_bw,
                                               double* z_min,
                                               double* z_max) const {
  double dc = 0.0, r_hi = 0.0, r_lo = 0.0;
  CentroidDistanceAndRadii(node_index, x, inv_bw, &dc, &r_hi, &r_lo);
  const double lo = std::max({0.0, dc - r_hi, r_lo - dc});
  const double hi = dc + r_hi;
  *z_min = lo * lo;
  *z_max = hi * hi;
}

void BallTree::NodeChildrenScaledSquaredDistanceBounds(
    size_t node_index, std::span<const double> x,
    std::span<const double> inv_bw, double out[4]) const {
  const IndexNode& node = nodes_[node_index];
  const size_t left = static_cast<size_t>(node.left);
  const size_t right = static_cast<size_t>(node.right);
  double dist_sq[2] = {0.0, 0.0};
  double factor_hi = 0.0;
  double factor_lo = 0.0;
  simd::CentroidPairScaledSquaredDistances(
      centroids_.data() + left * dims_, centroids_.data() + right * dims_,
      x.data(), inv_bw.data(), inv_scale_.data(), dims_, dist_sq, &factor_hi,
      &factor_lo);
  for (int c = 0; c < 2; ++c) {
    const size_t child = c == 0 ? left : right;
    const double dc = std::sqrt(dist_sq[c]);
    const double r_hi = radii_[child] * factor_hi;
    const double r_lo = radii_min_[child] * factor_lo;
    const double lo = std::max({0.0, dc - r_hi, r_lo - dc});
    const double hi = dc + r_hi;
    out[2 * c] = lo * lo;
    out[2 * c + 1] = hi * hi;
  }
}

void BallTree::NodeScaledSquaredDistanceBoundsToBox(
    size_t node_index, const BoundingBox& query_box,
    std::span<const double> inv_bw, double* z_min, double* z_max) const {
  const std::span<const double> centroid = Centroid(node_index);
  double factor_hi = 0.0;
  double factor_lo = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < dims_; ++j) {
    const double f = inv_bw[j] * inv_scale_[j];
    factor_hi = std::max(factor_hi, f);
    factor_lo = std::min(factor_lo, f);
  }
  const double r_hi = radii_[node_index] * factor_hi;
  const double r_lo = radii_min_[node_index] * factor_lo;
  // Triangle inequality against the nearest/farthest box point from the
  // centroid: valid for every query point in the box and every node point
  // in the annulus. The per-query centroid distance ranges over
  // [box_min, box_max], so the simultaneous lower bound takes each term at
  // its weakest end of that range.
  const double box_min =
      std::sqrt(query_box.MinScaledSquaredDistance(centroid, inv_bw));
  const double box_max =
      std::sqrt(query_box.MaxScaledSquaredDistance(centroid, inv_bw));
  const double lo = std::max({0.0, box_min - r_hi, r_lo - box_max});
  const double hi = box_max + r_hi;
  *z_min = lo * lo;
  *z_max = hi * hi;
}

}  // namespace tkdc
