#ifndef TKDC_INDEX_INDEX_BACKEND_H_
#define TKDC_INDEX_INDEX_BACKEND_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

namespace tkdc {

/// Which spatial-index structure backs the tree traversals. Stable on-disk
/// values (model format v3 stores them): never renumber, only append.
enum class IndexBackend : uint8_t {
  /// Axis-aligned k-d tree (paper Section 3.2). Tight boxes at low d;
  /// the min/max-corner bounds go slack as dimension grows.
  kKdTree = 0,
  /// Ball tree (centroid + radius metric tree). One centroid distance per
  /// node gives both bounds; radii stay meaningful at higher d where box
  /// diagonals do not.
  kBallTree = 1,
};

/// Human-readable backend name ("kdtree" / "balltree"), as accepted by the
/// CLI's --index flag and the TKDC_INDEX environment variable.
inline std::string IndexBackendName(IndexBackend backend) {
  switch (backend) {
    case IndexBackend::kKdTree:
      return "kdtree";
    case IndexBackend::kBallTree:
      return "balltree";
  }
  return "unknown";
}

/// Parses "kdtree" / "balltree" into a backend.
inline std::optional<IndexBackend> IndexBackendFromName(
    const std::string& name) {
  if (name == "kdtree") return IndexBackend::kKdTree;
  if (name == "balltree") return IndexBackend::kBallTree;
  return std::nullopt;
}

/// Resolves a TKDC_INDEX environment value: null (unset) means kdtree; a
/// recognized name selects that backend; anything else is a hard error
/// listing the allowed values — a typo'd TKDC_INDEX used to fall back to
/// kdtree silently, which made the CI ball-tree lane (and any user forcing
/// a backend) trivially easy to misconfigure without noticing.
inline IndexBackend IndexBackendFromEnvValue(const char* value) {
  if (value == nullptr) return IndexBackend::kKdTree;
  const auto parsed = IndexBackendFromName(value);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "unknown TKDC_INDEX value \"%s\" (allowed: kdtree balltree)\n",
                 value);
    std::abort();
  }
  return *parsed;
}

/// The process-wide default backend: kdtree, unless the TKDC_INDEX
/// environment variable names another (the CI ball-tree lane forces
/// "balltree" this way). Read once and cached; an unrecognized value
/// aborts with the allowed names (see IndexBackendFromEnvValue).
inline IndexBackend DefaultIndexBackend() {
  static const IndexBackend backend =
      IndexBackendFromEnvValue(std::getenv("TKDC_INDEX"));
  return backend;
}

}  // namespace tkdc

#endif  // TKDC_INDEX_INDEX_BACKEND_H_
