#ifndef TKDC_INDEX_SPATIAL_INDEX_H_
#define TKDC_INDEX_SPATIAL_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/simd.h"
#include "data/dataset.h"
#include "index/bounding_box.h"
#include "index/index_backend.h"
#include "index/split_rule.h"

namespace tkdc {

/// Build-time options shared by every index backend.
struct IndexOptions {
  /// Maximum points in a leaf before splitting stops.
  size_t leaf_size = 32;
  /// Split-position rule; the paper's tKDC default is the trimmed midpoint.
  SplitRule split_rule = SplitRule::kTrimmedMidpoint;
  /// Split-axis rule; the paper cycles through dimensions per level.
  SplitAxisRule axis_rule = SplitAxisRule::kCycle;
  /// Backend selected by the BuildIndex factory; concrete constructors
  /// ignore it.
  IndexBackend backend = IndexBackend::kKdTree;
  /// Per-axis metric for the ball tree's centroid/radius geometry (the
  /// kernel's inverse bandwidths, so radii live in the space queries
  /// measure distances in). Empty means the unit metric. The k-d tree
  /// ignores it — boxes are axis-aligned in raw coordinates and scaled at
  /// query time.
  std::vector<double> scale;
};

/// Legacy name from when the k-d tree was the only backend.
using KdTreeOptions = IndexOptions;

/// One node of a spatial index. Nodes are stored in a flat vector; children
/// are referenced by index (-1 marks a leaf). Every node knows its point
/// range [begin, end) in the index's reordered point array — the
/// multi-resolution structure of paper Figure 3. Geometry (box or
/// centroid/radius) lives in the backend, keyed by node index.
struct IndexNode {
  size_t begin = 0;
  size_t end = 0;
  int32_t left = -1;
  int32_t right = -1;
  uint8_t split_axis = 0;

  bool is_leaf() const { return left < 0; }
  size_t count() const { return end - begin; }
};

/// Common interface of the spatial-index backends (k-d tree, ball tree):
/// a static binary tree over a dataset whose points are copied and
/// reordered into a contiguous array (leaf scans stay cache-friendly;
/// OriginalIndex() maps back to dataset row ids), plus per-node min/max
/// scaled-distance bounds — the only geometric primitive the traversals
/// need. The layout (flat node vector, contiguous per-node point ranges,
/// one reordering permutation) is shared across backends; how a node's
/// range is partitioned into children is a backend hook, so the k-d tree
/// splits on axis-aligned planes while the ball tree splits metrically
/// along the direction its points actually spread.
///
/// Generic traversals (range collection, k-nearest, depth scan) are
/// implemented once against the virtual bounds. The tKDC bound evaluator
/// (tkdc/density_bounds.h) drives its own traversal through the same
/// primitives.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  SpatialIndex(const SpatialIndex&) = delete;
  SpatialIndex& operator=(const SpatialIndex&) = delete;

  size_t size() const { return size_; }
  size_t dims() const { return dims_; }
  const IndexOptions& options() const { return options_; }

  size_t num_nodes() const { return nodes_.size(); }
  const IndexNode& node(size_t i) const { return nodes_[i]; }
  static constexpr size_t kRoot = 0;
  const IndexNode& root() const { return nodes_[kRoot]; }

  /// Which backend implements this index.
  virtual IndexBackend backend() const = 0;

  /// Coordinates of reordered point `i` (0 <= i < size()).
  std::span<const double> Point(size_t i) const {
    return {points_.data() + i * dims_, dims_};
  }

  /// Dataset row id of reordered point `i`.
  size_t OriginalIndex(size_t i) const { return original_index_[i]; }

  /// Reconstructs the indexed dataset in its *original* row order by
  /// inverting the reordering permutation. The streaming rebuild path uses
  /// this as the base half of base ∪ overlay, so a rebuilt model trains on
  /// the same row order as the original and stays bit-comparable to a
  /// from-scratch retrain.
  Dataset ExportPoints() const;

  /// SoA view of one leaf's points: `dims()` per-dimension arrays of
  /// `padded` doubles each (`block[j * padded + k]` is coordinate j of the
  /// leaf's k-th point). `padded` rounds `count` up to
  /// kSimdBlockWidth; padding lanes hold +infinity so their scaled
  /// distance is +inf and their kernel contribution exactly +0.0 (see
  /// common/simd.h). The blocks mirror the reordered point array — same
  /// points, same order — and are rebuilt from it on model load, never
  /// serialized.
  struct SoaLeaf {
    const double* block;
    size_t padded;
    size_t count;
  };

  /// SoA block of leaf node `node_index` (must be a leaf).
  SoaLeaf LeafSoa(size_t node_index) const {
    const IndexNode& n = nodes_[node_index];
    return {soa_points_.data() + soa_offsets_[node_index],
            SimdPaddedCount(n.count()), n.count()};
  }

  /// Number of leaves / total doubles in the SoA mirror (diagnostics and
  /// the model-format v4 layout descriptor).
  size_t num_soa_leaves() const { return soa_leaf_count_; }
  size_t num_soa_doubles() const { return soa_points_.size(); }

  /// Largest padded leaf count — the scratch size a caller of
  /// LeafScaledSquaredDistances needs.
  size_t max_soa_padded() const { return max_soa_padded_; }

  /// Scaled squared distances from `x` to every point of leaf
  /// `node_index`, written to out[0 .. padded): out[k] corresponds to
  /// reordered point node.begin + k, padding lanes get +inf. Dispatches to
  /// the active SIMD backend; every backend reproduces the scalar
  /// recurrence bit-for-bit (common/simd.h contract).
  void LeafScaledSquaredDistances(size_t node_index, std::span<const double> x,
                                  std::span<const double> inv_bw,
                                  double* out) const;

  /// Smallest possible *scaled* squared distance (per-axis multiplication
  /// by `inv_bw`) from `x` to any point of node `node_index` (0 when the
  /// node's region contains x). A certified lower bound: no point of the
  /// node is closer.
  virtual double NodeMinScaledSquaredDistance(
      size_t node_index, std::span<const double> x,
      std::span<const double> inv_bw) const = 0;

  /// Certified bounds [z_min, z_max] on the scaled squared distance from
  /// `x` to every point of node `node_index` — the Eq. 6 interval the bound
  /// evaluator turns into kernel contribution bounds. One call computes
  /// both ends (the ball tree amortizes its centroid distance).
  virtual void NodeScaledSquaredDistanceBounds(size_t node_index,
                                               std::span<const double> x,
                                               std::span<const double> inv_bw,
                                               double* z_min,
                                               double* z_max) const = 0;

  /// Box-query variant: bounds valid for *every* query point inside
  /// `query_box` simultaneously (the dual-tree building block).
  virtual void NodeScaledSquaredDistanceBoundsToBox(
      size_t node_index, const BoundingBox& query_box,
      std::span<const double> inv_bw, double* z_min, double* z_max) const = 0;

  /// Eq. 6 bounds for *both children* of internal node `node_index` in one
  /// call: out = {left z_min, left z_max, right z_min, right z_max}. The
  /// best-first traversal always expands both children together, so
  /// backends override this with one vectorized pass sharing the per-axis
  /// query loads; results are bit-identical to two
  /// NodeScaledSquaredDistanceBounds calls (common/simd.h contract), which
  /// is also the default implementation.
  virtual void NodeChildrenScaledSquaredDistanceBounds(
      size_t node_index, std::span<const double> x,
      std::span<const double> inv_bw, double out[4]) const;

  /// Appends to `out` the reordered indices of all points whose scaled
  /// squared distance to `x` is <= `radius_sq`. Used by the rkde
  /// baseline's range queries. Returns the number of point-distance
  /// computations performed (for cost accounting).
  uint64_t CollectWithinScaledRadius(std::span<const double> x,
                                     std::span<const double> inv_bw,
                                     double radius_sq,
                                     std::vector<size_t>* out) const;

  /// Finds the `k` nearest points to `x` under the scaled metric. Fills
  /// `out` with (scaled squared distance, reordered point index) pairs
  /// sorted ascending. Returns the number of distance computations
  /// performed. k is clamped to size().
  uint64_t KNearestScaled(std::span<const double> x,
                          std::span<const double> inv_bw, size_t k,
                          std::vector<std::pair<double, size_t>>* out) const;

  /// Depth of the deepest leaf (root = depth 0). For diagnostics.
  size_t MaxDepth() const;

 protected:
  /// Copies and prepares the points; derived constructors then call
  /// BuildTree() to grow the shared topology. CHECKs the build options
  /// (non-empty data, leaf_size >= 1) so misconfiguration fails loudly at
  /// construction, not mid-traversal.
  SpatialIndex(const Dataset& data, IndexOptions options);

  /// Restore path (model_io): adopts an already-validated topology over
  /// already-reordered points. The caller (the model reader) is
  /// responsible for structural validation.
  SpatialIndex(size_t dims, std::vector<double> reordered_points,
               std::vector<size_t> original_index,
               std::vector<IndexNode> nodes, IndexOptions options);

  /// Grows the tree: top-down partitioning via the PartitionNode hook.
  /// Invokes SetNodeGeometry(i, box) exactly once per node, with the
  /// node's tight bounding box, before that node is split (so the hook can
  /// use the node's own geometry to choose the partition). The
  /// split-coordinate scratch buffer lives only for the duration of this
  /// call — build-only state is freed before the first query. Called from
  /// derived constructors (after which the derived vtable part is active).
  void BuildTree();

  /// Backend hook: record the geometry of node `node_index`, whose point
  /// range is final. `box` is the tight bounding box of the node's points
  /// (the k-d tree stores it; the ball tree derives its centroid/radius
  /// from the same point range and drops the box).
  virtual void SetNodeGeometry(size_t node_index, const BoundingBox& box) = 0;

  /// Backend hook: partitions node `node_index`'s point range [begin, end)
  /// into children [begin, mid) and [mid, end), reordering rows in place
  /// (use SwapPoints), and returns mid. Returning begin or end refuses the
  /// split and leaves the node an (oversized) leaf — the degenerate-data
  /// escape hatch. Sets *split_axis to the axis recorded on the node (the
  /// k-d tree's split plane; backends that don't split on an axis store
  /// 0). The default implementation is the axis-aligned split driven by
  /// options().split_rule / axis_rule; the ball tree overrides it with a
  /// farthest-pair metric split. `box` is the node's tight bounding box
  /// and `scratch` a reusable build buffer.
  virtual size_t PartitionNode(size_t node_index, size_t depth,
                               const BoundingBox& box,
                               std::vector<double>& scratch,
                               uint8_t* split_axis);

  /// Swaps reordered rows `a` and `b` (coordinates and the
  /// original-index permutation entry). For PartitionNode implementations.
  void SwapPoints(size_t a, size_t b);

  /// Builds the SoA leaf mirror from the reordered points. BuildTree()
  /// calls it once the topology is final; the restore constructor calls it
  /// directly (the mirror is derived state, never serialized). Restore
  /// paths that adopt nodes after base construction must call it again if
  /// they alter topology (none do today).
  void BuildLeafSoa();

  size_t dims_ = 0;
  size_t size_ = 0;
  IndexOptions options_;
  std::vector<double> points_;          // Reordered, row-major.
  std::vector<size_t> original_index_;  // Reordered -> dataset row.
  std::vector<IndexNode> nodes_;

 private:
  static constexpr size_t kNoSoaBlock = static_cast<size_t>(-1);

  std::vector<double> soa_points_;   // Leaf blocks, per-dim contiguous.
  std::vector<size_t> soa_offsets_;  // Node -> block start (leaves only).
  size_t soa_leaf_count_ = 0;
  size_t max_soa_padded_ = 0;

  /// Splits node `node_index` in place (partitioning its point range via
  /// PartitionNode and appending children) unless it is leaf-sized or the
  /// partition refuses. `box` is the node's bounding box; `scratch` is the
  /// reusable build buffer.
  void SplitNode(size_t node_index, size_t depth, const BoundingBox& box,
                 std::vector<double>& scratch);
};

/// Builds the backend selected by `options.backend` over `data`.
std::unique_ptr<const SpatialIndex> BuildIndex(const Dataset& data,
                                               IndexOptions options);

}  // namespace tkdc

#endif  // TKDC_INDEX_SPATIAL_INDEX_H_
