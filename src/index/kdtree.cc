#include "index/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/macros.h"

namespace tkdc {
namespace {

// Swaps rows a and b of a flat row-major array.
void SwapRows(double* points, size_t dims, size_t a, size_t b) {
  if (a == b) return;
  for (size_t j = 0; j < dims; ++j) {
    std::swap(points[a * dims + j], points[b * dims + j]);
  }
}

}  // namespace

struct KdTree::BuildFrame {
  size_t node_index;
  size_t depth;
};

KdTree::KdTree(const Dataset& data, KdTreeOptions options)
    : dims_(data.dims()), size_(data.size()), options_(options) {
  TKDC_CHECK(!data.empty());
  TKDC_CHECK(options_.leaf_size >= 1);
  points_ = data.values();
  original_index_.resize(size_);
  for (size_t i = 0; i < size_; ++i) original_index_[i] = i;

  // Conservative node-count reservation: a binary tree with ceil(n / leaf)
  // leaves has < 4 * n / leaf nodes.
  nodes_.reserve(4 * (size_ / options_.leaf_size + 1));
  KdNode root;
  root.box = BoundingBox::FromPoints(points_.data(), dims_, 0, size_);
  root.begin = 0;
  root.end = size_;
  nodes_.push_back(std::move(root));

  std::vector<BuildFrame> stack;
  stack.push_back({kRoot, 0});
  while (!stack.empty()) {
    const BuildFrame frame = stack.back();
    stack.pop_back();
    Build(frame.node_index, frame.depth);
    const KdNode& node = nodes_[frame.node_index];
    if (!node.is_leaf()) {
      stack.push_back({static_cast<size_t>(node.left), frame.depth + 1});
      stack.push_back({static_cast<size_t>(node.right), frame.depth + 1});
    }
  }
}

void KdTree::Build(size_t node_index, size_t depth) {
  KdNode& node = nodes_[node_index];
  const size_t count = node.count();
  if (count <= options_.leaf_size) return;

  // Choose the split axis: cycle by level, or widest box extent. Either
  // way, fall through to other axes if the chosen one is degenerate
  // (zero extent).
  size_t axis = options_.axis_rule == SplitAxisRule::kCycle
                    ? depth % dims_
                    : node.box.WidestAxis();
  if (node.box.Extent(axis) <= 0.0) {
    axis = node.box.WidestAxis();
    if (node.box.Extent(axis) <= 0.0) return;  // All points identical.
  }

  // Gather this node's coordinates along the axis and compute the split
  // position with the configured rule.
  scratch_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    scratch_[i] = points_[(node.begin + i) * dims_ + axis];
  }
  double split = ComputeSplitPosition(options_.split_rule, scratch_.data(),
                                      count);

  // Partition rows: left gets coord < split. If that is degenerate (all on
  // one side), fall back to the median, then to strict inequality around
  // it, which always separates a non-degenerate axis.
  auto partition_rows = [&](double pivot) {
    size_t left = node.begin;
    size_t right = node.end;
    while (left < right) {
      if (points_[left * dims_ + axis] < pivot) {
        ++left;
      } else {
        --right;
        SwapRows(points_.data(), dims_, left, right);
        std::swap(original_index_[left], original_index_[right]);
      }
    }
    return left;
  };

  size_t mid = partition_rows(split);
  if (mid == node.begin || mid == node.end) {
    const size_t median_rank = count / 2;
    std::nth_element(scratch_.begin(), scratch_.begin() + median_rank,
                     scratch_.end());
    split = scratch_[median_rank];
    mid = partition_rows(split);
    if (mid == node.begin) {
      // All coordinates >= split; move strictly-greater to the right.
      mid = partition_rows(std::nextafter(
          split, std::numeric_limits<double>::infinity()));
    }
    if (mid == node.begin || mid == node.end) return;  // Degenerate axis.
  }

  KdNode left_child;
  left_child.begin = node.begin;
  left_child.end = mid;
  left_child.box =
      BoundingBox::FromPoints(points_.data(), dims_, node.begin, mid);
  KdNode right_child;
  right_child.begin = mid;
  right_child.end = node.end;
  right_child.box =
      BoundingBox::FromPoints(points_.data(), dims_, mid, node.end);

  node.split_axis = static_cast<uint8_t>(axis);
  node.left = static_cast<int32_t>(nodes_.size());
  node.right = static_cast<int32_t>(nodes_.size() + 1);
  nodes_.push_back(std::move(left_child));
  nodes_.push_back(std::move(right_child));
}

uint64_t KdTree::CollectWithinScaledRadius(std::span<const double> x,
                                           std::span<const double> inv_bw,
                                           double radius_sq,
                                           std::vector<size_t>* out) const {
  TKDC_CHECK(out != nullptr);
  TKDC_CHECK(x.size() == dims_ && inv_bw.size() == dims_);
  uint64_t distance_computations = 0;
  std::vector<size_t> stack{kRoot};
  while (!stack.empty()) {
    const KdNode& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.box.MinScaledSquaredDistance(x, inv_bw) > radius_sq) continue;
    if (node.box.MaxScaledSquaredDistance(x, inv_bw) <= radius_sq) {
      // Whole box inside the ball: take every point without distance tests.
      for (size_t i = node.begin; i < node.end; ++i) out->push_back(i);
      continue;
    }
    if (node.is_leaf()) {
      for (size_t i = node.begin; i < node.end; ++i) {
        double z = 0.0;
        const double* p = points_.data() + i * dims_;
        for (size_t j = 0; j < dims_; ++j) {
          const double u = (x[j] - p[j]) * inv_bw[j];
          z += u * u;
        }
        ++distance_computations;
        if (z <= radius_sq) out->push_back(i);
      }
    } else {
      stack.push_back(static_cast<size_t>(node.left));
      stack.push_back(static_cast<size_t>(node.right));
    }
  }
  return distance_computations;
}

uint64_t KdTree::KNearestScaled(
    std::span<const double> x, std::span<const double> inv_bw, size_t k,
    std::vector<std::pair<double, size_t>>* out) const {
  TKDC_CHECK(out != nullptr);
  TKDC_CHECK(x.size() == dims_ && inv_bw.size() == dims_);
  if (k > size_) k = size_;
  out->clear();
  if (k == 0) return 0;

  // Max-heap of the current k best (worst on top).
  std::vector<std::pair<double, size_t>>& best = *out;
  uint64_t distance_computations = 0;

  // Best-first traversal: a min-heap of (node min-distance, node index)
  // visits the most promising subtree next and prunes any node farther
  // than the current k-th best.
  using NodeEntry = std::pair<double, size_t>;
  std::vector<NodeEntry> frontier;
  auto push_node = [&](size_t node_index) {
    frontier.emplace_back(
        -nodes_[node_index].box.MinScaledSquaredDistance(x, inv_bw),
        node_index);
    std::push_heap(frontier.begin(), frontier.end());
  };
  push_node(kRoot);
  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end());
    const auto [neg_min_dist, node_index] = frontier.back();
    frontier.pop_back();
    if (best.size() == k && -neg_min_dist > best.front().first) break;
    const KdNode& node = nodes_[node_index];
    if (node.is_leaf()) {
      for (size_t i = node.begin; i < node.end; ++i) {
        double z = 0.0;
        const double* p = points_.data() + i * dims_;
        for (size_t j = 0; j < dims_; ++j) {
          const double u = (x[j] - p[j]) * inv_bw[j];
          z += u * u;
        }
        ++distance_computations;
        if (best.size() < k) {
          best.emplace_back(z, i);
          std::push_heap(best.begin(), best.end());
        } else if (z < best.front().first) {
          std::pop_heap(best.begin(), best.end());
          best.back() = {z, i};
          std::push_heap(best.begin(), best.end());
        }
      }
    } else {
      push_node(static_cast<size_t>(node.left));
      push_node(static_cast<size_t>(node.right));
    }
  }
  std::sort_heap(best.begin(), best.end());
  return distance_computations;
}

size_t KdTree::MaxDepth() const {
  size_t max_depth = 0;
  std::vector<std::pair<size_t, size_t>> stack{{kRoot, 0}};
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    const KdNode& node = nodes_[index];
    if (node.is_leaf()) {
      max_depth = std::max(max_depth, depth);
    } else {
      stack.push_back({static_cast<size_t>(node.left), depth + 1});
      stack.push_back({static_cast<size_t>(node.right), depth + 1});
    }
  }
  return max_depth;
}

}  // namespace tkdc
