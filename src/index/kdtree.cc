#include "index/kdtree.h"

#include <utility>

#include "common/macros.h"

namespace tkdc {

KdTree::KdTree(const Dataset& data, IndexOptions options)
    : SpatialIndex(data, std::move(options)) {
  BuildTree();
}

KdTree::KdTree(size_t dims, std::vector<double> reordered_points,
               std::vector<size_t> original_index,
               std::vector<IndexNode> nodes, std::vector<BoundingBox> boxes,
               IndexOptions options)
    : SpatialIndex(dims, std::move(reordered_points),
                   std::move(original_index), std::move(nodes),
                   std::move(options)),
      boxes_(std::move(boxes)) {
  TKDC_CHECK(boxes_.size() == nodes_.size());
}

}  // namespace tkdc
