#include "linalg/sym_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"

namespace tkdc {

SymmetricMatrix::SymmetricMatrix(size_t n) : n_(n), values_(n * n, 0.0) {
  TKDC_CHECK(n >= 1);
}

void SymmetricMatrix::Set(size_t i, size_t j, double value) {
  TKDC_CHECK(i < n_ && j < n_);
  values_[i * n_ + j] = value;
  values_[j * n_ + i] = value;
}

SymmetricMatrix Covariance(const Dataset& data) {
  TKDC_CHECK(data.size() >= 2);
  const size_t d = data.dims();
  const size_t n = data.size();
  const std::vector<double> means = data.ColumnMeans();
  SymmetricMatrix cov(d);
  std::vector<double> acc(d * d, 0.0);
  std::vector<double> centered(d);
  for (size_t i = 0; i < n; ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < d; ++j) centered[j] = row[j] - means[j];
    for (size_t a = 0; a < d; ++a) {
      const double ca = centered[a];
      for (size_t b = a; b < d; ++b) acc[a * d + b] += ca * centered[b];
    }
  }
  const double denom = static_cast<double>(n - 1);
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) cov.Set(a, b, acc[a * d + b] / denom);
  }
  return cov;
}

EigenDecomposition JacobiEigenDecomposition(const SymmetricMatrix& matrix,
                                            int max_sweeps) {
  const size_t n = matrix.n();
  std::vector<double> a = matrix.values();      // Working copy.
  std::vector<double> v(n * n, 0.0);            // Accumulated rotations.
  for (size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off_diagonal_norm = [&]() {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) sum += a[i * n + j] * a[i * n + j];
    }
    return std::sqrt(sum);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() < 1e-14) break;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        // Classic Jacobi rotation that annihilates a[p][q].
        const double theta = (aqq - app) / (2.0 * apq);
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Extract and sort by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return a[x * n + x] > a[y * n + y];
  });
  EigenDecomposition result;
  result.n = n;
  result.eigenvalues.resize(n);
  result.eigenvectors.resize(n * n);
  for (size_t k = 0; k < n; ++k) {
    const size_t src = order[k];
    result.eigenvalues[k] = a[src * n + src];
    // Column `src` of v is the eigenvector; store it as row k.
    for (size_t i = 0; i < n; ++i) {
      result.eigenvectors[k * n + i] = v[i * n + src];
    }
  }
  return result;
}

}  // namespace tkdc
