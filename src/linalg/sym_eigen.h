#ifndef TKDC_LINALG_SYM_EIGEN_H_
#define TKDC_LINALG_SYM_EIGEN_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace tkdc {

/// Dense symmetric matrix stored row-major (full storage for simplicity).
class SymmetricMatrix {
 public:
  /// Creates an n x n zero matrix.
  explicit SymmetricMatrix(size_t n);

  size_t n() const { return n_; }
  double At(size_t i, size_t j) const { return values_[i * n_ + j]; }

  /// Sets both (i, j) and (j, i).
  void Set(size_t i, size_t j, double value);

  const std::vector<double>& values() const { return values_; }

 private:
  size_t n_;
  std::vector<double> values_;
};

/// Sample covariance matrix of `data` (n - 1 denominator). Requires
/// data.size() >= 2.
SymmetricMatrix Covariance(const Dataset& data);

/// Eigen-decomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in descending order.
  std::vector<double> eigenvalues;
  /// Row k of this row-major n x n matrix is the unit eigenvector for
  /// eigenvalues[k].
  std::vector<double> eigenvectors;
  size_t n = 0;
};

/// Cyclic Jacobi rotation eigensolver for symmetric matrices. Converges to
/// machine precision for the moderate sizes used here (d <= ~1000).
/// `max_sweeps` bounds the number of full cyclic sweeps.
EigenDecomposition JacobiEigenDecomposition(const SymmetricMatrix& matrix,
                                            int max_sweeps = 100);

}  // namespace tkdc

#endif  // TKDC_LINALG_SYM_EIGEN_H_
