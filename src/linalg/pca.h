#ifndef TKDC_LINALG_PCA_H_
#define TKDC_LINALG_PCA_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace tkdc {

/// Principal component analysis fitted on a dataset. Used by the
/// mnist-style dimension-sweep experiments (paper Figure 14), which reduce
/// 784-dimensional data to k dimensions before classifying.
class Pca {
 public:
  /// Fits PCA on `data` (covariance eigen-decomposition via Jacobi).
  /// Requires data.size() >= 2.
  explicit Pca(const Dataset& data);

  /// Input dimensionality.
  size_t input_dims() const { return means_.size(); }

  /// Eigenvalues of the covariance matrix, descending (the variance
  /// explained by each component).
  const std::vector<double>& explained_variance() const {
    return eigenvalues_;
  }

  /// Fraction of total variance captured by the top `k` components.
  double ExplainedVarianceRatio(size_t k) const;

  /// Projects `data` (same input dims) onto the top `k` principal
  /// components. Requires 1 <= k <= input_dims().
  Dataset Transform(const Dataset& data, size_t k) const;

 private:
  std::vector<double> means_;
  std::vector<double> eigenvalues_;
  std::vector<double> components_;  // Row-major, row k = k-th component.
};

}  // namespace tkdc

#endif  // TKDC_LINALG_PCA_H_
