#include "linalg/pca.h"

#include "common/macros.h"
#include "linalg/sym_eigen.h"

namespace tkdc {

Pca::Pca(const Dataset& data) {
  TKDC_CHECK(data.size() >= 2);
  means_ = data.ColumnMeans();
  const SymmetricMatrix cov = Covariance(data);
  EigenDecomposition eig = JacobiEigenDecomposition(cov);
  eigenvalues_ = std::move(eig.eigenvalues);
  components_ = std::move(eig.eigenvectors);
}

double Pca::ExplainedVarianceRatio(size_t k) const {
  TKDC_CHECK(k >= 1 && k <= eigenvalues_.size());
  double top = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < eigenvalues_.size(); ++i) {
    // Covariances of real data are PSD; clamp tiny negative round-off.
    const double ev = eigenvalues_[i] > 0.0 ? eigenvalues_[i] : 0.0;
    total += ev;
    if (i < k) top += ev;
  }
  return total == 0.0 ? 0.0 : top / total;
}

Dataset Pca::Transform(const Dataset& data, size_t k) const {
  const size_t d = input_dims();
  TKDC_CHECK(data.dims() == d);
  TKDC_CHECK(k >= 1 && k <= d);
  Dataset out(k);
  out.Reserve(data.size());
  std::vector<double> centered(d);
  std::vector<double> projected(k);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < d; ++j) centered[j] = row[j] - means_[j];
    for (size_t c = 0; c < k; ++c) {
      const double* comp = components_.data() + c * d;
      double dot = 0.0;
      for (size_t j = 0; j < d; ++j) dot += comp[j] * centered[j];
      projected[c] = dot;
    }
    out.AppendRow(projected);
  }
  return out;
}

}  // namespace tkdc
