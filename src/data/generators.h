#ifndef TKDC_DATA_GENERATORS_H_
#define TKDC_DATA_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace tkdc {

/// One component of an axis-aligned mixture model. With `student_t_df == 0`
/// the component is Gaussian; otherwise samples are multivariate
/// student-t-like (a Gaussian scaled by an inverse-chi deviate), giving the
/// heavy tails used by the hep-style proxy dataset.
struct MixtureComponent {
  /// Relative (unnormalized) mixing weight. Must be > 0.
  double weight = 1.0;
  /// Component mean; defines the dimensionality.
  std::vector<double> mean;
  /// Per-axis standard deviations; same length as `mean`, all > 0.
  std::vector<double> scales;
  /// Degrees of freedom for heavy tails. 0 means Gaussian.
  double student_t_df = 0.0;
};

/// Axis-aligned mixture distribution: a weighted sum of MixtureComponents.
/// Supports sampling and (for all-Gaussian mixtures) exact density
/// evaluation, which the test suite uses as analytic ground truth.
class Mixture {
 public:
  /// Builds a mixture; weights are normalized to sum to 1. All components
  /// must share a dimensionality, and there must be at least one.
  explicit Mixture(std::vector<MixtureComponent> components);

  size_t dims() const { return dims_; }
  const std::vector<MixtureComponent>& components() const {
    return components_;
  }

  /// Draws `n` i.i.d. points.
  Dataset Sample(size_t n, Rng& rng) const;

  /// Exact probability density at `x`. Only valid when every component is
  /// Gaussian (student_t_df == 0); CHECK-fails otherwise.
  double Pdf(std::span<const double> x) const;

 private:
  size_t dims_;
  std::vector<MixtureComponent> components_;
  std::vector<double> cumulative_weights_;
};

/// n points from the standard multivariate normal in `dims` dimensions
/// (the paper's `gauss` dataset).
Dataset SampleStandardGaussian(size_t n, size_t dims, Rng& rng);

/// n points uniform over the box [lo, hi]^dims.
Dataset SampleUniformBox(size_t n, size_t dims, double lo, double hi,
                         Rng& rng);

/// A randomly-placed k-component Gaussian mixture in `dims` dimensions.
/// Component means are uniform in [-spread, spread]^dims and per-axis scales
/// uniform in [scale_lo, scale_hi]. Deterministic given `rng` state.
Mixture RandomGaussianMixture(size_t dims, size_t k, double spread,
                              double scale_lo, double scale_hi, Rng& rng);

/// n points that concentrate near a `latent_dims`-dimensional linear
/// subspace of R^dims: a k-component latent mixture pushed through a random
/// linear map, plus isotropic observation noise. Proxy for image-descriptor
/// datasets (sift, mnist) whose mass lies near a low-dimensional manifold.
Dataset SampleLowRankMixture(size_t n, size_t dims, size_t latent_dims,
                             size_t k, double noise, Rng& rng);

/// n points forming a few dominant modes connected by low-density filaments
/// (points jittered along the segments between mode centers). Proxy for the
/// shuttle dataset of Figure 1, whose outliers live in inter-cluster
/// filaments. `filament_fraction` in [0, 1] is the mass on the filaments;
/// only the first `informative_dims` coordinates carry structure, the rest
/// are small-noise.
Dataset SampleFilamentClusters(size_t n, size_t dims, size_t num_modes,
                               size_t informative_dims,
                               double filament_fraction, Rng& rng);

/// n points from a `dims`-dimensional mixture whose per-axis scales decay as
/// 1 / (1 + j)^decay, mimicking the fast-falling PCA spectrum of image data
/// (mnist proxy for the Figure 14 dimension sweep).
Dataset SampleDecayingSpectrumMixture(size_t n, size_t dims, size_t k,
                                      double decay, Rng& rng);

}  // namespace tkdc

#endif  // TKDC_DATA_GENERATORS_H_
