#ifndef TKDC_DATA_DATASETS_H_
#define TKDC_DATA_DATASETS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace tkdc {

/// The seven evaluation datasets of the paper (Table 3), reproduced as
/// deterministic synthetic proxies (see DESIGN.md section 4 for the
/// substitution rationale).
enum class DatasetId {
  kGauss,    ///< 2-d standard multivariate normal (exact match to paper).
  kTmy3,     ///< 8-d multi-modal mixture + uniform background (energy loads).
  kHome,     ///< 10-d few-regime correlated mixture (gas sensors).
  kHep,      ///< 27-d heavy-tailed mixture (particle collisions).
  kSift,     ///< 128-d low-rank mixture (image descriptors).
  kMnist,    ///< 784-d decaying-spectrum mixture (digit images).
  kShuttle,  ///< 9-d modes + filaments (space shuttle sensors, Figure 1).
};

/// Registry metadata for one dataset.
struct DatasetSpec {
  DatasetId id;
  std::string name;
  /// Dimensionality matching Table 3 of the paper.
  size_t dims;
  /// Paper's row count (for reference; generation defaults are smaller).
  size_t paper_n;
  /// Laptop-scale default row count used by benches when --scale=1.
  size_t default_n;
  std::string description;
};

/// All dataset specs in Table 3 order.
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// Spec lookup by id.
const DatasetSpec& GetDatasetSpec(DatasetId id);

/// Case-sensitive name lookup ("gauss", "tmy3", ...).
std::optional<DatasetId> DatasetIdFromName(const std::string& name);

/// Generates `n` rows of dataset `id` at its Table 3 dimensionality,
/// deterministically from `seed`. The same (id, n, seed) always produces the
/// same bytes.
Dataset MakeDataset(DatasetId id, size_t n, uint64_t seed);

/// Generates `n` rows with a dimensionality override (for the dimension
/// sweeps of Figures 11 and 14). `dims` must be >= 1. For datasets whose
/// structure is tied to the spec dimensionality, extra dims are generated
/// and then truncated, matching the paper's "first k features" protocol.
Dataset MakeDataset(DatasetId id, size_t n, size_t dims, uint64_t seed);

}  // namespace tkdc

#endif  // TKDC_DATA_DATASETS_H_
