#ifndef TKDC_DATA_DATASET_H_
#define TKDC_DATA_DATASET_H_

#include <cstddef>
#include <span>
#include <vector>

namespace tkdc {

/// In-memory, row-major collection of d-dimensional points. This is the data
/// substrate every algorithm in the library trains on and queries against.
/// Rows are contiguous, so Row(i) is a zero-copy span over `dims()` doubles.
class Dataset {
 public:
  /// Creates an empty dataset of `dims`-dimensional points. `dims` >= 1.
  explicit Dataset(size_t dims);

  /// Creates a dataset by taking ownership of `values`, which must contain
  /// rows * dims doubles in row-major order.
  Dataset(size_t dims, std::vector<double> values);

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  size_t size() const { return values_.size() / dims_; }
  size_t dims() const { return dims_; }
  bool empty() const { return values_.empty(); }

  /// Read-only view over row `i`.
  std::span<const double> Row(size_t i) const {
    return {values_.data() + i * dims_, dims_};
  }

  /// Mutable view over row `i`.
  std::span<double> MutableRow(size_t i) {
    return {values_.data() + i * dims_, dims_};
  }

  double At(size_t row, size_t col) const { return values_[row * dims_ + col]; }
  double& At(size_t row, size_t col) { return values_[row * dims_ + col]; }

  /// Appends one row. `row.size()` must equal dims().
  void AppendRow(std::span<const double> row);

  /// Reserves capacity for `rows` rows.
  void Reserve(size_t rows);

  /// Raw row-major storage.
  const std::vector<double>& values() const { return values_; }

  /// Per-column arithmetic means. Requires a non-empty dataset.
  std::vector<double> ColumnMeans() const;

  /// Per-column sample standard deviations (n - 1 denominator). Columns with
  /// zero variance report 0. Requires size() >= 2.
  std::vector<double> ColumnStdDevs() const;

  /// New dataset containing the given rows, in order. Indices must be valid.
  Dataset SelectRows(const std::vector<size_t>& indices) const;

  /// New dataset with the first `rows` rows.
  Dataset Head(size_t rows) const;

  /// New dataset keeping only the first `keep_dims` coordinates of each row
  /// (the paper's "first 64 features of sift" style dimension truncation).
  Dataset TruncateDims(size_t keep_dims) const;

  /// New dataset with each column shifted/scaled to zero mean, unit sample
  /// standard deviation (columns with zero variance are only centered).
  Dataset Standardized() const;

 private:
  size_t dims_;
  std::vector<double> values_;
};

}  // namespace tkdc

#endif  // TKDC_DATA_DATASET_H_
