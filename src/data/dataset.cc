#include "data/dataset.h"

#include <cmath>

#include "common/macros.h"

namespace tkdc {

Dataset::Dataset(size_t dims) : dims_(dims) { TKDC_CHECK(dims >= 1); }

Dataset::Dataset(size_t dims, std::vector<double> values)
    : dims_(dims), values_(std::move(values)) {
  TKDC_CHECK(dims >= 1);
  TKDC_CHECK(values_.size() % dims == 0);
}

void Dataset::AppendRow(std::span<const double> row) {
  TKDC_CHECK(row.size() == dims_);
  values_.insert(values_.end(), row.begin(), row.end());
}

void Dataset::Reserve(size_t rows) { values_.reserve(rows * dims_); }

std::vector<double> Dataset::ColumnMeans() const {
  TKDC_CHECK(!empty());
  std::vector<double> means(dims_, 0.0);
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    const double* row = values_.data() + i * dims_;
    for (size_t j = 0; j < dims_; ++j) means[j] += row[j];
  }
  for (double& m : means) m /= static_cast<double>(n);
  return means;
}

std::vector<double> Dataset::ColumnStdDevs() const {
  TKDC_CHECK(size() >= 2);
  const std::vector<double> means = ColumnMeans();
  std::vector<double> sum_sq(dims_, 0.0);
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    const double* row = values_.data() + i * dims_;
    for (size_t j = 0; j < dims_; ++j) {
      const double delta = row[j] - means[j];
      sum_sq[j] += delta * delta;
    }
  }
  std::vector<double> stds(dims_);
  for (size_t j = 0; j < dims_; ++j) {
    stds[j] = std::sqrt(sum_sq[j] / static_cast<double>(n - 1));
  }
  return stds;
}

Dataset Dataset::SelectRows(const std::vector<size_t>& indices) const {
  Dataset out(dims_);
  out.Reserve(indices.size());
  for (size_t idx : indices) {
    TKDC_CHECK(idx < size());
    out.AppendRow(Row(idx));
  }
  return out;
}

Dataset Dataset::Head(size_t rows) const {
  TKDC_CHECK(rows <= size());
  return Dataset(dims_, std::vector<double>(values_.begin(),
                                            values_.begin() + rows * dims_));
}

Dataset Dataset::TruncateDims(size_t keep_dims) const {
  TKDC_CHECK(keep_dims >= 1 && keep_dims <= dims_);
  if (keep_dims == dims_) return *this;
  Dataset out(keep_dims);
  out.Reserve(size());
  for (size_t i = 0; i < size(); ++i) {
    out.AppendRow(Row(i).first(keep_dims));
  }
  return out;
}

Dataset Dataset::Standardized() const {
  TKDC_CHECK(size() >= 2);
  const std::vector<double> means = ColumnMeans();
  std::vector<double> stds = ColumnStdDevs();
  for (double& s : stds) {
    if (s == 0.0) s = 1.0;
  }
  Dataset out(dims_);
  out.Reserve(size());
  std::vector<double> row(dims_);
  for (size_t i = 0; i < size(); ++i) {
    const auto src = Row(i);
    for (size_t j = 0; j < dims_; ++j) row[j] = (src[j] - means[j]) / stds[j];
    out.AppendRow(row);
  }
  return out;
}

}  // namespace tkdc
