#include "data/csv.h"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/macros.h"

namespace tkdc {
namespace {

// Splits `line` on commas, trimming surrounding whitespace from each field.
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t comma = line.find(',', start);
    std::string field = comma == std::string::npos
                            ? line.substr(start)
                            : line.substr(start, comma - start);
    size_t first = field.find_first_not_of(" \t\r");
    size_t last = field.find_last_not_of(" \t\r");
    fields.push_back(first == std::string::npos
                         ? std::string()
                         : field.substr(first, last - first + 1));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return fields;
}

bool ParseDouble(const std::string& field, double* out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

std::optional<CsvTable> ReadCsv(const std::string& path, bool has_header,
                                std::string* error) {
  TKDC_CHECK(error != nullptr);
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string line;
  std::vector<std::string> column_names;
  size_t dims = 0;
  size_t line_number = 0;
  std::vector<double> values;
  std::vector<double> row;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    std::vector<std::string> fields = SplitFields(line);
    if (has_header && column_names.empty() && dims == 0) {
      column_names = std::move(fields);
      dims = column_names.size();
      continue;
    }
    if (dims == 0) dims = fields.size();
    if (fields.size() != dims) {
      std::ostringstream msg;
      msg << path << ":" << line_number << ": expected " << dims
          << " fields, got " << fields.size();
      *error = msg.str();
      return std::nullopt;
    }
    row.clear();
    for (const std::string& field : fields) {
      double v = 0.0;
      if (!ParseDouble(field, &v)) {
        std::ostringstream msg;
        msg << path << ":" << line_number << ": non-numeric field '" << field
            << "'";
        *error = msg.str();
        return std::nullopt;
      }
      row.push_back(v);
    }
    values.insert(values.end(), row.begin(), row.end());
  }
  if (dims == 0) {
    *error = path + ": empty file";
    return std::nullopt;
  }
  CsvTable table{Dataset(dims, std::move(values)), std::move(column_names)};
  return table;
}

std::optional<LabeledCsvTable> ReadLabeledCsv(const std::string& path,
                                              bool has_header,
                                              std::string* error) {
  TKDC_CHECK(error != nullptr);
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string line;
  std::vector<std::string> column_names;
  size_t columns = 0;  // Features + the trailing label column.
  size_t line_number = 0;
  std::vector<double> values;
  std::vector<std::string> labels;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    std::vector<std::string> fields = SplitFields(line);
    if (has_header && column_names.empty() && columns == 0) {
      column_names = std::move(fields);
      columns = column_names.size();
      continue;
    }
    if (columns == 0) columns = fields.size();
    if (columns < 2) {
      std::ostringstream msg;
      msg << path << ":" << line_number
          << ": labeled CSV needs at least one feature column plus the "
             "label column, got "
          << columns;
      *error = msg.str();
      return std::nullopt;
    }
    if (fields.size() != columns) {
      std::ostringstream msg;
      msg << path << ":" << line_number << ": expected " << columns
          << " fields, got " << fields.size();
      *error = msg.str();
      return std::nullopt;
    }
    for (size_t j = 0; j + 1 < fields.size(); ++j) {
      double v = 0.0;
      if (!ParseDouble(fields[j], &v)) {
        std::ostringstream msg;
        msg << path << ":" << line_number << ": non-numeric field '"
            << fields[j] << "'";
        *error = msg.str();
        return std::nullopt;
      }
      values.push_back(v);
    }
    if (fields.back().empty()) {
      std::ostringstream msg;
      msg << path << ":" << line_number << ": empty class label";
      *error = msg.str();
      return std::nullopt;
    }
    labels.push_back(std::move(fields.back()));
  }
  if (columns == 0) {
    *error = path + ": empty file";
    return std::nullopt;
  }
  if (labels.empty()) {
    *error = path + ": no data rows";
    return std::nullopt;
  }
  LabeledCsvTable table{Dataset(columns - 1, std::move(values)),
                        std::move(labels), std::move(column_names)};
  return table;
}

bool WriteCsv(const std::string& path, const Dataset& data,
              const std::vector<std::string>& column_names,
              std::string* error) {
  TKDC_CHECK(error != nullptr);
  if (!column_names.empty() && column_names.size() != data.dims()) {
    *error = "column_names size does not match data dims";
    return false;
  }
  std::ofstream out(path);
  if (!out) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  if (!column_names.empty()) {
    for (size_t j = 0; j < column_names.size(); ++j) {
      if (j > 0) out << ',';
      out << column_names[j];
    }
    out << '\n';
  }
  out.precision(17);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < row.size(); ++j) {
      if (j > 0) out << ',';
      out << row[j];
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace tkdc
