#ifndef TKDC_DATA_CSV_H_
#define TKDC_DATA_CSV_H_

#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace tkdc {

/// Result of a CSV load: the data plus optional header names.
struct CsvTable {
  Dataset data;
  std::vector<std::string> column_names;
};

/// Reads a comma-separated file of doubles. If `has_header` the first line
/// supplies column names. Blank lines are skipped. Returns std::nullopt and
/// fills `*error` on malformed input (ragged rows, non-numeric cells) or
/// missing file.
std::optional<CsvTable> ReadCsv(const std::string& path, bool has_header,
                                std::string* error);

/// Result of a labeled CSV load: the feature matrix, one class label per
/// row, and optional header names (features first, label column last).
struct LabeledCsvTable {
  Dataset data;
  std::vector<std::string> labels;
  std::vector<std::string> column_names;
};

/// Reads a comma-separated training file whose LAST column is a string
/// class label and whose preceding columns are numeric features (the
/// multi-class trainer's input shape). Requires at least two columns;
/// blank lines are skipped; empty label cells are malformed. Returns
/// std::nullopt and fills `*error` on malformed input or missing file.
std::optional<LabeledCsvTable> ReadLabeledCsv(const std::string& path,
                                              bool has_header,
                                              std::string* error);

/// Writes `data` as CSV with 17 significant digits (round-trip exact). If
/// `column_names` is non-empty it must have data.dims() entries and is
/// written as a header line. Returns false and fills `*error` on I/O failure.
bool WriteCsv(const std::string& path, const Dataset& data,
              const std::vector<std::string>& column_names,
              std::string* error);

}  // namespace tkdc

#endif  // TKDC_DATA_CSV_H_
