#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/macros.h"

namespace tkdc {

Mixture::Mixture(std::vector<MixtureComponent> components)
    : components_(std::move(components)) {
  TKDC_CHECK(!components_.empty());
  dims_ = components_[0].mean.size();
  TKDC_CHECK(dims_ >= 1);
  double total = 0.0;
  for (const MixtureComponent& c : components_) {
    TKDC_CHECK(c.weight > 0.0);
    TKDC_CHECK(c.mean.size() == dims_);
    TKDC_CHECK(c.scales.size() == dims_);
    for (double s : c.scales) TKDC_CHECK(s > 0.0);
    total += c.weight;
  }
  double running = 0.0;
  cumulative_weights_.reserve(components_.size());
  for (const MixtureComponent& c : components_) {
    running += c.weight / total;
    cumulative_weights_.push_back(running);
  }
  cumulative_weights_.back() = 1.0;
}

Dataset Mixture::Sample(size_t n, Rng& rng) const {
  Dataset out(dims_);
  out.Reserve(n);
  std::vector<double> point(dims_);
  for (size_t i = 0; i < n; ++i) {
    const double u = rng.NextDouble();
    const size_t c_idx = static_cast<size_t>(
        std::lower_bound(cumulative_weights_.begin(),
                         cumulative_weights_.end(), u) -
        cumulative_weights_.begin());
    const MixtureComponent& c = components_[c_idx];
    // For student-t-like tails, scale the whole Gaussian draw by
    // sqrt(df / chi2_df): this is exactly the multivariate-t construction.
    double tail_scale = 1.0;
    if (c.student_t_df > 0.0) {
      const int df = static_cast<int>(c.student_t_df);
      double chi2 = 0.0;
      for (int j = 0; j < df; ++j) {
        const double g = rng.NextGaussian();
        chi2 += g * g;
      }
      if (chi2 <= 1e-12) chi2 = 1e-12;
      tail_scale = std::sqrt(c.student_t_df / chi2);
    }
    for (size_t j = 0; j < dims_; ++j) {
      point[j] = c.mean[j] + c.scales[j] * tail_scale * rng.NextGaussian();
    }
    out.AppendRow(point);
  }
  return out;
}

double Mixture::Pdf(std::span<const double> x) const {
  TKDC_CHECK(x.size() == dims_);
  const double log_2pi = std::log(2.0 * std::numbers::pi);
  double density = 0.0;
  double prev_cum = 0.0;
  for (size_t c_idx = 0; c_idx < components_.size(); ++c_idx) {
    const MixtureComponent& c = components_[c_idx];
    TKDC_CHECK_MSG(c.student_t_df == 0.0,
                   "Pdf only supported for Gaussian components");
    double log_density = 0.0;
    for (size_t j = 0; j < dims_; ++j) {
      const double z = (x[j] - c.mean[j]) / c.scales[j];
      log_density += -0.5 * (z * z + log_2pi) - std::log(c.scales[j]);
    }
    const double weight = cumulative_weights_[c_idx] - prev_cum;
    prev_cum = cumulative_weights_[c_idx];
    density += weight * std::exp(log_density);
  }
  return density;
}

Dataset SampleStandardGaussian(size_t n, size_t dims, Rng& rng) {
  TKDC_CHECK(dims >= 1);
  Dataset out(dims);
  out.Reserve(n);
  std::vector<double> point(dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dims; ++j) point[j] = rng.NextGaussian();
    out.AppendRow(point);
  }
  return out;
}

Dataset SampleUniformBox(size_t n, size_t dims, double lo, double hi,
                         Rng& rng) {
  TKDC_CHECK(dims >= 1);
  TKDC_CHECK(lo < hi);
  Dataset out(dims);
  out.Reserve(n);
  std::vector<double> point(dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dims; ++j) point[j] = rng.Uniform(lo, hi);
    out.AppendRow(point);
  }
  return out;
}

Mixture RandomGaussianMixture(size_t dims, size_t k, double spread,
                              double scale_lo, double scale_hi, Rng& rng) {
  TKDC_CHECK(k >= 1);
  TKDC_CHECK(scale_lo > 0.0 && scale_lo <= scale_hi);
  std::vector<MixtureComponent> components;
  components.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    MixtureComponent comp;
    comp.weight = 0.5 + rng.NextDouble();  // Mildly unequal cluster sizes.
    comp.mean.resize(dims);
    comp.scales.resize(dims);
    for (size_t j = 0; j < dims; ++j) {
      comp.mean[j] = rng.Uniform(-spread, spread);
      comp.scales[j] = rng.Uniform(scale_lo, scale_hi);
    }
    components.push_back(std::move(comp));
  }
  return Mixture(std::move(components));
}

Dataset SampleLowRankMixture(size_t n, size_t dims, size_t latent_dims,
                             size_t k, double noise, Rng& rng) {
  TKDC_CHECK(latent_dims >= 1 && latent_dims <= dims);
  TKDC_CHECK(noise >= 0.0);
  const Mixture latent =
      RandomGaussianMixture(latent_dims, k, /*spread=*/4.0,
                            /*scale_lo=*/0.5, /*scale_hi=*/1.5, rng);
  // Random linear map from latent space to observation space, entries
  // N(0, 1/latent_dims) so output coordinates have comparable variance.
  std::vector<double> projection(dims * latent_dims);
  const double proj_scale = 1.0 / std::sqrt(static_cast<double>(latent_dims));
  for (double& w : projection) w = proj_scale * rng.NextGaussian();

  const Dataset latent_points = latent.Sample(n, rng);
  Dataset out(dims);
  out.Reserve(n);
  std::vector<double> point(dims);
  for (size_t i = 0; i < n; ++i) {
    const auto z = latent_points.Row(i);
    for (size_t j = 0; j < dims; ++j) {
      double v = 0.0;
      const double* w_row = projection.data() + j * latent_dims;
      for (size_t l = 0; l < latent_dims; ++l) v += w_row[l] * z[l];
      point[j] = v + noise * rng.NextGaussian();
    }
    out.AppendRow(point);
  }
  return out;
}

Dataset SampleFilamentClusters(size_t n, size_t dims, size_t num_modes,
                               size_t informative_dims,
                               double filament_fraction, Rng& rng) {
  TKDC_CHECK(num_modes >= 2);
  TKDC_CHECK(informative_dims >= 1 && informative_dims <= dims);
  TKDC_CHECK(filament_fraction >= 0.0 && filament_fraction <= 1.0);
  // Mode centers spread out in the informative subspace.
  std::vector<std::vector<double>> centers(num_modes,
                                           std::vector<double>(dims, 0.0));
  for (size_t m = 0; m < num_modes; ++m) {
    for (size_t j = 0; j < informative_dims; ++j) {
      centers[m][j] = rng.Uniform(-8.0, 8.0);
    }
  }
  Dataset out(dims);
  out.Reserve(n);
  std::vector<double> point(dims);
  const double kModeScale = 1.0;
  const double kFilamentScale = 0.15;
  const double kNuisanceScale = 0.05;
  for (size_t i = 0; i < n; ++i) {
    const bool on_filament = rng.NextDouble() < filament_fraction;
    if (on_filament) {
      // Pick a random ordered pair of distinct modes and jitter a point
      // along the connecting segment: this is the low-density filament
      // structure of the shuttle dataset (Figure 1).
      const size_t a = static_cast<size_t>(rng.NextBounded(num_modes));
      size_t b = static_cast<size_t>(rng.NextBounded(num_modes - 1));
      if (b >= a) ++b;
      const double s = rng.NextDouble();
      for (size_t j = 0; j < dims; ++j) {
        const double base = centers[a][j] + s * (centers[b][j] - centers[a][j]);
        const double jitter =
            j < informative_dims ? kFilamentScale : kNuisanceScale;
        point[j] = base + jitter * rng.NextGaussian();
      }
    } else {
      const size_t m = static_cast<size_t>(rng.NextBounded(num_modes));
      for (size_t j = 0; j < dims; ++j) {
        const double scale =
            j < informative_dims ? kModeScale : kNuisanceScale;
        point[j] = centers[m][j] + scale * rng.NextGaussian();
      }
    }
    out.AppendRow(point);
  }
  return out;
}

Dataset SampleDecayingSpectrumMixture(size_t n, size_t dims, size_t k,
                                      double decay, Rng& rng) {
  TKDC_CHECK(k >= 1);
  TKDC_CHECK(decay >= 0.0);
  std::vector<MixtureComponent> components;
  components.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    MixtureComponent comp;
    comp.weight = 1.0;
    comp.mean.resize(dims);
    comp.scales.resize(dims);
    for (size_t j = 0; j < dims; ++j) {
      const double axis_scale =
          1.0 / std::pow(1.0 + static_cast<double>(j), decay);
      comp.mean[j] = 3.0 * axis_scale * rng.NextGaussian();
      comp.scales[j] = axis_scale;
    }
    components.push_back(std::move(comp));
  }
  Mixture mixture(std::move(components));
  return mixture.Sample(n, rng);
}

}  // namespace tkdc
