#include "data/datasets.h"

#include <algorithm>

#include "common/macros.h"
#include "common/rng.h"
#include "data/generators.h"

namespace tkdc {
namespace {

// Mixes the dataset id into the user seed so different datasets built from
// the same seed are independent streams.
uint64_t DatasetSeed(DatasetId id, uint64_t seed) {
  return seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(id) + 1;
}

// tmy3 proxy: 6 anisotropic Gaussian modes (daily/seasonal load clusters)
// plus a thin uniform background.
Dataset MakeTmy3(size_t n, size_t dims, Rng& rng) {
  Mixture modes = RandomGaussianMixture(dims, /*k=*/6, /*spread=*/5.0,
                                        /*scale_lo=*/0.4, /*scale_hi=*/1.6,
                                        rng);
  const size_t background = n / 50;  // 2% diffuse mass.
  Dataset data = modes.Sample(n - background, rng);
  Dataset bg = SampleUniformBox(background, dims, -8.0, 8.0, rng);
  for (size_t i = 0; i < bg.size(); ++i) data.AppendRow(bg.Row(i));
  return data;
}

// home proxy: 4 operating regimes, mildly separated, with per-regime
// anisotropy standing in for sensor drift.
Dataset MakeHome(size_t n, size_t dims, Rng& rng) {
  Mixture modes = RandomGaussianMixture(dims, /*k=*/4, /*spread=*/3.0,
                                        /*scale_lo=*/0.5, /*scale_hi=*/2.0,
                                        rng);
  return modes.Sample(n, rng);
}

// hep proxy: 8 modes in high dimension with student-t tails (df = 4);
// heavy tails enlarge the near-threshold region, the regime the paper's
// Figure 10 exercises.
Dataset MakeHep(size_t n, size_t dims, Rng& rng) {
  std::vector<MixtureComponent> components;
  for (size_t c = 0; c < 8; ++c) {
    MixtureComponent comp;
    comp.weight = 0.5 + rng.NextDouble();
    comp.mean.resize(dims);
    comp.scales.resize(dims);
    for (size_t j = 0; j < dims; ++j) {
      comp.mean[j] = rng.Uniform(-3.0, 3.0);
      comp.scales[j] = rng.Uniform(0.5, 1.5);
    }
    comp.student_t_df = 4.0;
    components.push_back(std::move(comp));
  }
  Mixture mixture(std::move(components));
  return mixture.Sample(n, rng);
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  static const std::vector<DatasetSpec>& specs =
      *new std::vector<DatasetSpec>{
          {DatasetId::kGauss, "gauss", 2, 100'000'000, 200'000,
           "Multivariate Gaussian with zero mean and unit covariance"},
          {DatasetId::kTmy3, "tmy3", 8, 1'820'000, 100'000,
           "Hourly energy load profiles (synthetic proxy: 6-mode mixture + "
           "uniform background)"},
          {DatasetId::kHome, "home", 10, 929'000, 80'000,
           "Home gas sensor measurements (synthetic proxy: 4-regime "
           "mixture)"},
          {DatasetId::kHep, "hep", 27, 10'500'000, 60'000,
           "High-energy particle collision signatures (synthetic proxy: "
           "heavy-tailed 8-mode mixture)"},
          {DatasetId::kSift, "sift", 128, 11'200'000, 20'000,
           "SIFT image features (synthetic proxy: low-rank 16-mode "
           "mixture)"},
          {DatasetId::kMnist, "mnist", 784, 70'000, 10'000,
           "Handwritten digit images (synthetic proxy: 10-mode mixture with "
           "decaying spectrum)"},
          {DatasetId::kShuttle, "shuttle", 9, 43'500, 43'500,
           "Space shuttle flight sensors (synthetic proxy: 3 modes joined "
           "by low-density filaments)"},
      };
  return specs;
}

const DatasetSpec& GetDatasetSpec(DatasetId id) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.id == id) return spec;
  }
  TKDC_CHECK_MSG(false, "unknown dataset id");
  return AllDatasetSpecs().front();  // Unreachable.
}

std::optional<DatasetId> DatasetIdFromName(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.name == name) return spec.id;
  }
  return std::nullopt;
}

Dataset MakeDataset(DatasetId id, size_t n, uint64_t seed) {
  return MakeDataset(id, n, GetDatasetSpec(id).dims, seed);
}

Dataset MakeDataset(DatasetId id, size_t n, size_t dims, uint64_t seed) {
  TKDC_CHECK(n >= 1);
  TKDC_CHECK(dims >= 1);
  Rng rng(DatasetSeed(id, seed));
  switch (id) {
    case DatasetId::kGauss:
      return SampleStandardGaussian(n, dims, rng);
    case DatasetId::kTmy3:
      return MakeTmy3(n, dims, rng);
    case DatasetId::kHome:
      return MakeHome(n, dims, rng);
    case DatasetId::kHep:
      return MakeHep(n, dims, rng);
    case DatasetId::kSift:
      return SampleLowRankMixture(n, dims,
                                  /*latent_dims=*/std::min<size_t>(dims, 12),
                                  /*k=*/16, /*noise=*/0.1, rng);
    case DatasetId::kMnist:
      return SampleDecayingSpectrumMixture(n, dims, /*k=*/10, /*decay=*/0.8,
                                           rng);
    case DatasetId::kShuttle:
      return SampleFilamentClusters(
          n, dims, /*num_modes=*/3,
          /*informative_dims=*/std::min<size_t>(dims, 2),
          /*filament_fraction=*/0.02, rng);
  }
  TKDC_CHECK_MSG(false, "unknown dataset id");
  return Dataset(dims);  // Unreachable.
}

}  // namespace tkdc
