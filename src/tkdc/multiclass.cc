#include "tkdc/multiclass.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/macros.h"
#include "kde/query_metrics.h"

namespace tkdc {
namespace {

// Expansion budget each surviving class receives per round-robin turn.
// Small enough that the cross-class cutoff re-fires between turns (a far
// class dies after a handful of expansions), large enough to amortize the
// turn overhead over the batched child-bound passes.
constexpr int64_t kRoundBudget = 8;

// Priors must be positive, finite, and sum to 1 within this tolerance.
constexpr double kPriorSumTolerance = 1e-6;

Status ValidatePriors(const std::vector<double>& priors, size_t num_classes) {
  if (priors.size() != num_classes) {
    return Errorf() << "expected " << num_classes << " class priors, got "
                    << priors.size();
  }
  double sum = 0.0;
  for (size_t c = 0; c < priors.size(); ++c) {
    if (!std::isfinite(priors[c]) || priors[c] <= 0.0) {
      return Errorf() << "class prior " << c << " must be positive and "
                      << "finite; got " << priors[c];
    }
    sum += priors[c];
  }
  if (std::abs(sum - 1.0) > kPriorSumTolerance) {
    return Errorf() << "class priors must sum to 1; got " << sum;
  }
  return Status::Ok();
}

Status ValidateLabels(const std::vector<std::string>& labels) {
  for (size_t c = 0; c < labels.size(); ++c) {
    if (labels[c].empty()) {
      return Errorf() << "class " << c << " has an empty label";
    }
    for (size_t other = c + 1; other < labels.size(); ++other) {
      if (labels[c] == labels[other]) {
        return Errorf() << "duplicate class label '" << labels[c] << "'";
      }
    }
  }
  return Status::Ok();
}

}  // namespace

MultiClassClassifier::MultiClassClassifier(TkdcConfig config)
    : config_(config) {}

Status MultiClassClassifier::Train(const Dataset& data,
                                   const std::vector<std::string>& row_labels,
                                   std::vector<double> priors) {
  if (row_labels.size() != data.size()) {
    return Errorf() << "expected one label per training row; got "
                    << row_labels.size() << " labels for " << data.size()
                    << " rows";
  }
  // Group rows by label; std::map gives the documented lexicographic
  // class order deterministically.
  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < row_labels.size(); ++i) {
    groups[row_labels[i]].push_back(i);
  }
  std::vector<Dataset> class_data;
  std::vector<std::string> class_labels;
  class_data.reserve(groups.size());
  class_labels.reserve(groups.size());
  for (const auto& [label, rows] : groups) {
    class_labels.push_back(label);
    class_data.push_back(data.SelectRows(rows));
  }
  return TrainParts(class_data, std::move(class_labels), std::move(priors));
}

Status MultiClassClassifier::TrainParts(const std::vector<Dataset>& class_data,
                                        std::vector<std::string> class_labels,
                                        std::vector<double> priors) {
  const size_t k = class_data.size();
  if (class_labels.size() != k) {
    return Errorf() << "expected one label per class; got "
                    << class_labels.size() << " labels for " << k
                    << " classes";
  }
  if (k < 2) {
    return Errorf() << "multi-class training requires at least 2 classes; "
                    << "got " << k;
  }
  if (k > kMaxClasses) {
    return Errorf() << "too many classes: " << k << " > " << kMaxClasses;
  }
  if (Status s = ValidateLabels(class_labels); !s.ok()) return s;
  size_t total_rows = 0;
  for (size_t c = 0; c < k; ++c) {
    if (class_data[c].size() < 2) {
      return Errorf() << "class '" << class_labels[c]
                      << "' needs at least 2 training rows; got "
                      << class_data[c].size();
    }
    if (class_data[c].dims() != class_data[0].dims()) {
      return Errorf() << "class '" << class_labels[c] << "' has "
                      << class_data[c].dims() << " dims; class '"
                      << class_labels[0] << "' has " << class_data[0].dims();
    }
    total_rows += class_data[c].size();
  }
  if (priors.empty()) {
    priors.resize(k);
    for (size_t c = 0; c < k; ++c) {
      priors[c] = static_cast<double>(class_data[c].size()) /
                  static_cast<double>(total_rows);
    }
  }
  if (Status s = ValidatePriors(priors, k); !s.ok()) return s;
  if (Status s = config_.Validate(); !s.ok()) return s;

  std::vector<std::unique_ptr<TkdcClassifier>> parts;
  parts.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    auto part = std::make_unique<TkdcClassifier>(config_);
    part->SetNumThreads(config_.num_threads);
    part->Train(class_data[c]);
    parts.push_back(std::move(part));
  }
  InstallParts(std::move(parts), std::move(class_labels), std::move(priors));
  return Status::Ok();
}

Status MultiClassClassifier::RestoreParts(
    std::vector<std::unique_ptr<TkdcClassifier>> parts,
    std::vector<std::string> class_labels, std::vector<double> priors) {
  const size_t k = parts.size();
  if (class_labels.size() != k) {
    return Errorf() << "expected one label per class; got "
                    << class_labels.size() << " labels for " << k
                    << " classes";
  }
  if (k < 2) {
    return Errorf() << "a multi-class model requires at least 2 classes; "
                    << "got " << k;
  }
  if (k > kMaxClasses) {
    return Errorf() << "too many classes: " << k << " > " << kMaxClasses;
  }
  if (Status s = ValidateLabels(class_labels); !s.ok()) return s;
  if (Status s = ValidatePriors(priors, k); !s.ok()) return s;
  for (size_t c = 0; c < k; ++c) {
    if (parts[c] == nullptr || !parts[c]->trained()) {
      return Errorf() << "class '" << class_labels[c]
                      << "' section is not a trained model";
    }
    if (parts[c]->dims() != parts[0]->dims()) {
      return Errorf() << "class sections disagree on dims: class '"
                      << class_labels[c] << "' has " << parts[c]->dims()
                      << ", class '" << class_labels[0] << "' has "
                      << parts[0]->dims();
    }
    if (parts[c]->kernel().type() != parts[0]->kernel().type()) {
      return Errorf() << "class sections disagree on the kernel: class '"
                      << class_labels[c] << "' uses kernel type "
                      << static_cast<int>(parts[c]->kernel().type())
                      << ", class '" << class_labels[0] << "' uses "
                      << static_cast<int>(parts[0]->kernel().type());
    }
  }
  InstallParts(std::move(parts), std::move(class_labels), std::move(priors));
  return Status::Ok();
}

void MultiClassClassifier::InstallParts(
    std::vector<std::unique_ptr<TkdcClassifier>> parts,
    std::vector<std::string> labels, std::vector<double> priors) {
  parts_ = std::move(parts);
  labels_ = std::move(labels);
  priors_ = std::move(priors);
  // Freeze the error budget once: the cross-class loop reads its traversal
  // share every query, and per-query resolution would be pure overhead.
  budget_ = config_.ResolveBudget();
  evaluators_.clear();
  evaluators_.reserve(parts_.size());
  for (const auto& part : parts_) {
    evaluators_.emplace_back(&part->tree(), &part->kernel(), &part->config());
  }
  // Per-class metric names depend on the labels; re-register so an already
  // attached registry carries them before any new shard is created.
  if (registry_ != nullptr) RegisterSchema(*registry_);
  ResetQueryState();
}

std::unique_ptr<MultiClassQueryContext> MultiClassClassifier::MakeQueryContext()
    const {
  return std::make_unique<MultiClassQueryContext>();
}

MultiClassQueryContext& MultiClassClassifier::live_context() {
  if (live_context_ == nullptr) {
    live_context_ = MakeQueryContext();
    AttachShard(*live_context_);
  }
  return *live_context_;
}

void MultiClassClassifier::EnsureScratch(MultiClassQueryContext& ctx) const {
  const size_t k = parts_.size();
  if (ctx.class_contexts.size() != k) {
    ctx.class_contexts.clear();
    ctx.class_contexts.reserve(k);
    for (size_t c = 0; c < k; ++c) {
      ctx.class_contexts.push_back(std::make_unique<TreeQueryContext>());
    }
    ctx.bounds.assign(k, DensityBounds{});
    ctx.alive.assign(k, 0);
    ctx.drained.assign(k, 0);
  }
}

uint32_t MultiClassClassifier::ClassifyImpl(
    MultiClassQueryContext& ctx, std::span<const double> x,
    std::vector<McRoundSnapshot>* trace) const {
  TKDC_CHECK_MSG(trained(), "Classify called before Train");
  TKDC_CHECK_MSG(x.size() == dims(),
                 "query dimensionality does not match the trained model");
  const size_t k = parts_.size();
  EnsureScratch(ctx);
  const TraversalStats before = ctx.stats;
  const uint64_t grid_before = ctx.grid_prunes;

  auto& bounds = ctx.bounds;
  auto& alive = ctx.alive;
  auto& drained = ctx.drained;
  for (size_t c = 0; c < k; ++c) {
    bounds[c] = evaluators_[c].SeedPointRefinement(*ctx.class_contexts[c], x);
    alive[c] = 1;
    drained[c] = 0;
  }
  size_t alive_count = k;
  const double eps = budget_.traversal;
  uint32_t rounds = 0;
  uint32_t winner = 0;
  McDecision decision = McDecision::kNone;

  if (trace != nullptr) {
    trace->clear();
    trace->push_back(McRoundSnapshot{bounds, alive});
  }

  while (true) {
    // Leader: the surviving class with the highest posterior lower bound
    // (lowest index on ties, for determinism).
    size_t leader = 0;
    double best_lo = -1.0;
    for (size_t c = 0; c < k; ++c) {
      if (alive[c] == 0) continue;
      const double lo = priors_[c] * bounds[c].lower;
      if (lo > best_lo) {
        best_lo = lo;
        leader = c;
      }
    }

    // Cross-class elimination: sound because for an eliminated class c,
    // prior_c * f_c <= prior_c * f_hi_c < prior_l * f_lo_l <= prior_l * f_l
    // — the leader's exact posterior strictly beats c's.
    for (size_t c = 0; c < k; ++c) {
      if (alive[c] == 0 || c == leader) continue;
      if (priors_[c] * bounds[c].upper < best_lo) {
        alive[c] = 0;
        --alive_count;
        if (ctx.metrics != nullptr) {
          ctx.metrics->Inc(mc_ids_.eliminations);
          if (c < mc_ids_.class_eliminated.size()) {
            ctx.metrics->Inc(mc_ids_.class_eliminated[c]);
          }
        }
      }
    }
    if (alive_count == 1) {
      winner = static_cast<uint32_t>(leader);
      decision = McDecision::kSingleSurvivor;
      break;
    }

    // Convergence (the Eq. 9 epsilon band, applied across classes): every
    // contender's posterior is certifiably within (1 + eps) of the
    // leader's, so declaring the leader errs by at most the relative band.
    bool converged = true;
    for (size_t c = 0; c < k; ++c) {
      if (alive[c] == 0 || c == leader) continue;
      if (priors_[c] * bounds[c].upper > best_lo * (1.0 + eps)) {
        converged = false;
        break;
      }
    }
    if (converged) {
      winner = static_cast<uint32_t>(leader);
      decision = McDecision::kConverged;
      break;
    }

    bool all_drained = true;
    for (size_t c = 0; c < k; ++c) {
      if (alive[c] != 0 && drained[c] == 0) {
        all_drained = false;
        break;
      }
    }
    if (all_drained) {
      // Every surviving bound is exact; the leader maximizes the exact
      // posterior (its lower bound *is* its posterior).
      winner = static_cast<uint32_t>(leader);
      decision = McDecision::kExact;
      break;
    }

    // Refinement round. The traversal share is split across the m
    // survivors: a class whose posterior width is already below its eps/m
    // share of the leader's lower bound yields its turn — once every
    // survivor meets its share, sum(widths) <= eps * best_lo and the
    // convergence rule above is guaranteed to fire, so the split can never
    // stall the loop.
    ++rounds;
    const double share = budget_.SurvivorShare(best_lo, alive_count);
    auto refine = [&](size_t c) {
      bounds[c] = evaluators_[c].RefinePointBounds(*ctx.class_contexts[c], x,
                                                   bounds[c], kRoundBudget);
      if (ctx.class_contexts[c]->last_cutoff == CutoffReason::kExactLeaf) {
        drained[c] = 1;
      }
    };
    bool refined_any = false;
    for (size_t c = 0; c < k; ++c) {
      if (alive[c] == 0 || drained[c] != 0) continue;
      if (priors_[c] * bounds[c].Width() <= share) continue;
      refine(c);
      refined_any = true;
    }
    if (!refined_any) {
      // Every undrained survivor met its width share yet convergence did
      // not fire (possible when best_lo is 0): refine them all so the
      // round always makes progress toward draining.
      for (size_t c = 0; c < k; ++c) {
        if (alive[c] != 0 && drained[c] == 0) refine(c);
      }
    }
    if (trace != nullptr) trace->push_back(McRoundSnapshot{bounds, alive});
  }

  if (trace != nullptr) trace->push_back(McRoundSnapshot{bounds, alive});

  // Fold the per-class traversal work into this context's own counters —
  // the single source of truth the batch executor merges — and zero the
  // per-class slates for the next query.
  for (size_t c = 0; c < k; ++c) {
    TreeQueryContext& cc = *ctx.class_contexts[c];
    ctx.stats.Add(cc.stats);
    ctx.grid_prunes += cc.grid_prunes;
    cc.stats = TraversalStats{};
    cc.grid_prunes = 0;
  }
  ++ctx.stats.queries;
  ctx.last_decision = decision;
  ctx.last_rounds = rounds;
  ctx.last_survivors = static_cast<uint32_t>(alive_count);

  if (ctx.metrics != nullptr) {
    MetricsShard& m = *ctx.metrics;
    m.Inc(mc_ids_.queries);
    switch (decision) {
      case McDecision::kSingleSurvivor:
        m.Inc(mc_ids_.decided_single);
        break;
      case McDecision::kConverged:
        m.Inc(mc_ids_.decided_converged);
        break;
      default:
        m.Inc(mc_ids_.decided_exact);
        break;
    }
    m.Observe(mc_ids_.rounds_hist, static_cast<double>(rounds));
    m.Observe(mc_ids_.survivors_hist, static_cast<double>(alive_count));
    if (winner < mc_ids_.class_won.size()) {
      m.Inc(mc_ids_.class_won[winner]);
    }
    query_metrics::RecordQuery(ctx, before, grid_before, index_backend());
  }
  return winner;
}

std::vector<uint32_t> MultiClassClassifier::ClassifyBatch(
    const Dataset& queries) {
  TKDC_CHECK_MSG(trained(), "ClassifyBatch called before Train");
  if (queries.size() == 0) return {};
  TKDC_CHECK_MSG(queries.dims() == dims(),
                 "query dimensionality does not match the trained model");
  std::vector<uint32_t> labels(queries.size());
  executor_.Map(
      queries.size(), BatchExecutor::kDefaultMinChunk,
      [this] {
        auto ctx = MakeQueryContext();
        AttachShard(*ctx);
        return ctx;
      },
      [&](QueryContext& ctx, size_t row) {
        labels[row] = ClassifyInContext(
            static_cast<MultiClassQueryContext&>(ctx), queries.Row(row));
      },
      live_context());
  return labels;
}

void MultiClassClassifier::AttachMetrics(MetricsRegistry* registry) {
  if (registry != nullptr) {
    query_metrics::RegisterStandard(*registry);
    RegisterSchema(*registry);
  }
  registry_ = registry;
  if (live_context_ != nullptr) AttachShard(*live_context_);
  executor_.InvalidateContexts();
}

void MultiClassClassifier::RegisterSchema(MetricsRegistry& registry) {
  mc_ids_.queries = registry.AddCounter("mc.queries");
  mc_ids_.eliminations = registry.AddCounter("mc.class_eliminations");
  mc_ids_.decided_single = registry.AddCounter("mc.decided.single_survivor");
  mc_ids_.decided_converged = registry.AddCounter("mc.decided.converged");
  mc_ids_.decided_exact = registry.AddCounter("mc.decided.exact");
  mc_ids_.rounds_hist = registry.AddHistogram(
      "mc.rounds", MetricsRegistry::PowerOfTwoBounds(12));
  mc_ids_.survivors_hist = registry.AddHistogram(
      "mc.survivors_at_decision", MetricsRegistry::PowerOfTwoBounds(8));
  mc_ids_.class_eliminated.clear();
  mc_ids_.class_won.clear();
  mc_ids_.class_eliminated.reserve(labels_.size());
  mc_ids_.class_won.reserve(labels_.size());
  for (const std::string& label : labels_) {
    mc_ids_.class_eliminated.push_back(
        registry.AddCounter("mc.class." + label + ".eliminated"));
    mc_ids_.class_won.push_back(
        registry.AddCounter("mc.class." + label + ".won"));
  }
}

void MultiClassClassifier::FlushMetrics() {
  if (registry_ == nullptr || live_context_ == nullptr ||
      live_context_->metrics == nullptr) {
    return;
  }
  registry_->Absorb(*live_context_->metrics);
  live_context_->metrics->Reset();
}

}  // namespace tkdc
