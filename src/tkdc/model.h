#ifndef TKDC_TKDC_MODEL_H_
#define TKDC_TKDC_MODEL_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "index/spatial_index.h"
#include "kde/coreset.h"
#include "kde/kernel.h"
#include "tkdc/config.h"
#include "tkdc/error_budget.h"
#include "tkdc/grid_cache.h"
#include "tkdc/threshold.h"

namespace tkdc {

/// The immutable trained artifact of tKDC (Algorithm 1): everything
/// Train() produces and Classify() reads — the k-d tree over the training
/// set, the kernel with its selected bandwidths, the optional grid cache
/// (Section 3.7), the bootstrap's threshold bounds, and the quantile
/// threshold t~(p). Once Train() (or a model_io restore) publishes a model
/// behind a shared_ptr<const TkdcModel>, nothing mutates it: any number of
/// query engines and threads may read it concurrently, and model_io
/// serializes it without touching the classifier.
struct TkdcModel {
  /// The configuration the model was trained under. The evaluator borrows
  /// this copy, so pruning-rule toggles (and the index backend) are frozen
  /// into the artifact.
  TkdcConfig config;
  /// The resolved error-budget decomposition of config.epsilon. Frozen at
  /// build time so every consumer (bounds, engines, serve stats) reads the
  /// same certified shares instead of re-deriving them from raw doubles.
  ErrorBudget budget;
  /// Compression metadata: whether the training set behind `tree` is an
  /// epsilon-coreset, and how much error the compression spent.
  CoresetInfo coreset;
  std::unique_ptr<const Kernel> kernel;
  std::unique_ptr<const SpatialIndex> tree;
  /// Null when the grid is disabled or the dimensionality exceeds its cap.
  std::unique_ptr<const GridCache> grid;
  /// Bootstrap diagnostics (Algorithm 3), including its traversal work.
  ThresholdBootstrapResult bootstrap;
  /// Self-corrected density estimates of every training point (the Dx of
  /// Algorithm 1), in training-row order; may be empty after a restore
  /// that omitted them.
  std::vector<double> training_densities;
  /// Probabilistic bounds on t(p) from the bootstrap.
  double threshold_lower = 0.0;
  double threshold_upper = 0.0;
  /// The quantile threshold t~(p).
  double threshold = 0.0;
  /// K_H(0) / n, the self-contribution of one training point (Eq. 1).
  double self_contribution = 0.0;
};

/// Builds the index side of a model — kernel, tree, optional grid,
/// self-contribution — from `data` and per-axis `bandwidths`, leaving the
/// threshold fields for the caller (Train's bootstrap or model_io's
/// restore). The index build is deterministic, so restoring from the
/// original training data reproduces the trained tree exactly; a restore
/// that already deserialized the index (model format v3) passes it as
/// `prebuilt_index` to skip the rebuild.
std::shared_ptr<TkdcModel> BuildTkdcModelSkeleton(
    const TkdcConfig& config, const Dataset& data,
    std::vector<double> bandwidths,
    std::unique_ptr<const SpatialIndex> prebuilt_index = nullptr);

}  // namespace tkdc

#endif  // TKDC_TKDC_MODEL_H_
