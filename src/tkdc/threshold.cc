#include "tkdc/threshold.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/macros.h"
#include "common/order_stats.h"
#include "common/rng.h"
#include "kde/bandwidth.h"

namespace tkdc {
namespace {

// Gives up on a subsample level after this many consecutive backoffs and
// falls back to unbounded (exact) density evaluation, which always yields
// valid order statistics.
constexpr size_t kMaxBackoffsPerLevel = 30;

}  // namespace

ThresholdEstimator::ThresholdEstimator(const TkdcConfig* config)
    : config_(config) {
  TKDC_CHECK(config != nullptr);
}

ThresholdBootstrapResult ThresholdEstimator::Bootstrap(
    const Dataset& data, const SpatialIndex& full_tree,
    const Kernel& full_kernel) {
  const size_t n = data.size();
  TKDC_CHECK(n >= 2);
  TKDC_CHECK(full_tree.size() == n);
  Rng rng(config_->seed * 0x2545f4914f6cdd1dULL + 1);
  // The bootstrap's traversals spend the traversal share of the error
  // budget, matching the evaluator's pruning band.
  const double eps_traversal = config_->ResolveBudget().traversal;

  ThresholdBootstrapResult result;
  double t_lo = 0.0;
  double t_hi = std::numeric_limits<double>::infinity();
  size_t r = std::min(config_->r0, n);
  size_t backoffs_this_level = 0;

  for (;;) {
    // Training subsample X_r; the final level reuses the full index.
    const bool full_level = r == n;
    std::unique_ptr<Dataset> subsample;
    std::unique_ptr<Kernel> sub_kernel;
    std::unique_ptr<const SpatialIndex> sub_tree;
    const Dataset* train = &data;
    const Kernel* kernel = &full_kernel;
    const SpatialIndex* tree = &full_tree;
    if (!full_level) {
      subsample = std::make_unique<Dataset>(
          data.SelectRows(rng.SampleWithoutReplacement(n, r)));
      // Recalculate the bandwidth for the subsample size (Algorithm 3).
      sub_kernel = std::make_unique<Kernel>(
          config_->kernel, SelectBandwidths(config_->bandwidth_rule,
                                            *subsample,
                                            config_->bandwidth_scale));
      sub_tree = BuildIndex(
          *subsample,
          config_->MakeIndexOptions(sub_kernel->inverse_bandwidths()));
      train = subsample.get();
      kernel = sub_kernel.get();
      tree = sub_tree.get();
    }

    // Query sample X_s drawn from X_r.
    const size_t s = std::min(config_->s0, r);
    const std::vector<size_t> query_rows = rng.SampleWithoutReplacement(r, s);
    const double self_contribution =
        kernel->MaxValue() / static_cast<double>(r);

    const DensityBoundEvaluator evaluator(tree, kernel, config_);
    TreeQueryContext ctx;
    std::vector<double> densities;
    densities.reserve(s);
    // t_lo/t_hi live in self-corrected space; the traversal bounds raw
    // densities, so shift by the subsample's self-contribution and keep
    // the tolerance at eps * t_lo in corrected units.
    const double tolerance = eps_traversal * t_lo;
    for (size_t row : query_rows) {
      const DensityBounds bounds = evaluator.BoundDensity(
          ctx, train->Row(row), t_lo + self_contribution,
          t_hi + self_contribution, tolerance);
      densities.push_back(bounds.Midpoint() - self_contribution);
    }
    result.stats.Add(ctx.stats);
    std::sort(densities.begin(), densities.end());
    ++result.iterations;

    const QuantileCi ci =
        NormalApproxQuantileCi(static_cast<int>(s), config_->p,
                               config_->delta);
    const double d_lower = densities[ci.lower - 1];  // Ranks are 1-based.
    const double d_upper = densities[ci.upper - 1];

    // Validity check: the confidence ranks must land inside the threshold
    // bounds the densities were computed under, otherwise the bounds were
    // too tight and the near-threshold densities are unreliable. Rounds
    // evaluated with the trivial bounds (0, inf) are exact and always valid.
    const bool was_unbounded = t_lo == 0.0 && std::isinf(t_hi);
    const bool upper_invalid = d_upper > t_hi;
    const bool lower_invalid = d_lower < t_lo;
    if (!was_unbounded && (upper_invalid || lower_invalid)) {
      if (backoffs_this_level < kMaxBackoffsPerLevel) {
        if (upper_invalid) t_hi *= config_->h_backoff;
        if (lower_invalid) t_lo /= config_->h_backoff;
      } else {
        // Pathological level: retry once with unbounded (exact) evaluation.
        t_lo = 0.0;
        t_hi = std::numeric_limits<double>::infinity();
      }
      ++result.backoffs;
      ++backoffs_this_level;
      continue;  // Retry at the same r.
    }

    if (full_level) {
      result.lower = std::max(0.0, d_lower);
      result.upper = d_upper;
      return result;
    }

    // Valid bound: buffer it and grow the subsample.
    t_hi = d_upper * config_->h_buffer;
    t_lo = std::max(0.0, d_lower / config_->h_buffer);
    backoffs_this_level = 0;
    const double grown = static_cast<double>(r) * config_->h_growth;
    r = grown >= static_cast<double>(n) ? n : static_cast<size_t>(grown);
  }
}

OnlineThresholdEstimator::OnlineThresholdEstimator(double p, double delta,
                                                   size_t capacity,
                                                   uint64_t seed)
    : p_(p),
      delta_(delta),
      capacity_(capacity),
      rng_(seed * 0x9e3779b97f4a7c15ULL + 41) {
  TKDC_CHECK(p_ > 0.0 && p_ < 1.0);
  TKDC_CHECK(delta_ > 0.0 && delta_ < 1.0);
  TKDC_CHECK(capacity_ >= 2);
  reservoir_.reserve(capacity_);
}

void OnlineThresholdEstimator::Reseed(std::span<const double> densities) {
  std::scoped_lock lock(mutex_);
  reservoir_.clear();
  if (densities.size() <= capacity_) {
    reservoir_.assign(densities.begin(), densities.end());
  } else {
    for (size_t row : rng_.SampleWithoutReplacement(densities.size(),
                                                    capacity_)) {
      reservoir_.push_back(densities[row]);
    }
  }
  // Algorithm R treats the seed as the stream prefix, so later arrivals
  // displace seed entries at the correct 1/stream_length rate.
  stream_length_ = densities.size();
  observed_ = 0;
}

void OnlineThresholdEstimator::Observe(double density) {
  std::scoped_lock lock(mutex_);
  ++stream_length_;
  ++observed_;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(density);
    return;
  }
  const uint64_t slot = rng_.NextBounded(stream_length_);
  if (slot < reservoir_.size()) {
    reservoir_[static_cast<size_t>(slot)] = density;
  }
}

OnlineThresholdEstimator::Band OnlineThresholdEstimator::Estimate(
    double staleness_fraction, double extra_relative_band) const {
  std::vector<double> sorted;
  Band band;
  {
    std::scoped_lock lock(mutex_);
    sorted = reservoir_;
    band.observed = observed_;
  }
  const size_t s = sorted.size();
  band.sample_size = s;
  if (s == 0) return band;
  std::sort(sorted.begin(), sorted.end());

  const size_t point_rank = std::clamp<size_t>(
      static_cast<size_t>(std::ceil(p_ * static_cast<double>(s))), 1, s);
  band.threshold = sorted[point_rank - 1];

  // Exact binomial ranks where the O(s) scan is cheap; normal approximation
  // for large reservoirs (matching the bootstrap's regime split).
  const QuantileCi ci = s <= 512
                            ? ExactBinomialQuantileCi(static_cast<int>(s), p_,
                                                      delta_)
                            : NormalApproxQuantileCi(static_cast<int>(s), p_,
                                                     delta_);
  band.lower = sorted[static_cast<size_t>(ci.lower) - 1];
  band.upper = sorted[static_cast<size_t>(ci.upper) - 1];

  // The rank CI covers reservoir sampling error only. Two unmodeled error
  // sources widen it multiplicatively: drift contributed by the un-rebuilt
  // overlay (staleness), and — for compressed models — the coreset share
  // of the error budget, since the reservoir holds compressed densities.
  const double widen =
      std::max(0.0, staleness_fraction) + std::max(0.0, extra_relative_band);
  if (widen > 0.0) {
    band.lower *= std::max(0.0, 1.0 - widen);
    band.upper *= 1.0 + widen;
  }
  return band;
}

}  // namespace tkdc
