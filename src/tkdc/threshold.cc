#include "tkdc/threshold.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/macros.h"
#include "common/order_stats.h"
#include "common/rng.h"
#include "kde/bandwidth.h"

namespace tkdc {
namespace {

// Gives up on a subsample level after this many consecutive backoffs and
// falls back to unbounded (exact) density evaluation, which always yields
// valid order statistics.
constexpr size_t kMaxBackoffsPerLevel = 30;

}  // namespace

ThresholdEstimator::ThresholdEstimator(const TkdcConfig* config)
    : config_(config) {
  TKDC_CHECK(config != nullptr);
}

ThresholdBootstrapResult ThresholdEstimator::Bootstrap(
    const Dataset& data, const SpatialIndex& full_tree,
    const Kernel& full_kernel) {
  const size_t n = data.size();
  TKDC_CHECK(n >= 2);
  TKDC_CHECK(full_tree.size() == n);
  Rng rng(config_->seed * 0x2545f4914f6cdd1dULL + 1);

  ThresholdBootstrapResult result;
  double t_lo = 0.0;
  double t_hi = std::numeric_limits<double>::infinity();
  size_t r = std::min(config_->r0, n);
  size_t backoffs_this_level = 0;

  for (;;) {
    // Training subsample X_r; the final level reuses the full index.
    const bool full_level = r == n;
    std::unique_ptr<Dataset> subsample;
    std::unique_ptr<Kernel> sub_kernel;
    std::unique_ptr<const SpatialIndex> sub_tree;
    const Dataset* train = &data;
    const Kernel* kernel = &full_kernel;
    const SpatialIndex* tree = &full_tree;
    if (!full_level) {
      subsample = std::make_unique<Dataset>(
          data.SelectRows(rng.SampleWithoutReplacement(n, r)));
      // Recalculate the bandwidth for the subsample size (Algorithm 3).
      sub_kernel = std::make_unique<Kernel>(
          config_->kernel, SelectBandwidths(config_->bandwidth_rule,
                                            *subsample,
                                            config_->bandwidth_scale));
      sub_tree = BuildIndex(
          *subsample,
          config_->MakeIndexOptions(sub_kernel->inverse_bandwidths()));
      train = subsample.get();
      kernel = sub_kernel.get();
      tree = sub_tree.get();
    }

    // Query sample X_s drawn from X_r.
    const size_t s = std::min(config_->s0, r);
    const std::vector<size_t> query_rows = rng.SampleWithoutReplacement(r, s);
    const double self_contribution =
        kernel->MaxValue() / static_cast<double>(r);

    const DensityBoundEvaluator evaluator(tree, kernel, config_);
    TreeQueryContext ctx;
    std::vector<double> densities;
    densities.reserve(s);
    // t_lo/t_hi live in self-corrected space; the traversal bounds raw
    // densities, so shift by the subsample's self-contribution and keep
    // the tolerance at eps * t_lo in corrected units.
    const double tolerance = config_->epsilon * t_lo;
    for (size_t row : query_rows) {
      const DensityBounds bounds = evaluator.BoundDensity(
          ctx, train->Row(row), t_lo + self_contribution,
          t_hi + self_contribution, tolerance);
      densities.push_back(bounds.Midpoint() - self_contribution);
    }
    result.stats.Add(ctx.stats);
    std::sort(densities.begin(), densities.end());
    ++result.iterations;

    const QuantileCi ci =
        NormalApproxQuantileCi(static_cast<int>(s), config_->p,
                               config_->delta);
    const double d_lower = densities[ci.lower - 1];  // Ranks are 1-based.
    const double d_upper = densities[ci.upper - 1];

    // Validity check: the confidence ranks must land inside the threshold
    // bounds the densities were computed under, otherwise the bounds were
    // too tight and the near-threshold densities are unreliable. Rounds
    // evaluated with the trivial bounds (0, inf) are exact and always valid.
    const bool was_unbounded = t_lo == 0.0 && std::isinf(t_hi);
    const bool upper_invalid = d_upper > t_hi;
    const bool lower_invalid = d_lower < t_lo;
    if (!was_unbounded && (upper_invalid || lower_invalid)) {
      if (backoffs_this_level < kMaxBackoffsPerLevel) {
        if (upper_invalid) t_hi *= config_->h_backoff;
        if (lower_invalid) t_lo /= config_->h_backoff;
      } else {
        // Pathological level: retry once with unbounded (exact) evaluation.
        t_lo = 0.0;
        t_hi = std::numeric_limits<double>::infinity();
      }
      ++result.backoffs;
      ++backoffs_this_level;
      continue;  // Retry at the same r.
    }

    if (full_level) {
      result.lower = std::max(0.0, d_lower);
      result.upper = d_upper;
      return result;
    }

    // Valid bound: buffer it and grow the subsample.
    t_hi = d_upper * config_->h_buffer;
    t_lo = std::max(0.0, d_lower / config_->h_buffer);
    backoffs_this_level = 0;
    const double grown = static_cast<double>(r) * config_->h_growth;
    r = grown >= static_cast<double>(n) ? n : static_cast<size_t>(grown);
  }
}

}  // namespace tkdc
