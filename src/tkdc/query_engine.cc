#include "tkdc/query_engine.h"

#include "common/macros.h"
#include "kde/delta_overlay.h"

namespace tkdc {
namespace {

/// ComputeOverlayContribution with the kernel evaluations booked into the
/// traversal counters, so overlay queries account their extra scan work
/// exactly like leaf evaluations.
OverlayContribution FoldOverlay(TreeQueryContext& ctx, const TkdcModel& m,
                                std::span<const double> x,
                                const DeltaOverlay& overlay) {
  const OverlayContribution fold = ComputeOverlayContribution(
      overlay, m.tree->size(), *m.kernel, x, m.config.fast_math_leaf);
  ctx.stats.kernel_evaluations += fold.evaluations;
  return fold;
}

}  // namespace

TkdcQueryEngine::TkdcQueryEngine(const TkdcModel* model)
    : model_(model),
      evaluator_(model->tree.get(), model->kernel.get(), &model->config) {
  TKDC_CHECK(model != nullptr);
}

Classification TkdcQueryEngine::Classify(TreeQueryContext& ctx,
                                         std::span<const double> x,
                                         bool training) const {
  const TkdcModel& m = *model_;
  // For training points the corrected comparison f(x) - K(0)/n > t is
  // equivalent to comparing the raw density against the shifted threshold
  // t + K(0)/n, so the pruning band simply shifts; the tolerance target
  // stays eps * t in corrected units.
  const double cut =
      training ? m.threshold + m.self_contribution : m.threshold;
  if (m.grid != nullptr && m.grid->DensityLowerBound(x) > cut) {
    ++ctx.grid_prunes;
    return Classification::kHigh;
  }
  const DensityBounds bounds =
      training ? evaluator_.BoundDensity(ctx, x, cut, cut,
                                         m.budget.traversal * m.threshold)
               : evaluator_.BoundDensity(ctx, x, cut, cut);
  return bounds.Midpoint() > cut ? Classification::kHigh
                                 : Classification::kLow;
}

double TkdcQueryEngine::TrainingDensity(TreeQueryContext& ctx,
                                        std::span<const double> x, double lo,
                                        double hi, double grid_cut,
                                        double tolerance) const {
  const TkdcModel& m = *model_;
  if (m.grid != nullptr) {
    const double grid_bound =
        m.grid->DensityLowerBound(x) - m.self_contribution;
    if (grid_bound > grid_cut) {
      // Certified above the band: the exact value is irrelevant to the
      // p-quantile as long as it stays on the high side.
      ++ctx.grid_prunes;
      return grid_bound;
    }
  }
  const DensityBounds bounds = evaluator_.BoundDensity(
      ctx, x, lo + m.self_contribution, hi + m.self_contribution, tolerance);
  return bounds.Midpoint() - m.self_contribution;
}

double TkdcQueryEngine::EstimateDensity(TreeQueryContext& ctx,
                                        std::span<const double> x) const {
  return evaluator_
      .BoundDensity(ctx, x, model_->threshold, model_->threshold)
      .Midpoint();
}

Classification TkdcQueryEngine::ClassifyOverlay(TreeQueryContext& ctx,
                                                std::span<const double> x,
                                                bool training,
                                                const DeltaOverlay& overlay)
    const {
  if (overlay.snapshot().empty()) return Classify(ctx, x, training);
  const TkdcModel& m = *model_;
  const OverlayContribution fold = FoldOverlay(ctx, m, x, overlay);
  // The self-correction for training points discounts K(0)/n_eff in the
  // merged model; m.self_contribution is K(0)/n_b, so rescale by n_b/n_eff
  // — which is exactly fold.scale.
  const double cut = training
                         ? m.threshold + m.self_contribution * fold.scale
                         : m.threshold;
  // Grid probe: the cached cell bound is a lower bound on the *base*
  // density, and the affine fold is monotone, so the merged lower bound is
  // scale * cell + offset (offset is exact, not a bound).
  if (m.grid != nullptr &&
      fold.scale * m.grid->DensityLowerBound(x) + fold.offset > cut) {
    ++ctx.grid_prunes;
    return Classification::kHigh;
  }
  // The precision target stays eps * t in merged-density units, matching
  // the base path's guarantee for both fresh and training points.
  const DensityBounds bounds = evaluator_.BoundDensityAffine(
      ctx, x, fold.scale, fold.offset, cut, cut,
      m.budget.traversal * m.threshold);
  return bounds.Midpoint() > cut ? Classification::kHigh
                                 : Classification::kLow;
}

double TkdcQueryEngine::EstimateDensityOverlay(TreeQueryContext& ctx,
                                               std::span<const double> x,
                                               const DeltaOverlay& overlay)
    const {
  if (overlay.snapshot().empty()) return EstimateDensity(ctx, x);
  const TkdcModel& m = *model_;
  const OverlayContribution fold = FoldOverlay(ctx, m, x, overlay);
  return evaluator_
      .BoundDensityAffine(ctx, x, fold.scale, fold.offset, m.threshold,
                          m.threshold, m.budget.traversal * m.threshold)
      .Midpoint();
}

}  // namespace tkdc
