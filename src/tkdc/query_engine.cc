#include "tkdc/query_engine.h"

#include "common/macros.h"

namespace tkdc {

TkdcQueryEngine::TkdcQueryEngine(const TkdcModel* model)
    : model_(model),
      evaluator_(model->tree.get(), model->kernel.get(), &model->config) {
  TKDC_CHECK(model != nullptr);
}

Classification TkdcQueryEngine::Classify(TreeQueryContext& ctx,
                                         std::span<const double> x,
                                         bool training) const {
  const TkdcModel& m = *model_;
  // For training points the corrected comparison f(x) - K(0)/n > t is
  // equivalent to comparing the raw density against the shifted threshold
  // t + K(0)/n, so the pruning band simply shifts; the tolerance target
  // stays eps * t in corrected units.
  const double cut =
      training ? m.threshold + m.self_contribution : m.threshold;
  if (m.grid != nullptr && m.grid->DensityLowerBound(x) > cut) {
    ++ctx.grid_prunes;
    return Classification::kHigh;
  }
  const DensityBounds bounds =
      training ? evaluator_.BoundDensity(ctx, x, cut, cut,
                                         m.config.epsilon * m.threshold)
               : evaluator_.BoundDensity(ctx, x, cut, cut);
  return bounds.Midpoint() > cut ? Classification::kHigh
                                 : Classification::kLow;
}

double TkdcQueryEngine::TrainingDensity(TreeQueryContext& ctx,
                                        std::span<const double> x, double lo,
                                        double hi, double grid_cut,
                                        double tolerance) const {
  const TkdcModel& m = *model_;
  if (m.grid != nullptr) {
    const double grid_bound =
        m.grid->DensityLowerBound(x) - m.self_contribution;
    if (grid_bound > grid_cut) {
      // Certified above the band: the exact value is irrelevant to the
      // p-quantile as long as it stays on the high side.
      ++ctx.grid_prunes;
      return grid_bound;
    }
  }
  const DensityBounds bounds = evaluator_.BoundDensity(
      ctx, x, lo + m.self_contribution, hi + m.self_contribution, tolerance);
  return bounds.Midpoint() - m.self_contribution;
}

double TkdcQueryEngine::EstimateDensity(TreeQueryContext& ctx,
                                        std::span<const double> x) const {
  return evaluator_
      .BoundDensity(ctx, x, model_->threshold, model_->threshold)
      .Midpoint();
}

}  // namespace tkdc
