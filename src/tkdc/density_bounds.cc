#include "tkdc/density_bounds.h"

#include <algorithm>

#include "common/macros.h"
#include "kde/kernel_simd.h"
#include "kde/query_metrics.h"

namespace tkdc {
namespace {

// Clamps a child entry's contribution interval by its parent's, scaled to
// the child's share of the parent's points. Sound because the child's
// points are a subset of the parent's, so the parent's per-point kernel
// bounds apply to them too. A no-op for nesting geometries (k-d boxes);
// for ball trees — whose child balls can extend outside the parent ball —
// this is what makes f_lo/f_hi tighten monotonically at every expansion.
void ClampByParent(TraversalQueueEntry& child,
                   const TraversalQueueEntry& parent, double count_ratio) {
  const double floor = parent.min_contribution * count_ratio;
  const double ceiling = parent.max_contribution * count_ratio;
  if (child.min_contribution < floor) child.min_contribution = floor;
  if (child.max_contribution > ceiling) child.max_contribution = ceiling;
  if (child.max_contribution < child.min_contribution) {
    child.max_contribution = child.min_contribution;  // Round-off guard.
  }
  child.priority = child.max_contribution - child.min_contribution;
}

}  // namespace

DensityBoundEvaluator::DensityBoundEvaluator(const SpatialIndex* tree,
                                             const Kernel* kernel,
                                             const TkdcConfig* config)
    : tree_(tree),
      kernel_(kernel),
      config_(config),
      profile_(kernel->scaled_profile()),
      norm_(kernel->norm()),
      type_(kernel->type()),
      fast_math_(config->fast_math_leaf) {
  TKDC_CHECK(tree != nullptr && kernel != nullptr && config != nullptr);
  TKDC_CHECK(tree->dims() == kernel->dims());
  eps_traversal_ = config->ResolveBudget().traversal;
  inv_n_ = 1.0 / static_cast<double>(tree->size());
}

TraversalQueueEntry DensityBoundEvaluator::MakeEntry(
    TreeQueryContext& ctx, std::span<const double> x,
    uint32_t node_index) const {
  const IndexNode& node = tree_->node(node_index);
  const auto inv_bw = std::span<const double>(kernel_->inverse_bandwidths());
  double z_min = 0.0;
  double z_max = 0.0;
  tree_->NodeScaledSquaredDistanceBounds(node_index, x, inv_bw, &z_min,
                                         &z_max);
  const double weight = static_cast<double>(node.count()) * inv_n_;
  TraversalQueueEntry entry;
  entry.node = node_index;
  // Closest possible point gives the max contribution, farthest the min.
  entry.max_contribution = weight * profile_(z_min, norm_);
  entry.min_contribution = weight * profile_(z_max, norm_);
  entry.priority = entry.max_contribution - entry.min_contribution;
  ctx.stats.kernel_evaluations += 2;
  return entry;
}

TraversalQueueEntry DensityBoundEvaluator::MakeBoxEntry(
    TreeQueryContext& ctx, const BoundingBox& query_box,
    uint32_t node_index) const {
  const IndexNode& node = tree_->node(node_index);
  const auto inv_bw = std::span<const double>(kernel_->inverse_bandwidths());
  double z_min = 0.0;
  double z_max = 0.0;
  tree_->NodeScaledSquaredDistanceBoundsToBox(node_index, query_box, inv_bw,
                                              &z_min, &z_max);
  const double weight = static_cast<double>(node.count()) * inv_n_;
  TraversalQueueEntry entry;
  entry.node = node_index;
  entry.max_contribution = weight * profile_(z_min, norm_);
  entry.min_contribution = weight * profile_(z_max, norm_);
  entry.priority = entry.max_contribution - entry.min_contribution;
  ctx.stats.kernel_evaluations += 2;
  return entry;
}

DensityBounds DensityBoundEvaluator::BoundDensityForBox(
    TreeQueryContext& ctx, const BoundingBox& query_box, double t_lo,
    double t_hi, double tolerance, int64_t max_expansions,
    std::vector<uint32_t>* frontier) const {
  TKDC_DCHECK(query_box.dims() == tree_->dims());
  ++ctx.stats.queries;
  auto& queue = ctx.queue;
  queue.clear();

  // Seed the queue from the inherited frontier (or the root). Reference
  // leaves are atomic for box queries: their entries carry priority 0 so
  // they sink to the bottom and are never expanded.
  double f_lo = 0.0;
  double f_hi = 0.0;
  auto seed = [&](uint32_t node_index) {
    TraversalQueueEntry entry = MakeBoxEntry(ctx, query_box, node_index);
    if (tree_->node(node_index).is_leaf()) entry.priority = 0.0;
    f_lo += entry.min_contribution;
    f_hi += entry.max_contribution;
    queue.push_back(entry);
  };
  if (frontier == nullptr || frontier->empty()) {
    seed(static_cast<uint32_t>(SpatialIndex::kRoot));
  } else {
    for (uint32_t node_index : *frontier) seed(node_index);
  }
  std::make_heap(queue.begin(), queue.end());

  const double eps = eps_traversal_;
  const double high_cut = t_hi * (1.0 + eps);
  const double low_cut = t_lo * (1.0 - eps);
  if (tolerance < 0.0) tolerance = eps * t_lo;

  // "Only atomic leaves left" is the box analogue of an exhausted tree:
  // the frontier sits at the finest granularity a box probe resolves.
  ctx.last_cutoff = CutoffReason::kExactLeaf;
  while (!queue.empty()) {
    if (config_->use_threshold_rule && f_lo > high_cut) {
      ctx.last_cutoff = CutoffReason::kLowerAboveThreshold;
      break;
    }
    if (config_->use_threshold_rule && f_hi < low_cut) {
      ctx.last_cutoff = CutoffReason::kUpperBelowThreshold;
      break;
    }
    if (config_->use_tolerance_rule && f_hi - f_lo < tolerance) {
      ctx.last_cutoff = CutoffReason::kTolerance;
      break;
    }
    if (queue.front().priority <= 0.0) break;  // Only atomic leaves left.
    if (max_expansions >= 0 && max_expansions-- == 0) {
      ctx.last_cutoff = CutoffReason::kExpansionBudget;
      break;
    }

    std::pop_heap(queue.begin(), queue.end());
    const TraversalQueueEntry current = queue.back();
    queue.pop_back();
    ++ctx.stats.nodes_expanded;

    f_lo -= current.min_contribution;
    f_hi -= current.max_contribution;

    const IndexNode& node = tree_->node(current.node);
    TKDC_DCHECK(!node.is_leaf());
    const double inv_parent_count = 1.0 / static_cast<double>(node.count());
    for (int32_t child : {node.left, node.right}) {
      TraversalQueueEntry entry =
          MakeBoxEntry(ctx, query_box, static_cast<uint32_t>(child));
      const IndexNode& child_node = tree_->node(static_cast<size_t>(child));
      ClampByParent(entry, current,
                    static_cast<double>(child_node.count()) *
                        inv_parent_count);
      if (child_node.is_leaf()) entry.priority = 0.0;
      f_lo += entry.min_contribution;
      f_hi += entry.max_contribution;
      queue.push_back(entry);
      std::push_heap(queue.begin(), queue.end());
    }
  }

  if (frontier != nullptr) {
    frontier->clear();
    frontier->reserve(queue.size());
    for (const TraversalQueueEntry& entry : queue) {
      frontier->push_back(entry.node);
    }
  }
  if (f_lo < 0.0) f_lo = 0.0;
  if (f_hi < f_lo) f_hi = f_lo;
  return DensityBounds{f_lo, f_hi};
}

DensityBounds DensityBoundEvaluator::BoundDensity(TreeQueryContext& ctx,
                                                  std::span<const double> x,
                                                  double t_lo, double t_hi,
                                                  double tolerance) const {
  TKDC_DCHECK(x.size() == tree_->dims());
  ++ctx.stats.queries;
  ctx.queue.clear();

  TraversalQueueEntry root =
      MakeEntry(ctx, x, static_cast<uint32_t>(SpatialIndex::kRoot));
  double f_lo = root.min_contribution;
  double f_hi = root.max_contribution;
  ctx.queue.push_back(root);
  return RunPointTraversal(ctx, x, t_lo, t_hi, tolerance, f_lo, f_hi);
}

DensityBounds DensityBoundEvaluator::BoundDensityAffine(
    TreeQueryContext& ctx, std::span<const double> x, double scale,
    double offset, double t_lo, double t_hi, double tolerance) const {
  TKDC_DCHECK(scale > 0.0);
  TKDC_DCHECK(tolerance >= 0.0);
  const double eps = eps_traversal_;
  const double inv_scale = 1.0 / scale;
  // Base-space thresholds chosen so the traversal's g-space rules match:
  //   scale * f_lo + offset > t_hi * (1 + eps)
  //     <=>  f_lo > t_hi_base * (1 + eps)
  // and symmetrically for the low cut. A negative remapped threshold is
  // meaningful: f_lo >= 0 always beats it, so the rule fires immediately
  // (offset alone already decides the query); the low cut can never fire
  // against a negative bound, which is exactly the conservative behavior.
  const double t_hi_base =
      (t_hi * (1.0 + eps) - offset) * inv_scale / (1.0 + eps);
  double t_lo_base = 0.0;
  if (eps < 1.0) {
    t_lo_base = (t_lo * (1.0 - eps) - offset) * inv_scale / (1.0 - eps);
  }
  const DensityBounds base =
      BoundDensity(ctx, x, t_lo_base, t_hi_base, tolerance * inv_scale);
  double g_lo = scale * base.lower + offset;
  double g_hi = scale * base.upper + offset;
  // A tombstone-heavy offset can push the lower edge below zero even
  // though the merged density is a genuine density; clamp like the base
  // traversal does.
  if (g_lo < 0.0) g_lo = 0.0;
  if (g_hi < g_lo) g_hi = g_lo;
  return DensityBounds{g_lo, g_hi};
}

DensityBounds DensityBoundEvaluator::BoundDensityFromFrontier(
    TreeQueryContext& ctx, std::span<const double> x, double t_lo, double t_hi,
    double tolerance, const std::vector<uint32_t>& frontier) const {
  TKDC_DCHECK(x.size() == tree_->dims());
  ++ctx.stats.queries;
  ctx.queue.clear();
  double f_lo = 0.0;
  double f_hi = 0.0;
  if (frontier.empty()) {
    TraversalQueueEntry root =
        MakeEntry(ctx, x, static_cast<uint32_t>(SpatialIndex::kRoot));
    f_lo = root.min_contribution;
    f_hi = root.max_contribution;
    ctx.queue.push_back(root);
  } else {
    for (uint32_t node_index : frontier) {
      TraversalQueueEntry entry = MakeEntry(ctx, x, node_index);
      f_lo += entry.min_contribution;
      f_hi += entry.max_contribution;
      ctx.queue.push_back(entry);
    }
    std::make_heap(ctx.queue.begin(), ctx.queue.end());
  }
  return RunPointTraversal(ctx, x, t_lo, t_hi, tolerance, f_lo, f_hi);
}

void DensityBoundEvaluator::ExpandTop(TreeQueryContext& ctx,
                                      std::span<const double> x, double* f_lo,
                                      double* f_hi) const {
  auto& queue = ctx.queue;
  const auto inv_bw = std::span<const double>(kernel_->inverse_bandwidths());

  // Child entry from precomputed Eq. 6 distance bounds — MakeEntry minus
  // the per-node bound call, fed by the batched two-children pass below.
  auto child_entry = [&](int32_t child, double z_min, double z_max) {
    const IndexNode& child_node = tree_->node(static_cast<size_t>(child));
    const double weight = static_cast<double>(child_node.count()) * inv_n_;
    TraversalQueueEntry entry;
    entry.node = static_cast<uint32_t>(child);
    entry.max_contribution = weight * profile_(z_min, norm_);
    entry.min_contribution = weight * profile_(z_max, norm_);
    entry.priority = entry.max_contribution - entry.min_contribution;
    return entry;
  };

  std::pop_heap(queue.begin(), queue.end());
  const TraversalQueueEntry current = queue.back();
  queue.pop_back();
  ++ctx.stats.nodes_expanded;

  // Replace this node's coarse interval with its children's (or its exact
  // leaf sum): same mass, tighter constraint (Figure 4).
  *f_lo -= current.min_contribution;
  *f_hi -= current.max_contribution;

  const IndexNode& node = tree_->node(current.node);
  if (node.is_leaf()) {
    // Vectorized SoA leaf sum (kde/kernel_simd.h): the kernel evaluations
    // run one point per SIMD lane, bit-identical across backends in the
    // default mode (fast_math_ swaps the Gaussian exp for a vectorized
    // polynomial inside the --fast-math-leaf epsilon band).
    const SpatialIndex::SoaLeaf leaf = tree_->LeafSoa(current.node);
    double exact =
        simd::SoaKernelSum(leaf.block, leaf.padded, leaf.count, tree_->dims(),
                           x.data(), inv_bw.data(), type_, norm_, fast_math_);
    ctx.stats.kernel_evaluations += node.count();
    ctx.stats.leaf_points_evaluated += node.count();
    exact *= inv_n_;
    *f_lo += exact;
    *f_hi += exact;
  } else {
    // Both children's Eq. 6 distance bounds in one batched pass (one
    // vector lane per bound — bit-identical to two per-child calls, see
    // common/simd.h), then the same contribution/clamp math as MakeEntry.
    double zb[4] = {0.0, 0.0, 0.0, 0.0};
    tree_->NodeChildrenScaledSquaredDistanceBounds(current.node, x, inv_bw,
                                                   zb);
    TraversalQueueEntry left = child_entry(node.left, zb[0], zb[1]);
    TraversalQueueEntry right = child_entry(node.right, zb[2], zb[3]);
    ctx.stats.kernel_evaluations += 4;
    const double inv_parent_count = 1.0 / static_cast<double>(node.count());
    ClampByParent(left, current,
                  static_cast<double>(tree_->node(node.left).count()) *
                      inv_parent_count);
    ClampByParent(right, current,
                  static_cast<double>(tree_->node(node.right).count()) *
                      inv_parent_count);
    *f_lo += left.min_contribution + right.min_contribution;
    *f_hi += left.max_contribution + right.max_contribution;
    queue.push_back(left);
    std::push_heap(queue.begin(), queue.end());
    queue.push_back(right);
    std::push_heap(queue.begin(), queue.end());
  }
  if (ctx.tracer != nullptr) {
    ctx.tracer->Expand(current.node, node.is_leaf(),
                       node.is_leaf() ? static_cast<uint32_t>(node.count())
                                      : 0u,
                       *f_lo, *f_hi);
  }
}

DensityBounds DensityBoundEvaluator::SeedPointRefinement(
    TreeQueryContext& ctx, std::span<const double> x) const {
  TKDC_DCHECK(x.size() == tree_->dims());
  ctx.queue.clear();
  TraversalQueueEntry root =
      MakeEntry(ctx, x, static_cast<uint32_t>(SpatialIndex::kRoot));
  ctx.queue.push_back(root);
  // Nothing has been expanded yet; the refinement is "paused on budget".
  ctx.last_cutoff = CutoffReason::kExpansionBudget;
  return DensityBounds{root.min_contribution, root.max_contribution};
}

DensityBounds DensityBoundEvaluator::RefinePointBounds(
    TreeQueryContext& ctx, std::span<const double> x, DensityBounds current,
    int64_t max_expansions) const {
  double f_lo = current.lower;
  double f_hi = current.upper;
  ctx.last_cutoff = CutoffReason::kExactLeaf;
  while (!ctx.queue.empty()) {
    if (max_expansions >= 0 && max_expansions-- == 0) {
      ctx.last_cutoff = CutoffReason::kExpansionBudget;
      break;
    }
    ExpandTop(ctx, x, &f_lo, &f_hi);
  }
  // The same round-off guards as the full traversal; clamping the lower
  // edge up to 0 stays a valid lower bound (densities are non-negative),
  // so carrying the clamped interval into the next step is sound.
  if (f_lo < 0.0) f_lo = 0.0;
  if (f_hi < f_lo) f_hi = f_lo;
  return DensityBounds{f_lo, f_hi};
}

DensityBounds DensityBoundEvaluator::RunPointTraversal(
    TreeQueryContext& ctx, std::span<const double> x, double t_lo, double t_hi,
    double tolerance, double f_lo, double f_hi) const {
  auto& queue = ctx.queue;
  const double eps = eps_traversal_;
  const double high_cut = t_hi * (1.0 + eps);  // Threshold rule, Eq. 9.
  const double low_cut = t_lo * (1.0 - eps);
  if (tolerance < 0.0) tolerance = eps * t_lo;  // Tolerance rule, Eq. 8.

  if (ctx.tracer != nullptr) {
    const uint32_t seed = queue.empty() ? 0u : queue.front().node;
    ctx.tracer->Begin(seed, f_lo, f_hi);
  }

  // Falling out of the loop means the queue drained: every node was
  // expanded down to exact leaf sums, so the bounds are exact.
  ctx.last_cutoff = CutoffReason::kExactLeaf;
  while (!queue.empty()) {
    if (config_->use_threshold_rule && f_lo > high_cut) {
      ctx.last_cutoff = CutoffReason::kLowerAboveThreshold;
      break;
    }
    if (config_->use_threshold_rule && f_hi < low_cut) {
      ctx.last_cutoff = CutoffReason::kUpperBelowThreshold;
      break;
    }
    if (config_->use_tolerance_rule && f_hi - f_lo < tolerance) {
      ctx.last_cutoff = CutoffReason::kTolerance;
      break;
    }

    ExpandTop(ctx, x, &f_lo, &f_hi);
  }
  if (ctx.tracer != nullptr) ctx.tracer->Finish(ctx.last_cutoff);
  if (ctx.metrics != nullptr) {
    MetricsShard& m = *ctx.metrics;
    switch (ctx.last_cutoff) {
      case CutoffReason::kLowerAboveThreshold:
        m.Inc(query_metrics::kCutoffLowerAboveThreshold);
        break;
      case CutoffReason::kUpperBelowThreshold:
        m.Inc(query_metrics::kCutoffUpperBelowThreshold);
        break;
      case CutoffReason::kTolerance:
        m.Inc(query_metrics::kCutoffTolerance);
        break;
      default:
        m.Inc(query_metrics::kCutoffExactLeaf);
        break;
    }
    // Relative gap in units of the lower threshold when one exists,
    // absolute width otherwise (unbounded EstimateDensity calls).
    const double width = f_hi - f_lo;
    m.Observe(query_metrics::kBoundGap,
              t_lo > 0.0 ? width / t_lo : width);
  }

  // Guard against round-off drift from the repeated add/subtract.
  if (f_lo < 0.0) f_lo = 0.0;
  if (f_hi < f_lo) f_hi = f_lo;
  return DensityBounds{f_lo, f_hi};
}

}  // namespace tkdc
