#include "tkdc/model_io.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <vector>

#include "baselines/binned_kde.h"
#include "baselines/knn.h"
#include "baselines/nocut.h"
#include "baselines/rkde.h"
#include "baselines/simple_kde.h"
#include "common/macros.h"
#include "index/ball_tree.h"
#include "index/kdtree.h"
#include "index/spatial_index.h"

namespace tkdc {
namespace {

constexpr char kMagic[4] = {'T', 'K', 'D', 'C'};

// Algorithm tags stored in version-2 files. Stable on-disk values: never
// renumber, only append.
constexpr uint32_t kTagTkdc = 1;
constexpr uint32_t kTagNocut = 2;
constexpr uint32_t kTagSimple = 3;
constexpr uint32_t kTagRkde = 4;
constexpr uint32_t kTagBinned = 5;
constexpr uint32_t kTagKnn = 6;
// Multi-class container (format version 5): K, labels, priors, then K
// nested tkdc sections.
constexpr uint32_t kTagMultiClass = 7;

// Guard absurd sizes before allocating (corrupt headers).
constexpr uint64_t kMaxElements = uint64_t{1} << 34;
constexpr uint64_t kMaxLabelLength = 1 << 16;

// Streaming writer with a running FNV-1a checksum over the payload.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void Bytes(const void* data, size_t size) {
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      checksum_ ^= bytes[i];
      checksum_ *= 0x100000001b3ULL;
    }
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
  }

  void U8(uint8_t v) { Bytes(&v, sizeof(v)); }
  void U32(uint32_t v) { Bytes(&v, sizeof(v)); }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) { Bytes(&v, sizeof(v)); }
  void DoubleVec(const std::vector<double>& v) {
    U64(v.size());
    if (!v.empty()) Bytes(v.data(), v.size() * sizeof(double));
  }
  void Str(const std::string& s) {
    U64(s.size());
    if (!s.empty()) Bytes(s.data(), s.size());
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::ostream& out_;
  uint64_t checksum_ = 0xcbf29ce484222325ULL;
};

// Streaming reader mirroring Writer; every method returns false on
// truncation so corruption surfaces as a clean error.
class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  bool Bytes(void* data, size_t size) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (!in_) return false;
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      checksum_ ^= bytes[i];
      checksum_ *= 0x100000001b3ULL;
    }
    return true;
  }

  bool U8(uint8_t* v) { return Bytes(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Bytes(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Bytes(v, sizeof(*v)); }
  bool F64(double* v) { return Bytes(v, sizeof(*v)); }
  bool DoubleVec(std::vector<double>* v, uint64_t max_size) {
    uint64_t size = 0;
    if (!U64(&size)) return false;
    if (size > max_size) return false;  // Corrupt size field.
    v->resize(size);
    if (size == 0) return true;
    return Bytes(v->data(), size * sizeof(double));
  }
  bool Str(std::string* s, uint64_t max_size) {
    uint64_t size = 0;
    if (!U64(&size)) return false;
    if (size > max_size) return false;  // Corrupt size field.
    s->resize(size);
    if (size == 0) return true;
    return Bytes(s->data(), size);
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::istream& in_;
  uint64_t checksum_ = 0xcbf29ce484222325ULL;
};

// Config block. The writer always emits the current version; the
// index_backend field joined in version 3 and fast_math_leaf in version 4,
// so the reader is version-gated and legacy files resolve to the defaults
// they were invariably built with (k-d tree, exact leaf math), never to
// the loader's environment default.
void WriteConfig(Writer& w, const TkdcConfig& config) {
  w.F64(config.p);
  w.F64(config.epsilon);
  w.F64(config.delta);
  w.F64(config.bandwidth_scale);
  w.U32(static_cast<uint32_t>(config.kernel));
  w.U32(static_cast<uint32_t>(config.bandwidth_rule));
  w.U8(config.use_threshold_rule ? 1 : 0);
  w.U8(config.use_tolerance_rule ? 1 : 0);
  w.U8(config.use_grid ? 1 : 0);
  w.U64(config.grid_max_dims);
  w.U32(static_cast<uint32_t>(config.split_rule));
  w.U32(static_cast<uint32_t>(config.axis_rule));
  w.U64(config.leaf_size);
  w.U64(config.r0);
  w.U64(config.s0);
  w.F64(config.h_backoff);
  w.F64(config.h_buffer);
  w.F64(config.h_growth);
  w.U64(config.seed);
  w.U32(static_cast<uint32_t>(config.index_backend));
  w.U8(config.fast_math_leaf ? 1 : 0);
  w.F64(config.coreset_epsilon);  // Version 6.
}

bool ReadConfig(Reader& r, uint32_t version, TkdcConfig* config) {
  uint32_t kernel = 0, bandwidth_rule = 0, split_rule = 0, axis_rule = 0;
  uint8_t threshold_rule = 0, tolerance_rule = 0, grid = 0;
  uint64_t grid_max_dims = 0, leaf_size = 0, r0 = 0, s0 = 0, seed = 0;
  if (!r.F64(&config->p) || !r.F64(&config->epsilon) ||
      !r.F64(&config->delta) || !r.F64(&config->bandwidth_scale) ||
      !r.U32(&kernel) || !r.U32(&bandwidth_rule) || !r.U8(&threshold_rule) ||
      !r.U8(&tolerance_rule) || !r.U8(&grid) || !r.U64(&grid_max_dims) ||
      !r.U32(&split_rule) || !r.U32(&axis_rule) || !r.U64(&leaf_size) ||
      !r.U64(&r0) || !r.U64(&s0) || !r.F64(&config->h_backoff) ||
      !r.F64(&config->h_buffer) || !r.F64(&config->h_growth) ||
      !r.U64(&seed)) {
    return false;
  }
  uint32_t index_backend = static_cast<uint32_t>(IndexBackend::kKdTree);
  if (version >= 3 && !r.U32(&index_backend)) return false;
  uint8_t fast_math_leaf = 0;
  if (version >= 4 && !r.U8(&fast_math_leaf)) return false;
  config->coreset_epsilon = 0.0;  // Pre-v6 files never compressed.
  if (version >= 6 && !r.F64(&config->coreset_epsilon)) return false;
  if (kernel > 3 || bandwidth_rule > 1 || split_rule > 2 || axis_rule > 1 ||
      index_backend > 1 || leaf_size == 0) {
    return false;
  }
  config->kernel = static_cast<KernelType>(kernel);
  config->index_backend = static_cast<IndexBackend>(index_backend);
  config->fast_math_leaf = fast_math_leaf != 0;
  config->bandwidth_rule = static_cast<BandwidthRule>(bandwidth_rule);
  config->use_threshold_rule = threshold_rule != 0;
  config->use_tolerance_rule = tolerance_rule != 0;
  config->use_grid = grid != 0;
  config->grid_max_dims = grid_max_dims;
  config->split_rule = static_cast<SplitRule>(split_rule);
  config->axis_rule = static_cast<SplitAxisRule>(axis_rule);
  config->leaf_size = leaf_size;
  config->r0 = r0;
  config->s0 = s0;
  config->seed = seed;
  // Full range validation (rates, growth factors, and the error-budget
  // decomposition — a negative or over-epsilon coreset share must fail the
  // load, not abort in a CHECK downstream). Every legitimately saved model
  // passes: training validated the same config.
  return config->Validate().ok();
}

bool ValidRate(double p) { return p > 0.0 && p < 1.0; }

bool ValidBandwidths(const std::vector<double>& bandwidths) {
  for (double h : bandwidths) {
    if (!(h > 0.0)) return false;
  }
  return true;
}

// Shared trailer of every section: the raw training values. The shape
// (dims, n) is read by the caller beforehand so sizes can be validated.
// Non-finite coordinates are rejected here, before they can reach an index
// build (k-d tree splits on coordinate comparisons, so a NaN would poison
// the partition invariants rather than fail loudly).
bool ReadValues(Reader& r, uint64_t dims, uint64_t n,
                std::vector<double>* values) {
  if (!r.DoubleVec(values, dims * n) || values->size() != dims * n) {
    return false;
  }
  for (double v : *values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

// --- Spatial-index section (format version 3+) -------------------------
//
// Shared trailer of every tree-backed section: backend tag, node topology
// (shared by both backends), the reordered-to-original row permutation,
// and the backend-specific geometry (k-d boxes, or ball centroids +
// annulus radii + build scale). The raw training values already precede this section, so
// the reordered point storage is reconstructed from the permutation rather
// than stored twice. Version 4 appends an SoA leaf-layout descriptor
// (lane width, leaf count, total padded doubles); the SoA mirror itself
// is derived from the reordered points and is rebuilt on load, so the
// descriptor is a cross-check, not storage.
void WriteIndexSection(Writer& w, const SpatialIndex& index) {
  w.U8(static_cast<uint8_t>(index.backend()));
  w.U64(index.num_nodes());
  for (size_t i = 0; i < index.size(); ++i) {
    w.U64(index.OriginalIndex(i));
  }
  for (size_t i = 0; i < index.num_nodes(); ++i) {
    const IndexNode& node = index.node(i);
    w.U64(node.begin);
    w.U64(node.end);
    w.U32(static_cast<uint32_t>(node.left));
    w.U32(static_cast<uint32_t>(node.right));
    w.U8(node.split_axis);
  }
  const size_t dims = index.dims();
  switch (index.backend()) {
    case IndexBackend::kKdTree: {
      const auto& kd = static_cast<const KdTree&>(index);
      std::vector<double> geometry;
      geometry.reserve(2 * dims * kd.num_nodes());
      for (size_t i = 0; i < kd.num_nodes(); ++i) {
        const BoundingBox& box = kd.box(i);
        geometry.insert(geometry.end(), box.min().begin(), box.min().end());
        geometry.insert(geometry.end(), box.max().begin(), box.max().end());
      }
      w.DoubleVec(geometry);
      break;
    }
    case IndexBackend::kBallTree: {
      const auto& ball = static_cast<const BallTree&>(index);
      std::vector<double> centroids;
      centroids.reserve(dims * ball.num_nodes());
      std::vector<double> radii;
      radii.reserve(ball.num_nodes());
      std::vector<double> radii_min;
      radii_min.reserve(ball.num_nodes());
      for (size_t i = 0; i < ball.num_nodes(); ++i) {
        const auto centroid = ball.Centroid(i);
        centroids.insert(centroids.end(), centroid.begin(), centroid.end());
        radii.push_back(ball.Radius(i));
        radii_min.push_back(ball.MinRadius(i));
      }
      w.DoubleVec(centroids);
      w.DoubleVec(radii);
      w.DoubleVec(radii_min);
      w.DoubleVec(ball.scale());
      break;
    }
  }
  // Version-4 SoA descriptor. Lane width is an architectural constant of
  // the format: a file written here must rebuild to exactly this layout.
  w.U64(kSimdBlockWidth);
  w.U64(index.num_soa_leaves());
  w.U64(index.num_soa_doubles());
}

// Validates the serialized topology: node 0 must cover every reordered row,
// children must partition their parent contiguously and sit strictly after
// it (so the arena is in DFS order and acyclic), and every non-root node
// must be referenced by exactly one parent. Anything structurally valid is
// safe to hand to the restore constructors, whose TKDC_CHECKs then only
// guard programmer errors, not file contents.
bool ValidTopology(const std::vector<IndexNode>& nodes, uint64_t n,
                   uint64_t dims) {
  const size_t num_nodes = nodes.size();
  if (num_nodes == 0 || nodes[0].begin != 0 || nodes[0].end != n) return false;
  std::vector<uint8_t> referenced(num_nodes, 0);
  for (size_t i = 0; i < num_nodes; ++i) {
    const IndexNode& node = nodes[i];
    if (node.begin >= node.end || node.end > n) return false;
    if (node.split_axis >= dims) return false;
    const bool has_left = node.left >= 0;
    const bool has_right = node.right >= 0;
    if (has_left != has_right) return false;
    if (!has_left) continue;
    const auto left = static_cast<size_t>(node.left);
    const auto right = static_cast<size_t>(node.right);
    if (left <= i || right <= i || left >= num_nodes || right >= num_nodes ||
        left == right) {
      return false;
    }
    if (referenced[left] != 0 || referenced[right] != 0) return false;
    referenced[left] = referenced[right] = 1;
    if (nodes[left].begin != node.begin || nodes[left].end != nodes[right].begin ||
        nodes[right].end != node.end) {
      return false;
    }
  }
  for (size_t i = 1; i < num_nodes; ++i) {
    if (referenced[i] == 0) return false;
  }
  return true;
}

bool FiniteVec(const std::vector<double>& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

// Reads and validates an index section over `data`, reconstructing the
// reordered point storage from the stored permutation. `options` supplies
// the build parameters recorded elsewhere in the file (leaf size, split
// rules); the backend comes from the section's own tag. Returns nullptr
// with `*why` set on any structural violation.
std::unique_ptr<const SpatialIndex> ReadIndexSection(Reader& r,
                                                     uint32_t version,
                                                     const Dataset& data,
                                                     IndexOptions options,
                                                     std::string* why) {
  const uint64_t n = data.size();
  const uint64_t dims = data.dims();
  uint8_t backend_tag = 0;
  uint64_t num_nodes = 0;
  if (!r.U8(&backend_tag) || !r.U64(&num_nodes)) {
    *why = "truncated index header";
    return nullptr;
  }
  // A leaf holds >= 1 rows, so a binary arena can never exceed 2n - 1.
  if (backend_tag > 1 || num_nodes == 0 || num_nodes > 2 * n) {
    *why = "corrupt index header";
    return nullptr;
  }
  options.backend = static_cast<IndexBackend>(backend_tag);

  std::vector<size_t> original_index(n);
  std::vector<uint8_t> seen(n, 0);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t row = 0;
    if (!r.U64(&row)) {
      *why = "truncated index permutation";
      return nullptr;
    }
    if (row >= n || seen[row] != 0) {
      *why = "index permutation is not a bijection";
      return nullptr;
    }
    seen[row] = 1;
    original_index[i] = row;
  }

  std::vector<IndexNode> nodes(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    uint64_t begin = 0, end = 0;
    uint32_t left = 0, right = 0;
    uint8_t split_axis = 0;
    if (!r.U64(&begin) || !r.U64(&end) || !r.U32(&left) || !r.U32(&right) ||
        !r.U8(&split_axis)) {
      *why = "truncated index topology";
      return nullptr;
    }
    nodes[i].begin = begin;
    nodes[i].end = end;
    nodes[i].left = static_cast<int32_t>(left);
    nodes[i].right = static_cast<int32_t>(right);
    nodes[i].split_axis = split_axis;
  }
  if (!ValidTopology(nodes, n, dims)) {
    *why = "corrupt index topology";
    return nullptr;
  }

  std::vector<double> reordered(n * dims);
  for (uint64_t i = 0; i < n; ++i) {
    const auto row = data.Row(original_index[i]);
    std::copy(row.begin(), row.end(), reordered.begin() + i * dims);
  }

  std::unique_ptr<const SpatialIndex> index;
  switch (options.backend) {
    case IndexBackend::kKdTree: {
      std::vector<double> geometry;
      if (!r.DoubleVec(&geometry, 2 * dims * num_nodes) ||
          geometry.size() != 2 * dims * num_nodes || !FiniteVec(geometry)) {
        *why = "truncated or corrupt k-d box geometry";
        return nullptr;
      }
      std::vector<BoundingBox> boxes(num_nodes);
      for (uint64_t i = 0; i < num_nodes; ++i) {
        const double* min = geometry.data() + 2 * dims * i;
        const double* max = min + dims;
        for (uint64_t j = 0; j < dims; ++j) {
          if (min[j] > max[j]) {
            *why = "inverted k-d bounding box";
            return nullptr;
          }
        }
        BoundingBox box(dims);
        box.Extend({min, dims});
        box.Extend({max, dims});
        boxes[i] = std::move(box);
      }
      index = std::make_unique<const KdTree>(
          dims, std::move(reordered), std::move(original_index),
          std::move(nodes), std::move(boxes), std::move(options));
      break;
    }
    case IndexBackend::kBallTree: {
      std::vector<double> centroids, radii, radii_min, scale;
      if (!r.DoubleVec(&centroids, dims * num_nodes) ||
          centroids.size() != dims * num_nodes || !FiniteVec(centroids) ||
          !r.DoubleVec(&radii, num_nodes) || radii.size() != num_nodes ||
          !r.DoubleVec(&radii_min, num_nodes) ||
          radii_min.size() != num_nodes ||
          !r.DoubleVec(&scale, dims) || scale.size() != dims) {
        *why = "truncated or corrupt ball geometry";
        return nullptr;
      }
      for (size_t i = 0; i < num_nodes; ++i) {
        if (!std::isfinite(radii[i]) || radii[i] < 0.0 ||
            !std::isfinite(radii_min[i]) || radii_min[i] < 0.0 ||
            radii_min[i] > radii[i]) {
          *why = "invalid ball radius";
          return nullptr;
        }
      }
      for (double s : scale) {
        if (!std::isfinite(s) || s <= 0.0) {
          *why = "invalid ball scale";
          return nullptr;
        }
      }
      index = std::make_unique<const BallTree>(
          dims, std::move(reordered), std::move(original_index),
          std::move(nodes), std::move(centroids), std::move(radii),
          std::move(radii_min), std::move(scale), std::move(options));
      break;
    }
  }
  if (index == nullptr) {
    *why = "unknown index backend";
    return nullptr;
  }
  if (version >= 4) {
    // SoA descriptor: the restore constructors just rebuilt the mirror
    // from the reordered points, so the stored layout must agree exactly —
    // a mismatch means the file was written by an incompatible layout (or
    // corrupted) and leaf scans would disagree with the writer.
    uint64_t lane_width = 0, soa_leaves = 0, soa_doubles = 0;
    if (!r.U64(&lane_width) || !r.U64(&soa_leaves) || !r.U64(&soa_doubles)) {
      *why = "truncated SoA descriptor";
      return nullptr;
    }
    if (lane_width != kSimdBlockWidth ||
        soa_leaves != index->num_soa_leaves() ||
        soa_doubles != index->num_soa_doubles()) {
      *why = "SoA descriptor does not match the rebuilt index layout";
      return nullptr;
    }
  }
  return index;
}

uint32_t TagFor(const DensityClassifier& classifier) {
  const std::string name = classifier.name();
  if (name == "tkdc") return kTagTkdc;
  if (name == "nocut") return kTagNocut;
  if (name == "simple") return kTagSimple;
  if (name == "rkde") return kTagRkde;
  if (name == "binned") return kTagBinned;
  if (name == "knn") return kTagKnn;
  return 0;
}

// The tkdc/nocut section — identical to the whole version-1 payload, so
// the same reader serves legacy files.
void WriteTkdcSection(Writer& w, const TkdcClassifier& c,
                      const Dataset& training_data, bool include_densities) {
  // The serialized index is ground truth; keep the config's backend field
  // consistent with it even if the classifier was handed a prebuilt index
  // of a different flavor than it was configured for.
  TkdcConfig config = c.config();
  config.index_backend = c.tree().backend();
  WriteConfig(w, config);
  w.U64(training_data.dims());
  w.U64(training_data.size());
  w.DoubleVec(c.kernel().bandwidths());
  w.F64(c.threshold_lower());
  w.F64(c.threshold_upper());
  w.F64(c.threshold());
  w.U8(include_densities ? 1 : 0);
  if (include_densities) {
    w.DoubleVec(c.training_densities());
  }
  w.DoubleVec(training_data.values());
  WriteIndexSection(w, c.tree());
  // Version-6 trailer: the resolved error-budget table and the coreset
  // metadata. The budget is derived state (the reader re-resolves it from
  // the config and demands exact agreement), stored so the breakdown is
  // inspectable without executing any tkdc code.
  const ErrorBudget& budget = c.error_budget();
  w.F64(budget.total);
  w.F64(budget.traversal);
  w.F64(budget.coreset);
  w.F64(budget.fast_math);
  const CoresetInfo& coreset = c.coreset_info();
  w.U8(coreset.enabled ? 1 : 0);
  w.U64(coreset.original_size);
  w.F64(coreset.achieved_error);
  w.U32(coreset.halvings);
}

std::unique_ptr<TkdcClassifier> ReadTkdcSection(Reader& r, uint32_t version,
                                                bool nocut,
                                                const std::string& path,
                                                std::string* error) {
  TkdcConfig config;
  if (!ReadConfig(r, version, &config)) {
    *error = path + ": truncated or corrupt config block";
    return nullptr;
  }
  uint64_t dims = 0, n = 0;
  if (!r.U64(&dims) || !r.U64(&n) || dims == 0 || n < 2) {
    *error = path + ": corrupt shape header";
    return nullptr;
  }
  if (dims > kMaxElements || n > kMaxElements || dims * n > kMaxElements) {
    *error = path + ": implausible model dimensions";
    return nullptr;
  }
  std::vector<double> bandwidths;
  double threshold_lower = 0, threshold_upper = 0, threshold = 0;
  uint8_t has_densities = 0;
  std::vector<double> densities;
  std::vector<double> values;
  if (!r.DoubleVec(&bandwidths, dims) || bandwidths.size() != dims ||
      !r.F64(&threshold_lower) || !r.F64(&threshold_upper) ||
      !r.F64(&threshold) || !r.U8(&has_densities)) {
    *error = path + ": truncated model body";
    return nullptr;
  }
  if (has_densities != 0 &&
      (!r.DoubleVec(&densities, n) || densities.size() != n)) {
    *error = path + ": truncated density block";
    return nullptr;
  }
  if (!ReadValues(r, dims, n, &values)) {
    *error = path + ": truncated data block";
    return nullptr;
  }
  if (!ValidBandwidths(bandwidths)) {
    *error = path + ": invalid bandwidths";
    return nullptr;
  }
  Dataset data(dims, std::move(values));
  std::unique_ptr<const SpatialIndex> index;
  if (version >= 3) {
    std::string why;
    index = ReadIndexSection(r, version, data, config.MakeIndexOptions(), &why);
    if (index == nullptr) {
      *error = path + ": " + why;
      return nullptr;
    }
    if (index->backend() != config.index_backend) {
      *error = path + ": index section backend contradicts config";
      return nullptr;
    }
  }
  CoresetInfo coreset;
  if (version >= 6) {
    ErrorBudget budget;
    uint8_t enabled = 0;
    uint32_t halvings = 0;
    if (!r.F64(&budget.total) || !r.F64(&budget.traversal) ||
        !r.F64(&budget.coreset) || !r.F64(&budget.fast_math) ||
        !r.U8(&enabled) || !r.U64(&coreset.original_size) ||
        !r.F64(&coreset.achieved_error) || !r.U32(&halvings)) {
      *error = path + ": truncated budget/coreset trailer";
      return nullptr;
    }
    coreset.enabled = enabled != 0;
    coreset.halvings = halvings;
    // The shares are derived from the config, so the table must agree with
    // the config's own resolution bit-for-bit; any checksum-fixed edit of
    // a share (negative, non-summing, reshuffled) fails here. ReadConfig
    // already validated the config, so ResolveBudget cannot CHECK-fail.
    const ErrorBudget resolved = config.ResolveBudget();
    if (!budget.Validate().ok() || budget.total != resolved.total ||
        budget.traversal != resolved.traversal ||
        budget.coreset != resolved.coreset ||
        budget.fast_math != resolved.fast_math) {
      *error = path + ": error-budget table does not match the config";
      return nullptr;
    }
    if (coreset.enabled) {
      // The serialized training data IS the coreset: a compressed model
      // must claim an original set at least as large, with a finite spent
      // error and at least one halving behind the size reduction.
      if (coreset.original_size < n ||
          !std::isfinite(coreset.achieved_error) ||
          coreset.achieved_error < 0.0 || coreset.halvings == 0) {
        *error = path + ": corrupt coreset metadata";
        return nullptr;
      }
    } else if (coreset.original_size != n || coreset.achieved_error != 0.0 ||
               coreset.halvings != 0) {
      *error = path + ": corrupt coreset metadata";
      return nullptr;
    }
  } else {
    coreset.original_size = n;
  }
  std::unique_ptr<TkdcClassifier> classifier =
      nocut ? std::make_unique<NocutClassifier>(config)
            : std::make_unique<TkdcClassifier>(config);
  classifier->Restore(data, bandwidths, threshold_lower, threshold_upper,
                      threshold, std::move(densities), std::move(index),
                      coreset);
  return classifier;
}

// The multi-class container: shape (K), the label/prior table, then K
// nested tkdc sections written by the exact single-class writer — the
// per-class payloads are byte-identical to what SaveModel would emit, so
// the section readers (and every validation they perform) are shared.
bool WriteMultiClassSection(Writer& w, const MultiClassClassifier& c,
                            bool include_densities, std::string* error) {
  const size_t k = c.num_classes();
  w.U64(k);
  for (size_t i = 0; i < k; ++i) {
    w.Str(c.class_labels()[i]);
    w.F64(c.priors()[i]);
  }
  for (size_t i = 0; i < k; ++i) {
    const TkdcClassifier& part = c.class_part(i);
    Dataset training_data(part.dims());
    if (!part.ExportTrainingData(&training_data)) {
      *error = "class " + c.class_labels()[i] +
               " cannot export its training data";
      return false;
    }
    WriteTkdcSection(w, part, training_data, include_densities);
  }
  return true;
}

std::unique_ptr<MultiClassClassifier> ReadMultiClassSection(
    Reader& r, uint32_t version, const std::string& path, std::string* error) {
  uint64_t k = 0;
  if (!r.U64(&k)) {
    *error = path + ": truncated multi-class header";
    return nullptr;
  }
  if (k < 2 || k > MultiClassClassifier::kMaxClasses) {
    *error = path + ": corrupt multi-class header";
    return nullptr;
  }
  std::vector<std::string> labels(k);
  std::vector<double> priors(k);
  for (uint64_t i = 0; i < k; ++i) {
    if (!r.Str(&labels[i], kMaxLabelLength) || !r.F64(&priors[i])) {
      *error = path + ": truncated multi-class label table";
      return nullptr;
    }
  }
  std::vector<std::unique_ptr<TkdcClassifier>> parts;
  parts.reserve(k);
  for (uint64_t i = 0; i < k; ++i) {
    std::unique_ptr<TkdcClassifier> part =
        ReadTkdcSection(r, version, /*nocut=*/false, path, error);
    if (part == nullptr) return nullptr;
    parts.push_back(std::move(part));
  }
  // RestoreParts re-validates everything the label/prior table and the
  // sections claim: distinct labels, priors summing to 1, equal dims and
  // kernel type across sections. A checksum-fixed corruption of the prior
  // table therefore still fails cleanly here.
  auto classifier =
      std::make_unique<MultiClassClassifier>(parts[0]->config());
  Status status = classifier->RestoreParts(std::move(parts), std::move(labels),
                                           std::move(priors));
  if (!status.ok()) {
    *error = path + ": " + status.message();
    return nullptr;
  }
  return classifier;
}

void WriteSimpleSection(Writer& w, const SimpleKdeClassifier& c,
                        const Dataset& training_data) {
  w.F64(c.options().p);
  w.U32(static_cast<uint32_t>(c.options().kernel));
  w.U64(training_data.dims());
  w.U64(training_data.size());
  w.DoubleVec(c.kernel().bandwidths());
  w.F64(c.threshold());
  w.DoubleVec(training_data.values());
}

std::unique_ptr<DensityClassifier> ReadSimpleSection(Reader& r,
                                                     const std::string& path,
                                                     std::string* error) {
  SimpleKdeOptions options;
  uint32_t kernel = 0;
  uint64_t dims = 0, n = 0;
  std::vector<double> bandwidths, values;
  double threshold = 0;
  if (!r.F64(&options.p) || !r.U32(&kernel) || !r.U64(&dims) || !r.U64(&n)) {
    *error = path + ": truncated model body";
    return nullptr;
  }
  if (!ValidRate(options.p) || kernel > 3 || dims == 0 || n < 2 ||
      dims > kMaxElements || n > kMaxElements || dims * n > kMaxElements) {
    *error = path + ": corrupt simple-kde section";
    return nullptr;
  }
  options.kernel = static_cast<KernelType>(kernel);
  if (!r.DoubleVec(&bandwidths, dims) || bandwidths.size() != dims ||
      !r.F64(&threshold) || !ReadValues(r, dims, n, &values) ||
      !ValidBandwidths(bandwidths)) {
    *error = path + ": truncated or corrupt simple-kde section";
    return nullptr;
  }
  Dataset data(dims, std::move(values));
  auto classifier = std::make_unique<SimpleKdeClassifier>(options);
  classifier->Restore(data, bandwidths, threshold);
  return classifier;
}

void WriteRkdeSection(Writer& w, const RkdeClassifier& c,
                      const Dataset& training_data) {
  TkdcConfig config = c.options().base;
  config.index_backend = c.model().tree->backend();
  WriteConfig(w, config);
  w.U64(training_data.dims());
  w.U64(training_data.size());
  w.DoubleVec(c.model().kernel->bandwidths());
  w.F64(c.model().radius_sq);
  w.F64(c.threshold());
  w.DoubleVec(training_data.values());
  WriteIndexSection(w, *c.model().tree);
}

std::unique_ptr<DensityClassifier> ReadRkdeSection(Reader& r, uint32_t version,
                                                   const std::string& path,
                                                   std::string* error) {
  RkdeOptions options;
  if (!ReadConfig(r, version, &options.base)) {
    *error = path + ": truncated or corrupt config block";
    return nullptr;
  }
  uint64_t dims = 0, n = 0;
  std::vector<double> bandwidths, values;
  double radius_sq = 0, threshold = 0;
  if (!r.U64(&dims) || !r.U64(&n) || dims == 0 || n < 2 ||
      dims > kMaxElements || n > kMaxElements || dims * n > kMaxElements) {
    *error = path + ": corrupt shape header";
    return nullptr;
  }
  if (!r.DoubleVec(&bandwidths, dims) || bandwidths.size() != dims ||
      !r.F64(&radius_sq) || !r.F64(&threshold) ||
      !ReadValues(r, dims, n, &values) || !ValidBandwidths(bandwidths) ||
      !(radius_sq > 0.0)) {
    *error = path + ": truncated or corrupt rkde section";
    return nullptr;
  }
  Dataset data(dims, std::move(values));
  std::unique_ptr<const SpatialIndex> index;
  if (version >= 3) {
    std::string why;
    index =
        ReadIndexSection(r, version, data, options.base.MakeIndexOptions(), &why);
    if (index == nullptr) {
      *error = path + ": " + why;
      return nullptr;
    }
    if (index->backend() != options.base.index_backend) {
      *error = path + ": index section backend contradicts config";
      return nullptr;
    }
  }
  auto classifier = std::make_unique<RkdeClassifier>(options);
  classifier->Restore(data, bandwidths, radius_sq, threshold,
                      std::move(index));
  return classifier;
}

void WriteBinnedSection(Writer& w, const BinnedKdeClassifier& c,
                        const Dataset& training_data) {
  w.F64(c.options().p);
  w.U32(static_cast<uint32_t>(c.options().kernel));
  w.U64(c.options().grid_size_override);
  w.F64(c.options().truncation_radius);
  w.U64(training_data.dims());
  w.U64(training_data.size());
  w.DoubleVec(c.model().kernel->bandwidths());
  w.F64(c.threshold());
  w.DoubleVec(training_data.values());
}

std::unique_ptr<DensityClassifier> ReadBinnedSection(Reader& r,
                                                     const std::string& path,
                                                     std::string* error) {
  BinnedKdeOptions options;
  uint32_t kernel = 0;
  uint64_t grid_size_override = 0;
  uint64_t dims = 0, n = 0;
  std::vector<double> bandwidths, values;
  double threshold = 0;
  if (!r.F64(&options.p) || !r.U32(&kernel) || !r.U64(&grid_size_override) ||
      !r.F64(&options.truncation_radius) || !r.U64(&dims) || !r.U64(&n)) {
    *error = path + ": truncated model body";
    return nullptr;
  }
  if (!ValidRate(options.p) || kernel > 3 ||
      !(options.truncation_radius > 0.0) || dims == 0 || dims > 4 || n < 2 ||
      n > kMaxElements || dims * n > kMaxElements) {
    *error = path + ": corrupt binned-kde section";
    return nullptr;
  }
  options.kernel = static_cast<KernelType>(kernel);
  options.grid_size_override = grid_size_override;
  if (!r.DoubleVec(&bandwidths, dims) || bandwidths.size() != dims ||
      !r.F64(&threshold) || !ReadValues(r, dims, n, &values) ||
      !ValidBandwidths(bandwidths)) {
    *error = path + ": truncated or corrupt binned-kde section";
    return nullptr;
  }
  Dataset data(dims, std::move(values));
  auto classifier = std::make_unique<BinnedKdeClassifier>(options);
  classifier->Restore(data, bandwidths, threshold);
  return classifier;
}

void WriteKnnSection(Writer& w, const KnnClassifier& c,
                     const Dataset& training_data) {
  w.F64(c.options().p);
  w.U64(c.options().k);
  w.U64(c.options().leaf_size);
  w.U64(training_data.dims());
  w.U64(training_data.size());
  w.F64(c.threshold());
  w.DoubleVec(training_data.values());
  WriteIndexSection(w, *c.model().tree);
}

std::unique_ptr<DensityClassifier> ReadKnnSection(Reader& r, uint32_t version,
                                                  const std::string& path,
                                                  std::string* error) {
  KnnOptions options;
  uint64_t k = 0, leaf_size = 0;
  uint64_t dims = 0, n = 0;
  std::vector<double> values;
  double threshold = 0;
  if (!r.F64(&options.p) || !r.U64(&k) || !r.U64(&leaf_size) ||
      !r.U64(&dims) || !r.U64(&n) || !r.F64(&threshold)) {
    *error = path + ": truncated model body";
    return nullptr;
  }
  if (!ValidRate(options.p) || k == 0 || leaf_size == 0 || dims == 0 ||
      n < 2 || dims > kMaxElements || n > kMaxElements ||
      dims * n > kMaxElements) {
    *error = path + ": corrupt knn section";
    return nullptr;
  }
  options.k = k;
  options.leaf_size = leaf_size;
  if (!ReadValues(r, dims, n, &values)) {
    *error = path + ": truncated data block";
    return nullptr;
  }
  Dataset data(dims, std::move(values));
  std::unique_ptr<const SpatialIndex> index;
  if (version >= 3) {
    IndexOptions index_options;
    index_options.leaf_size = options.leaf_size;
    std::string why;
    index = ReadIndexSection(r, version, data, std::move(index_options), &why);
    if (index == nullptr) {
      *error = path + ": " + why;
      return nullptr;
    }
    options.index_backend = index->backend();
  }
  auto classifier = std::make_unique<KnnClassifier>(options);
  classifier->Restore(data, threshold, std::move(index));
  return classifier;
}

// Shared front half of every load path: slurps the file, validates magic
// and version, and verifies the checksum over the whole payload BEFORE a
// single field is parsed — a flipped byte must never reach the model
// builders (where, say, a corrupted coordinate would fail an index-build
// invariant instead of producing a clean load error). On success fills the
// payload bytes, the format version, and the stored checksum (which the
// section parsers re-derive as their consumed-everything witness).
bool LoadVerifiedPayload(const std::string& path, std::string* payload,
                         uint32_t* version, uint64_t* stored_checksum,
                         std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());

  constexpr size_t kHeaderSize = sizeof(kMagic) + sizeof(uint32_t);
  constexpr size_t kTrailerSize = sizeof(uint64_t);
  if (buffer.size() < kHeaderSize + kTrailerSize) {
    *error = path + ": truncated model file";
    return false;
  }
  if (std::memcmp(buffer.data(), kMagic, sizeof(kMagic)) != 0) {
    *error = path + ": not a tkdc model file";
    return false;
  }
  std::memcpy(version, buffer.data() + sizeof(kMagic), sizeof(*version));
  if (*version < 1 || *version > kModelFormatVersion) {
    *error = path + ": unsupported model format version";
    return false;
  }

  const size_t payload_size = buffer.size() - kHeaderSize - kTrailerSize;
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(buffer.data()) + kHeaderSize;
  uint64_t computed = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < payload_size; ++i) {
    computed ^= bytes[i];
    computed *= 0x100000001b3ULL;
  }
  std::memcpy(stored_checksum, buffer.data() + buffer.size() - kTrailerSize,
              sizeof(*stored_checksum));
  if (computed != *stored_checksum) {
    *error = path + ": checksum mismatch (file corrupted)";
    return false;
  }
  *payload = buffer.substr(kHeaderSize, payload_size);
  return true;
}

std::unique_ptr<DensityClassifier> LoadImpl(const std::string& path,
                                            std::string* error) {
  TKDC_CHECK(error != nullptr);
  std::string payload;
  uint32_t version = 0;
  uint64_t stored_checksum = 0;
  if (!LoadVerifiedPayload(path, &payload, &version, &stored_checksum,
                           error)) {
    return nullptr;
  }

  std::istringstream payload_in(std::move(payload));
  Reader r(payload_in);
  uint32_t tag = kTagTkdc;  // Version-1 files are always plain tkdc.
  if (version >= 2 && !r.U32(&tag)) {
    *error = path + ": truncated algorithm tag";
    return nullptr;
  }
  std::unique_ptr<DensityClassifier> classifier;
  switch (tag) {
    case kTagTkdc:
      classifier = ReadTkdcSection(r, version, /*nocut=*/false, path, error);
      break;
    case kTagNocut:
      classifier = ReadTkdcSection(r, version, /*nocut=*/true, path, error);
      break;
    case kTagSimple:
      classifier = ReadSimpleSection(r, path, error);
      break;
    case kTagRkde:
      classifier = ReadRkdeSection(r, version, path, error);
      break;
    case kTagBinned:
      classifier = ReadBinnedSection(r, path, error);
      break;
    case kTagKnn:
      classifier = ReadKnnSection(r, version, path, error);
      break;
    case kTagMultiClass:
      *error = path +
               ": holds a multi-class model (use LoadMultiClassModel)";
      return nullptr;
    default:
      *error = path + ": unknown algorithm tag";
      return nullptr;
  }
  if (classifier == nullptr) return nullptr;

  // The section parser must consume the payload exactly; the streaming
  // checksum doubles as the consumed-everything witness (it only matches
  // the stored value if every payload byte passed through the Reader).
  if (r.checksum() != stored_checksum) {
    *error = path + ": malformed model payload (trailing bytes)";
    return nullptr;
  }
  return classifier;
}

}  // namespace

bool SaveModel(const std::string& path, const DensityClassifier& classifier,
               const Dataset& training_data, bool include_densities,
               std::string* error) {
  TKDC_CHECK(error != nullptr);
  if (!classifier.trained()) {
    *error = "classifier is not trained";
    return false;
  }
  const uint32_t tag = TagFor(classifier);
  if (tag == 0) {
    *error = "unsupported algorithm: " + classifier.name();
    return false;
  }
  if (classifier.dims() != training_data.dims()) {
    *error = "training_data does not match the classifier's model";
    return false;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  out.write(kMagic, sizeof(kMagic));
  const uint32_t version = kModelFormatVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));

  Writer w(out);
  w.U32(tag);
  switch (tag) {
    case kTagTkdc:
    case kTagNocut: {
      const auto& c = dynamic_cast<const TkdcClassifier&>(classifier);
      // A compressed model serializes its coreset, not the original rows
      // the caller trained with: the index, grid, and SoA rebuild all
      // derive from the coreset, and the original set is gone by design.
      Dataset coreset(training_data.dims());
      const Dataset* rows = &training_data;
      if (c.coreset_info().enabled && training_data.size() != c.tree().size()) {
        TKDC_CHECK(c.ExportTrainingData(&coreset));
        rows = &coreset;
      }
      if (c.tree().size() != rows->size()) {
        *error = "training_data does not match the classifier's index";
        return false;
      }
      WriteTkdcSection(w, c, *rows, include_densities);
      break;
    }
    case kTagSimple: {
      const auto& c = dynamic_cast<const SimpleKdeClassifier&>(classifier);
      if (c.training_data().size() != training_data.size()) {
        *error = "training_data does not match the classifier's model";
        return false;
      }
      WriteSimpleSection(w, c, training_data);
      break;
    }
    case kTagRkde: {
      const auto& c = dynamic_cast<const RkdeClassifier&>(classifier);
      if (c.model().tree->size() != training_data.size()) {
        *error = "training_data does not match the classifier's index";
        return false;
      }
      WriteRkdeSection(w, c, training_data);
      break;
    }
    case kTagBinned: {
      WriteBinnedSection(w, dynamic_cast<const BinnedKdeClassifier&>(classifier),
                         training_data);
      break;
    }
    case kTagKnn: {
      const auto& c = dynamic_cast<const KnnClassifier&>(classifier);
      if (c.model().tree->size() != training_data.size()) {
        *error = "training_data does not match the classifier's index";
        return false;
      }
      WriteKnnSection(w, c, training_data);
      break;
    }
    default:
      *error = "unsupported algorithm: " + classifier.name();
      return false;
  }
  const uint64_t checksum = w.checksum();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out) {
    *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

std::unique_ptr<TkdcClassifier> LoadModel(const std::string& path,
                                          std::string* error) {
  std::unique_ptr<DensityClassifier> classifier = LoadImpl(path, error);
  if (classifier == nullptr) return nullptr;
  auto* tkdc = dynamic_cast<TkdcClassifier*>(classifier.get());
  if (tkdc == nullptr) {
    *error = path + ": holds a " + classifier->name() +
             " model, not tkdc (use LoadAnyModel)";
    return nullptr;
  }
  classifier.release();
  return std::unique_ptr<TkdcClassifier>(tkdc);
}

std::unique_ptr<DensityClassifier> LoadAnyModel(const std::string& path,
                                                std::string* error) {
  return LoadImpl(path, error);
}

bool SaveMultiClassModel(const std::string& path,
                         const MultiClassClassifier& classifier,
                         bool include_densities, std::string* error) {
  TKDC_CHECK(error != nullptr);
  if (!classifier.trained()) {
    *error = "classifier is not trained";
    return false;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  out.write(kMagic, sizeof(kMagic));
  const uint32_t version = kModelFormatVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));

  Writer w(out);
  w.U32(kTagMultiClass);
  if (!WriteMultiClassSection(w, classifier, include_densities, error)) {
    return false;
  }
  const uint64_t checksum = w.checksum();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out) {
    *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

std::unique_ptr<MultiClassClassifier> LoadMultiClassModel(
    const std::string& path, std::string* error) {
  TKDC_CHECK(error != nullptr);
  std::string payload;
  uint32_t version = 0;
  uint64_t stored_checksum = 0;
  if (!LoadVerifiedPayload(path, &payload, &version, &stored_checksum,
                           error)) {
    return nullptr;
  }

  std::istringstream payload_in(std::move(payload));
  Reader r(payload_in);
  uint32_t tag = kTagTkdc;  // Version-1 files are always plain tkdc.
  if (version >= 2 && !r.U32(&tag)) {
    *error = path + ": truncated algorithm tag";
    return nullptr;
  }
  if (tag != kTagMultiClass) {
    *error = path + ": holds a single-class model (use LoadAnyModel)";
    return nullptr;
  }
  std::unique_ptr<MultiClassClassifier> classifier =
      ReadMultiClassSection(r, version, path, error);
  if (classifier == nullptr) return nullptr;

  // Same consumed-everything witness as LoadImpl: the streaming checksum
  // only matches the stored value if every payload byte passed through
  // the Reader.
  if (r.checksum() != stored_checksum) {
    *error = path + ": malformed model payload (trailing bytes)";
    return nullptr;
  }
  return classifier;
}

ModelKind ProbeModelKind(const std::string& path, std::string* error) {
  TKDC_CHECK(error != nullptr);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return ModelKind::kInvalid;
  }
  // Magic, version, and (version >= 2) the leading algorithm tag of the
  // payload — enough to dispatch without reading the body.
  char magic[sizeof(kMagic)] = {};
  uint32_t version = 0;
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    *error = path + ": not a tkdc model file";
    return ModelKind::kInvalid;
  }
  if (!in.read(reinterpret_cast<char*>(&version), sizeof(version)) ||
      version < 1 || version > kModelFormatVersion) {
    *error = path + ": unsupported model format version";
    return ModelKind::kInvalid;
  }
  uint32_t tag = kTagTkdc;  // Version-1 files are always plain tkdc.
  if (version >= 2 &&
      !in.read(reinterpret_cast<char*>(&tag), sizeof(tag))) {
    *error = path + ": truncated model file";
    return ModelKind::kInvalid;
  }
  return tag == kTagMultiClass ? ModelKind::kMultiClass
                               : ModelKind::kSingleClass;
}

}  // namespace tkdc
