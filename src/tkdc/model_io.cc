#include "tkdc/model_io.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "common/macros.h"

namespace tkdc {
namespace {

constexpr char kMagic[4] = {'T', 'K', 'D', 'C'};

// Streaming writer with a running FNV-1a checksum over the payload.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void Bytes(const void* data, size_t size) {
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      checksum_ ^= bytes[i];
      checksum_ *= 0x100000001b3ULL;
    }
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
  }

  void U8(uint8_t v) { Bytes(&v, sizeof(v)); }
  void U32(uint32_t v) { Bytes(&v, sizeof(v)); }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) { Bytes(&v, sizeof(v)); }
  void DoubleVec(const std::vector<double>& v) {
    U64(v.size());
    if (!v.empty()) Bytes(v.data(), v.size() * sizeof(double));
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::ostream& out_;
  uint64_t checksum_ = 0xcbf29ce484222325ULL;
};

// Streaming reader mirroring Writer; every method returns false on
// truncation so corruption surfaces as a clean error.
class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  bool Bytes(void* data, size_t size) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (!in_) return false;
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      checksum_ ^= bytes[i];
      checksum_ *= 0x100000001b3ULL;
    }
    return true;
  }

  bool U8(uint8_t* v) { return Bytes(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Bytes(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Bytes(v, sizeof(*v)); }
  bool F64(double* v) { return Bytes(v, sizeof(*v)); }
  bool DoubleVec(std::vector<double>* v, uint64_t max_size) {
    uint64_t size = 0;
    if (!U64(&size)) return false;
    if (size > max_size) return false;  // Corrupt size field.
    v->resize(size);
    if (size == 0) return true;
    return Bytes(v->data(), size * sizeof(double));
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::istream& in_;
  uint64_t checksum_ = 0xcbf29ce484222325ULL;
};

void WriteConfig(Writer& w, const TkdcConfig& config) {
  w.F64(config.p);
  w.F64(config.epsilon);
  w.F64(config.delta);
  w.F64(config.bandwidth_scale);
  w.U32(static_cast<uint32_t>(config.kernel));
  w.U32(static_cast<uint32_t>(config.bandwidth_rule));
  w.U8(config.use_threshold_rule ? 1 : 0);
  w.U8(config.use_tolerance_rule ? 1 : 0);
  w.U8(config.use_grid ? 1 : 0);
  w.U64(config.grid_max_dims);
  w.U32(static_cast<uint32_t>(config.split_rule));
  w.U32(static_cast<uint32_t>(config.axis_rule));
  w.U64(config.leaf_size);
  w.U64(config.r0);
  w.U64(config.s0);
  w.F64(config.h_backoff);
  w.F64(config.h_buffer);
  w.F64(config.h_growth);
  w.U64(config.seed);
}

bool ReadConfig(Reader& r, TkdcConfig* config) {
  uint32_t kernel = 0, bandwidth_rule = 0, split_rule = 0, axis_rule = 0;
  uint8_t threshold_rule = 0, tolerance_rule = 0, grid = 0;
  uint64_t grid_max_dims = 0, leaf_size = 0, r0 = 0, s0 = 0, seed = 0;
  if (!r.F64(&config->p) || !r.F64(&config->epsilon) ||
      !r.F64(&config->delta) || !r.F64(&config->bandwidth_scale) ||
      !r.U32(&kernel) || !r.U32(&bandwidth_rule) || !r.U8(&threshold_rule) ||
      !r.U8(&tolerance_rule) || !r.U8(&grid) || !r.U64(&grid_max_dims) ||
      !r.U32(&split_rule) || !r.U32(&axis_rule) || !r.U64(&leaf_size) ||
      !r.U64(&r0) || !r.U64(&s0) || !r.F64(&config->h_backoff) ||
      !r.F64(&config->h_buffer) || !r.F64(&config->h_growth) ||
      !r.U64(&seed)) {
    return false;
  }
  if (kernel > 3 || bandwidth_rule > 1 || split_rule > 2 || axis_rule > 1) {
    return false;
  }
  config->kernel = static_cast<KernelType>(kernel);
  config->bandwidth_rule = static_cast<BandwidthRule>(bandwidth_rule);
  config->use_threshold_rule = threshold_rule != 0;
  config->use_tolerance_rule = tolerance_rule != 0;
  config->use_grid = grid != 0;
  config->grid_max_dims = grid_max_dims;
  config->split_rule = static_cast<SplitRule>(split_rule);
  config->axis_rule = static_cast<SplitAxisRule>(axis_rule);
  config->leaf_size = leaf_size;
  config->r0 = r0;
  config->s0 = s0;
  config->seed = seed;
  return true;
}

}  // namespace

bool SaveModel(const std::string& path, const TkdcClassifier& classifier,
               const Dataset& training_data, bool include_densities,
               std::string* error) {
  TKDC_CHECK(error != nullptr);
  if (!classifier.trained()) {
    *error = "classifier is not trained";
    return false;
  }
  if (classifier.tree().size() != training_data.size() ||
      classifier.tree().dims() != training_data.dims()) {
    *error = "training_data does not match the classifier's index";
    return false;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  out.write(kMagic, sizeof(kMagic));
  const uint32_t version = kModelFormatVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));

  Writer w(out);
  WriteConfig(w, classifier.config());
  w.U64(training_data.dims());
  w.U64(training_data.size());
  w.DoubleVec(classifier.kernel().bandwidths());
  w.F64(classifier.threshold_lower());
  w.F64(classifier.threshold_upper());
  w.F64(classifier.threshold());
  w.U8(include_densities ? 1 : 0);
  if (include_densities) {
    w.DoubleVec(classifier.training_densities());
  }
  w.DoubleVec(training_data.values());
  const uint64_t checksum = w.checksum();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out) {
    *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

std::unique_ptr<TkdcClassifier> LoadModel(const std::string& path,
                                          std::string* error) {
  TKDC_CHECK(error != nullptr);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return nullptr;
  }
  char magic[4] = {0, 0, 0, 0};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    *error = path + ": not a tkdc model file";
    return nullptr;
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kModelFormatVersion) {
    *error = path + ": unsupported model format version";
    return nullptr;
  }

  Reader r(in);
  TkdcConfig config;
  if (!ReadConfig(r, &config)) {
    *error = path + ": truncated or corrupt config block";
    return nullptr;
  }
  uint64_t dims = 0, n = 0;
  if (!r.U64(&dims) || !r.U64(&n) || dims == 0 || n < 2) {
    *error = path + ": corrupt shape header";
    return nullptr;
  }
  // Guard absurd sizes before allocating (corrupt headers).
  constexpr uint64_t kMaxElements = uint64_t{1} << 34;
  if (dims > kMaxElements || n > kMaxElements || dims * n > kMaxElements) {
    *error = path + ": implausible model dimensions";
    return nullptr;
  }
  std::vector<double> bandwidths;
  double threshold_lower = 0, threshold_upper = 0, threshold = 0;
  uint8_t has_densities = 0;
  std::vector<double> densities;
  std::vector<double> values;
  if (!r.DoubleVec(&bandwidths, dims) || bandwidths.size() != dims ||
      !r.F64(&threshold_lower) || !r.F64(&threshold_upper) ||
      !r.F64(&threshold) || !r.U8(&has_densities)) {
    *error = path + ": truncated model body";
    return nullptr;
  }
  if (has_densities != 0 &&
      (!r.DoubleVec(&densities, n) || densities.size() != n)) {
    *error = path + ": truncated density block";
    return nullptr;
  }
  if (!r.DoubleVec(&values, dims * n) || values.size() != dims * n) {
    *error = path + ": truncated data block";
    return nullptr;
  }
  uint64_t stored_checksum = 0;
  in.read(reinterpret_cast<char*>(&stored_checksum),
          sizeof(stored_checksum));
  if (!in || stored_checksum != r.checksum()) {
    *error = path + ": checksum mismatch (file corrupted)";
    return nullptr;
  }
  for (double h : bandwidths) {
    if (!(h > 0.0)) {
      *error = path + ": invalid bandwidths";
      return nullptr;
    }
  }

  Dataset data(dims, std::move(values));
  auto classifier = std::make_unique<TkdcClassifier>(config);
  classifier->Restore(data, bandwidths, threshold_lower, threshold_upper,
                      threshold, std::move(densities));
  return classifier;
}

}  // namespace tkdc
