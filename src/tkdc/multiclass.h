#ifndef TKDC_TKDC_MULTICLASS_H_
#define TKDC_TKDC_MULTICLASS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "data/dataset.h"
#include "index/index_backend.h"
#include "kde/batch_executor.h"
#include "kde/query_context.h"
#include "tkdc/classifier.h"
#include "tkdc/config.h"
#include "tkdc/density_bounds.h"

namespace tkdc {

/// How a multi-class query was decided (see MultiClassClassifier).
enum class McDecision : uint8_t {
  kNone = 0,
  /// Cross-class elimination left a single survivor.
  kSingleSurvivor,
  /// Every contender's posterior upper bound fell within the (1 + eps)
  /// band of the leader's lower bound.
  kConverged,
  /// Every surviving class's traversal drained: the bounds are exact and
  /// the answer is the true argmax.
  kExact,
};

inline const char* McDecisionName(McDecision decision) {
  switch (decision) {
    case McDecision::kNone:
      return "none";
    case McDecision::kSingleSurvivor:
      return "single_survivor";
    case McDecision::kConverged:
      return "converged";
    case McDecision::kExact:
      return "exact";
  }
  return "unknown";
}

/// One round of a traced multi-class refinement: the per-class certified
/// density bounds and the survivor mask as they stood after the round.
/// Snapshot 0 is the seed state (root bounds, everything alive); the final
/// snapshot is the state at decision time. Tracing allocates — tests and
/// diagnostics only, never benchmarked paths.
struct McRoundSnapshot {
  /// Certified bounds on the *raw* class density f_c(q) (not multiplied by
  /// the prior), one entry per class.
  std::vector<DensityBounds> density;
  /// 1 = still a candidate, 0 = eliminated by the cross-class cutoff.
  std::vector<uint8_t> alive;
};

/// Per-thread state of a multi-class query: one TreeQueryContext (traversal
/// heap + counters) per class, plus the round-robin scratch. The per-class
/// counters are folded into this context's own `stats` at the end of every
/// query, so the base-class MergeCounters/ResetCounters contract holds
/// unchanged and batch totals stay bit-identical at any thread count.
class MultiClassQueryContext : public QueryContext {
 public:
  /// Per-class traversal state; sized lazily by the classifier.
  std::vector<std::unique_ptr<TreeQueryContext>> class_contexts;

  /// Round-robin scratch, reused across queries.
  std::vector<DensityBounds> bounds;
  std::vector<uint8_t> alive;
  std::vector<uint8_t> drained;

  /// Introspection of the most recent query (tests, metrics).
  McDecision last_decision = McDecision::kNone;
  uint32_t last_rounds = 0;
  uint32_t last_survivors = 0;
};

/// Multi-class nonparametric Bayes classification on top of the paper's
/// bound machinery: one immutable TkdcModel per class (trained by the
/// standard pipeline, Algorithm 1), classification by *simultaneous*
/// round-robin bound refinement across the K class trees.
///
/// For a query q the engine maintains a certified posterior interval
/// [prior_c * f_lo_c(q), prior_c * f_hi_c(q)] per class and repeats:
///
///   1. Elimination (the cross-class analogue of Eq. 9): a class c is
///      eliminated as soon as prior_c * f_hi_c < max_j prior_j * f_lo_j
///      over the surviving classes. The rule is *sound* — an eliminated
///      class can never be the exact argmax, because its exact posterior
///      sits below its upper bound, which sits below another class's exact
///      posterior.
///   2. Convergence (the Eq. 9 epsilon band): once every contender's upper
///      posterior is within (1 + eps) of the leader's lower posterior the
///      leader is declared. Any contender's exact posterior then exceeds
///      the declared winner's by at most the relative epsilon band — the
///      same tolerance the single-threshold classifier grants.
///   3. Refinement: each surviving class whose posterior width still
///      exceeds its share eps/m of the leader's lower bound (m = current
///      survivor count — the tolerance budget is split across survivors so
///      the pairwise comparisons cannot compound past eps) receives a small
///      expansion budget; classes already tight enough yield their budget.
///
/// The loop terminates: every refinement round expands at least one node
/// of some class, and a class whose traversal drains has exact bounds.
///
/// Thread model mirrors DensityClassifier: the trained state is immutable,
/// ClassifyInContext is const, scratch lives in MultiClassQueryContext,
/// and ClassifyBatch fans rows across a BatchExecutor with one context per
/// worker — labels and merged counters are bit-identical at every thread
/// count. Train()/Classify()/ClassifyBatch() themselves must not be called
/// concurrently (the facade is externally single-threaded, like every
/// classifier in the lineup).
class MultiClassClassifier {
 public:
  explicit MultiClassClassifier(TkdcConfig config = TkdcConfig());

  MultiClassClassifier(const MultiClassClassifier&) = delete;
  MultiClassClassifier& operator=(const MultiClassClassifier&) = delete;

  /// Upper bound on K accepted by training and the model format.
  static constexpr size_t kMaxClasses = 4096;

  /// Trains one model per distinct label in `row_labels` (parallel to the
  /// rows of `data`; classes are ordered lexicographically by label).
  /// `priors` must either be empty — empirical class frequencies — or hold
  /// one positive weight per class in label order, summing to 1 within
  /// 1e-6. Degenerate inputs (fewer than two classes, a class with fewer
  /// than two rows, bad priors) return an error Status per the repo error
  /// policy; the classifier is left untrained.
  Status Train(const Dataset& data, const std::vector<std::string>& row_labels,
               std::vector<double> priors = {});

  /// Train() with the per-class datasets already split out, in class-label
  /// order. Duplicate or empty labels, empty classes, and bad priors are
  /// rejected with an error Status.
  Status TrainParts(const std::vector<Dataset>& class_data,
                    std::vector<std::string> class_labels,
                    std::vector<double> priors = {});

  /// Adopts already-trained per-class classifiers (model deserialization):
  /// validates the same invariants as training — K >= 2, distinct labels,
  /// priors summing to 1 — plus cross-part consistency (every part trained,
  /// equal dims, equal kernel type). `priors` is required here.
  Status RestoreParts(std::vector<std::unique_ptr<TkdcClassifier>> parts,
                      std::vector<std::string> class_labels,
                      std::vector<double> priors);

  bool trained() const { return !parts_.empty(); }
  size_t num_classes() const { return parts_.size(); }
  size_t dims() const { return parts_.empty() ? 0 : parts_[0]->dims(); }
  const TkdcConfig& config() const { return config_; }
  const std::vector<std::string>& class_labels() const { return labels_; }
  const std::vector<double>& priors() const { return priors_; }
  std::optional<IndexBackend> index_backend() const {
    return parts_.empty() ? std::nullopt : parts_[0]->index_backend();
  }

  /// The per-class trained classifier (model IO, benches, tests).
  const TkdcClassifier& class_part(size_t c) const { return *parts_[c]; }

  std::unique_ptr<MultiClassQueryContext> MakeQueryContext() const;

  /// Classifies `x`, returning the class index (into class_labels()).
  uint32_t ClassifyInContext(MultiClassQueryContext& ctx,
                             std::span<const double> x) const {
    return ClassifyImpl(ctx, x, nullptr);
  }

  /// ClassifyInContext with a per-round capture of every class's bounds
  /// and the survivor mask (diagnostics/tests only; allocates).
  uint32_t ClassifyTraced(MultiClassQueryContext& ctx,
                          std::span<const double> x,
                          std::vector<McRoundSnapshot>* trace) const {
    return ClassifyImpl(ctx, x, trace);
  }

  /// Single-query conveniences against the facade's live context.
  uint32_t Classify(std::span<const double> x) {
    return ClassifyInContext(live_context(), x);
  }
  const std::string& ClassifyLabel(std::span<const double> x) {
    return labels_[Classify(x)];
  }

  /// Classifies every row of `queries` through the batch executor; the
  /// returned indices and the merged counters are bit-identical at every
  /// thread count.
  std::vector<uint32_t> ClassifyBatch(const Dataset& queries);

  /// Re-sizes the batch executor (0 = hardware concurrency, 1 = serial).
  void SetNumThreads(size_t num_threads) {
    executor_.SetNumThreads(num_threads);
  }
  size_t num_threads() const { return executor_.num_threads(); }

  /// Attaches (or detaches, nullptr) a metrics registry. Registers the
  /// standard query schema plus the mc.* schema — aggregate counters
  /// (mc.queries, mc.class_eliminations, mc.decided.*), the mc.rounds and
  /// mc.survivors_at_decision histograms, and the per-class cutoff-reason
  /// counters mc.class.<label>.{eliminated,won}. Attach after training for
  /// the per-class names (training re-registers them when a registry is
  /// already attached).
  void AttachMetrics(MetricsRegistry* registry);

  /// Folds the live context's shard into the attached registry.
  void FlushMetrics();
  MetricsRegistry* metrics_registry() const { return registry_; }

  /// Counters of every query answered through this facade (the live
  /// context, which batch calls also merge their per-worker totals into).
  const TraversalStats& query_stats() const {
    static const TraversalStats kEmpty;
    return live_context_ != nullptr ? live_context_->stats : kEmpty;
  }

 private:
  /// Metric ids of the mc.* schema within the attached registry (valid
  /// only while registry_ != nullptr).
  struct McMetricIds {
    size_t queries = 0;
    size_t eliminations = 0;
    size_t decided_single = 0;
    size_t decided_converged = 0;
    size_t decided_exact = 0;
    size_t rounds_hist = 0;
    size_t survivors_hist = 0;
    std::vector<size_t> class_eliminated;  // Per class, label order.
    std::vector<size_t> class_won;
  };

  uint32_t ClassifyImpl(MultiClassQueryContext& ctx, std::span<const double> x,
                        std::vector<McRoundSnapshot>* trace) const;

  /// Adopts validated parts: builds the per-class bound evaluators and
  /// resets query state. Shared tail of TrainParts/RestoreParts.
  void InstallParts(std::vector<std::unique_ptr<TkdcClassifier>> parts,
                    std::vector<std::string> labels,
                    std::vector<double> priors);

  void EnsureScratch(MultiClassQueryContext& ctx) const;
  MultiClassQueryContext& live_context();
  void AttachShard(QueryContext& ctx) const {
    ctx.AttachMetricsShard(registry_ != nullptr ? registry_->NewShard()
                                                : nullptr);
  }
  void RegisterSchema(MetricsRegistry& registry);
  void ResetQueryState() {
    live_context_.reset();
    executor_.InvalidateContexts();
  }

  TkdcConfig config_;
  /// Resolved error budget, frozen by InstallParts (the cross-class loop
  /// reads the traversal share on every query).
  ErrorBudget budget_;
  std::vector<std::unique_ptr<TkdcClassifier>> parts_;
  std::vector<std::string> labels_;
  std::vector<double> priors_;
  /// One stateless bound evaluator per class, borrowing that part's tree,
  /// kernel, and config (all owned by parts_, which outlives this vector).
  std::vector<DensityBoundEvaluator> evaluators_;

  std::unique_ptr<MultiClassQueryContext> live_context_;
  BatchExecutor executor_{1};
  MetricsRegistry* registry_ = nullptr;
  McMetricIds mc_ids_;
};

}  // namespace tkdc

#endif  // TKDC_TKDC_MULTICLASS_H_
