#include "tkdc/error_budget.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tkdc {

Status ErrorBudget::Validate() const {
  const auto finite_nonneg = [](double v) {
    return std::isfinite(v) && v >= 0.0;
  };
  if (!finite_nonneg(total) || !finite_nonneg(traversal) ||
      !finite_nonneg(coreset) || !finite_nonneg(fast_math)) {
    return Status::Error("error-budget shares must be finite and >= 0");
  }
  if (total <= 0.0) return Status::Error("error-budget total must be > 0");
  if (traversal <= 0.0) {
    return Status::Error("error-budget traversal share must be > 0");
  }
  // Shares are produced by one subtraction from the total, so exact
  // equality holds for every resolved budget; the tolerance only forgives
  // benign round-off in hand-built decompositions, never a corrupted one.
  const double sum = traversal + coreset + fast_math;
  if (std::abs(sum - total) > 1e-12 * std::max(1.0, total)) {
    return Status::Error("error-budget shares do not sum to the total");
  }
  return Status::Ok();
}

std::string ErrorBudget::Summary() const {
  std::ostringstream out;
  out << "total " << total << " = traversal " << traversal << " + coreset "
      << coreset << " + fast-math " << fast_math;
  return out.str();
}

Result<ErrorBudget> ResolveErrorBudget(double epsilon, double coreset_epsilon,
                                       bool fast_math_leaf) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Errorf() << "epsilon must be positive";
  }
  if (!(coreset_epsilon >= 0.0) || !std::isfinite(coreset_epsilon)) {
    return Errorf() << "coreset_epsilon must be finite and >= 0";
  }
  if (coreset_epsilon >= epsilon) {
    return Errorf() << "coreset_epsilon (" << coreset_epsilon
                    << ") must be strictly below epsilon (" << epsilon
                    << "): the traversal band needs a positive share";
  }
  ErrorBudget budget;
  budget.total = epsilon;
  budget.coreset = coreset_epsilon;
  // The fast-math carve-out is capped at half the remaining band so the
  // traversal share always stays positive, even at pathological epsilons.
  budget.fast_math =
      fast_math_leaf
          ? std::min(kFastMathLeafShare, 0.5 * (epsilon - coreset_epsilon))
          : 0.0;
  // One subtraction: with coreset_epsilon == 0 and exact leaf math this is
  // exactly epsilon, which is what makes the refactor bit-identical for
  // uncompressed models.
  budget.traversal = epsilon - coreset_epsilon - budget.fast_math;
  return budget;
}

}  // namespace tkdc
