#include "tkdc/config.h"

#include <utility>

#include "common/macros.h"
#include "common/parallel.h"

namespace tkdc {

void TkdcConfig::Validate() const {
  TKDC_CHECK_MSG(p > 0.0 && p < 1.0, "p must be in (0, 1)");
  TKDC_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  TKDC_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  TKDC_CHECK_MSG(bandwidth_scale > 0.0, "bandwidth_scale must be positive");
  TKDC_CHECK_MSG(leaf_size >= 1, "leaf_size must be >= 1");
  TKDC_CHECK_MSG(r0 >= 2, "r0 must be >= 2");
  TKDC_CHECK_MSG(s0 >= 2, "s0 must be >= 2");
  TKDC_CHECK_MSG(h_backoff > 1.0, "h_backoff must be > 1");
  TKDC_CHECK_MSG(h_buffer >= 1.0, "h_buffer must be >= 1");
  TKDC_CHECK_MSG(h_growth > 1.0, "h_growth must be > 1");
  TKDC_CHECK_MSG(num_threads <= 4096, "num_threads out of range");
}

IndexOptions TkdcConfig::MakeIndexOptions(std::vector<double> scale) const {
  IndexOptions options;
  options.leaf_size = leaf_size;
  options.split_rule = split_rule;
  options.axis_rule = axis_rule;
  options.backend = index_backend;
  options.scale = std::move(scale);
  return options;
}

size_t TkdcConfig::ResolvedNumThreads() const {
  return num_threads == 0 ? HardwareConcurrency() : num_threads;
}

std::string TkdcConfig::OptimizationSummary() const {
  std::string summary;
  summary += use_threshold_rule ? "+threshold" : "-threshold";
  summary += use_tolerance_rule ? " +tolerance" : " -tolerance";
  summary += use_grid ? " +grid" : " -grid";
  summary += " split=" + SplitRuleName(split_rule);
  summary += " index=" + IndexBackendName(index_backend);
  return summary;
}

}  // namespace tkdc
