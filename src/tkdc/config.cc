#include "tkdc/config.h"

#include <utility>

#include "common/macros.h"
#include "common/parallel.h"

namespace tkdc {

Status TkdcConfig::Validate() const {
  if (!(p > 0.0 && p < 1.0)) return Status::Error("p must be in (0, 1)");
  if (!(epsilon > 0.0)) return Status::Error("epsilon must be positive");
  if (const Result<ErrorBudget> budget =
          ResolveErrorBudget(epsilon, coreset_epsilon, fast_math_leaf);
      !budget.ok()) {
    return budget.status();
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::Error("delta must be in (0, 1)");
  }
  if (!(bandwidth_scale > 0.0)) {
    return Status::Error("bandwidth_scale must be positive");
  }
  if (leaf_size < 1) return Status::Error("leaf_size must be >= 1");
  if (r0 < 2) return Status::Error("r0 must be >= 2");
  if (s0 < 2) return Status::Error("s0 must be >= 2");
  if (!(h_backoff > 1.0)) return Status::Error("h_backoff must be > 1");
  if (!(h_buffer >= 1.0)) return Status::Error("h_buffer must be >= 1");
  if (!(h_growth > 1.0)) return Status::Error("h_growth must be > 1");
  if (num_threads > 4096) return Status::Error("num_threads out of range");
  return Status::Ok();
}

void TkdcConfig::CheckValid() const {
  const Status status = Validate();
  TKDC_CHECK_MSG(status.ok(), status.message().c_str());
}

IndexOptions TkdcConfig::MakeIndexOptions(std::vector<double> scale) const {
  IndexOptions options;
  options.leaf_size = leaf_size;
  options.split_rule = split_rule;
  options.axis_rule = axis_rule;
  options.backend = index_backend;
  options.scale = std::move(scale);
  return options;
}

ErrorBudget TkdcConfig::ResolveBudget() const {
  Result<ErrorBudget> budget =
      ResolveErrorBudget(epsilon, coreset_epsilon, fast_math_leaf);
  TKDC_CHECK_MSG(budget.ok(), budget.message().c_str());
  return budget.take();
}

size_t TkdcConfig::ResolvedNumThreads() const {
  return num_threads == 0 ? HardwareConcurrency() : num_threads;
}

std::string TkdcConfig::OptimizationSummary() const {
  std::string summary;
  summary += use_threshold_rule ? "+threshold" : "-threshold";
  summary += use_tolerance_rule ? " +tolerance" : " -tolerance";
  summary += use_grid ? " +grid" : " -grid";
  summary += " split=" + SplitRuleName(split_rule);
  summary += " index=" + IndexBackendName(index_backend);
  summary += " simd=";
  summary += SimdBackendName(ActiveSimdBackend());
  if (fast_math_leaf) summary += " +fast-math-leaf";
  return summary;
}

}  // namespace tkdc
