#ifndef TKDC_TKDC_THRESHOLD_H_
#define TKDC_TKDC_THRESHOLD_H_

#include <cstdint>

#include "data/dataset.h"
#include "index/spatial_index.h"
#include "kde/kernel.h"
#include "tkdc/config.h"
#include "tkdc/density_bounds.h"

namespace tkdc {

/// Output of the bootstrapped threshold bound (paper Algorithm 3).
struct ThresholdBootstrapResult {
  /// Probabilistic lower bound on t(p): with probability >= 1 - delta the
  /// true quantile threshold is >= lower.
  double lower = 0.0;
  /// Probabilistic upper bound on t(p).
  double upper = 0.0;
  /// Bootstrap iterations executed (including retries after backoff).
  size_t iterations = 0;
  /// Times an invalid bound was detected and backed off.
  size_t backoffs = 0;
  /// Total traversal work across all iterations.
  TraversalStats stats;
};

/// Bootstrapped estimation of coarse bounds on the quantile threshold t(p)
/// (paper Section 3.5, Algorithm 3). Kernel density estimates are trained
/// on geometrically growing subsamples X_r (r0, r0*h_growth, ..., n); each
/// round bounds the densities of a query sample X_s under the previous
/// round's threshold bounds, reads off order-statistic confidence ranks
/// (Eq. 11), validates them, and either tightens the bounds (buffered by
/// h_buffer) or backs off (by h_backoff) and retries at the same r.
class ThresholdEstimator {
 public:
  explicit ThresholdEstimator(const TkdcConfig* config);

  /// Runs the bootstrap over `data`. `full_tree` and `full_kernel` must be
  /// the index and kernel over the complete `data`; the final iteration
  /// (r = n) reuses them instead of rebuilding.
  ThresholdBootstrapResult Bootstrap(const Dataset& data,
                                     const SpatialIndex& full_tree,
                                     const Kernel& full_kernel);

 private:
  const TkdcConfig* config_;
};

}  // namespace tkdc

#endif  // TKDC_TKDC_THRESHOLD_H_
