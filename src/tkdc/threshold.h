#ifndef TKDC_TKDC_THRESHOLD_H_
#define TKDC_TKDC_THRESHOLD_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "index/spatial_index.h"
#include "kde/kernel.h"
#include "tkdc/config.h"
#include "tkdc/density_bounds.h"

namespace tkdc {

/// Output of the bootstrapped threshold bound (paper Algorithm 3).
struct ThresholdBootstrapResult {
  /// Probabilistic lower bound on t(p): with probability >= 1 - delta the
  /// true quantile threshold is >= lower.
  double lower = 0.0;
  /// Probabilistic upper bound on t(p).
  double upper = 0.0;
  /// Bootstrap iterations executed (including retries after backoff).
  size_t iterations = 0;
  /// Times an invalid bound was detected and backed off.
  size_t backoffs = 0;
  /// Total traversal work across all iterations.
  TraversalStats stats;
};

/// Bootstrapped estimation of coarse bounds on the quantile threshold t(p)
/// (paper Section 3.5, Algorithm 3). Kernel density estimates are trained
/// on geometrically growing subsamples X_r (r0, r0*h_growth, ..., n); each
/// round bounds the densities of a query sample X_s under the previous
/// round's threshold bounds, reads off order-statistic confidence ranks
/// (Eq. 11), validates them, and either tightens the bounds (buffered by
/// h_buffer) or backs off (by h_backoff) and retries at the same r.
class ThresholdEstimator {
 public:
  explicit ThresholdEstimator(const TkdcConfig* config);

  /// Runs the bootstrap over `data`. `full_tree` and `full_kernel` must be
  /// the index and kernel over the complete `data`; the final iteration
  /// (r = n) reuses them instead of rebuilding.
  ThresholdBootstrapResult Bootstrap(const Dataset& data,
                                     const SpatialIndex& full_tree,
                                     const Kernel& full_kernel);

 private:
  const TkdcConfig* config_;
};

/// Maintains an online estimate of the quantile threshold t(p) over a
/// reservoir sample of training densities, for the streaming-serve path.
///
/// The reservoir is seeded from the trained model's density sample
/// (Reseed) and kept representative of the evolving point set by feeding
/// the merged density of every inserted point through Observe (Vitter's
/// algorithm R: each arrival replaces a uniformly random reservoir slot
/// with probability capacity / arrivals_so_far).
///
/// Estimate reads off the p-quantile of the reservoir together with a
/// binomial confidence band on its rank (Eq. 10 exact for small samples,
/// Eq. 11 normal approximation otherwise — the same order-statistic
/// machinery the bootstrap uses). The binomial band only covers sampling
/// error; distribution drift since the last rebuild is unmodeled, so
/// callers pass the overlay staleness fraction and the band is widened
/// multiplicatively by it. A rebuild re-tightens by calling Reseed with
/// fresh training densities.
///
/// Thread safety: all methods lock an internal mutex. Observe runs on the
/// serve dispatcher thread; Estimate may run concurrently on connection
/// threads (STATS) or the rebuild worker.
class OnlineThresholdEstimator {
 public:
  /// The threshold estimate with its confidence band.
  struct Band {
    /// Point estimate: the p-quantile of the reservoir.
    double threshold = 0.0;
    /// Probabilistic lower / upper bounds, widened by staleness.
    double lower = 0.0;
    double upper = 0.0;
    /// Reservoir occupancy the estimate was read from.
    size_t sample_size = 0;
    /// Arrivals observed since the last Reseed (excludes the seed itself).
    uint64_t observed = 0;
  };

  /// `p` is the quantile (classification rate), `delta` the band's failure
  /// probability, `capacity` the reservoir size.
  OnlineThresholdEstimator(double p, double delta, size_t capacity,
                           uint64_t seed);

  /// Replaces the reservoir with (a uniform subsample of) `densities` and
  /// resets the arrival counter — the post-rebuild re-tighten path.
  void Reseed(std::span<const double> densities);

  /// Feeds one arrival's density into the reservoir (algorithm R).
  void Observe(double density);

  /// Current estimate; `staleness_fraction` (overlay size / n_eff) widens
  /// the band beyond the binomial rank CI, and `extra_relative_band` widens
  /// it by an additional multiplicative fraction — the serving path passes
  /// the model's coreset share (tkdc/error_budget.h) so the online band
  /// also covers the compression's density deviation. Returns a zero Band
  /// when the reservoir is empty.
  Band Estimate(double staleness_fraction = 0.0,
                double extra_relative_band = 0.0) const;

  size_t capacity() const { return capacity_; }

 private:
  const double p_;
  const double delta_;
  const size_t capacity_;
  mutable std::mutex mutex_;
  Rng rng_;
  std::vector<double> reservoir_;
  /// Total stream length feeding algorithm R (seed size + arrivals).
  uint64_t stream_length_ = 0;
  /// Arrivals since the last Reseed, exported via Band::observed.
  uint64_t observed_ = 0;
};

}  // namespace tkdc

#endif  // TKDC_TKDC_THRESHOLD_H_
