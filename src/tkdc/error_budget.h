#ifndef TKDC_TKDC_ERROR_BUDGET_H_
#define TKDC_TKDC_ERROR_BUDGET_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace tkdc {

/// Relative-error ceiling reserved for the --fast-math-leaf vectorized
/// Gaussian exp. The polynomial's measured relative error is <= 1.2e-13 on
/// the density, so a 1e-12 carve-out covers it with an order of magnitude
/// of headroom while staying invisible next to any practical epsilon.
inline constexpr double kFastMathLeafShare = 1e-12;

/// The Problem 1 multiplicative tolerance epsilon, decomposed into the
/// shares that spend it:
///
///   total = traversal + coreset + fast_math
///
///   - traversal: the Eq. 8/9 pruning band — tolerance cutoffs, threshold
///     cutoffs, the bootstrap's refinement target, the multi-class
///     survivor split, and the dual-tree box rules all draw on this share.
///   - coreset:   absorbed by epsilon-coreset model compression
///     (kde/coreset.h): the compressed KDE deviates from the exact one by
///     at most coreset * max(f, t) near the threshold, so classification
///     against the compressed model stays within the total band.
///   - fast_math: the SIMD fast-exp leaf band (--fast-math-leaf), a fixed
///     tiny carve-out only present when the mode is on.
///
/// The decomposition is resolved once from the config (ResolveErrorBudget,
/// called by TkdcConfig::Validate() and TkdcConfig::ResolveBudget()),
/// carried immutably in the trained model, and consumed by every pruning
/// site in place of the raw config epsilon. With compression disabled and
/// exact leaf math, traversal == total exactly — the refactor is then
/// bit-identical to spending the raw epsilon.
struct ErrorBudget {
  double total = 0.0;
  double traversal = 0.0;
  double coreset = 0.0;
  double fast_math = 0.0;

  /// The per-survivor traversal share of the multi-class round-robin:
  /// a class whose posterior width is below this yields its refinement
  /// turn (see tkdc/multiclass.h).
  double SurvivorShare(double leader_lower, size_t alive) const {
    return leader_lower * traversal / static_cast<double>(alive);
  }

  /// Validates an already-resolved decomposition (model IO reads one from
  /// disk): finite non-negative shares, traversal strictly positive, and
  /// shares summing to the total up to round-off.
  Status Validate() const;

  /// "total 0.01 = traversal 0.0075 + coreset 0.0025 + fast-math 0".
  std::string Summary() const;
};

/// Resolves the budget decomposition for a config's (epsilon,
/// coreset_epsilon, fast_math_leaf) triple. Errors when coreset_epsilon is
/// negative, non-finite, or >= epsilon (the traversal share must stay
/// strictly positive — pruning with a zero band never terminates early).
Result<ErrorBudget> ResolveErrorBudget(double epsilon, double coreset_epsilon,
                                       bool fast_math_leaf);

}  // namespace tkdc

#endif  // TKDC_TKDC_ERROR_BUDGET_H_
