#include "tkdc/multi_threshold.h"

#include <algorithm>

#include "common/macros.h"
#include "common/stats.h"
#include "kde/bandwidth.h"
#include "tkdc/threshold.h"

namespace tkdc {

MultiThresholdClassifier::MultiThresholdClassifier(TkdcConfig config,
                                                   std::vector<double> levels)
    : config_(std::move(config)), levels_(std::move(levels)) {
  config_.CheckValid();
  eps_traversal_ = config_.ResolveBudget().traversal;
  TKDC_CHECK_MSG(!levels_.empty(), "need at least one level");
  for (size_t i = 0; i < levels_.size(); ++i) {
    TKDC_CHECK_MSG(levels_[i] > 0.0 && levels_[i] < 1.0,
                   "levels must lie in (0, 1)");
    if (i > 0) {
      TKDC_CHECK_MSG(levels_[i] > levels_[i - 1],
                     "levels must be strictly ascending");
    }
  }
}

void MultiThresholdClassifier::Train(const Dataset& data) {
  TKDC_CHECK(data.size() >= 2);
  kernel_ = std::make_unique<Kernel>(
      config_.kernel, SelectBandwidths(config_.bandwidth_rule, data,
                                       config_.bandwidth_scale));
  tree_ = BuildIndex(
      data, config_.MakeIndexOptions(kernel_->inverse_bandwidths()));
  evaluator_ = DensityBoundEvaluator(tree_.get(), kernel_.get(), &config_);
  ctx_.stats = TraversalStats();
  ctx_.grid_prunes = 0;
  self_contribution_ =
      kernel_->MaxValue() / static_cast<double>(data.size());

  // Bootstrap coarse bounds at the extreme levels; their union covers
  // every intermediate threshold.
  TkdcConfig low_config = config_;
  low_config.p = levels_.front();
  ThresholdEstimator low_estimator(&low_config);
  const ThresholdBootstrapResult low =
      low_estimator.Bootstrap(data, *tree_, *kernel_);
  bootstrap_kernel_evaluations_ += low.stats.kernel_evaluations;
  double lo = low.lower;
  double hi = low.upper;
  if (levels_.size() > 1) {
    TkdcConfig high_config = config_;
    high_config.p = levels_.back();
    ThresholdEstimator high_estimator(&high_config);
    const ThresholdBootstrapResult high =
        high_estimator.Bootstrap(data, *tree_, *kernel_);
    bootstrap_kernel_evaluations_ += high.stats.kernel_evaluations;
    lo = std::min(lo, high.lower);
    hi = std::max(hi, high.upper);
  }

  grid_.reset();
  if (config_.use_grid && data.dims() <= config_.grid_max_dims &&
      data.dims() <= GridCache::kMaxDims) {
    grid_ = std::make_unique<GridCache>(data, *kernel_);
  }

  // One training-density pass under the widened band serves every level;
  // the pass spends the budget's traversal share, like every traversal.
  const double tolerance = eps_traversal_ * lo;
  const double grid_cut = hi * (1.0 + eps_traversal_);
  std::vector<double> densities;
  densities.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    const auto x = data.Row(i);
    if (grid_ != nullptr) {
      const double grid_bound =
          grid_->DensityLowerBound(x) - self_contribution_;
      if (grid_bound > grid_cut) {
        densities.push_back(grid_bound);
        continue;
      }
    }
    const DensityBounds bounds = evaluator_.BoundDensity(
        ctx_, x, lo + self_contribution_, hi + self_contribution_, tolerance);
    densities.push_back(bounds.Midpoint() - self_contribution_);
  }
  std::sort(densities.begin(), densities.end());
  thresholds_.resize(levels_.size());
  for (size_t i = 0; i < levels_.size(); ++i) {
    thresholds_[i] = QuantileSorted(densities, levels_[i]);
  }
}

size_t MultiThresholdClassifier::BandOfDensity(double density,
                                               double shift) const {
  size_t band = 0;
  while (band < thresholds_.size() && density >= thresholds_[band] + shift) {
    ++band;
  }
  return band;
}

size_t MultiThresholdClassifier::BandImpl(std::span<const double> x,
                                          double shift) {
  TKDC_CHECK_MSG(trained(), "Band queried before Train");
  if (grid_ != nullptr &&
      grid_->DensityLowerBound(x) > thresholds_.back() + shift) {
    return thresholds_.size();
  }
  // Iterative narrowing: each pass targets only the thresholds still
  // straddled by the bounds, with the tolerance anchored at the *largest*
  // remaining threshold — coarse first, refining only when the bounds
  // still straddle smaller contours. A density near the 50% contour never
  // pays for 1%-contour precision, and a density near the 1% contour
  // narrows down to it in O(1) passes.
  size_t band_lo = 0;
  size_t band_hi = thresholds_.size();
  for (;;) {
    const double t_lo = thresholds_[band_lo];
    const double t_hi = thresholds_[band_hi - 1];
    const DensityBounds bounds = evaluator_.BoundDensity(
        ctx_, x, t_lo + shift, t_hi + shift, eps_traversal_ * t_hi);
    // Every pass's bounds contain the true density, so the true band lies
    // in the intersection of the ranges; clamping keeps narrowing
    // monotone even though a later (more aggressively pruned) pass can
    // report looser bounds.
    const size_t new_lo =
        std::max(band_lo, BandOfDensity(bounds.lower, shift));
    const size_t new_hi =
        std::min(band_hi, BandOfDensity(bounds.upper, shift));
    if (new_lo >= new_hi) return new_lo;
    if (new_lo == band_lo && new_hi == band_hi) {
      // No further narrowing possible: the bounds are already within
      // epsilon * t of the straddled threshold(s); the midpoint decides
      // within the Problem 1 contract.
      return BandOfDensity(bounds.Midpoint(), shift);
    }
    band_lo = new_lo;
    band_hi = new_hi;
    TKDC_DCHECK(band_lo < band_hi && band_hi <= thresholds_.size());
  }
}

size_t MultiThresholdClassifier::Band(std::span<const double> x) {
  return BandImpl(x, 0.0);
}

size_t MultiThresholdClassifier::BandTraining(std::span<const double> x) {
  return BandImpl(x, self_contribution_);
}

uint64_t MultiThresholdClassifier::kernel_evaluations() const {
  return bootstrap_kernel_evaluations_ + ctx_.stats.kernel_evaluations;
}

}  // namespace tkdc
