#ifndef TKDC_TKDC_TRAVERSAL_TRACE_H_
#define TKDC_TKDC_TRAVERSAL_TRACE_H_

#include <cstdint>
#include <vector>

namespace tkdc {

/// Why a BoundDensity traversal stopped — the pruning behavior the paper's
/// factor analysis (Figure 12) and lesion study (Figure 16) reason about.
enum class CutoffReason : uint8_t {
  kNone = 0,
  /// Threshold rule (Eq. 9): the lower bound cleared t_hi * (1 + eps), so
  /// the point is certified HIGH without resolving its density.
  kLowerAboveThreshold,
  /// Threshold rule (Eq. 9): the upper bound fell below t_lo * (1 - eps),
  /// certifying LOW.
  kUpperBelowThreshold,
  /// Tolerance rule (Eq. 8): the bound width shrank below eps * t.
  kTolerance,
  /// The traversal exhausted the tree — every remaining node was expanded
  /// down to exact leaf sums, so the bounds are exact.
  kExactLeaf,
  /// A box probe ran out of its expansion budget (dual-tree driver only).
  kExpansionBudget,
};

inline const char* CutoffReasonName(CutoffReason reason) {
  switch (reason) {
    case CutoffReason::kNone:
      return "none";
    case CutoffReason::kLowerAboveThreshold:
      return "lower_above_threshold";
    case CutoffReason::kUpperBelowThreshold:
      return "upper_below_threshold";
    case CutoffReason::kTolerance:
      return "tolerance";
    case CutoffReason::kExactLeaf:
      return "exact_leaf";
    case CutoffReason::kExpansionBudget:
      return "expansion_budget";
  }
  return "unknown";
}

/// One node expansion of a traced traversal, with the certified density
/// interval as it stood AFTER the expansion. Step 0 is the seed (the root
/// or frontier bounds, node = the first seed entry, no expansion yet).
struct TraceStep {
  uint32_t node = 0;
  bool is_leaf = false;
  /// Points scanned exactly when `is_leaf` (0 for internal expansions).
  uint32_t leaf_points = 0;
  double lower = 0.0;
  double upper = 0.0;
};

/// Opt-in capture of the full node-visit sequence of a single point query.
/// Attach via TreeQueryContext::tracer before calling BoundDensity (or
/// Classify); each call clears the previous capture, so one tracer serves
/// many sequential queries. Tracing is strictly a diagnostics/testing tool:
/// it allocates, so it never rides along in benchmarked paths.
class TraversalTracer {
 public:
  /// Starts a fresh capture with the seed bounds.
  void Begin(uint32_t seed_node, double lower, double upper) {
    steps_.clear();
    reason_ = CutoffReason::kNone;
    steps_.push_back(TraceStep{seed_node, false, 0, lower, upper});
  }

  /// Records one expansion and the bounds it produced.
  void Expand(uint32_t node, bool is_leaf, uint32_t leaf_points, double lower,
              double upper) {
    steps_.push_back(TraceStep{node, is_leaf, leaf_points, lower, upper});
  }

  /// Seals the capture with the traversal's cutoff reason.
  void Finish(CutoffReason reason) { reason_ = reason; }

  const std::vector<TraceStep>& steps() const { return steps_; }
  CutoffReason reason() const { return reason_; }

 private:
  std::vector<TraceStep> steps_;
  CutoffReason reason_ = CutoffReason::kNone;
};

}  // namespace tkdc

#endif  // TKDC_TKDC_TRAVERSAL_TRACE_H_
