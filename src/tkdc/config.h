#ifndef TKDC_TKDC_CONFIG_H_
#define TKDC_TKDC_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include <vector>

#include "common/status.h"
#include "index/index_backend.h"
#include "tkdc/error_budget.h"
#include "index/spatial_index.h"
#include "index/split_rule.h"
#include "kde/bandwidth.h"
#include "kde/kernel.h"

namespace tkdc {

/// Full configuration for the tKDC classifier (paper Table 1 plus the
/// optimization switches used by the factor/lesion analyses of Figures 12
/// and 16). Defaults match the paper.
struct TkdcConfig {
  /// Classification rate p: the quantile defining the threshold t(p).
  double p = 0.01;
  /// Multiplicative error tolerance epsilon of Problem 1.
  double epsilon = 0.01;
  /// Share of epsilon handed to epsilon-coreset model compression
  /// (kde/coreset.h): training compresses the training set until the
  /// compressed KDE's deviation stays within this band, and the pruning
  /// rules spend only the remaining traversal share (tkdc/error_budget.h).
  /// 0 disables compression; must stay strictly below epsilon.
  double coreset_epsilon = 0.0;
  /// Failure probability delta of the threshold bootstrap.
  double delta = 0.01;
  /// Bandwidth scale factor b of Eq. 4.
  double bandwidth_scale = 1.0;
  /// Kernel family (paper default: Gaussian).
  KernelType kernel = KernelType::kGaussian;
  /// Bandwidth selection rule (paper default: Scott).
  BandwidthRule bandwidth_rule = BandwidthRule::kScott;

  // --- Optimization switches (Section 3.3, 3.7) ---
  /// Threshold pruning rule (Eq. 9), the core contribution.
  bool use_threshold_rule = true;
  /// Tolerance pruning rule (Eq. 8), from Gray & Moore.
  bool use_tolerance_rule = true;
  /// Grid cache for obvious inliers; auto-disabled above
  /// `grid_max_dims` dimensions.
  bool use_grid = true;
  /// The grid scales exponentially with dimension; the paper disables it
  /// for d > 4.
  size_t grid_max_dims = 4;
  /// Spatial-index backend behind every traversal (kdtree / balltree).
  /// The default honors the TKDC_INDEX environment variable, which is how
  /// the CI ball-tree lane forces the backend without touching configs.
  IndexBackend index_backend = DefaultIndexBackend();
  /// Index split rule (paper default: trimmed midpoint "equi-width").
  SplitRule split_rule = SplitRule::kTrimmedMidpoint;
  /// Index axis rule (paper default: cycle through dimensions).
  SplitAxisRule axis_rule = SplitAxisRule::kCycle;
  /// Index leaf capacity.
  size_t leaf_size = 32;

  // --- Threshold bootstrap (Algorithm 3) ---
  /// Initial training subsample size r0.
  size_t r0 = 200;
  /// Query sample size s0.
  size_t s0 = 20000;
  /// Multiplicative backoff when a bound proves invalid.
  double h_backoff = 4.0;
  /// Buffer factor applied to valid bounds before the next iteration.
  double h_buffer = 1.5;
  /// Training subsample growth rate per iteration.
  double h_growth = 4.0;

  /// Seed for the bootstrap's subsampling.
  uint64_t seed = 0;

  // --- Execution (beyond the paper) ---
  /// Worker threads for the training-density pass and the batch query
  /// APIs (`ClassifyBatch` / `ClassifyTrainingBatch`). 0 = hardware
  /// concurrency; 1 = the exact legacy serial path (no pool, no worker
  /// threads). Results are bit-identical regardless of the value — each
  /// point's densities are computed independently and only the (order-
  /// insensitive) stats aggregation differs — so this is purely a
  /// wall-clock knob. Per-point Classify()/ClassifyTraining() calls are
  /// always serial.
  size_t num_threads = 0;

  /// Leaf-scan fast-math mode: lets the SIMD backends evaluate the
  /// Gaussian leaf sums with a vectorized polynomial exp (relative error
  /// ~1e-14) instead of the bit-exact per-lane std::exp. Off by default —
  /// the default invariant is classification bit-identical to the scalar
  /// path; turning this on trades that for leaf throughput within the
  /// epsilon band the property tests enforce. No effect on the compact
  /// kernels, the scalar backend, or any bound computation (bounds stay
  /// exact so pruning stays certified).
  bool fast_math_leaf = false;

  /// Checks every field against its legal range. Returns OK or an error
  /// naming the first out-of-range field. Configs come from user input
  /// (CLI flags, env, serve requests), so validation is a recoverable
  /// error, not an invariant — entry points (tkdc::api, tkdc_serve)
  /// surface the message instead of aborting.
  Status Validate() const;

  /// CHECK-fails with Validate()'s message when the config is invalid.
  /// For internal constructors whose callers have already validated (a
  /// bad config reaching them is a programmer error).
  void CheckValid() const;

  /// `num_threads` with 0 resolved to the hardware concurrency.
  size_t ResolvedNumThreads() const;

  /// The resolved error-budget decomposition of epsilon (traversal /
  /// coreset / fast-math shares). Resolution is deterministic, so every
  /// call returns the same decomposition Validate() certified; CHECK-fails
  /// on an invalid config (callers have already validated).
  ErrorBudget ResolveBudget() const;

  /// One-line human-readable summary of the switch settings.
  std::string OptimizationSummary() const;

  /// The index build options this config implies. `scale` is the ball
  /// tree's radius metric — pass the kernel's inverse bandwidths so ball
  /// bounds are tight under the query metric; the k-d tree ignores it.
  IndexOptions MakeIndexOptions(std::vector<double> scale = {}) const;
};

}  // namespace tkdc

#endif  // TKDC_TKDC_CONFIG_H_
