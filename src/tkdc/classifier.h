#ifndef TKDC_TKDC_CLASSIFIER_H_
#define TKDC_TKDC_CLASSIFIER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "data/dataset.h"
#include "index/kdtree.h"
#include "kde/density_classifier.h"
#include "kde/kernel.h"
#include "tkdc/config.h"
#include "tkdc/density_bounds.h"
#include "tkdc/grid_cache.h"
#include "tkdc/threshold.h"

namespace tkdc {

/// Thresholded Kernel Density Classification — the paper's contribution
/// (Algorithm 1). Train() builds the k-d tree, bootstraps threshold bounds
/// (Algorithm 3), computes density bounds for every training point to fix
/// the quantile threshold t~(p), and optionally builds the grid cache.
/// Classify() then bounds a query's density just far enough to place it
/// above or below t~(p).
///
/// Threading model (see DESIGN.md § "Threading model"): the training-
/// density pass and the ClassifyBatch / ClassifyTrainingBatch APIs fan
/// points across a lazily built worker pool of config.num_threads slots
/// (0 = hardware concurrency, 1 = exact legacy serial path with no pool).
/// Every worker owns a private DensityBoundEvaluator clone; results are
/// written by row index and per-worker counters are merged afterwards, so
/// thresholds, densities, and labels are bit-identical for every thread
/// count. Per-point Classify()/ClassifyTraining()/EstimateDensity() and
/// Train() itself must not be called concurrently — the classifier is
/// externally single-threaded; parallelism lives inside the batch calls.
class TkdcClassifier : public DensityClassifier {
 public:
  explicit TkdcClassifier(TkdcConfig config = TkdcConfig());

  std::string name() const override { return "tkdc"; }
  void Train(const Dataset& data) override;
  Classification Classify(std::span<const double> x) override;
  Classification ClassifyTraining(std::span<const double> x) override;
  std::vector<Classification> ClassifyBatch(const Dataset& queries) override;
  std::vector<Classification> ClassifyTrainingBatch(
      const Dataset& queries) override;
  double EstimateDensity(std::span<const double> x) override;
  double threshold() const override;
  uint64_t kernel_evaluations() const override;

  const TkdcConfig& config() const { return config_; }
  bool trained() const { return tree_ != nullptr; }

  /// Worker count the batch paths will use (config.num_threads with 0
  /// resolved to hardware concurrency).
  size_t num_threads() const { return config_.ResolvedNumThreads(); }

  /// Re-sizes the worker pool without retraining (0 = hardware
  /// concurrency). Purely a wall-clock knob: the determinism guarantee
  /// makes results identical at any setting.
  void SetNumThreads(size_t num_threads);

  /// Probabilistic bounds on t(p) from the bootstrap.
  double threshold_lower() const { return threshold_lower_; }
  double threshold_upper() const { return threshold_upper_; }

  /// Self-corrected density estimates of every training point (the Dx of
  /// Algorithm 1), in training-row order.
  const std::vector<double>& training_densities() const {
    return training_densities_;
  }

  /// Bootstrap diagnostics.
  const ThresholdBootstrapResult& bootstrap_result() const {
    return bootstrap_result_;
  }

  // --- Work accounting -------------------------------------------------
  // Traversal work is kept in three disjoint buckets so totals can never
  // double count:
  //   1. bootstrap_result().stats — Algorithm 3 (its own evaluators);
  //   2. training_stats()         — the Phase 3 training-density pass,
  //      snapshotted by Train() from the live evaluator, which is then
  //      reset;
  //   3. the live evaluator       — every post-training query. Serial
  //      Classify* calls accumulate here directly; the batch paths run on
  //      per-worker clones and merge the clones' counters back into the
  //      live evaluator, so batch and serial agree exactly.
  // traversal_stats() and kernel_evaluations() report 1 + 2 + 3. Reading
  // them never mutates anything, so repeated reads are stable.

  /// Work of the Phase 3 training-density pass alone (bucket 2).
  const TraversalStats& training_stats() const { return training_stats_; }

  /// Work of every query answered since Train() (bucket 3).
  const TraversalStats& query_stats() const;

  /// Cumulative traversal work: bootstrap + training + post-training
  /// queries (buckets 1 + 2 + 3 above).
  TraversalStats traversal_stats() const;

  /// Queries answered by the grid cache without touching the tree.
  uint64_t grid_prunes() const { return grid_prunes_; }

  /// The trained kernel; only valid after Train().
  const Kernel& kernel() const { return *kernel_; }

  /// The trained index; only valid after Train().
  const KdTree& tree() const { return *tree_; }

  /// Raw density bounds for a query under the trained threshold band
  /// (exposed for tests and diagnostics).
  DensityBounds BoundDensityAt(std::span<const double> x);

  /// Restores a previously trained state without re-running the bootstrap
  /// or the training-density pass: rebuilds the index, grid, and evaluator
  /// from `data` and installs the given kernel bandwidths and thresholds.
  /// Used by model deserialization (tkdc/model_io.h). The vectors must be
  /// consistent with `data` (bandwidths per dimension; densities per row,
  /// or empty).
  void Restore(const Dataset& data, const std::vector<double>& bandwidths,
               double threshold_lower, double threshold_upper,
               double threshold, std::vector<double> training_densities);

 private:
  // The dual-tree batch classifier reuses this classifier's evaluator,
  // threshold, and self-contribution.
  friend class DualTreeClassifier;

  /// Computes Dx for all training rows under bounds [lo, hi], fanning rows
  /// across the pool when one is configured.
  std::vector<double> ComputeTrainingDensities(const Dataset& data, double lo,
                                               double hi);

  /// The single classification kernel both serial and parallel paths run:
  /// grid probe, then BoundDensity on `evaluator`, against the trained
  /// threshold (`training` selects the self-corrected comparison). Grid
  /// hits bump `*grid_prunes` — a pointer so workers count into private
  /// slots.
  Classification ClassifyWith(DensityBoundEvaluator& evaluator,
                              std::span<const double> x, bool training,
                              uint64_t* grid_prunes) const;

  /// One training row of the Phase 3 pass; shared by the serial and
  /// parallel ComputeTrainingDensities paths.
  double TrainingDensityForRow(DensityBoundEvaluator& evaluator,
                               std::span<const double> x, double lo,
                               double hi, double grid_cut, double tolerance,
                               uint64_t* grid_prunes) const;

  std::vector<Classification> ClassifyBatchImpl(const Dataset& queries,
                                                bool training);

  /// The pool sized to num_threads(), built on first use; nullptr when
  /// num_threads() == 1 (serial legacy path).
  ThreadPool* pool();

  TkdcConfig config_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<KdTree> tree_;
  std::unique_ptr<GridCache> grid_;
  std::unique_ptr<DensityBoundEvaluator> evaluator_;
  std::unique_ptr<ThreadPool> pool_;
  ThresholdBootstrapResult bootstrap_result_;
  std::vector<double> training_densities_;
  double threshold_lower_ = 0.0;
  double threshold_upper_ = 0.0;
  double threshold_ = 0.0;
  double self_contribution_ = 0.0;
  uint64_t grid_prunes_ = 0;
  TraversalStats training_stats_;
};

}  // namespace tkdc

#endif  // TKDC_TKDC_CLASSIFIER_H_
