#ifndef TKDC_TKDC_CLASSIFIER_H_
#define TKDC_TKDC_CLASSIFIER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "index/kdtree.h"
#include "kde/density_classifier.h"
#include "kde/kernel.h"
#include "tkdc/config.h"
#include "tkdc/density_bounds.h"
#include "tkdc/grid_cache.h"
#include "tkdc/threshold.h"

namespace tkdc {

/// Thresholded Kernel Density Classification — the paper's contribution
/// (Algorithm 1). Train() builds the k-d tree, bootstraps threshold bounds
/// (Algorithm 3), computes density bounds for every training point to fix
/// the quantile threshold t~(p), and optionally builds the grid cache.
/// Classify() then bounds a query's density just far enough to place it
/// above or below t~(p).
class TkdcClassifier : public DensityClassifier {
 public:
  explicit TkdcClassifier(TkdcConfig config = TkdcConfig());

  std::string name() const override { return "tkdc"; }
  void Train(const Dataset& data) override;
  Classification Classify(std::span<const double> x) override;
  Classification ClassifyTraining(std::span<const double> x) override;
  double EstimateDensity(std::span<const double> x) override;
  double threshold() const override;
  uint64_t kernel_evaluations() const override;

  const TkdcConfig& config() const { return config_; }
  bool trained() const { return tree_ != nullptr; }

  /// Probabilistic bounds on t(p) from the bootstrap.
  double threshold_lower() const { return threshold_lower_; }
  double threshold_upper() const { return threshold_upper_; }

  /// Self-corrected density estimates of every training point (the Dx of
  /// Algorithm 1), in training-row order.
  const std::vector<double>& training_densities() const {
    return training_densities_;
  }

  /// Bootstrap diagnostics.
  const ThresholdBootstrapResult& bootstrap_result() const {
    return bootstrap_result_;
  }

  /// Cumulative traversal work (training + queries, including bootstrap).
  TraversalStats traversal_stats() const;

  /// Queries answered by the grid cache without touching the tree.
  uint64_t grid_prunes() const { return grid_prunes_; }

  /// The trained kernel; only valid after Train().
  const Kernel& kernel() const { return *kernel_; }

  /// The trained index; only valid after Train().
  const KdTree& tree() const { return *tree_; }

  /// Raw density bounds for a query under the trained threshold band
  /// (exposed for tests and diagnostics).
  DensityBounds BoundDensityAt(std::span<const double> x);

  /// Restores a previously trained state without re-running the bootstrap
  /// or the training-density pass: rebuilds the index, grid, and evaluator
  /// from `data` and installs the given kernel bandwidths and thresholds.
  /// Used by model deserialization (tkdc/model_io.h). The vectors must be
  /// consistent with `data` (bandwidths per dimension; densities per row,
  /// or empty).
  void Restore(const Dataset& data, const std::vector<double>& bandwidths,
               double threshold_lower, double threshold_upper,
               double threshold, std::vector<double> training_densities);

 private:
  // The dual-tree batch classifier reuses this classifier's evaluator,
  // threshold, and self-contribution.
  friend class DualTreeClassifier;

  /// Computes Dx for all training rows under bounds [lo, hi].
  std::vector<double> ComputeTrainingDensities(const Dataset& data, double lo,
                                               double hi);

  TkdcConfig config_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<KdTree> tree_;
  std::unique_ptr<GridCache> grid_;
  std::unique_ptr<DensityBoundEvaluator> evaluator_;
  ThresholdBootstrapResult bootstrap_result_;
  std::vector<double> training_densities_;
  double threshold_lower_ = 0.0;
  double threshold_upper_ = 0.0;
  double threshold_ = 0.0;
  double self_contribution_ = 0.0;
  uint64_t grid_prunes_ = 0;
  TraversalStats training_stats_;
};

}  // namespace tkdc

#endif  // TKDC_TKDC_CLASSIFIER_H_
