#ifndef TKDC_TKDC_CLASSIFIER_H_
#define TKDC_TKDC_CLASSIFIER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "index/spatial_index.h"
#include "kde/density_classifier.h"
#include "kde/kernel.h"
#include "tkdc/config.h"
#include "tkdc/density_bounds.h"
#include "tkdc/model.h"
#include "tkdc/query_engine.h"
#include "tkdc/threshold.h"

namespace tkdc {

/// Thresholded Kernel Density Classification — the paper's contribution
/// (Algorithm 1), layered as model / engine / context:
///
///   - Train() builds the k-d tree, bootstraps threshold bounds
///     (Algorithm 3), computes density bounds for every training point to
///     fix the quantile threshold t~(p), optionally builds the grid cache,
///     and publishes the result as an immutable, shareable TkdcModel.
///   - The TkdcQueryEngine answers queries against that model; every
///     engine method is const.
///   - Scratch (the traversal heap) and work counters live in per-thread
///     TreeQueryContexts; the DensityClassifier base fans batch calls
///     across its executor with one context per worker, so thresholds,
///     densities, labels, and merged counters are bit-identical for every
///     thread count (see DESIGN.md § "Architecture" and § "Threading
///     model").
///
/// Per-point Classify()/ClassifyTraining()/EstimateDensity() and Train()
/// itself must not be called concurrently — the classifier facade is
/// externally single-threaded; parallelism lives inside the batch calls.
class TkdcClassifier : public DensityClassifier {
 public:
  explicit TkdcClassifier(TkdcConfig config = TkdcConfig());

  std::string name() const override { return "tkdc"; }
  void Train(const Dataset& data) override;
  bool trained() const override { return model_ != nullptr; }
  size_t training_size() const override {
    return model_ != nullptr ? model_->tree->size() : 0;
  }
  size_t dims() const override {
    return model_ != nullptr ? model_->tree->dims() : 0;
  }
  double threshold() const override;
  std::optional<IndexBackend> index_backend() const override {
    return model_ != nullptr ? std::optional(model_->tree->backend())
                             : std::nullopt;
  }

  std::unique_ptr<QueryContext> MakeQueryContext() const override {
    return std::make_unique<TreeQueryContext>();
  }
  Classification ClassifyInContext(QueryContext& ctx,
                                   std::span<const double> x,
                                   bool training) const override;
  double EstimateDensityInContext(QueryContext& ctx,
                                  std::span<const double> x) const override;

  /// Streaming: the tKDC density is an additive kernel sum, so a staged
  /// DeltaOverlay folds in exactly (BoundDensityAffine) — the Eq. 8-9
  /// pruning guarantees hold for the merged density at any buffer size.
  bool supports_overlay() const override { return true; }
  Classification ClassifyOverlayInContext(
      QueryContext& ctx, std::span<const double> x, bool training,
      const DeltaOverlay& overlay) const override;
  double EstimateDensityOverlayInContext(
      QueryContext& ctx, std::span<const double> x,
      const DeltaOverlay& overlay) const override;
  bool ExportTrainingData(Dataset* out) const override;

  const TkdcConfig& config() const { return config_; }

  /// The immutable trained artifact; only valid after Train(). The shared
  /// form lets callers hold the model beyond this classifier's lifetime
  /// (serving, serialization).
  const TkdcModel& model() const { return *model_; }
  std::shared_ptr<const TkdcModel> shared_model() const { return model_; }

  /// Probabilistic bounds on t(p) from the bootstrap.
  double threshold_lower() const {
    return model_ != nullptr ? model_->threshold_lower : 0.0;
  }
  double threshold_upper() const {
    return model_ != nullptr ? model_->threshold_upper : 0.0;
  }

  /// Self-corrected density estimates of every training point (the Dx of
  /// Algorithm 1), in training-row order.
  const std::vector<double>& training_densities() const;

  /// Bootstrap diagnostics.
  const ThresholdBootstrapResult& bootstrap_result() const;

  /// Compression metadata of the trained model (enabled == false when the
  /// model holds the full training set); only valid after Train().
  const CoresetInfo& coreset_info() const { return model_->coreset; }

  /// The resolved error budget frozen into the model; only valid after
  /// Train().
  const ErrorBudget& error_budget() const { return model_->budget; }

  // --- Work accounting -------------------------------------------------
  // Traversal work is kept in three disjoint buckets so totals can never
  // double count:
  //   1. bootstrap_result().stats — Algorithm 3 (its own contexts);
  //   2. training_stats()         — the Phase 3 training-density pass;
  //   3. query_stats()            — every post-training query (the base
  //      class's live context, which the batch paths also merge their
  //      per-worker counters into).
  // traversal_stats() and kernel_evaluations() report 1 + 2 + 3 (the base
  // snapshots 1 + 2 as train_stats_). Reading them never mutates anything,
  // so repeated reads are stable.

  /// Work of the Phase 3 training-density pass alone (bucket 2).
  const TraversalStats& training_stats() const { return phase3_stats_; }

  /// The trained kernel; only valid after Train().
  const Kernel& kernel() const { return *model_->kernel; }

  /// The trained index; only valid after Train().
  const SpatialIndex& tree() const { return *model_->tree; }

  /// Raw density bounds for a query under the trained threshold band
  /// (exposed for tests and diagnostics).
  DensityBounds BoundDensityAt(std::span<const double> x);

  /// Restores a previously trained state without re-running the bootstrap
  /// or the training-density pass: rebuilds the model (index, grid,
  /// engine) from `data` — or adopts `prebuilt_index` when the artifact
  /// carried a serialized index (model format v3) — and installs the given
  /// kernel bandwidths and thresholds. Used by model deserialization
  /// (tkdc/model_io.h). The vectors must be consistent with `data`
  /// (bandwidths per dimension; densities per row, or empty). `coreset`
  /// (model format v6) restores the compression metadata when `data` is a
  /// serialized coreset; the default means "data is the full training set".
  void Restore(const Dataset& data, const std::vector<double>& bandwidths,
               double threshold_lower, double threshold_upper,
               double threshold, std::vector<double> training_densities,
               std::unique_ptr<const SpatialIndex> prebuilt_index = nullptr,
               CoresetInfo coreset = CoresetInfo());

 private:
  // The dual-tree batch classifier reuses this classifier's engine,
  // threshold, and self-contribution.
  friend class DualTreeClassifier;

  /// Computes Dx for all training rows under bounds [lo, hi], fanning rows
  /// across the executor and folding worker counters into `sink`.
  std::vector<double> ComputeTrainingDensities(const Dataset& data, double lo,
                                               double hi,
                                               TreeQueryContext& sink);

  TkdcConfig config_;
  std::shared_ptr<const TkdcModel> model_;
  TkdcQueryEngine engine_;
  /// Phase 3 work (bucket 2), snapshotted by Train().
  TraversalStats phase3_stats_;
};

}  // namespace tkdc

#endif  // TKDC_TKDC_CLASSIFIER_H_
