#ifndef TKDC_TKDC_DUAL_TREE_H_
#define TKDC_TKDC_DUAL_TREE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "kde/density_classifier.h"
#include "tkdc/classifier.h"

namespace tkdc {

/// Statistics from one dual-tree batch classification.
struct DualTreeStats {
  /// Query points classified wholesale at an internal query-tree node.
  uint64_t node_decided = 0;
  /// Query points that fell back to per-point traversal at a leaf.
  uint64_t point_decided = 0;
  /// Query-tree nodes whose box bounds were evaluated.
  uint64_t boxes_evaluated = 0;
  TraversalStats traversal;
};

/// Dual-tree batch classification — the extension the paper names as
/// future work (Section 5): index the *queries* with a second k-d tree and
/// classify whole query nodes at once whenever the box-level density
/// bounds (BoundDensityForBox) clear the threshold. Query points in dense
/// or empty regions are decided thousands at a time; only query nodes
/// straddling the threshold contour recurse down to per-point traversals.
///
/// Shares the trained TkdcClassifier's index, kernel, and threshold; the
/// classifier must stay alive and trained for the lifetime of this object.
class DualTreeClassifier {
 public:
  struct Options {
    /// Leaf capacity of the query tree.
    size_t query_leaf_size = 64;
    /// Node-expansion budget per box probe. A probe that cannot decide
    /// within the budget gives up and the query node splits; a small
    /// constant keeps failed probes (common near the top of the query
    /// tree, whose boxes straddle several density regimes) cheap.
    int64_t probe_budget = 48;
    /// Maximum reference-frontier size handed down to child probes; a
    /// larger frontier is discarded and the child restarts from the root
    /// (seeding a huge frontier costs more than re-descending).
    size_t max_frontier = 96;
  };

  explicit DualTreeClassifier(TkdcClassifier* trained);
  DualTreeClassifier(TkdcClassifier* trained, Options options);

  /// Classifies every row of `queries` against the trained threshold.
  /// With `training_points` the queries are treated as members of the
  /// training set (self-corrected comparison, like ClassifyTraining).
  std::vector<Classification> ClassifyBatch(const Dataset& queries,
                                            bool training_points = false);

  /// Statistics of the most recent ClassifyBatch call.
  const DualTreeStats& stats() const { return stats_; }

 private:
  TkdcClassifier* classifier_;
  Options options_;
  DualTreeStats stats_;
};

}  // namespace tkdc

#endif  // TKDC_TKDC_DUAL_TREE_H_
