#ifndef TKDC_TKDC_QUERY_ENGINE_H_
#define TKDC_TKDC_QUERY_ENGINE_H_

#include <span>

#include "kde/density_classifier.h"
#include "tkdc/density_bounds.h"
#include "tkdc/model.h"

namespace tkdc {

/// The stateless query side of tKDC: holds only a const pointer to an
/// immutable TkdcModel (which must outlive it) plus the bound evaluator
/// over the model's tree/kernel/config. Every method is const and threads
/// a caller-owned TreeQueryContext, so a single engine serves any number
/// of threads concurrently — the per-thread scratch and counters live in
/// the contexts, never here.
class TkdcQueryEngine {
 public:
  TkdcQueryEngine() = default;
  /// `model` needs its index side (kernel/tree/grid/self_contribution)
  /// built; the threshold fields may still be pending — only Classify()
  /// and EstimateDensity() read them.
  explicit TkdcQueryEngine(const TkdcModel* model);

  bool valid() const { return model_ != nullptr; }
  const TkdcModel& model() const { return *model_; }

  /// The Classify() kernel of Algorithm 1: grid probe, then BoundDensity
  /// against the trained threshold. `training` selects the self-corrected
  /// comparison — the pruning band shifts by K(0)/n while the tolerance
  /// target stays eps * t in corrected units.
  Classification Classify(TreeQueryContext& ctx, std::span<const double> x,
                          bool training) const;

  /// One training row of the Phase 3 pass (Dx of Algorithm 1) under
  /// quantile bounds [lo, hi] in self-corrected space. `grid_cut` is the
  /// certified-above-the-band cut hi * (1 + eps); grid hits bump
  /// ctx.grid_prunes and skip the traversal.
  double TrainingDensity(TreeQueryContext& ctx, std::span<const double> x,
                         double lo, double hi, double grid_cut,
                         double tolerance) const;

  /// Midpoint density estimate at the trained threshold band.
  double EstimateDensity(TreeQueryContext& ctx,
                         std::span<const double> x) const;

  /// Classify() against the merged model base + overlay: folds the
  /// overlay's exact signed kernel sum into the pruning bounds via
  /// BoundDensityAffine, so the traversal still stops on the Eq. 8-9 rules
  /// — now exact for the merged density — at any staged buffer size. The
  /// decision threshold stays the trained t~(p); the serving layer tracks
  /// how far the streamed distribution has drifted from it through the
  /// online estimator's widening band (tkdc/threshold.h).
  Classification ClassifyOverlay(TreeQueryContext& ctx,
                                 std::span<const double> x, bool training,
                                 const DeltaOverlay& overlay) const;

  /// Midpoint estimate of the merged density base + overlay.
  double EstimateDensityOverlay(TreeQueryContext& ctx,
                                std::span<const double> x,
                                const DeltaOverlay& overlay) const;

  /// Raw density bounds for a query point (diagnostics and the bootstrap /
  /// dual-tree drivers go through the evaluator directly).
  const DensityBoundEvaluator& evaluator() const { return evaluator_; }

 private:
  const TkdcModel* model_ = nullptr;
  DensityBoundEvaluator evaluator_;
};

}  // namespace tkdc

#endif  // TKDC_TKDC_QUERY_ENGINE_H_
