#ifndef TKDC_TKDC_MODEL_IO_H_
#define TKDC_TKDC_MODEL_IO_H_

#include <memory>
#include <string>

#include "data/dataset.h"
#include "kde/density_classifier.h"
#include "tkdc/classifier.h"
#include "tkdc/multiclass.h"

namespace tkdc {

/// Persists a trained classifier to `path` in the tkdc binary model format
/// (magic "TKDC", format version, algorithm tag, then a per-algorithm
/// section holding the parameters, thresholds, and training data). The
/// training data rides along so derived structures (grid cache, density
/// grid) can be rebuilt deterministically on load. Since format version 3
/// the tree-backed sections (tkdc/nocut, rkde, knn) additionally carry the
/// spatial index itself — backend tag, topology, and per-node geometry
/// (k-d boxes or ball centroids/radii) — so a load adopts the exact trained
/// index instead of re-running the build, and a ball-tree model restores as
/// a ball tree regardless of the loader's configured default backend.
///
/// Works for every DensityClassifier subclass in the repo (tkdc, nocut,
/// simple, rkde, binned, knn). `training_data` must be the dataset the
/// classifier was trained on. `include_densities` applies only to tkdc /
/// nocut models: pass false to drop the cached Dx vector (smaller file;
/// training_densities() will be empty after load). Returns false and fills
/// `*error` on failure.
bool SaveModel(const std::string& path, const DensityClassifier& classifier,
               const Dataset& training_data, bool include_densities,
               std::string* error);

/// Loads a model saved by SaveModel when it is a tkdc (or nocut) model.
/// Reads both the current format and legacy version-1 files (which were
/// always tkdc). Returns nullptr and fills `*error` on malformed input or
/// when the file holds a different algorithm — use LoadAnyModel for that.
/// The returned classifier is fully trained: ready to Classify() without
/// touching the bootstrap.
std::unique_ptr<TkdcClassifier> LoadModel(const std::string& path,
                                          std::string* error);

/// Loads a model of any algorithm, dispatching on the stored tag. Legacy
/// version-1 files load as tkdc. The result's runtime type matches name():
/// "tkdc", "nocut", "simple", "rkde", "binned", or "knn". Multi-class
/// container files are rejected with an error directing callers to
/// LoadMultiClassModel — the container is not a DensityClassifier.
std::unique_ptr<DensityClassifier> LoadAnyModel(const std::string& path,
                                                std::string* error);

/// Persists a trained multi-class classifier as a single model file:
/// algorithm tag 7 (multi-class container) holding K, the class labels,
/// the prior table, and then K nested tkdc sections — each the exact
/// per-class payload SaveModel would write, so the per-class readers (and
/// their validation) are shared verbatim. `include_densities` applies to
/// every per-class section. Returns false and fills `*error` on failure.
bool SaveMultiClassModel(const std::string& path,
                         const MultiClassClassifier& classifier,
                         bool include_densities, std::string* error);

/// Loads a multi-class container saved by SaveMultiClassModel. Rejects
/// files holding a single-class model (use LoadModel / LoadAnyModel), any
/// structural corruption, and cross-class inconsistencies (mismatched
/// dims or kernel type between sections, bad priors, duplicate labels) —
/// the same invariants MultiClassClassifier::RestoreParts enforces.
std::unique_ptr<MultiClassClassifier> LoadMultiClassModel(
    const std::string& path, std::string* error);

/// What a model file holds, decided from the header alone (magic, format
/// version, algorithm tag) without parsing the payload — callers use this
/// to dispatch between LoadAnyModel and LoadMultiClassModel cheaply.
enum class ModelKind : uint8_t {
  /// Not a readable tkdc model file (error is filled in).
  kInvalid = 0,
  /// A single DensityClassifier of any algorithm.
  kSingleClass,
  /// A multi-class container (tag 7).
  kMultiClass,
};

ModelKind ProbeModelKind(const std::string& path, std::string* error);

/// Current model format version written by SaveModel. Version 1 (tkdc
/// only, no algorithm tag), version 2 (algorithm tag, no serialized
/// index — always k-d tree), and version 3 (serialized index, no SoA
/// descriptor) are still readable. Version 4 adds the fast_math_leaf
/// config flag and an SoA leaf-layout descriptor to the index section;
/// the SoA mirror itself is derived state, always rebuilt on load and
/// never serialized — the descriptor only cross-checks the rebuild.
/// Version 5 adds the multi-class container tag (7); single-class
/// sections are unchanged, so a version-5 single-class file is readable
/// by any version-4-era section logic and all older files still load.
/// Version 6 adds the coreset_epsilon config field and, to the tkdc/nocut
/// sections (including those nested in a multi-class container), a trailer
/// holding the resolved error-budget table and the coreset metadata
/// (enabled flag, original training-set size, achieved error, halvings).
/// The serialized training data of a compressed model IS the coreset, so
/// every older structure (index, grid, SoA rebuild) loads unchanged; the
/// budget table is validated against the config's own resolution, making a
/// checksum-fixed corruption of any share a clean load error. v1-v5 files
/// still load (coreset_epsilon = 0, uncompressed metadata).
inline constexpr uint32_t kModelFormatVersion = 6;

}  // namespace tkdc

#endif  // TKDC_TKDC_MODEL_IO_H_
