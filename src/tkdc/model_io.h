#ifndef TKDC_TKDC_MODEL_IO_H_
#define TKDC_TKDC_MODEL_IO_H_

#include <memory>
#include <string>

#include "data/dataset.h"
#include "kde/density_classifier.h"
#include "tkdc/classifier.h"

namespace tkdc {

/// Persists a trained classifier to `path` in the tkdc binary model format
/// (magic "TKDC", format version, algorithm tag, then a per-algorithm
/// section holding the parameters, thresholds, and training data). The
/// training data rides along so derived structures (grid cache, density
/// grid) can be rebuilt deterministically on load. Since format version 3
/// the tree-backed sections (tkdc/nocut, rkde, knn) additionally carry the
/// spatial index itself — backend tag, topology, and per-node geometry
/// (k-d boxes or ball centroids/radii) — so a load adopts the exact trained
/// index instead of re-running the build, and a ball-tree model restores as
/// a ball tree regardless of the loader's configured default backend.
///
/// Works for every DensityClassifier subclass in the repo (tkdc, nocut,
/// simple, rkde, binned, knn). `training_data` must be the dataset the
/// classifier was trained on. `include_densities` applies only to tkdc /
/// nocut models: pass false to drop the cached Dx vector (smaller file;
/// training_densities() will be empty after load). Returns false and fills
/// `*error` on failure.
bool SaveModel(const std::string& path, const DensityClassifier& classifier,
               const Dataset& training_data, bool include_densities,
               std::string* error);

/// Loads a model saved by SaveModel when it is a tkdc (or nocut) model.
/// Reads both the current format and legacy version-1 files (which were
/// always tkdc). Returns nullptr and fills `*error` on malformed input or
/// when the file holds a different algorithm — use LoadAnyModel for that.
/// The returned classifier is fully trained: ready to Classify() without
/// touching the bootstrap.
std::unique_ptr<TkdcClassifier> LoadModel(const std::string& path,
                                          std::string* error);

/// Loads a model of any algorithm, dispatching on the stored tag. Legacy
/// version-1 files load as tkdc. The result's runtime type matches name():
/// "tkdc", "nocut", "simple", "rkde", "binned", or "knn".
std::unique_ptr<DensityClassifier> LoadAnyModel(const std::string& path,
                                                std::string* error);

/// Current model format version written by SaveModel. Version 1 (tkdc
/// only, no algorithm tag), version 2 (algorithm tag, no serialized
/// index — always k-d tree), and version 3 (serialized index, no SoA
/// descriptor) are still readable. Version 4 adds the fast_math_leaf
/// config flag and an SoA leaf-layout descriptor to the index section;
/// the SoA mirror itself is derived state, always rebuilt on load and
/// never serialized — the descriptor only cross-checks the rebuild.
inline constexpr uint32_t kModelFormatVersion = 4;

}  // namespace tkdc

#endif  // TKDC_TKDC_MODEL_IO_H_
