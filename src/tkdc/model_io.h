#ifndef TKDC_TKDC_MODEL_IO_H_
#define TKDC_TKDC_MODEL_IO_H_

#include <memory>
#include <string>

#include "data/dataset.h"
#include "tkdc/classifier.h"

namespace tkdc {

/// Persists a trained classifier to `path` in the tkdc binary model format
/// (magic "TKDC", format version, config, bandwidths, thresholds, training
/// data, and — optionally — the cached training densities). The training
/// data rides along because the k-d tree and grid cache are rebuilt
/// deterministically on load, which is both smaller and simpler than
/// serializing the index structure.
///
/// `training_data` must be the dataset the classifier was trained on. Pass
/// `include_densities` = false to drop the cached Dx vector (smaller file;
/// training_densities() will be empty after load). Returns false and fills
/// `*error` on failure.
bool SaveModel(const std::string& path, const TkdcClassifier& classifier,
               const Dataset& training_data, bool include_densities,
               std::string* error);

/// Loads a model saved by SaveModel. Returns nullptr and fills `*error` on
/// malformed input (bad magic, unsupported version, truncation,
/// inconsistent sizes). The returned classifier is fully trained: ready to
/// Classify() without touching the bootstrap.
std::unique_ptr<TkdcClassifier> LoadModel(const std::string& path,
                                          std::string* error);

/// Current model format version written by SaveModel.
inline constexpr uint32_t kModelFormatVersion = 1;

}  // namespace tkdc

#endif  // TKDC_TKDC_MODEL_IO_H_
