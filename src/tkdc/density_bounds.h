#ifndef TKDC_TKDC_DENSITY_BOUNDS_H_
#define TKDC_TKDC_DENSITY_BOUNDS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "index/kdtree.h"
#include "kde/kernel.h"
#include "tkdc/config.h"

namespace tkdc {

/// Certified interval [lower, upper] containing the exact kernel density
/// f(x) (up to floating-point round-off).
struct DensityBounds {
  double lower = 0.0;
  double upper = 0.0;

  double Midpoint() const { return 0.5 * (lower + upper); }
  double Width() const { return upper - lower; }
};

/// Work counters for the traversal, matching the metrics reported in the
/// paper's Figure 12 ("Kernel Evaluations / pt").
struct TraversalStats {
  /// Every kernel evaluation: two per node bound plus one per leaf point.
  uint64_t kernel_evaluations = 0;
  /// Nodes popped from the priority queue and expanded.
  uint64_t nodes_expanded = 0;
  /// Exact point contributions evaluated inside leaves.
  uint64_t leaf_points_evaluated = 0;
  /// BoundDensity invocations.
  uint64_t queries = 0;

  void Add(const TraversalStats& other);
};

/// The paper's Algorithm 2 (BoundDensity): iteratively refines upper and
/// lower bounds on the kernel density of a query point by traversing a k-d
/// tree with a priority queue, stopping as soon as a pruning rule fires:
///
///   Threshold rule (Eq. 9):  f_l > t_hi * (1 + eps)  or
///                            f_u < t_lo * (1 - eps)
///   Tolerance rule (Eq. 8):  f_u - f_l < eps * t_lo
///
/// The queue prioritizes nodes by their bound discrepancy
/// count * (K(d_min) - K(d_max)), the paper's Section 3.4 heuristic.
/// With both rules disabled the traversal exhausts the tree and the bounds
/// collapse to the exact density.
///
/// The evaluator borrows the tree, kernel, and config; all three must
/// outlive it.
///
/// Threading model: an evaluator is NOT thread-safe — `stats_` and the
/// traversal heap `queue_` are per-query mutable state — but it is cheap to
/// Clone(), and clones share only the immutable tree/kernel/config. Batch
/// drivers give every worker its own clone and fold the counters back with
/// MergeStats() (TraversalStats::Add is commutative and associative, so the
/// merge order cannot change totals). The heap storage is a persistent
/// per-evaluator scratch buffer: BoundDensity clears it but keeps its
/// capacity, so steady-state queries allocate nothing, serial or parallel.
class DensityBoundEvaluator {
 public:
  DensityBoundEvaluator(const KdTree* tree, const Kernel* kernel,
                        const TkdcConfig* config);

  /// A fresh evaluator over the same (shared, immutable) tree, kernel, and
  /// config, with zeroed stats and its own scratch buffer. This is the
  /// per-worker construction used by the parallel batch paths.
  DensityBoundEvaluator Clone() const {
    return DensityBoundEvaluator(tree_, kernel_, config_);
  }

  /// Folds another evaluator's counters into this one (order-insensitive).
  void MergeStats(const TraversalStats& other) { stats_.Add(other); }

  /// Bounds the density of `x` given current threshold bounds
  /// [t_lo, t_hi]. Pass t_lo = 0 and t_hi = +infinity to disable the
  /// threshold rule's effect regardless of configuration.
  ///
  /// `tolerance` is the absolute width target of the tolerance rule; when
  /// negative it defaults to the paper's eps * t_lo. Classifying *training*
  /// points passes shifted thresholds t + K(0)/n (to account for the
  /// self-contribution) but keeps the tolerance at eps * t, so the
  /// precision guarantee stays eps * t in self-corrected units even when
  /// K(0)/n dominates t (small n and/or higher d).
  DensityBounds BoundDensity(std::span<const double> x, double t_lo,
                             double t_hi, double tolerance = -1.0);

  /// BoundDensity seeded from an explicit reference-node `frontier` (a
  /// disjoint cover of the training set, e.g. the frontier a dual-tree box
  /// probe ended with) instead of the root. Equivalent result, but skips
  /// re-descending through nodes the box probe already refined.
  DensityBounds BoundDensityFromFrontier(std::span<const double> x,
                                         double t_lo, double t_hi,
                                         double tolerance,
                                         const std::vector<uint32_t>& frontier);

  /// Bounds the density of EVERY point inside `query_box` simultaneously:
  /// the returned interval contains f(q) for all q in the box. This is the
  /// dual-tree building block (paper Section 5 future work): a whole query
  /// node can be classified at once when its box-level bounds clear the
  /// threshold. Reference-tree leaves are treated as atomic (their box is
  /// the finest granularity); callers fall back to per-point BoundDensity
  /// when the box bounds stay undecided.
  ///
  /// `frontier` (in/out, may be null) carries the unexpanded reference
  /// nodes between probes: a child query box starts from its parent's
  /// frontier instead of re-descending from the root, which is what makes
  /// the traversal "dual". On input an empty frontier means {root}.
  ///
  /// `max_expansions` caps node expansions per probe: a probe is only
  /// worthwhile if it decides quickly, so the dual-tree driver uses a
  /// small budget and splits the query node when the probe runs out.
  /// Negative means unbounded.
  DensityBounds BoundDensityForBox(const BoundingBox& query_box, double t_lo,
                                   double t_hi, double tolerance = -1.0,
                                   int64_t max_expansions = -1,
                                   std::vector<uint32_t>* frontier = nullptr);

  const TraversalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TraversalStats(); }

 private:
  struct QueueEntry {
    double priority;  // count * (K(d_min) - K(d_max)).
    uint32_t node;
    double min_contribution;
    double max_contribution;

    bool operator<(const QueueEntry& other) const {
      return priority < other.priority;
    }
  };

  /// Computes the Eq. 6 contribution bounds of node `node_index` for
  /// query x, counting two kernel evaluations.
  QueueEntry MakeEntry(std::span<const double> x, uint32_t node_index);

  /// Box-query variant: contribution bounds valid for every point of
  /// `query_box`.
  QueueEntry MakeBoxEntry(const BoundingBox& query_box, uint32_t node_index);

  /// Shared refinement loop for point queries; `queue_`, `f_lo`, `f_hi`
  /// must already be seeded with a disjoint cover of the training set.
  DensityBounds RunPointTraversal(std::span<const double> x, double t_lo,
                                  double t_hi, double tolerance, double f_lo,
                                  double f_hi);

  const KdTree* tree_;
  const Kernel* kernel_;
  const TkdcConfig* config_;
  double inv_n_;
  TraversalStats stats_;
  /// Binary heap via std::push/pop_heap. Reused across queries: cleared,
  /// never shrunk, so per-query heap allocations vanish after warm-up.
  std::vector<QueueEntry> queue_;
};

}  // namespace tkdc

#endif  // TKDC_TKDC_DENSITY_BOUNDS_H_
