#ifndef TKDC_TKDC_DENSITY_BOUNDS_H_
#define TKDC_TKDC_DENSITY_BOUNDS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "index/spatial_index.h"
#include "kde/kernel.h"
#include "kde/query_context.h"
#include "tkdc/config.h"
#include "tkdc/traversal_trace.h"

namespace tkdc {

/// Certified interval [lower, upper] containing the exact kernel density
/// f(x) (up to floating-point round-off).
struct DensityBounds {
  double lower = 0.0;
  double upper = 0.0;

  double Midpoint() const { return 0.5 * (lower + upper); }
  double Width() const { return upper - lower; }
};

/// One frontier node of the best-first traversal: the Eq. 6 contribution
/// interval of a reference-tree node, prioritized by its bound discrepancy
/// count * (K(d_min) - K(d_max)) (the paper's Section 3.4 heuristic).
struct TraversalQueueEntry {
  double priority;
  uint32_t node;
  double min_contribution;
  double max_contribution;

  bool operator<(const TraversalQueueEntry& other) const {
    return priority < other.priority;
  }
};

/// Query context for tree-traversal engines (tKDC, nocut, rkde): the
/// traversal heap is the scratch buffer. Reused across queries: cleared,
/// never shrunk, so per-query heap allocations vanish after warm-up —
/// serial or parallel, each thread warms its own.
class TreeQueryContext : public QueryContext {
 public:
  TreeQueryContext() {
    // Pre-size so even the first queries run allocation-free; 2 entries per
    // level of a balanced tree plus slack covers typical frontiers.
    queue.reserve(64);
    neighbors.reserve(64);
  }

  /// Binary heap via std::push/pop_heap (point and box traversals).
  std::vector<TraversalQueueEntry> queue;
  /// Range-query hit list (rkde's radial neighbor collection).
  std::vector<size_t> neighbors;
  /// Opt-in single-query trace capture (diagnostics/tests only); the
  /// evaluator records every expansion into it when non-null. Borrowed, not
  /// owned: the caller scopes the tracer around the queries of interest.
  TraversalTracer* tracer = nullptr;
  /// Why the most recent point traversal stopped. Written by every
  /// BoundDensity* call, so the engine (and the metrics layer) can
  /// attribute the stop without re-deriving the rule from the bounds.
  CutoffReason last_cutoff = CutoffReason::kNone;
};

/// The paper's Algorithm 2 (BoundDensity): iteratively refines upper and
/// lower bounds on the kernel density of a query point by traversing a k-d
/// tree with a priority queue, stopping as soon as a pruning rule fires:
///
///   Threshold rule (Eq. 9):  f_l > t_hi * (1 + eps)  or
///                            f_u < t_lo * (1 - eps)
///   Tolerance rule (Eq. 8):  f_u - f_l < eps * t_lo
///
/// With both rules disabled the traversal exhausts the tree and the bounds
/// collapse to the exact density.
///
/// The evaluator traverses any SpatialIndex backend through the common
/// node API; when a node is expanded, each child's contribution interval
/// is clamped by its parent's (a child's points are a subset of the
/// parent's, so the parent's per-point kernel bounds stay valid for them).
/// For the k-d tree this is a no-op — child boxes nest inside parent boxes
/// — but ball-tree child balls can poke outside the parent ball, and the
/// clamp is what guarantees the bounds tighten monotonically at every
/// expansion for every backend.
///
/// The evaluator is a *stateless query engine*: it borrows the immutable
/// tree, kernel, and config (all three must outlive it), caches the
/// kernel's resolved radial profile, and keeps no per-query state — every
/// method is const and threads a TreeQueryContext carrying the traversal
/// heap and the work counters. One evaluator can therefore serve any
/// number of threads concurrently, each with its own context.
class DensityBoundEvaluator {
 public:
  DensityBoundEvaluator() = default;
  DensityBoundEvaluator(const SpatialIndex* tree, const Kernel* kernel,
                        const TkdcConfig* config);

  /// Bounds the density of `x` given current threshold bounds
  /// [t_lo, t_hi]. Pass t_lo = 0 and t_hi = +infinity to disable the
  /// threshold rule's effect regardless of configuration.
  ///
  /// `tolerance` is the absolute width target of the tolerance rule; when
  /// negative it defaults to the paper's eps * t_lo. Classifying *training*
  /// points passes shifted thresholds t + K(0)/n (to account for the
  /// self-contribution) but keeps the tolerance at eps * t, so the
  /// precision guarantee stays eps * t in self-corrected units even when
  /// K(0)/n dominates t (small n and/or higher d).
  DensityBounds BoundDensity(TreeQueryContext& ctx, std::span<const double> x,
                             double t_lo, double t_hi,
                             double tolerance = -1.0) const;

  /// Bounds the *affinely transformed* density g(x) = scale * f(x) + offset
  /// with the pruning rules evaluated in g-units: the traversal stops as
  /// soon as g_lo > t_hi * (1 + eps), g_hi < t_lo * (1 - eps), or
  /// g_hi - g_lo < tolerance, and the returned interval bounds g(x).
  ///
  /// This is the streaming-overlay fold (kde/delta_overlay.h): with n_b
  /// base points, a staged overlay of `ins` inserts and `tomb` tombstones,
  /// and Delta(x) their exact signed kernel sum, the merged density is
  /// g(x) = (n_b * f(x) + Delta(x)) / n_eff — i.e. scale = n_b / n_eff and
  /// offset = Delta(x) / n_eff. The cutoffs are remapped into base-space
  /// thresholds so the unmodified traversal decides exactly the g-space
  /// rules; when offset alone clears the high cut the remapped threshold
  /// goes negative and the threshold rule fires before any expansion.
  ///
  /// `scale` must be positive; `tolerance` is the absolute g-space width
  /// target and must be >= 0 (there is no -1 default here: the caller
  /// knows which space its epsilon band lives in).
  DensityBounds BoundDensityAffine(TreeQueryContext& ctx,
                                   std::span<const double> x, double scale,
                                   double offset, double t_lo, double t_hi,
                                   double tolerance) const;

  /// BoundDensity seeded from an explicit reference-node `frontier` (a
  /// disjoint cover of the training set, e.g. the frontier a dual-tree box
  /// probe ended with) instead of the root. Equivalent result, but skips
  /// re-descending through nodes the box probe already refined.
  DensityBounds BoundDensityFromFrontier(
      TreeQueryContext& ctx, std::span<const double> x, double t_lo,
      double t_hi, double tolerance, const std::vector<uint32_t>& frontier) const;

  /// Bounds the density of EVERY point inside `query_box` simultaneously:
  /// the returned interval contains f(q) for all q in the box. This is the
  /// dual-tree building block (paper Section 5 future work): a whole query
  /// node can be classified at once when its box-level bounds clear the
  /// threshold. Reference-tree leaves are treated as atomic (their box is
  /// the finest granularity); callers fall back to per-point BoundDensity
  /// when the box bounds stay undecided.
  ///
  /// `frontier` (in/out, may be null) carries the unexpanded reference
  /// nodes between probes: a child query box starts from its parent's
  /// frontier instead of re-descending from the root, which is what makes
  /// the traversal "dual". On input an empty frontier means {root}.
  ///
  /// `max_expansions` caps node expansions per probe: a probe is only
  /// worthwhile if it decides quickly, so the dual-tree driver uses a
  /// small budget and splits the query node when the probe runs out.
  /// Negative means unbounded.
  DensityBounds BoundDensityForBox(TreeQueryContext& ctx,
                                   const BoundingBox& query_box, double t_lo,
                                   double t_hi, double tolerance = -1.0,
                                   int64_t max_expansions = -1,
                                   std::vector<uint32_t>* frontier = nullptr) const;

  /// Starts an *incremental* point refinement: seeds `ctx.queue` with the
  /// root's Eq. 6 contribution interval and returns it. Unlike
  /// BoundDensity, no pruning rule runs and no query is counted — the
  /// caller owns the refinement loop and decides what constitutes a query.
  /// The refinement state is the pair (ctx.queue, returned bounds); both
  /// must be threaded unchanged into RefinePointBounds. This is the
  /// building block of the multi-class round-robin loop (tkdc/multiclass.h),
  /// which interleaves budgeted refinement steps across several trees.
  DensityBounds SeedPointRefinement(TreeQueryContext& ctx,
                                    std::span<const double> x) const;

  /// Expands up to `max_expansions` best-first nodes of a refinement
  /// started by SeedPointRefinement on the same context and query point,
  /// and returns the tightened bounds (monotone at every expansion thanks
  /// to the parent clamp; negative budget means unbounded). Sets
  /// ctx.last_cutoff to kExactLeaf when the queue drained — the bounds are
  /// now exact — or kExpansionBudget when the budget ran out first. The
  /// threshold/tolerance rules deliberately do not apply: cross-class
  /// cutoffs live in the caller, which compares bounds *between* trees.
  DensityBounds RefinePointBounds(TreeQueryContext& ctx,
                                  std::span<const double> x,
                                  DensityBounds current,
                                  int64_t max_expansions) const;

  const SpatialIndex* tree() const { return tree_; }
  const Kernel* kernel() const { return kernel_; }

 private:
  /// Computes the Eq. 6 contribution bounds of node `node_index` for
  /// query x, counting two kernel evaluations into `ctx`.
  TraversalQueueEntry MakeEntry(TreeQueryContext& ctx,
                                std::span<const double> x,
                                uint32_t node_index) const;

  /// Box-query variant: contribution bounds valid for every point of
  /// `query_box`.
  TraversalQueueEntry MakeBoxEntry(TreeQueryContext& ctx,
                                   const BoundingBox& query_box,
                                   uint32_t node_index) const;

  /// Shared refinement loop for point queries; `ctx.queue`, `f_lo`, `f_hi`
  /// must already be seeded with a disjoint cover of the training set.
  DensityBounds RunPointTraversal(TreeQueryContext& ctx,
                                  std::span<const double> x, double t_lo,
                                  double t_hi, double tolerance, double f_lo,
                                  double f_hi) const;

  /// Pops the top queue entry and replaces its interval with its children's
  /// (or the exact leaf sum), updating `*f_lo` / `*f_hi` in place — the
  /// single expansion step shared by RunPointTraversal and
  /// RefinePointBounds. The queue must be non-empty.
  void ExpandTop(TreeQueryContext& ctx, std::span<const double> x,
                 double* f_lo, double* f_hi) const;

  const SpatialIndex* tree_ = nullptr;
  const Kernel* kernel_ = nullptr;
  const TkdcConfig* config_ = nullptr;
  // Traversal share of the resolved error budget (tkdc/error_budget.h):
  // the epsilon the pruning rules are allowed to spend. Equals
  // config->epsilon when compression and fast-math are off.
  double eps_traversal_ = 0.0;
  double inv_n_ = 0.0;
  // Hot-loop dispatch hoisted once (see Kernel::scaled_profile()).
  Kernel::ScaledProfileFn profile_ = nullptr;
  double norm_ = 0.0;
  // Leaf-sum parameters for the vectorized SoA path (kde/kernel_simd.h).
  KernelType type_ = KernelType::kGaussian;
  bool fast_math_ = false;
};

}  // namespace tkdc

#endif  // TKDC_TKDC_DENSITY_BOUNDS_H_
