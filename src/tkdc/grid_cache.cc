#include "tkdc/grid_cache.h"

#include <cmath>

#include "common/macros.h"

namespace tkdc {

GridCache::GridCache(const Dataset& data, const Kernel& kernel)
    : dims_(data.dims()) {
  TKDC_CHECK(!data.empty());
  TKDC_CHECK(kernel.dims() == dims_);
  TKDC_CHECK_MSG(dims_ <= kMaxDims, "grid cache limited to 8 dimensions");
  inv_widths_.resize(dims_);
  for (size_t j = 0; j < dims_; ++j) {
    inv_widths_[j] = 1.0 / kernel.bandwidths()[j];
  }
  // Cell widths equal bandwidths, so in kernel-scaled units the cell
  // diagonal has squared length exactly d.
  // Resolved profile instead of the per-call EvaluateScaled switch
  // (bit-identical; see Kernel::scaled_profile()).
  diag_kernel_value_ =
      kernel.scaled_profile()(static_cast<double>(dims_), kernel.norm());
  inv_n_ = 1.0 / static_cast<double>(data.size());
  counts_.reserve(data.size() / 4);
  for (size_t i = 0; i < data.size(); ++i) {
    ++counts_[KeyFor(data.Row(i))];
  }
}

GridCache::CellKey GridCache::KeyFor(std::span<const double> x) const {
  TKDC_DCHECK(x.size() == dims_);
  CellKey key{};
  for (size_t j = 0; j < dims_; ++j) {
    key[j] = static_cast<int64_t>(std::floor(x[j] * inv_widths_[j]));
  }
  return key;
}

uint32_t GridCache::CellCount(std::span<const double> x) const {
  const auto it = counts_.find(KeyFor(x));
  return it == counts_.end() ? 0 : it->second;
}

double GridCache::DensityLowerBound(std::span<const double> x) const {
  return static_cast<double>(CellCount(x)) * inv_n_ * diag_kernel_value_;
}

}  // namespace tkdc
