#include "tkdc/classifier.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "common/stats.h"
#include "kde/bandwidth.h"

namespace tkdc {
namespace {

// Attempts to recompute the quantile with widened bounds when the detection
// check of Section 3.6 fires (probability <= delta).
constexpr int kMaxThresholdRetries = 5;

}  // namespace

TkdcClassifier::TkdcClassifier(TkdcConfig config)
    : config_(std::move(config)) {
  config_.Validate();
}

std::vector<double> TkdcClassifier::ComputeTrainingDensities(
    const Dataset& data, double lo, double hi) {
  std::vector<double> densities;
  densities.reserve(data.size());
  // lo/hi bound the *self-corrected* quantile t(p) (Eq. 1), while the
  // traversal bounds *raw* densities; shift by K(0)/n to compare in the
  // same space, but keep the tolerance target at eps * lo so corrected
  // densities near the threshold are resolved to eps * t.
  const double grid_cut = hi * (1.0 + config_.epsilon);
  const double tolerance = config_.epsilon * lo;
  for (size_t i = 0; i < data.size(); ++i) {
    const auto x = data.Row(i);
    if (grid_ != nullptr) {
      const double grid_bound =
          grid_->DensityLowerBound(x) - self_contribution_;
      if (grid_bound > grid_cut) {
        // Certified above the band: the exact value is irrelevant to the
        // p-quantile as long as it stays on the high side.
        densities.push_back(grid_bound);
        ++grid_prunes_;
        continue;
      }
    }
    const DensityBounds bounds = evaluator_->BoundDensity(
        x, lo + self_contribution_, hi + self_contribution_, tolerance);
    densities.push_back(bounds.Midpoint() - self_contribution_);
  }
  return densities;
}

void TkdcClassifier::Train(const Dataset& data) {
  TKDC_CHECK_MSG(data.size() >= 2, "training set needs at least 2 points");
  kernel_ = std::make_unique<Kernel>(
      config_.kernel, SelectBandwidths(config_.bandwidth_rule, data,
                                       config_.bandwidth_scale));
  KdTreeOptions tree_options;
  tree_options.leaf_size = config_.leaf_size;
  tree_options.split_rule = config_.split_rule;
  tree_options.axis_rule = config_.axis_rule;
  tree_ = std::make_unique<KdTree>(data, tree_options);
  evaluator_ =
      std::make_unique<DensityBoundEvaluator>(tree_.get(), kernel_.get(),
                                              &config_);
  self_contribution_ =
      kernel_->MaxValue() / static_cast<double>(data.size());

  // Phase 1 (Algorithm 3): coarse probabilistic bounds on t(p).
  ThresholdEstimator estimator(&config_);
  bootstrap_result_ = estimator.Bootstrap(data, *tree_, *kernel_);
  threshold_lower_ = bootstrap_result_.lower;
  threshold_upper_ = bootstrap_result_.upper;

  // Phase 2 (Section 3.7): grid cache over known-dense cells.
  grid_.reset();
  grid_prunes_ = 0;
  if (config_.use_grid && data.dims() <= config_.grid_max_dims &&
      data.dims() <= GridCache::kMaxDims) {
    grid_ = std::make_unique<GridCache>(data, *kernel_);
  }

  // Phase 3 (Algorithm 1): density bounds for every training point, then
  // the p-quantile of the corrected midpoints becomes t~(p).
  evaluator_->ResetStats();
  double lo = threshold_lower_;
  double hi = threshold_upper_;
  for (int attempt = 0;; ++attempt) {
    training_densities_ = ComputeTrainingDensities(data, lo, hi);
    threshold_ = Quantile(training_densities_, config_.p);
    // Detection step of Section 3.6: with probability >= 1 - delta the
    // quantile lands inside the bootstrap bounds. If it does not, the
    // bounds were invalid; widen and recompute.
    const bool valid = threshold_ >= lo * (1.0 - config_.epsilon) &&
                       threshold_ <= hi * (1.0 + config_.epsilon);
    if (valid || attempt >= kMaxThresholdRetries) break;
    lo /= config_.h_backoff;
    hi *= config_.h_backoff;
    if (attempt + 1 == kMaxThresholdRetries) {
      lo = 0.0;
      hi = std::numeric_limits<double>::infinity();
    }
    threshold_lower_ = lo;
    threshold_upper_ = hi;
  }
  training_stats_ = evaluator_->stats();
  evaluator_->ResetStats();
}

Classification TkdcClassifier::Classify(std::span<const double> x) {
  TKDC_CHECK_MSG(trained(), "Classify called before Train");
  if (grid_ != nullptr && grid_->DensityLowerBound(x) > threshold_) {
    ++grid_prunes_;
    return Classification::kHigh;
  }
  const DensityBounds bounds =
      evaluator_->BoundDensity(x, threshold_, threshold_);
  return bounds.Midpoint() > threshold_ ? Classification::kHigh
                                        : Classification::kLow;
}

Classification TkdcClassifier::ClassifyTraining(std::span<const double> x) {
  TKDC_CHECK_MSG(trained(), "ClassifyTraining called before Train");
  // Corrected comparison f(x) - K(0)/n > t is equivalent to comparing the
  // raw density against the shifted threshold t + K(0)/n, so the pruning
  // band simply shifts.
  const double shifted = threshold_ + self_contribution_;
  if (grid_ != nullptr && grid_->DensityLowerBound(x) > shifted) {
    ++grid_prunes_;
    return Classification::kHigh;
  }
  const DensityBounds bounds = evaluator_->BoundDensity(
      x, shifted, shifted, config_.epsilon * threshold_);
  return bounds.Midpoint() > shifted ? Classification::kHigh
                                     : Classification::kLow;
}

double TkdcClassifier::EstimateDensity(std::span<const double> x) {
  TKDC_CHECK_MSG(trained(), "EstimateDensity called before Train");
  return evaluator_->BoundDensity(x, threshold_, threshold_).Midpoint();
}

double TkdcClassifier::threshold() const {
  TKDC_CHECK_MSG(trained(), "threshold read before Train");
  return threshold_;
}

uint64_t TkdcClassifier::kernel_evaluations() const {
  uint64_t total = bootstrap_result_.stats.kernel_evaluations +
                   training_stats_.kernel_evaluations;
  if (evaluator_ != nullptr) total += evaluator_->stats().kernel_evaluations;
  return total;
}

TraversalStats TkdcClassifier::traversal_stats() const {
  TraversalStats stats = bootstrap_result_.stats;
  stats.Add(training_stats_);
  if (evaluator_ != nullptr) stats.Add(evaluator_->stats());
  return stats;
}

void TkdcClassifier::Restore(const Dataset& data,
                             const std::vector<double>& bandwidths,
                             double threshold_lower, double threshold_upper,
                             double threshold,
                             std::vector<double> training_densities) {
  TKDC_CHECK(data.size() >= 2);
  TKDC_CHECK(bandwidths.size() == data.dims());
  TKDC_CHECK(training_densities.empty() ||
             training_densities.size() == data.size());
  TKDC_CHECK(threshold_lower >= 0.0 && threshold_upper >= threshold_lower);
  kernel_ = std::make_unique<Kernel>(config_.kernel, bandwidths);
  KdTreeOptions tree_options;
  tree_options.leaf_size = config_.leaf_size;
  tree_options.split_rule = config_.split_rule;
  tree_options.axis_rule = config_.axis_rule;
  tree_ = std::make_unique<KdTree>(data, tree_options);
  evaluator_ = std::make_unique<DensityBoundEvaluator>(tree_.get(),
                                                       kernel_.get(),
                                                       &config_);
  self_contribution_ =
      kernel_->MaxValue() / static_cast<double>(data.size());
  grid_.reset();
  grid_prunes_ = 0;
  if (config_.use_grid && data.dims() <= config_.grid_max_dims &&
      data.dims() <= GridCache::kMaxDims) {
    grid_ = std::make_unique<GridCache>(data, *kernel_);
  }
  bootstrap_result_ = ThresholdBootstrapResult();
  training_stats_ = TraversalStats();
  threshold_lower_ = threshold_lower;
  threshold_upper_ = threshold_upper;
  threshold_ = threshold;
  training_densities_ = std::move(training_densities);
}

DensityBounds TkdcClassifier::BoundDensityAt(std::span<const double> x) {
  TKDC_CHECK_MSG(trained(), "BoundDensityAt called before Train");
  return evaluator_->BoundDensity(x, threshold_lower_, threshold_upper_);
}

}  // namespace tkdc
