#include "tkdc/classifier.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "common/stats.h"
#include "kde/bandwidth.h"

namespace tkdc {
namespace {

// Attempts to recompute the quantile with widened bounds when the detection
// check of Section 3.6 fires (probability <= delta).
constexpr int kMaxThresholdRetries = 5;

// Smallest contiguous run of rows a worker grabs at once: BoundDensity on
// an easy query is sub-microsecond, so amortize the per-chunk dispatch.
constexpr size_t kMinRowsPerChunk = 16;

}  // namespace

TkdcClassifier::TkdcClassifier(TkdcConfig config)
    : config_(std::move(config)) {
  config_.Validate();
}

ThreadPool* TkdcClassifier::pool() {
  const size_t want = num_threads();
  if (want <= 1) {
    pool_.reset();
    return nullptr;
  }
  if (pool_ == nullptr || pool_->num_threads() != want) {
    pool_ = std::make_unique<ThreadPool>(want);
  }
  return pool_.get();
}

void TkdcClassifier::SetNumThreads(size_t num_threads) {
  config_.num_threads = num_threads;
  config_.Validate();
  pool_.reset();  // Lazily rebuilt at the new size on next batch call.
}

double TkdcClassifier::TrainingDensityForRow(
    DensityBoundEvaluator& evaluator, std::span<const double> x, double lo,
    double hi, double grid_cut, double tolerance,
    uint64_t* grid_prunes) const {
  if (grid_ != nullptr) {
    const double grid_bound = grid_->DensityLowerBound(x) - self_contribution_;
    if (grid_bound > grid_cut) {
      // Certified above the band: the exact value is irrelevant to the
      // p-quantile as long as it stays on the high side.
      ++*grid_prunes;
      return grid_bound;
    }
  }
  const DensityBounds bounds = evaluator.BoundDensity(
      x, lo + self_contribution_, hi + self_contribution_, tolerance);
  return bounds.Midpoint() - self_contribution_;
}

std::vector<double> TkdcClassifier::ComputeTrainingDensities(
    const Dataset& data, double lo, double hi) {
  // lo/hi bound the *self-corrected* quantile t(p) (Eq. 1), while the
  // traversal bounds *raw* densities; shift by K(0)/n to compare in the
  // same space, but keep the tolerance target at eps * lo so corrected
  // densities near the threshold are resolved to eps * t.
  const double grid_cut = hi * (1.0 + config_.epsilon);
  const double tolerance = config_.epsilon * lo;
  std::vector<double> densities(data.size());

  ThreadPool* workers = pool();
  if (workers == nullptr) {
    // Serial legacy path: one evaluator, stats accumulate in place.
    for (size_t i = 0; i < data.size(); ++i) {
      densities[i] = TrainingDensityForRow(*evaluator_, data.Row(i), lo, hi,
                                           grid_cut, tolerance, &grid_prunes_);
    }
    return densities;
  }

  // Parallel path: every slot owns a private evaluator clone and a private
  // prune counter; rows land in `densities` by index. Each row's density
  // depends only on the row itself, so the values are bit-identical to the
  // serial loop's; merging the counters afterwards makes the totals match
  // too (sums are order-insensitive).
  const size_t slots = workers->num_threads();
  std::vector<DensityBoundEvaluator> evaluators;
  evaluators.reserve(slots);
  for (size_t s = 0; s < slots; ++s) evaluators.push_back(evaluator_->Clone());
  std::vector<uint64_t> prunes(slots, 0);
  workers->ParallelFor(
      data.size(), kMinRowsPerChunk,
      [&](size_t slot, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          densities[i] =
              TrainingDensityForRow(evaluators[slot], data.Row(i), lo, hi,
                                    grid_cut, tolerance, &prunes[slot]);
        }
      });
  for (size_t s = 0; s < slots; ++s) {
    evaluator_->MergeStats(evaluators[s].stats());
    grid_prunes_ += prunes[s];
  }
  return densities;
}

void TkdcClassifier::Train(const Dataset& data) {
  TKDC_CHECK_MSG(data.size() >= 2, "training set needs at least 2 points");
  kernel_ = std::make_unique<Kernel>(
      config_.kernel, SelectBandwidths(config_.bandwidth_rule, data,
                                       config_.bandwidth_scale));
  KdTreeOptions tree_options;
  tree_options.leaf_size = config_.leaf_size;
  tree_options.split_rule = config_.split_rule;
  tree_options.axis_rule = config_.axis_rule;
  tree_ = std::make_unique<KdTree>(data, tree_options);
  evaluator_ =
      std::make_unique<DensityBoundEvaluator>(tree_.get(), kernel_.get(),
                                              &config_);
  self_contribution_ =
      kernel_->MaxValue() / static_cast<double>(data.size());

  // Phase 1 (Algorithm 3): coarse probabilistic bounds on t(p).
  ThresholdEstimator estimator(&config_);
  bootstrap_result_ = estimator.Bootstrap(data, *tree_, *kernel_);
  threshold_lower_ = bootstrap_result_.lower;
  threshold_upper_ = bootstrap_result_.upper;

  // Phase 2 (Section 3.7): grid cache over known-dense cells.
  grid_.reset();
  grid_prunes_ = 0;
  if (config_.use_grid && data.dims() <= config_.grid_max_dims &&
      data.dims() <= GridCache::kMaxDims) {
    grid_ = std::make_unique<GridCache>(data, *kernel_);
  }

  // Phase 3 (Algorithm 1): density bounds for every training point, then
  // the p-quantile of the corrected midpoints becomes t~(p).
  evaluator_->ResetStats();
  double lo = threshold_lower_;
  double hi = threshold_upper_;
  for (int attempt = 0;; ++attempt) {
    training_densities_ = ComputeTrainingDensities(data, lo, hi);
    threshold_ = Quantile(training_densities_, config_.p);
    // Detection step of Section 3.6: with probability >= 1 - delta the
    // quantile lands inside the bootstrap bounds. If it does not, the
    // bounds were invalid; widen and recompute.
    const bool valid = threshold_ >= lo * (1.0 - config_.epsilon) &&
                       threshold_ <= hi * (1.0 + config_.epsilon);
    if (valid || attempt >= kMaxThresholdRetries) break;
    lo /= config_.h_backoff;
    hi *= config_.h_backoff;
    if (attempt + 1 == kMaxThresholdRetries) {
      lo = 0.0;
      hi = std::numeric_limits<double>::infinity();
    }
    threshold_lower_ = lo;
    threshold_upper_ = hi;
  }
  // Snapshot the Phase 3 work into its own bucket and reset the live
  // evaluator, so the live counters cover post-training queries only (see
  // the work-accounting contract in the header: the three buckets are
  // disjoint and totals never double count).
  training_stats_ = evaluator_->stats();
  evaluator_->ResetStats();
}

Classification TkdcClassifier::ClassifyWith(DensityBoundEvaluator& evaluator,
                                            std::span<const double> x,
                                            bool training,
                                            uint64_t* grid_prunes) const {
  // For training points the corrected comparison f(x) - K(0)/n > t is
  // equivalent to comparing the raw density against the shifted threshold
  // t + K(0)/n, so the pruning band simply shifts; the tolerance target
  // stays eps * t in corrected units.
  const double cut =
      training ? threshold_ + self_contribution_ : threshold_;
  if (grid_ != nullptr && grid_->DensityLowerBound(x) > cut) {
    ++*grid_prunes;
    return Classification::kHigh;
  }
  const DensityBounds bounds =
      training
          ? evaluator.BoundDensity(x, cut, cut, config_.epsilon * threshold_)
          : evaluator.BoundDensity(x, cut, cut);
  return bounds.Midpoint() > cut ? Classification::kHigh
                                 : Classification::kLow;
}

Classification TkdcClassifier::Classify(std::span<const double> x) {
  TKDC_CHECK_MSG(trained(), "Classify called before Train");
  return ClassifyWith(*evaluator_, x, /*training=*/false, &grid_prunes_);
}

Classification TkdcClassifier::ClassifyTraining(std::span<const double> x) {
  TKDC_CHECK_MSG(trained(), "ClassifyTraining called before Train");
  return ClassifyWith(*evaluator_, x, /*training=*/true, &grid_prunes_);
}

std::vector<Classification> TkdcClassifier::ClassifyBatchImpl(
    const Dataset& queries, bool training) {
  TKDC_CHECK_MSG(trained(), "ClassifyBatch called before Train");
  TKDC_CHECK_MSG(queries.dims() == tree_->dims(),
                 "query dimensionality does not match the trained model");
  std::vector<Classification> labels(queries.size());

  ThreadPool* workers = pool();
  if (workers == nullptr) {
    for (size_t i = 0; i < queries.size(); ++i) {
      labels[i] =
          ClassifyWith(*evaluator_, queries.Row(i), training, &grid_prunes_);
    }
    return labels;
  }

  const size_t slots = workers->num_threads();
  std::vector<DensityBoundEvaluator> evaluators;
  evaluators.reserve(slots);
  for (size_t s = 0; s < slots; ++s) evaluators.push_back(evaluator_->Clone());
  std::vector<uint64_t> prunes(slots, 0);
  workers->ParallelFor(
      queries.size(), kMinRowsPerChunk,
      [&](size_t slot, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          labels[i] = ClassifyWith(evaluators[slot], queries.Row(i), training,
                                   &prunes[slot]);
        }
      });
  // Fold worker counters into the live evaluator: the work-accounting
  // buckets (and thus kernel_evaluations()/traversal_stats()) read the
  // same whether the batch ran serial or parallel.
  for (size_t s = 0; s < slots; ++s) {
    evaluator_->MergeStats(evaluators[s].stats());
    grid_prunes_ += prunes[s];
  }
  return labels;
}

std::vector<Classification> TkdcClassifier::ClassifyBatch(
    const Dataset& queries) {
  return ClassifyBatchImpl(queries, /*training=*/false);
}

std::vector<Classification> TkdcClassifier::ClassifyTrainingBatch(
    const Dataset& queries) {
  return ClassifyBatchImpl(queries, /*training=*/true);
}

double TkdcClassifier::EstimateDensity(std::span<const double> x) {
  TKDC_CHECK_MSG(trained(), "EstimateDensity called before Train");
  return evaluator_->BoundDensity(x, threshold_, threshold_).Midpoint();
}

double TkdcClassifier::threshold() const {
  TKDC_CHECK_MSG(trained(), "threshold read before Train");
  return threshold_;
}

const TraversalStats& TkdcClassifier::query_stats() const {
  static const TraversalStats kEmpty;
  return evaluator_ != nullptr ? evaluator_->stats() : kEmpty;
}

uint64_t TkdcClassifier::kernel_evaluations() const {
  return bootstrap_result_.stats.kernel_evaluations +
         training_stats_.kernel_evaluations +
         query_stats().kernel_evaluations;
}

TraversalStats TkdcClassifier::traversal_stats() const {
  TraversalStats stats = bootstrap_result_.stats;
  stats.Add(training_stats_);
  stats.Add(query_stats());
  return stats;
}

void TkdcClassifier::Restore(const Dataset& data,
                             const std::vector<double>& bandwidths,
                             double threshold_lower, double threshold_upper,
                             double threshold,
                             std::vector<double> training_densities) {
  TKDC_CHECK(data.size() >= 2);
  TKDC_CHECK(bandwidths.size() == data.dims());
  TKDC_CHECK(training_densities.empty() ||
             training_densities.size() == data.size());
  TKDC_CHECK(threshold_lower >= 0.0 && threshold_upper >= threshold_lower);
  kernel_ = std::make_unique<Kernel>(config_.kernel, bandwidths);
  KdTreeOptions tree_options;
  tree_options.leaf_size = config_.leaf_size;
  tree_options.split_rule = config_.split_rule;
  tree_options.axis_rule = config_.axis_rule;
  tree_ = std::make_unique<KdTree>(data, tree_options);
  evaluator_ = std::make_unique<DensityBoundEvaluator>(tree_.get(),
                                                       kernel_.get(),
                                                       &config_);
  self_contribution_ =
      kernel_->MaxValue() / static_cast<double>(data.size());
  grid_.reset();
  grid_prunes_ = 0;
  if (config_.use_grid && data.dims() <= config_.grid_max_dims &&
      data.dims() <= GridCache::kMaxDims) {
    grid_ = std::make_unique<GridCache>(data, *kernel_);
  }
  bootstrap_result_ = ThresholdBootstrapResult();
  training_stats_ = TraversalStats();
  threshold_lower_ = threshold_lower;
  threshold_upper_ = threshold_upper;
  threshold_ = threshold;
  training_densities_ = std::move(training_densities);
}

DensityBounds TkdcClassifier::BoundDensityAt(std::span<const double> x) {
  TKDC_CHECK_MSG(trained(), "BoundDensityAt called before Train");
  return evaluator_->BoundDensity(x, threshold_lower_, threshold_upper_);
}

}  // namespace tkdc
