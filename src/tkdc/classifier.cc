#include "tkdc/classifier.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/macros.h"
#include "common/stats.h"
#include "kde/bandwidth.h"
#include "kde/coreset.h"

namespace tkdc {
namespace {

// Attempts to recompute the quantile with widened bounds when the detection
// check of Section 3.6 fires (probability <= delta).
constexpr int kMaxThresholdRetries = 5;

}  // namespace

TkdcClassifier::TkdcClassifier(TkdcConfig config)
    : config_(std::move(config)) {
  config_.CheckValid();
  SetNumThreads(config_.num_threads);
}

std::vector<double> TkdcClassifier::ComputeTrainingDensities(
    const Dataset& data, double lo, double hi, TreeQueryContext& sink) {
  // lo/hi bound the *self-corrected* quantile t(p) (Eq. 1), while the
  // traversal bounds *raw* densities; the engine shifts by K(0)/n to
  // compare in the same space, but keeps the tolerance target at eps * lo
  // so corrected densities near the threshold are resolved to eps * t.
  // eps is the traversal share of the error budget — the band the pruning
  // rules may spend after compression took its cut.
  const double eps = engine_.model().budget.traversal;
  const double grid_cut = hi * (1.0 + eps);
  const double tolerance = eps * lo;
  std::vector<double> densities(data.size());
  // Each row's density depends only on the row itself, so the values are
  // bit-identical to a serial loop's; the executor merges the per-worker
  // counters into `sink` afterwards (sums are order-insensitive).
  executor().Map(
      data.size(), BatchExecutor::kDefaultMinChunk,
      [this] { return MakeQueryContext(); },
      [&](QueryContext& ctx, size_t row) {
        densities[row] =
            engine_.TrainingDensity(static_cast<TreeQueryContext&>(ctx),
                                    data.Row(row), lo, hi, grid_cut,
                                    tolerance);
      },
      sink);
  return densities;
}

void TkdcClassifier::Train(const Dataset& data) {
  TKDC_CHECK_MSG(data.size() >= 2, "training set needs at least 2 points");
  // Bandwidths come from the FULL training set: Scott's rule depends on n
  // and the column spreads, so selecting them before compression makes the
  // compressed KDE approximate the same kernel density the uncompressed
  // model evaluates (the coreset guarantee is stated against that density).
  std::vector<double> bandwidths = SelectBandwidths(
      config_.bandwidth_rule, data, config_.bandwidth_scale);

  // Phase 0: epsilon-coreset compression on the budget's coreset share
  // (kde/coreset.h). Everything downstream — index build, bootstrap,
  // training densities, threshold — consumes the compressed set unchanged.
  const ErrorBudget budget = config_.ResolveBudget();
  CoresetResult compressed;
  const Dataset* train_data = &data;
  if (budget.coreset > 0.0) {
    const Kernel coreset_kernel(config_.kernel, bandwidths);
    CoresetOptions coreset_options;
    coreset_options.epsilon = budget.coreset;
    coreset_options.reference_quantile = config_.p;
    coreset_options.seed = config_.seed;
    compressed = BuildKdeCoreset(data, coreset_kernel, coreset_options);
    if (compressed.info.enabled) train_data = &compressed.points;
  }

  auto model =
      BuildTkdcModelSkeleton(config_, *train_data, std::move(bandwidths));
  if (compressed.info.enabled) model->coreset = compressed.info;

  // Phase 1 (Algorithm 3): coarse probabilistic bounds on t(p).
  ThresholdEstimator estimator(&model->config);
  model->bootstrap =
      estimator.Bootstrap(*train_data, *model->tree, *model->kernel);
  model->threshold_lower = model->bootstrap.lower;
  model->threshold_upper = model->bootstrap.upper;

  // Point the engine at the model while it is still privately mutable: the
  // Phase 3 pass only reads the index side; the threshold fields are
  // written below, before the model is published.
  engine_ = TkdcQueryEngine(model.get());

  // Phase 3 (Algorithm 1): density bounds for every training point, then
  // the p-quantile of the corrected midpoints becomes t~(p).
  TreeQueryContext phase3;
  double lo = model->threshold_lower;
  double hi = model->threshold_upper;
  for (int attempt = 0;; ++attempt) {
    model->training_densities =
        ComputeTrainingDensities(*train_data, lo, hi, phase3);
    model->threshold = Quantile(model->training_densities, config_.p);
    // Detection step of Section 3.6: with probability >= 1 - delta the
    // quantile lands inside the bootstrap bounds. If it does not, the
    // bounds were invalid; widen and recompute. The band is the traversal
    // share — what the density pass above was actually allowed to spend.
    const bool valid =
        model->threshold >= lo * (1.0 - budget.traversal) &&
        model->threshold <= hi * (1.0 + budget.traversal);
    if (valid || attempt >= kMaxThresholdRetries) break;
    lo /= config_.h_backoff;
    hi *= config_.h_backoff;
    if (attempt + 1 == kMaxThresholdRetries) {
      lo = 0.0;
      hi = std::numeric_limits<double>::infinity();
    }
    model->threshold_lower = lo;
    model->threshold_upper = hi;
  }

  // Snapshot the training work into its buckets (see the work-accounting
  // contract in the header) and publish the now-immutable model. Dropping
  // the live context makes query_stats() cover post-training queries only.
  phase3_stats_ = phase3.stats;
  train_stats_ = model->bootstrap.stats;
  train_stats_.Add(phase3_stats_);
  train_grid_prunes_ = phase3.grid_prunes;
  model_ = std::move(model);
  ResetQueryState();
}

Classification TkdcClassifier::ClassifyInContext(QueryContext& ctx,
                                                 std::span<const double> x,
                                                 bool training) const {
  TKDC_CHECK_MSG(trained(), "Classify called before Train");
  return engine_.Classify(static_cast<TreeQueryContext&>(ctx), x, training);
}

double TkdcClassifier::EstimateDensityInContext(
    QueryContext& ctx, std::span<const double> x) const {
  TKDC_CHECK_MSG(trained(), "EstimateDensity called before Train");
  return engine_.EstimateDensity(static_cast<TreeQueryContext&>(ctx), x);
}

Classification TkdcClassifier::ClassifyOverlayInContext(
    QueryContext& ctx, std::span<const double> x, bool training,
    const DeltaOverlay& overlay) const {
  TKDC_CHECK_MSG(trained(), "ClassifyWithOverlay called before Train");
  return engine_.ClassifyOverlay(static_cast<TreeQueryContext&>(ctx), x,
                                 training, overlay);
}

double TkdcClassifier::EstimateDensityOverlayInContext(
    QueryContext& ctx, std::span<const double> x,
    const DeltaOverlay& overlay) const {
  TKDC_CHECK_MSG(trained(), "EstimateDensityWithOverlay called before Train");
  return engine_.EstimateDensityOverlay(static_cast<TreeQueryContext&>(ctx), x,
                                        overlay);
}

bool TkdcClassifier::ExportTrainingData(Dataset* out) const {
  if (model_ == nullptr) return false;
  *out = model_->tree->ExportPoints();
  return true;
}

double TkdcClassifier::threshold() const {
  TKDC_CHECK_MSG(trained(), "threshold read before Train");
  return model_->threshold;
}

const std::vector<double>& TkdcClassifier::training_densities() const {
  static const std::vector<double> kEmpty;
  return model_ != nullptr ? model_->training_densities : kEmpty;
}

const ThresholdBootstrapResult& TkdcClassifier::bootstrap_result() const {
  static const ThresholdBootstrapResult kEmpty;
  return model_ != nullptr ? model_->bootstrap : kEmpty;
}

void TkdcClassifier::Restore(const Dataset& data,
                             const std::vector<double>& bandwidths,
                             double threshold_lower, double threshold_upper,
                             double threshold,
                             std::vector<double> training_densities,
                             std::unique_ptr<const SpatialIndex> prebuilt_index,
                             CoresetInfo coreset) {
  TKDC_CHECK(data.size() >= 2);
  TKDC_CHECK(bandwidths.size() == data.dims());
  TKDC_CHECK(training_densities.empty() ||
             training_densities.size() == data.size());
  TKDC_CHECK(threshold_lower >= 0.0 && threshold_upper >= threshold_lower);
  auto model = BuildTkdcModelSkeleton(config_, data, bandwidths,
                                      std::move(prebuilt_index));
  if (coreset.enabled) {
    TKDC_CHECK(coreset.original_size >= data.size());
    model->coreset = coreset;
  }
  model->threshold_lower = threshold_lower;
  model->threshold_upper = threshold_upper;
  model->threshold = threshold;
  model->training_densities = std::move(training_densities);
  engine_ = TkdcQueryEngine(model.get());
  phase3_stats_ = TraversalStats();
  train_stats_ = TraversalStats();
  train_grid_prunes_ = 0;
  model_ = std::move(model);
  ResetQueryState();
}

DensityBounds TkdcClassifier::BoundDensityAt(std::span<const double> x) {
  TKDC_CHECK_MSG(trained(), "BoundDensityAt called before Train");
  return engine_.evaluator().BoundDensity(
      static_cast<TreeQueryContext&>(live_context()), x,
      model_->threshold_lower, model_->threshold_upper);
}

}  // namespace tkdc
