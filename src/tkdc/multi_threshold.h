#ifndef TKDC_TKDC_MULTI_THRESHOLD_H_
#define TKDC_TKDC_MULTI_THRESHOLD_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "index/spatial_index.h"
#include "kde/kernel.h"
#include "tkdc/config.h"
#include "tkdc/density_bounds.h"
#include "tkdc/grid_cache.h"

namespace tkdc {

/// Classifies against a ladder of quantile thresholds t(p_1) < ... < t(p_L)
/// with ONE index, one bootstrap pass, and one traversal per query —
/// the natural engine for nested contour rendering (Figure 2a) and
/// density-based p-values (Section 2.1), which would otherwise train L
/// independent classifiers.
///
/// Train() bootstraps coarse bounds for the extreme levels, computes the
/// training-density pass once under the widened band, and reads all L
/// thresholds off the same density vector. Band() then classifies a query
/// into one of L+1 nested bands with a single bound traversal whose
/// tolerance is anchored at the smallest threshold, so every per-level
/// decision retains the eps * t(p_level) guarantee.
class MultiThresholdClassifier {
 public:
  /// `levels` must be strictly ascending probabilities in (0, 1), at least
  /// one. `config.p` is ignored (the levels take its place).
  MultiThresholdClassifier(TkdcConfig config, std::vector<double> levels);

  /// Trains on `data`; see class comment.
  void Train(const Dataset& data);

  bool trained() const { return tree_ != nullptr; }
  const std::vector<double>& levels() const { return levels_; }

  /// Estimated thresholds t~(p_i), ascending; valid after Train().
  const std::vector<double>& thresholds() const { return thresholds_; }

  /// Band of a fresh query point: the smallest i with f(x) < t(p_i), or
  /// levels().size() when the density clears every threshold. Band 0 means
  /// "below the lowest contour" (density quantile < p_1).
  size_t Band(std::span<const double> x);

  /// Band of a training point (self-corrected, like
  /// TkdcClassifier::ClassifyTraining).
  size_t BandTraining(std::span<const double> x);

  /// Upper bound on the density quantile of x implied by its band:
  /// levels()[band] or 1.0 above the top contour. This is the "p-value"
  /// of the statistical-testing use case.
  double QuantileUpperBound(std::span<const double> x) {
    const size_t band = Band(x);
    return band < levels_.size() ? levels_[band] : 1.0;
  }

  /// Total kernel evaluations so far (training + queries).
  uint64_t kernel_evaluations() const;

 private:
  size_t BandOfDensity(double density, double shift) const;
  size_t BandImpl(std::span<const double> x, double shift);

  TkdcConfig config_;
  /// Traversal share of the resolved error budget; frozen at construction.
  double eps_traversal_ = 0.0;
  std::vector<double> levels_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<const SpatialIndex> tree_;
  std::unique_ptr<GridCache> grid_;
  /// Stateless engine over tree_/kernel_/config_; rebuilt by Train().
  DensityBoundEvaluator evaluator_;
  /// Scratch + counters for this (externally single-threaded) classifier:
  /// the training pass and every Band() query run through it.
  TreeQueryContext ctx_;
  std::vector<double> thresholds_;
  double self_contribution_ = 0.0;
  uint64_t bootstrap_kernel_evaluations_ = 0;
};

}  // namespace tkdc

#endif  // TKDC_TKDC_MULTI_THRESHOLD_H_
