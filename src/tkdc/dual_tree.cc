#include "tkdc/dual_tree.h"

#include <vector>

#include "common/macros.h"
#include "index/kdtree.h"
#include "tkdc/grid_cache.h"
#include "tkdc/model.h"
#include "tkdc/query_engine.h"

namespace tkdc {

DualTreeClassifier::DualTreeClassifier(TkdcClassifier* trained)
    : DualTreeClassifier(trained, Options()) {}

DualTreeClassifier::DualTreeClassifier(TkdcClassifier* trained,
                                       Options options)
    : classifier_(trained), options_(options) {
  TKDC_CHECK(trained != nullptr);
  TKDC_CHECK(options_.query_leaf_size >= 1);
}

std::vector<Classification> DualTreeClassifier::ClassifyBatch(
    const Dataset& queries, bool training_points) {
  TKDC_CHECK_MSG(classifier_->trained(),
                 "DualTreeClassifier requires a trained TkdcClassifier");
  TKDC_CHECK(queries.dims() == classifier_->tree().dims());
  stats_ = DualTreeStats();
  std::vector<Classification> results(queries.size(), Classification::kLow);
  if (queries.empty()) return results;

  const TkdcModel& model = classifier_->model();
  const TkdcConfig& config = model.config;
  const double t = model.threshold;
  const double self = training_points ? model.self_contribution : 0.0;
  const double shifted = t + self;
  // The dual-tree probes spend the model's frozen traversal share, exactly
  // like the per-point traversals they replace.
  const double tolerance = model.budget.traversal * t;
  const double eps = model.budget.traversal;
  const DensityBoundEvaluator& evaluator = classifier_->engine_.evaluator();
  // The whole batch runs through one local context; its counters become
  // this batch's stats and are folded back into the classifier afterwards.
  TreeQueryContext ctx;

  // Index the queries themselves; each node's bounding box stands in for
  // all the query points beneath it. The query side is always a k-d tree
  // regardless of the reference backend: the box probe needs an axis-
  // aligned box per query node, and the reference side is reached only
  // through the evaluator's backend-agnostic API.
  KdTreeOptions query_tree_options;
  query_tree_options.leaf_size = options_.query_leaf_size;
  query_tree_options.split_rule = config.split_rule;
  query_tree_options.axis_rule = config.axis_rule;
  const KdTree query_tree(queries, query_tree_options);

  // DFS with frontier inheritance: each query node's probe starts from the
  // reference-node frontier its parent's probe ended with, instead of
  // re-descending from the root — the defining trick of dual-tree
  // traversal.
  struct Frame {
    size_t node_index;
    std::vector<uint32_t> frontier;
  };
  std::vector<Frame> stack;
  stack.push_back({KdTree::kRoot, {}});
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const IndexNode& node = query_tree.node(frame.node_index);
    ++stats_.boxes_evaluated;
    const DensityBounds bounds = evaluator.BoundDensityForBox(
        ctx, query_tree.box(frame.node_index), shifted, shifted, tolerance,
        options_.probe_budget, &frame.frontier);
    if (frame.frontier.size() > options_.max_frontier) {
      frame.frontier.clear();  // Children restart from the root.
    }
    // Wholesale decisions are sound under the Problem 1 contract: HIGH for
    // the whole box errs only if some point has f < t(1 - eps), impossible
    // when the box-wide lower bound already clears that line.
    if (bounds.lower >= shifted * (1.0 - eps)) {
      for (size_t i = node.begin; i < node.end; ++i) {
        results[query_tree.OriginalIndex(i)] = Classification::kHigh;
      }
      stats_.node_decided += node.count();
      continue;
    }
    if (bounds.upper <= shifted * (1.0 + eps)) {
      for (size_t i = node.begin; i < node.end; ++i) {
        results[query_tree.OriginalIndex(i)] = Classification::kLow;
      }
      stats_.node_decided += node.count();
      continue;
    }
    if (!node.is_leaf()) {
      stack.push_back({static_cast<size_t>(node.left), frame.frontier});
      stack.push_back(
          {static_cast<size_t>(node.right), std::move(frame.frontier)});
      continue;
    }
    // Undecidable leaf box: finish each query point individually, seeding
    // the traversal from the frontier the box probe already reached
    // instead of the root. The grid cache still screens dense points.
    for (size_t i = node.begin; i < node.end; ++i) {
      const size_t original = query_tree.OriginalIndex(i);
      const auto row = queries.Row(original);
      if (model.grid != nullptr &&
          model.grid->DensityLowerBound(row) > shifted) {
        results[original] = Classification::kHigh;
        continue;
      }
      const DensityBounds point_bounds = evaluator.BoundDensityFromFrontier(
          ctx, row, shifted, shifted, tolerance, frame.frontier);
      results[original] = point_bounds.Midpoint() > shifted
                              ? Classification::kHigh
                              : Classification::kLow;
    }
    stats_.point_decided += node.count();
  }

  stats_.traversal = ctx.stats;
  // Keep the classifier's cumulative accounting in sync with the work this
  // driver ran through its engine.
  classifier_->AbsorbCounters(ctx);
  return results;
}

}  // namespace tkdc
