#include "tkdc/model.h"

#include <utility>

#include "common/macros.h"

namespace tkdc {

std::shared_ptr<TkdcModel> BuildTkdcModelSkeleton(
    const TkdcConfig& config, const Dataset& data,
    std::vector<double> bandwidths,
    std::unique_ptr<const SpatialIndex> prebuilt_index) {
  TKDC_CHECK_MSG(data.size() >= 2, "training set needs at least 2 points");
  TKDC_CHECK(bandwidths.size() == data.dims());
  auto model = std::make_shared<TkdcModel>();
  model->config = config;
  model->budget = config.ResolveBudget();
  model->coreset.original_size = data.size();
  model->kernel =
      std::make_unique<const Kernel>(config.kernel, std::move(bandwidths));
  if (prebuilt_index != nullptr) {
    TKDC_CHECK(prebuilt_index->size() == data.size() &&
               prebuilt_index->dims() == data.dims());
    model->config.index_backend = prebuilt_index->backend();
    model->tree = std::move(prebuilt_index);
  } else {
    model->tree = BuildIndex(
        data, config.MakeIndexOptions(model->kernel->inverse_bandwidths()));
  }
  model->self_contribution =
      model->kernel->MaxValue() / static_cast<double>(data.size());
  if (config.use_grid && data.dims() <= config.grid_max_dims &&
      data.dims() <= GridCache::kMaxDims) {
    model->grid = std::make_unique<const GridCache>(data, *model->kernel);
  }
  return model;
}

}  // namespace tkdc
