#include "tkdc/model.h"

#include <utility>

#include "common/macros.h"

namespace tkdc {

std::shared_ptr<TkdcModel> BuildTkdcModelSkeleton(
    const TkdcConfig& config, const Dataset& data,
    std::vector<double> bandwidths) {
  TKDC_CHECK_MSG(data.size() >= 2, "training set needs at least 2 points");
  TKDC_CHECK(bandwidths.size() == data.dims());
  auto model = std::make_shared<TkdcModel>();
  model->config = config;
  model->kernel =
      std::make_unique<const Kernel>(config.kernel, std::move(bandwidths));
  KdTreeOptions tree_options;
  tree_options.leaf_size = config.leaf_size;
  tree_options.split_rule = config.split_rule;
  tree_options.axis_rule = config.axis_rule;
  model->tree = std::make_unique<const KdTree>(data, tree_options);
  model->self_contribution =
      model->kernel->MaxValue() / static_cast<double>(data.size());
  if (config.use_grid && data.dims() <= config.grid_max_dims &&
      data.dims() <= GridCache::kMaxDims) {
    model->grid = std::make_unique<const GridCache>(data, *model->kernel);
  }
  return model;
}

}  // namespace tkdc
