#ifndef TKDC_TKDC_GRID_CACHE_H_
#define TKDC_TKDC_GRID_CACHE_H_

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>

#include "data/dataset.h"
#include "kde/kernel.h"

namespace tkdc {

/// Dense-region cache (paper Section 3.7): a d-dimensional hypergrid with
/// cell widths equal to the kernel bandwidths. One pass over the training
/// set counts points per cell; afterwards, any query whose own cell holds
/// enough mass is certified above the threshold without touching the tree,
/// because every point sharing the cell is at most one cell diagonal away:
///
///   f(x) >= G(x)/n * K_H(d_diag)
///
/// The grid scales exponentially with d and is only used for d <= 8 here
/// (the paper disables it above 4; the config controls the actual cutoff).
class GridCache {
 public:
  static constexpr size_t kMaxDims = 8;

  /// Builds the cache over `data` with cell widths = kernel bandwidths.
  /// Requires data.dims() <= kMaxDims.
  GridCache(const Dataset& data, const Kernel& kernel);

  /// Number of training points in the cell containing `x`.
  uint32_t CellCount(std::span<const double> x) const;

  /// Certified lower bound on the density at `x` from same-cell mass alone.
  double DensityLowerBound(std::span<const double> x) const;

  /// Number of distinct occupied cells (diagnostics).
  size_t NumOccupiedCells() const { return counts_.size(); }

 private:
  using CellKey = std::array<int64_t, kMaxDims>;

  struct CellKeyHash {
    size_t operator()(const CellKey& key) const {
      uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (int64_t coordinate : key) {
        h ^= static_cast<uint64_t>(coordinate) + 0x9e3779b97f4a7c15ULL +
             (h << 6) + (h >> 2);
      }
      return static_cast<size_t>(h);
    }
  };

  CellKey KeyFor(std::span<const double> x) const;

  size_t dims_;
  std::vector<double> inv_widths_;
  double diag_kernel_value_;  // K_H(cell diagonal).
  double inv_n_;
  std::unordered_map<CellKey, uint32_t, CellKeyHash> counts_;
};

}  // namespace tkdc

#endif  // TKDC_TKDC_GRID_CACHE_H_
