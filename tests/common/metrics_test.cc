// Unit tests for the MetricsRegistry / MetricsShard pair: schema
// registration, shard recording, merge/absorb algebra, and JSON export.

#include "common/metrics.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace tkdc {
namespace {

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry registry;
  const size_t a = registry.AddCounter("a");
  const size_t b = registry.AddCounter("b");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(registry.AddCounter("a"), a);
  EXPECT_EQ(registry.counter_count(), 2u);

  const std::vector<double> bounds{1.0, 2.0, 4.0};
  const size_t h = registry.AddHistogram("h", bounds);
  EXPECT_EQ(h, 0u);
  EXPECT_EQ(registry.AddHistogram("h", bounds), h);
  EXPECT_EQ(registry.histogram_count(), 1u);
}

TEST(MetricsRegistry, CountersAbsorbAcrossShards) {
  MetricsRegistry registry;
  const size_t hits = registry.AddCounter("hits");
  std::unique_ptr<MetricsShard> shard1 = registry.NewShard();
  std::unique_ptr<MetricsShard> shard2 = registry.NewShard();
  shard1->Inc(hits);
  shard1->Inc(hits, 4);
  shard2->Inc(hits, 10);
  registry.Absorb(*shard1);
  registry.Absorb(*shard2);
  EXPECT_EQ(registry.CounterValue("hits"), 15u);
  EXPECT_EQ(registry.CounterValue("unknown"), 0u);
}

TEST(MetricsRegistry, HistogramBucketsCountAndOverflow) {
  MetricsRegistry registry;
  const size_t h = registry.AddHistogram("work", {1.0, 10.0, 100.0});
  std::unique_ptr<MetricsShard> shard = registry.NewShard();
  shard->Observe(h, 0.5);    // <= 1
  shard->Observe(h, 1.0);    // <= 1 (bounds are inclusive)
  shard->Observe(h, 7.0);    // <= 10
  shard->Observe(h, 100.0);  // <= 100
  shard->Observe(h, 101.0);  // overflow
  registry.Absorb(*shard);

  const auto snapshot = registry.HistogramValue("work");
  ASSERT_EQ(snapshot.buckets.size(), 4u);
  EXPECT_EQ(snapshot.buckets[0], 2u);
  EXPECT_EQ(snapshot.buckets[1], 1u);
  EXPECT_EQ(snapshot.buckets[2], 1u);
  EXPECT_EQ(snapshot.buckets[3], 1u);
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.5 + 1.0 + 7.0 + 100.0 + 101.0);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.5);
  EXPECT_DOUBLE_EQ(snapshot.max, 101.0);
}

TEST(MetricsShard, MergeIsOrderInsensitive) {
  MetricsRegistry registry;
  const size_t c = registry.AddCounter("c");
  const size_t h = registry.AddHistogram("h", {2.0, 8.0});

  auto make = [&](uint64_t inc, double obs) {
    std::unique_ptr<MetricsShard> shard = registry.NewShard();
    shard->Inc(c, inc);
    shard->Observe(h, obs);
    return shard;
  };
  std::unique_ptr<MetricsShard> a = make(3, 1.0);
  std::unique_ptr<MetricsShard> b = make(5, 9.0);
  std::unique_ptr<MetricsShard> ab = registry.NewShard();
  ab->Merge(*a);
  ab->Merge(*b);
  std::unique_ptr<MetricsShard> ba = registry.NewShard();
  ba->Merge(*b);
  ba->Merge(*a);

  EXPECT_EQ(ab->counter(c), 8u);
  EXPECT_EQ(ba->counter(c), 8u);
  registry.Absorb(*ab);
  const auto snapshot = registry.HistogramValue("h");
  EXPECT_EQ(snapshot.count, 2u);
  EXPECT_EQ(snapshot.buckets[0], 1u);
  EXPECT_EQ(snapshot.buckets[2], 1u);  // 9.0 overflows past 8.0.
}

TEST(MetricsShard, ResetZeroesEverything) {
  MetricsRegistry registry;
  const size_t c = registry.AddCounter("c");
  const size_t h = registry.AddHistogram("h", {1.0});
  std::unique_ptr<MetricsShard> shard = registry.NewShard();
  shard->Inc(c, 7);
  shard->Observe(h, 0.5);
  shard->Reset();
  EXPECT_EQ(shard->counter(c), 0u);
  registry.Absorb(*shard);
  const auto snapshot = registry.HistogramValue("h");
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.buckets[0], 0u);
}

TEST(MetricsRegistry, BucketHelpers) {
  const std::vector<double> pow2 = MetricsRegistry::PowerOfTwoBounds(4);
  EXPECT_EQ(pow2, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  const std::vector<double> decades = MetricsRegistry::DecadeBounds(-1, 1);
  ASSERT_EQ(decades.size(), 3u);
  EXPECT_DOUBLE_EQ(decades[0], 0.1);
  EXPECT_DOUBLE_EQ(decades[1], 1.0);
  EXPECT_DOUBLE_EQ(decades[2], 10.0);
}

TEST(MetricsRegistry, WriteJsonEmitsCountersAndHistograms) {
  MetricsRegistry registry;
  registry.AddCounter("queries");
  registry.AddHistogram("depth", {1.0, 2.0});
  std::unique_ptr<MetricsShard> shard = registry.NewShard();
  shard->Inc(0, 3);
  shard->Observe(0, 1.5);
  registry.Absorb(*shard);

  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"queries\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"le\": 2, \"count\": 1}"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"le\": \"inf\", \"count\": 0}"), std::string::npos)
      << json;
  // Balanced braces/brackets — a cheap structural sanity check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(MetricsRegistry, WriteJsonBeforeAnyAbsorbIsAllZero) {
  MetricsRegistry registry;
  registry.AddCounter("queries");
  registry.AddHistogram("depth", {1.0});
  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"queries\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos) << json;
}

}  // namespace
}  // namespace tkdc
