#include "common/order_stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace tkdc {
namespace {

TEST(NormalApproxQuantileCiTest, ReproducesPaperExample) {
  // Section 3.5: s = 20000, delta = 0.01, p = 0.01 -> ranks 164 and 236.
  const QuantileCi ci = NormalApproxQuantileCi(20000, 0.01, 0.01);
  EXPECT_EQ(ci.lower, 163);  // floor(200 - 2.576 * sqrt(198)) = 163.
  EXPECT_EQ(ci.upper, 237);  // ceil(200 + 2.576 * sqrt(198)) = 237.
  // (The paper rounds inward to 164/236; our floor/ceil is one rank more
  // conservative on each side, so coverage can only be higher.)
  EXPECT_GE(ci.coverage, 0.99);
}

TEST(NormalApproxQuantileCiTest, RanksClampToSampleSize) {
  const QuantileCi ci = NormalApproxQuantileCi(50, 0.01, 0.01);
  EXPECT_GE(ci.lower, 1);
  EXPECT_LE(ci.upper, 50);
  EXPECT_LE(ci.lower, ci.upper);
}

TEST(NormalApproxQuantileCiTest, TighterDeltaWidensInterval) {
  const QuantileCi loose = NormalApproxQuantileCi(10000, 0.05, 0.1);
  const QuantileCi tight = NormalApproxQuantileCi(10000, 0.05, 0.001);
  EXPECT_GE(tight.upper - tight.lower, loose.upper - loose.lower);
}

TEST(ExactBinomialQuantileCiTest, ReachesRequestedCoverage) {
  for (double p : {0.01, 0.1, 0.5}) {
    for (double delta : {0.1, 0.01}) {
      const QuantileCi ci = ExactBinomialQuantileCi(2000, p, delta);
      EXPECT_GE(ci.coverage, 1.0 - delta)
          << "p=" << p << " delta=" << delta;
    }
  }
}

TEST(ExactBinomialQuantileCiTest, NarrowerThanOrEqualToNormalApprox) {
  // The greedy exact interval should never be wildly wider than the
  // normal-approximation interval at the same coverage.
  const QuantileCi approx = NormalApproxQuantileCi(20000, 0.01, 0.01);
  const QuantileCi exact = ExactBinomialQuantileCi(20000, 0.01, 0.01);
  EXPECT_LE(exact.upper - exact.lower,
            (approx.upper - approx.lower) + 10);
}

TEST(QuantileCiCoverageTest, FullSampleRangeHasFullBinomialMass) {
  // [1, s] covers Bin in [1, s]: misses only the i = 0 term.
  const double coverage = QuantileCiCoverage(100, 0.2, 1, 100);
  const double miss = std::pow(0.8, 100.0);
  EXPECT_NEAR(coverage, 1.0 - miss, 1e-12);
}

// Empirical property: across many random samples, the fraction of samples
// where [X_(l), X_(u)] actually brackets the true quantile should meet the
// coverage bound.
class QuantileCiEmpirical
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(QuantileCiEmpirical, BracketsTrueQuantile) {
  const auto [p, delta] = GetParam();
  const int kSampleSize = 500;
  const int kTrials = 400;
  const QuantileCi ci = NormalApproxQuantileCi(kSampleSize, p, delta);
  // Population: standard uniform, whose p-quantile is exactly p.
  Rng rng(1234);
  int bracketed = 0;
  std::vector<double> sample(kSampleSize);
  for (int t = 0; t < kTrials; ++t) {
    for (double& v : sample) v = rng.NextDouble();
    std::sort(sample.begin(), sample.end());
    const double lower_stat = sample[ci.lower - 1];
    const double upper_stat = sample[ci.upper - 1];
    if (lower_stat <= p && p <= upper_stat) ++bracketed;
  }
  // Binomial noise over 400 trials: allow 3 sigma below 1 - delta.
  const double observed = bracketed / static_cast<double>(kTrials);
  const double sigma =
      std::sqrt(delta * (1.0 - delta) / static_cast<double>(kTrials));
  EXPECT_GE(observed, 1.0 - delta - 3.0 * sigma - 0.01)
      << "p=" << p << " delta=" << delta;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantileCiEmpirical,
    ::testing::Values(std::make_pair(0.05, 0.05), std::make_pair(0.1, 0.01),
                      std::make_pair(0.5, 0.05), std::make_pair(0.9, 0.1)));

}  // namespace
}  // namespace tkdc
