#include "common/parallel.h"

#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace tkdc {
namespace {

TEST(ParallelTest, HardwareConcurrencyAtLeastOne) {
  EXPECT_GE(HardwareConcurrency(), 1u);
}

TEST(ParallelTest, ZeroThreadsResolvesToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), HardwareConcurrency());
}

TEST(ParallelTest, CoversEveryIndexExactlyOnce) {
  for (const size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    for (const size_t total : {0u, 1u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(total);
      for (auto& h : hits) h.store(0);
      pool.ParallelFor(total, 1, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < total; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ParallelTest, SlotAssignmentIsDeterministic) {
  // Chunk c always goes to slot c % T: repeated runs must give every index
  // the same slot, independent of scheduling.
  ThreadPool pool(4);
  const size_t total = 777;
  std::vector<size_t> first(total, 0), second(total, 0);
  auto record = [&](std::vector<size_t>& out) {
    pool.ParallelFor(total, 1, [&](size_t slot, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) out[i] = slot;
    });
  };
  record(first);
  record(second);
  EXPECT_EQ(first, second);
  // All slots participate on a range this size.
  std::vector<bool> seen(4, false);
  for (size_t slot : first) seen[slot] = true;
  for (size_t s = 0; s < 4; ++s) EXPECT_TRUE(seen[s]) << "slot " << s;
}

TEST(ParallelTest, SlotsAreWithinRangeAndChunksAscendingPerSlot) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::vector<std::vector<size_t>> begins_per_slot(3);
  pool.ParallelFor(500, 1, [&](size_t slot, size_t begin, size_t end) {
    ASSERT_LT(slot, 3u);
    ASSERT_LT(begin, end);
    std::lock_guard<std::mutex> lock(mutex);
    begins_per_slot[slot].push_back(begin);
  });
  for (const auto& begins : begins_per_slot) {
    for (size_t i = 1; i < begins.size(); ++i) {
      EXPECT_GT(begins[i], begins[i - 1]);  // Ascending within a slot.
    }
  }
}

TEST(ParallelTest, MinChunkIsRespected) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<size_t> chunk_sizes;
  const size_t total = 1000;
  const size_t min_chunk = 300;
  pool.ParallelFor(total, min_chunk,
                   [&](size_t, size_t begin, size_t end) {
                     std::lock_guard<std::mutex> lock(mutex);
                     chunk_sizes.push_back(end - begin);
                   });
  // Chunks finish (and are recorded) in scheduling order, so only the
  // counts are deterministic: at most one ragged chunk below min_chunk,
  // and the sizes add back up to the range.
  size_t sum = 0;
  size_t below_min = 0;
  for (const size_t size : chunk_sizes) {
    sum += size;
    if (size < min_chunk) ++below_min;
  }
  EXPECT_EQ(sum, total);
  EXPECT_LE(below_min, 1u);
}

TEST(ParallelTest, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(97, 1, [&](size_t, size_t begin, size_t end) {
      total.fetch_add(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 200u * 97u);
}

TEST(ParallelTest, ParallelSumMatchesSerial) {
  const size_t total = 100'000;
  ThreadPool pool(8);
  std::vector<uint64_t> partial(pool.num_threads(), 0);
  pool.ParallelFor(total, 1, [&](size_t slot, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) partial[slot] += i;
  });
  const uint64_t sum =
      std::accumulate(partial.begin(), partial.end(), uint64_t{0});
  EXPECT_EQ(sum, static_cast<uint64_t>(total) * (total - 1) / 2);
}

TEST(ParallelTest, NullPoolFallbackRunsInline) {
  std::vector<int> hits(100, 0);
  size_t calls = 0;
  ParallelFor(nullptr, hits.size(), 1,
              [&](size_t slot, size_t begin, size_t end) {
                EXPECT_EQ(slot, 0u);
                ++calls;
                for (size_t i = begin; i < end; ++i) hits[i] = 1;
              });
  EXPECT_EQ(calls, 1u);  // Whole range in one inline call.
  for (int h : hits) EXPECT_EQ(h, 1);
  // Zero-length range: body never invoked.
  ParallelFor(nullptr, 0, 1,
              [&](size_t, size_t, size_t) { FAIL() << "empty range ran"; });
}

TEST(ParallelTest, SingleSlotPoolRunsOnCallerThread) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(50, 1, [&](size_t slot, size_t, size_t) {
    EXPECT_EQ(slot, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

}  // namespace
}  // namespace tkdc
