#include "common/special_math.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tkdc {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.0), 0.15865525393145707, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-12);
}

TEST(NormalCdfTest, Symmetry) {
  for (double x = 0.0; x < 5.0; x += 0.37) {
    EXPECT_NEAR(NormalCdf(x) + NormalCdf(-x), 1.0, 1e-13);
  }
}

TEST(NormalPdfTest, PeakAndSymmetry) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-14);
  EXPECT_NEAR(NormalPdf(1.3), NormalPdf(-1.3), 1e-15);
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-9);
  // The paper's z constant: z_0.995 = 2.576 (Section 3.5 example).
  EXPECT_NEAR(NormalQuantile(0.995), 2.5758293035489004, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.01), -2.3263478740408408, 1e-9);
}

// Property: NormalQuantile inverts NormalCdf across the domain.
class NormalQuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(NormalQuantileRoundTrip, InvertsCdf) {
  const double p = GetParam();
  const double z = NormalQuantile(p);
  EXPECT_NEAR(NormalCdf(z), p, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SweepP, NormalQuantileRoundTrip,
                         ::testing::Values(1e-8, 1e-5, 1e-3, 0.01, 0.02425,
                                           0.1, 0.25, 0.5, 0.75, 0.9, 0.99,
                                           0.999, 1.0 - 1e-6));

TEST(ErfInvTest, InvertsErf) {
  for (double x = -2.5; x <= 2.5; x += 0.25) {
    EXPECT_NEAR(ErfInv(std::erf(x)), x, 1e-8) << "x=" << x;
  }
}

TEST(LogSumExpTest, MatchesDirectForSmallValues) {
  EXPECT_NEAR(LogSumExp(0.0, 0.0), std::log(2.0), 1e-14);
  EXPECT_NEAR(LogSumExp(1.0, 2.0), std::log(std::exp(1.0) + std::exp(2.0)),
              1e-13);
}

TEST(LogSumExpTest, NoOverflowForLargeInputs) {
  const double big = 800.0;  // exp(800) overflows a double.
  EXPECT_NEAR(LogSumExp(big, big), big + std::log(2.0), 1e-10);
  EXPECT_NEAR(LogSumExp(big, big - 50.0), big, 1e-10);
}

TEST(LogSumExpTest, NegativeInfinityIdentity) {
  const double neg_inf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(LogSumExp(neg_inf, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(LogSumExp(3.0, neg_inf), 3.0);
}

TEST(RegularizedGammaPTest, KnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x = 0.1; x < 6.0; x += 0.7) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(0.5, x) = erf(sqrt(x)).
  for (double x = 0.1; x < 6.0; x += 0.7) {
    EXPECT_NEAR(RegularizedGammaP(0.5, x), std::erf(std::sqrt(x)), 1e-10);
  }
}

TEST(RegularizedGammaPTest, Monotone) {
  double prev = 0.0;
  for (double x = 0.0; x < 20.0; x += 0.5) {
    const double value = RegularizedGammaP(3.0, x);
    EXPECT_GE(value, prev);
    prev = value;
  }
  EXPECT_NEAR(prev, 1.0, 1e-6);
}

TEST(ChiSquareCdfTest, MedianOfChiSquare2IsLogFour) {
  // For k=2 the chi-square is Exp(1/2): CDF(x) = 1 - exp(-x/2).
  EXPECT_NEAR(ChiSquareCdf(2.0 * std::log(2.0), 2.0), 0.5, 1e-12);
}

TEST(ChiSquareCdfTest, NonPositiveIsZero) {
  EXPECT_EQ(ChiSquareCdf(0.0, 5.0), 0.0);
  EXPECT_EQ(ChiSquareCdf(-1.0, 5.0), 0.0);
}

TEST(BinomialCoefficientTest, SmallExactValues) {
  EXPECT_NEAR(BinomialCoefficient(5, 2), 10.0, 1e-9);
  EXPECT_NEAR(BinomialCoefficient(10, 0), 1.0, 1e-9);
  EXPECT_NEAR(BinomialCoefficient(10, 10), 1.0, 1e-9);
  EXPECT_NEAR(BinomialCoefficient(52, 5), 2598960.0, 1e-3);
}

TEST(BinomialIntervalProbabilityTest, FullRangeIsOne) {
  EXPECT_NEAR(BinomialIntervalProbability(20, 0.3, 0, 20), 1.0, 1e-12);
}

TEST(BinomialIntervalProbabilityTest, SinglePointMatchesPmf) {
  // P(Bin(10, 0.5) = 5) = 252 / 1024.
  EXPECT_NEAR(BinomialIntervalProbability(10, 0.5, 5, 5), 252.0 / 1024.0,
              1e-12);
}

TEST(BinomialIntervalProbabilityTest, DegenerateP) {
  EXPECT_EQ(BinomialIntervalProbability(10, 0.0, 0, 0), 1.0);
  EXPECT_EQ(BinomialIntervalProbability(10, 0.0, 1, 10), 0.0);
  EXPECT_EQ(BinomialIntervalProbability(10, 1.0, 10, 10), 1.0);
  EXPECT_EQ(BinomialIntervalProbability(10, 1.0, 0, 9), 0.0);
}

TEST(BinomialIntervalProbabilityTest, EmptyAndClampedRanges) {
  EXPECT_EQ(BinomialIntervalProbability(10, 0.4, 7, 3), 0.0);
  // Out-of-range bounds are clamped to [0, s].
  EXPECT_NEAR(BinomialIntervalProbability(10, 0.4, -5, 50), 1.0, 1e-12);
}

TEST(BinomialIntervalProbabilityTest, LargeSampleStaysFinite) {
  // The paper's setting: s = 20000, p = 0.01, ranks around 200.
  const double prob = BinomialIntervalProbability(20000, 0.01, 164, 236);
  EXPECT_GT(prob, 0.98);
  EXPECT_LE(prob, 1.0);
}

}  // namespace
}  // namespace tkdc
