#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/special_math.h"

namespace tkdc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differences;
  }
  EXPECT_GE(differences, 15);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  // splitmix64 expands even an all-zero seed into nontrivial state.
  uint64_t x = rng.NextUint64();
  uint64_t y = rng.NextUint64();
  EXPECT_NE(x, 0u);
  EXPECT_NE(x, y);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextDouble();
  // Standard error ~ 1/sqrt(12 * n) ~ 0.0009; 5 sigma band.
  EXPECT_NEAR(sum / kSamples, 0.5, 0.005);
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 2.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 2.0);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedUnbiasedChiSquare) {
  Rng rng(23);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(kBuckets)];
  double chi2 = 0.0;
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int count : counts) {
    const double delta = count - expected;
    chi2 += delta * delta / expected;
  }
  // 9 dof; reject only at the 1e-4 level to keep the test stable.
  EXPECT_LT(ChiSquareCdf(chi2, 9.0), 0.9999);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(29);
  const int kSamples = 200000;
  double sum = 0.0, sum_sq = 0.0, sum_cube = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
    sum_cube += g * g * g;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.03);
  EXPECT_NEAR(sum_cube / kSamples, 0.0, 0.1);  // Symmetry.
}

TEST(RngTest, GaussianTailFrequency) {
  Rng rng(31);
  const int kSamples = 100000;
  int beyond_two_sigma = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (std::fabs(rng.NextGaussian()) > 2.0) ++beyond_two_sigma;
  }
  // P(|Z| > 2) = 4.55%; allow a generous band.
  EXPECT_NEAR(beyond_two_sigma / static_cast<double>(kSamples), 0.0455,
              0.006);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(37);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullPermutation) {
  Rng rng(41);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleWithoutReplacementUniformInclusion) {
  // Each index should appear in a size-k sample with probability k/n.
  Rng rng(43);
  const int kTrials = 20000;
  int hits_index_0 = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto sample = rng.SampleWithoutReplacement(20, 5);
    for (size_t idx : sample) {
      if (idx == 0) ++hits_index_0;
    }
  }
  EXPECT_NEAR(hits_index_0 / static_cast<double>(kTrials), 0.25, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(47);
  std::vector<int> items{1, 2, 2, 3, 5, 8, 13};
  std::vector<int> original = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(items, original);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(53);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[i] = i;
  rng.Shuffle(items);
  int moved = 0;
  for (int i = 0; i < 50; ++i) {
    if (items[i] != i) ++moved;
  }
  EXPECT_GT(moved, 30);
}

TEST(RngTest, CopiedGeneratorContinuesIndependently) {
  Rng a(59);
  a.NextUint64();
  Rng b = a;
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  a.NextUint64();
  // Streams are now offset.
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

}  // namespace
}  // namespace tkdc
