#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tkdc {
namespace {

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({-1.0, 1.0}), 0.0);
}

TEST(VarianceTest, UnbiasedDenominator) {
  // Sample variance of {1, 3} = ((1-2)^2 + (3-2)^2) / 1 = 2.
  EXPECT_DOUBLE_EQ(Variance({1.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Variance({5.0, 5.0, 5.0}), 0.0);
}

TEST(StdDevTest, MatchesSqrtVariance) {
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(StdDev(values), std::sqrt(Variance(values)), 1e-15);
}

TEST(QuantileIndexTest, PaperOrderStatisticConvention) {
  // q_p is the floor(n * p)-th smallest (clamped), per Section 2.3.
  EXPECT_EQ(QuantileIndex(100, 0.01), 1u);
  EXPECT_EQ(QuantileIndex(100, 0.0), 0u);
  EXPECT_EQ(QuantileIndex(100, 1.0), 99u);  // Clamped to last.
  EXPECT_EQ(QuantileIndex(10, 0.55), 5u);
  EXPECT_EQ(QuantileIndex(1, 0.5), 0u);
}

TEST(QuantileTest, OrderStatisticSemantics) {
  std::vector<double> values{9.0, 1.0, 8.0, 2.0, 7.0, 3.0, 6.0, 4.0, 5.0, 0.0};
  // n = 10, p = 0.3 -> index 3 -> 4th smallest = 3.0.
  EXPECT_DOUBLE_EQ(Quantile(values, 0.3), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 9.0);
}

TEST(QuantileTest, SortedAndUnsortedAgree) {
  Rng rng(5);
  std::vector<double> values(501);
  for (double& v : values) v = rng.NextGaussian();
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {0.001, 0.01, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_DOUBLE_EQ(Quantile(values, p), QuantileSorted(sorted, p));
  }
}

// Property sweep: the quantile must be monotone in p and bracketed by the
// extremes.
class QuantileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotone, MonotoneInP) {
  Rng rng(GetParam());
  std::vector<double> values(100 + GetParam() * 37);
  for (double& v : values) v = rng.NextGaussian();
  double prev = -1e300;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double q = Quantile(values, p);
    EXPECT_GE(q, prev);
    prev = q;
  }
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  EXPECT_GE(Quantile(values, 0.0), *lo);
  EXPECT_LE(Quantile(values, 1.0), *hi);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone, ::testing::Range(1, 8));

TEST(ConfusionMatrixTest, CountsRouteCorrectly) {
  ConfusionMatrix cm;
  cm.Add(true, true);    // TP
  cm.Add(true, false);   // FN
  cm.Add(false, true);   // FP
  cm.Add(false, false);  // TN
  EXPECT_EQ(cm.true_positives, 1u);
  EXPECT_EQ(cm.false_negatives, 1u);
  EXPECT_EQ(cm.false_positives, 1u);
  EXPECT_EQ(cm.true_negatives, 1u);
  EXPECT_EQ(cm.Total(), 4u);
  EXPECT_DOUBLE_EQ(cm.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(cm.Recall(), 0.5);
  EXPECT_DOUBLE_EQ(cm.F1(), 0.5);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.5);
}

TEST(ConfusionMatrixTest, DegenerateCasesReturnZero) {
  ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.F1(), 0.0);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
}

TEST(F1ScoreTest, PerfectPrediction) {
  const std::vector<bool> actual{true, false, true, false, true};
  EXPECT_DOUBLE_EQ(F1Score(actual, actual), 1.0);
}

TEST(F1ScoreTest, KnownMixedCase) {
  const std::vector<bool> actual{true, true, true, false, false};
  const std::vector<bool> predicted{true, true, false, true, false};
  // TP=2, FP=1, FN=1: precision = recall = 2/3, F1 = 2/3.
  EXPECT_NEAR(F1Score(actual, predicted), 2.0 / 3.0, 1e-15);
}

TEST(F1ScoreTest, AllNegativePredictionsGiveZero) {
  const std::vector<bool> actual{true, true, false};
  const std::vector<bool> predicted{false, false, false};
  EXPECT_DOUBLE_EQ(F1Score(actual, predicted), 0.0);
}

TEST(PearsonCorrelationTest, PerfectLinearRelations) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  const std::vector<double> z{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(PearsonCorrelationTest, ConstantSeriesIsZero) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(PearsonCorrelationTest, IndependentSamplesNearZero) {
  Rng rng(99);
  std::vector<double> x(5000), y(5000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.NextGaussian();
    y[i] = rng.NextGaussian();
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.0, 0.05);
}

}  // namespace
}  // namespace tkdc
