#include "linalg/pca.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace tkdc {
namespace {

// Points on a noisy line y = 2x in 2-d: the top component must align with
// (1, 2)/sqrt(5) and capture nearly all the variance.
Dataset NoisyLine(size_t n, double noise, uint64_t seed) {
  Rng rng(seed);
  Dataset data(2);
  for (size_t i = 0; i < n; ++i) {
    const double t = rng.NextGaussian();
    data.AppendRow(std::vector<double>{t + noise * rng.NextGaussian(),
                                       2.0 * t + noise * rng.NextGaussian()});
  }
  return data;
}

TEST(PcaTest, RecoversDominantDirection) {
  const Dataset data = NoisyLine(20000, 0.05, 1);
  Pca pca(data);
  EXPECT_EQ(pca.input_dims(), 2u);
  EXPECT_GT(pca.ExplainedVarianceRatio(1), 0.99);
  // The 1-d projection of (1, 2) must have magnitude sqrt(5) (up to sign).
  Dataset probe(2, {1.0, 2.0});
  // Transform subtracts the (near-zero) data mean; tolerate that.
  const Dataset projected = pca.Transform(probe, 1);
  EXPECT_NEAR(std::fabs(projected.At(0, 0)), std::sqrt(5.0), 0.05);
}

TEST(PcaTest, ExplainedVarianceMonotoneAndCapsAtOne) {
  Rng rng(2);
  Dataset data(4);
  for (int i = 0; i < 2000; ++i) {
    data.AppendRow(std::vector<double>{
        3.0 * rng.NextGaussian(), 2.0 * rng.NextGaussian(),
        1.0 * rng.NextGaussian(), 0.1 * rng.NextGaussian()});
  }
  Pca pca(data);
  double prev = 0.0;
  for (size_t k = 1; k <= 4; ++k) {
    const double ratio = pca.ExplainedVarianceRatio(k);
    EXPECT_GE(ratio, prev);
    EXPECT_LE(ratio, 1.0 + 1e-12);
    prev = ratio;
  }
  EXPECT_NEAR(pca.ExplainedVarianceRatio(4), 1.0, 1e-12);
}

TEST(PcaTest, FullRankTransformPreservesDistances) {
  Rng rng(3);
  Dataset data(3);
  for (int i = 0; i < 500; ++i) {
    data.AppendRow(std::vector<double>{rng.NextGaussian(), rng.NextGaussian(),
                                       rng.NextGaussian()});
  }
  Pca pca(data);
  const Dataset projected = pca.Transform(data, 3);
  // An orthogonal change of basis (after centering) preserves pairwise
  // distances.
  for (size_t a = 0; a < 20; ++a) {
    for (size_t b = a + 1; b < 20; ++b) {
      double orig = 0.0, proj = 0.0;
      for (size_t j = 0; j < 3; ++j) {
        const double d0 = data.At(a, j) - data.At(b, j);
        const double d1 = projected.At(a, j) - projected.At(b, j);
        orig += d0 * d0;
        proj += d1 * d1;
      }
      EXPECT_NEAR(orig, proj, 1e-8);
    }
  }
}

TEST(PcaTest, TransformedComponentsAreUncorrelated) {
  const Dataset data = NoisyLine(5000, 0.3, 4);
  Pca pca(data);
  const Dataset projected = pca.Transform(data, 2);
  std::vector<double> c0(projected.size()), c1(projected.size());
  for (size_t i = 0; i < projected.size(); ++i) {
    c0[i] = projected.At(i, 0);
    c1[i] = projected.At(i, 1);
  }
  EXPECT_NEAR(PearsonCorrelation(c0, c1), 0.0, 0.02);
}

TEST(PcaTest, ProjectionVarianceMatchesEigenvalues) {
  const Dataset data = NoisyLine(10000, 0.2, 5);
  Pca pca(data);
  const Dataset projected = pca.Transform(data, 2);
  for (size_t k = 0; k < 2; ++k) {
    std::vector<double> component(projected.size());
    for (size_t i = 0; i < projected.size(); ++i) {
      component[i] = projected.At(i, k);
    }
    EXPECT_NEAR(Variance(component), pca.explained_variance()[k],
                0.02 * pca.explained_variance()[k] + 1e-9);
  }
}

}  // namespace
}  // namespace tkdc
