#include "linalg/sym_eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace tkdc {
namespace {

TEST(SymmetricMatrixTest, SetMirrors) {
  SymmetricMatrix m(3);
  m.Set(0, 2, 5.0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.At(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
}

TEST(CovarianceTest, DiagonalOfIndependentColumns) {
  Rng rng(1);
  Dataset data(2);
  for (int i = 0; i < 50000; ++i) {
    data.AppendRow(std::vector<double>{rng.NextGaussian() * 2.0,
                                       rng.NextGaussian() * 0.5});
  }
  const SymmetricMatrix cov = Covariance(data);
  EXPECT_NEAR(cov.At(0, 0), 4.0, 0.15);
  EXPECT_NEAR(cov.At(1, 1), 0.25, 0.01);
  EXPECT_NEAR(cov.At(0, 1), 0.0, 0.05);
}

TEST(CovarianceTest, ExactSmallCase) {
  // Columns: x = {0, 2}, y = {0, 4}. cov(x, x) = 2, cov(y, y) = 8,
  // cov(x, y) = 4 (n - 1 denominators).
  Dataset data(2, {0.0, 0.0, 2.0, 4.0});
  const SymmetricMatrix cov = Covariance(data);
  EXPECT_DOUBLE_EQ(cov.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(cov.At(1, 1), 8.0);
  EXPECT_DOUBLE_EQ(cov.At(0, 1), 4.0);
}

TEST(JacobiEigenTest, DiagonalMatrix) {
  SymmetricMatrix m(3);
  m.Set(0, 0, 3.0);
  m.Set(1, 1, 1.0);
  m.Set(2, 2, 2.0);
  const EigenDecomposition eig = JacobiEigenDecomposition(m);
  ASSERT_EQ(eig.eigenvalues.size(), 3u);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0, 1e-12);
}

TEST(JacobiEigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1 with eigenvectors
  // (1, 1)/sqrt(2) and (1, -1)/sqrt(2).
  SymmetricMatrix m(2);
  m.Set(0, 0, 2.0);
  m.Set(1, 1, 2.0);
  m.Set(0, 1, 1.0);
  const EigenDecomposition eig = JacobiEigenDecomposition(m);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-12);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::fabs(eig.eigenvectors[0]), inv_sqrt2, 1e-10);
  EXPECT_NEAR(std::fabs(eig.eigenvectors[1]), inv_sqrt2, 1e-10);
}

class JacobiEigenProperty : public ::testing::TestWithParam<int> {};

TEST_P(JacobiEigenProperty, ReconstructionAndOrthonormality) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 71);
  SymmetricMatrix m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) m.Set(i, j, rng.NextGaussian());
  }
  const EigenDecomposition eig = JacobiEigenDecomposition(m);

  // Eigenvalues descending.
  for (int k = 0; k + 1 < n; ++k) {
    EXPECT_GE(eig.eigenvalues[k], eig.eigenvalues[k + 1] - 1e-12);
  }
  // Eigenvectors orthonormal.
  for (int a = 0; a < n; ++a) {
    for (int b = a; b < n; ++b) {
      double dot = 0.0;
      for (int i = 0; i < n; ++i) {
        dot += eig.eigenvectors[a * n + i] * eig.eigenvectors[b * n + i];
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9)
          << "a=" << a << " b=" << b;
    }
  }
  // A v = lambda v.
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      double av = 0.0;
      for (int j = 0; j < n; ++j) {
        av += m.At(i, j) * eig.eigenvectors[k * n + j];
      }
      EXPECT_NEAR(av, eig.eigenvalues[k] * eig.eigenvectors[k * n + i], 1e-8);
    }
  }
  // Trace preserved.
  double trace = 0.0, eigen_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    trace += m.At(i, i);
    eigen_sum += eig.eigenvalues[i];
  }
  EXPECT_NEAR(trace, eigen_sum, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiEigenProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32));

}  // namespace
}  // namespace tkdc
