#include "index/index_backend.h"

#include <gtest/gtest.h>

namespace tkdc {
namespace {

TEST(IndexBackendTest, NamesRoundTrip) {
  EXPECT_EQ(IndexBackendFromName("kdtree"), IndexBackend::kKdTree);
  EXPECT_EQ(IndexBackendFromName("balltree"), IndexBackend::kBallTree);
  EXPECT_EQ(IndexBackendName(IndexBackend::kKdTree), "kdtree");
  EXPECT_EQ(IndexBackendName(IndexBackend::kBallTree), "balltree");
  EXPECT_FALSE(IndexBackendFromName("rtree").has_value());
  EXPECT_FALSE(IndexBackendFromName("").has_value());
}

TEST(IndexBackendTest, EnvValueResolvesKnownNames) {
  EXPECT_EQ(IndexBackendFromEnvValue(nullptr), IndexBackend::kKdTree);
  EXPECT_EQ(IndexBackendFromEnvValue("kdtree"), IndexBackend::kKdTree);
  EXPECT_EQ(IndexBackendFromEnvValue("balltree"), IndexBackend::kBallTree);
}

// A typo'd TKDC_INDEX used to fall back to kdtree silently; it is now a
// hard startup error that names the allowed values.
TEST(IndexBackendDeathTest, EnvValueRejectsUnknownName) {
  EXPECT_DEATH(IndexBackendFromEnvValue("ball_tree"),
               "unknown TKDC_INDEX value \"ball_tree\".*kdtree balltree");
  EXPECT_DEATH(IndexBackendFromEnvValue(""), "allowed: kdtree balltree");
}

}  // namespace
}  // namespace tkdc
