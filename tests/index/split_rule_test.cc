#include "index/split_rule.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tkdc {
namespace {

TEST(SplitRuleNameTest, RoundTrips) {
  for (SplitRule rule : {SplitRule::kMedian, SplitRule::kMidpoint,
                         SplitRule::kTrimmedMidpoint}) {
    EXPECT_EQ(SplitRuleFromName(SplitRuleName(rule)), rule);
  }
  EXPECT_FALSE(SplitRuleFromName("bogus").has_value());
}

TEST(MedianSplitTest, OddAndEvenCounts) {
  std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(ComputeSplitPosition(SplitRule::kMedian, odd.data(), 3),
                   3.0);
  std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  // size/2 = 2 -> third smallest = 3.
  EXPECT_DOUBLE_EQ(ComputeSplitPosition(SplitRule::kMedian, even.data(), 4),
                   3.0);
}

TEST(MidpointSplitTest, CenterOfRange) {
  std::vector<double> values{10.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(
      ComputeSplitPosition(SplitRule::kMidpoint, values.data(), 3), 6.0);
}

TEST(TrimmedMidpointSplitTest, IgnoresOutliers) {
  // 100 values 0..99 plus an extreme outlier; the trimmed midpoint should
  // stay near the bulk's center while the plain midpoint is dragged away.
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(static_cast<double>(i));
  values.push_back(100000.0);
  std::vector<double> copy = values;
  const double trimmed = ComputeSplitPosition(SplitRule::kTrimmedMidpoint,
                                              copy.data(), copy.size());
  copy = values;
  const double midpoint =
      ComputeSplitPosition(SplitRule::kMidpoint, copy.data(), copy.size());
  EXPECT_LT(trimmed, 120.0);
  EXPECT_GT(midpoint, 40000.0);
}

TEST(TrimmedMidpointSplitTest, MatchesPaperFormula) {
  // (x_(10) + x_(90)) / 2 with ranks floor(0.1 n) and floor(0.9 n).
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(static_cast<double>(i));
  const double split = ComputeSplitPosition(SplitRule::kTrimmedMidpoint,
                                            values.data(), values.size());
  // x_(10) = 10 (0-based index 10), x_(90) = 90.
  EXPECT_DOUBLE_EQ(split, 50.0);
}

TEST(SplitRuleTest, TwoElementInputs) {
  for (SplitRule rule : {SplitRule::kMedian, SplitRule::kMidpoint,
                         SplitRule::kTrimmedMidpoint}) {
    std::vector<double> values{1.0, 3.0};
    const double split = ComputeSplitPosition(rule, values.data(), 2);
    EXPECT_GE(split, 1.0);
    EXPECT_LE(split, 3.0);
  }
}

// Property: every rule returns a split within [min, max] of the data.
class SplitRuleRange
    : public ::testing::TestWithParam<std::tuple<SplitRule, int>> {};

TEST_P(SplitRuleRange, SplitInsideDataRange) {
  const auto [rule, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  std::vector<double> values(2 + seed * 13);
  for (double& v : values) v = rng.Uniform(-100.0, 100.0);
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  const double min_v = *lo, max_v = *hi;
  const double split =
      ComputeSplitPosition(rule, values.data(), values.size());
  EXPECT_GE(split, min_v);
  EXPECT_LE(split, max_v);
}

INSTANTIATE_TEST_SUITE_P(
    RulesAndSeeds, SplitRuleRange,
    ::testing::Combine(::testing::Values(SplitRule::kMedian,
                                         SplitRule::kMidpoint,
                                         SplitRule::kTrimmedMidpoint),
                       ::testing::Range(1, 6)),
    [](const auto& info) {
      return SplitRuleName(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tkdc
