#include "index/ball_tree.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace tkdc {
namespace {

IndexOptions SmallLeaves(SplitRule rule = SplitRule::kTrimmedMidpoint) {
  IndexOptions options;
  options.leaf_size = 4;
  options.split_rule = rule;
  return options;
}

TEST(BallTreeTest, SinglePointTree) {
  Dataset data(2, {1.0, 2.0});
  BallTree tree(data, IndexOptions());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_TRUE(tree.root().is_leaf());
  EXPECT_EQ(tree.Radius(BallTree::kRoot), 0.0);
  EXPECT_DOUBLE_EQ(tree.Centroid(BallTree::kRoot)[0], 1.0);
  EXPECT_DOUBLE_EQ(tree.Centroid(BallTree::kRoot)[1], 2.0);
}

TEST(BallTreeTest, LeafSizeZeroDies) {
  Dataset data(2, {1.0, 2.0, 3.0, 4.0});
  IndexOptions options;
  options.leaf_size = 0;
  EXPECT_DEATH(BallTree(data, options), "leaf_size");
}

// The defining invariant: every point of a node lies within the node's
// ball, measured in the build scale metric.
void CheckBallsContainPoints(const BallTree& tree) {
  const std::vector<double>& scale = tree.scale();
  for (size_t node_index = 0; node_index < tree.num_nodes(); ++node_index) {
    const IndexNode& node = tree.node(node_index);
    const auto centroid = tree.Centroid(node_index);
    const double radius = tree.Radius(node_index);
    for (size_t i = node.begin; i < node.end; ++i) {
      const auto point = tree.Point(i);
      double z = 0.0;
      for (size_t j = 0; j < tree.dims(); ++j) {
        const double u = (point[j] - centroid[j]) * scale[j];
        z += u * u;
      }
      EXPECT_LE(std::sqrt(z), radius * (1.0 + 1e-12) + 1e-12)
          << "point " << i << " outside ball of node " << node_index;
    }
  }
}

class BallTreeInvariants : public ::testing::TestWithParam<SplitRule> {};

TEST_P(BallTreeInvariants, BallsContainPointsOnGaussianData) {
  Rng rng(3);
  Dataset data = SampleStandardGaussian(1000, 3, rng);
  BallTree tree(data, SmallLeaves(GetParam()));
  CheckBallsContainPoints(tree);
}

TEST_P(BallTreeInvariants, BallsContainPointsUnderScaledMetric) {
  Rng rng(4);
  Dataset data = SampleStandardGaussian(800, 3, rng);
  IndexOptions options = SmallLeaves(GetParam());
  options.scale = {2.0, 0.5, 1.0};
  BallTree tree(data, std::move(options));
  EXPECT_EQ(tree.scale(), (std::vector<double>{2.0, 0.5, 1.0}));
  CheckBallsContainPoints(tree);
}

TEST_P(BallTreeInvariants, MetricSplitKeepsContiguousLayout) {
  // The ball tree partitions with farthest-pair pivots, not the k-d
  // tree's axis-aligned planes, but the structural layout contract is the
  // same for every backend: children exactly partition the parent's
  // contiguous point range, every leaf is within leaf_size (splits only
  // refuse on degenerate data, and Gaussian samples have none), and both
  // children are non-empty.
  Rng rng(5);
  Dataset data = SampleStandardGaussian(700, 2, rng);
  const IndexOptions options = SmallLeaves(GetParam());
  BallTree ball(data, options);
  EXPECT_EQ(ball.root().begin, 0u);
  EXPECT_EQ(ball.root().end, 700u);
  for (size_t i = 0; i < ball.num_nodes(); ++i) {
    const IndexNode& node = ball.node(i);
    if (node.is_leaf()) {
      EXPECT_LE(node.count(), options.leaf_size) << "leaf " << i;
      continue;
    }
    const IndexNode& left = ball.node(static_cast<size_t>(node.left));
    const IndexNode& right = ball.node(static_cast<size_t>(node.right));
    EXPECT_EQ(left.begin, node.begin) << "node " << i;
    EXPECT_EQ(left.end, right.begin) << "node " << i;
    EXPECT_EQ(right.end, node.end) << "node " << i;
    EXPECT_GT(left.count(), 0u) << "node " << i;
    EXPECT_GT(right.count(), 0u) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRules, BallTreeInvariants,
                         ::testing::Values(SplitRule::kMedian,
                                           SplitRule::kMidpoint,
                                           SplitRule::kTrimmedMidpoint),
                         [](const auto& info) {
                           return SplitRuleName(info.param);
                         });

TEST(BallTreeTest, ReorderingIsAPermutation) {
  Rng rng(6);
  Dataset data = SampleStandardGaussian(300, 2, rng);
  BallTree tree(data, SmallLeaves());
  std::set<size_t> seen;
  for (size_t i = 0; i < tree.size(); ++i) {
    const size_t original = tree.OriginalIndex(i);
    EXPECT_TRUE(seen.insert(original).second) << "duplicate " << original;
    const auto tree_point = tree.Point(i);
    const auto data_point = data.Row(original);
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(tree_point[j], data_point[j]);
    }
  }
  EXPECT_EQ(seen.size(), 300u);
}

// The virtual distance bounds must bracket the true point distances for
// arbitrary query metrics, including ones that differ from the build
// scale (exercising the worst-axis correction).
TEST(BallTreeBoundsTest, DistanceBoundsBracketEveryPoint) {
  Rng rng(7);
  Dataset data = SampleStandardGaussian(500, 3, rng);
  IndexOptions options = SmallLeaves();
  options.scale = {1.5, 1.0, 0.25};
  BallTree tree(data, std::move(options));
  Rng probe(8);
  for (const std::vector<double>& inv_bw :
       {std::vector<double>{1.5, 1.0, 0.25},     // Matches the build scale.
        std::vector<double>{1.0, 1.0, 1.0},      // Unit metric.
        std::vector<double>{3.0, 0.1, 2.0}}) {   // Unrelated metric.
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<double> q{probe.Uniform(-4.0, 4.0), probe.Uniform(-4.0, 4.0),
                            probe.Uniform(-4.0, 4.0)};
      for (size_t node_index = 0; node_index < tree.num_nodes();
           ++node_index) {
        const IndexNode& node = tree.node(node_index);
        double z_min = 0.0, z_max = 0.0;
        tree.NodeScaledSquaredDistanceBounds(node_index, q, inv_bw, &z_min,
                                             &z_max);
        EXPECT_GE(z_min, 0.0);
        EXPECT_LE(z_min, z_max * (1.0 + 1e-12));
        EXPECT_NEAR(tree.NodeMinScaledSquaredDistance(node_index, q, inv_bw),
                    z_min, 1e-12 * (1.0 + z_min));
        for (size_t i = node.begin; i < node.end; ++i) {
          const auto point = tree.Point(i);
          double z = 0.0;
          for (size_t j = 0; j < 3; ++j) {
            const double u = (q[j] - point[j]) * inv_bw[j];
            z += u * u;
          }
          const double slack = 1e-9 * (1.0 + z);
          EXPECT_GE(z, z_min - slack) << "node " << node_index;
          EXPECT_LE(z, z_max + slack) << "node " << node_index;
        }
      }
    }
  }
}

// Box-query bounds must hold simultaneously for every query inside the
// box (the dual-tree contract).
TEST(BallTreeBoundsTest, BoxBoundsCoverEveryQueryInBox) {
  Rng rng(9);
  Dataset data = SampleStandardGaussian(400, 2, rng);
  BallTree tree(data, SmallLeaves());
  const std::vector<double> inv_bw{1.3, 0.7};
  BoundingBox query_box(2);
  query_box.Extend(std::vector<double>{-0.5, 0.25});
  query_box.Extend(std::vector<double>{1.0, 1.75});
  Rng probe(10);
  for (size_t node_index = 0; node_index < tree.num_nodes(); ++node_index) {
    const IndexNode& node = tree.node(node_index);
    double z_min = 0.0, z_max = 0.0;
    tree.NodeScaledSquaredDistanceBoundsToBox(node_index, query_box, inv_bw,
                                              &z_min, &z_max);
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<double> q{probe.Uniform(-0.5, 1.0),
                            probe.Uniform(0.25, 1.75)};
      for (size_t i = node.begin; i < node.end; ++i) {
        const auto point = tree.Point(i);
        double z = 0.0;
        for (size_t j = 0; j < 2; ++j) {
          const double u = (q[j] - point[j]) * inv_bw[j];
          z += u * u;
        }
        const double slack = 1e-9 * (1.0 + z);
        EXPECT_GE(z, z_min - slack) << "node " << node_index;
        EXPECT_LE(z, z_max + slack) << "node " << node_index;
      }
    }
  }
}

TEST(BallTreeRangeQueryTest, MatchesBruteForce) {
  Rng rng(11);
  Dataset data = SampleStandardGaussian(500, 2, rng);
  BallTree tree(data, SmallLeaves());
  const std::vector<double> inv_bw{2.0, 1.0};
  const std::vector<double> query{0.25, -0.5};
  for (double radius_sq : {0.01, 0.25, 1.0, 4.0, 100.0}) {
    std::vector<size_t> found;
    tree.CollectWithinScaledRadius(query, inv_bw, radius_sq, &found);
    std::set<size_t> found_original;
    for (size_t idx : found) found_original.insert(tree.OriginalIndex(idx));
    std::set<size_t> expected;
    for (size_t i = 0; i < data.size(); ++i) {
      double z = 0.0;
      for (size_t j = 0; j < 2; ++j) {
        const double u = (query[j] - data.At(i, j)) * inv_bw[j];
        z += u * u;
      }
      if (z <= radius_sq) expected.insert(i);
    }
    EXPECT_EQ(found_original, expected) << "radius_sq=" << radius_sq;
  }
}

TEST(BallTreeTest, AllDuplicatePointsBecomeOneZeroRadiusLeaf) {
  Dataset data(2);
  for (int i = 0; i < 100; ++i) data.AppendRow(std::vector<double>{5.0, 5.0});
  BallTree tree(data, SmallLeaves());
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_TRUE(tree.root().is_leaf());
  EXPECT_DOUBLE_EQ(tree.Radius(BallTree::kRoot), 0.0);
  EXPECT_DOUBLE_EQ(tree.Centroid(BallTree::kRoot)[0], 5.0);
}

TEST(BallTreeTest, ChildBallsAreTighterThanParentOnAverage) {
  // No nesting guarantee (a child ball may poke outside its parent), but
  // splitting must shrink the geometry: every child radius is strictly
  // smaller than the root radius on spread-out data.
  Rng rng(12);
  Dataset data = SampleStandardGaussian(2000, 2, rng);
  BallTree tree(data, SmallLeaves());
  const double root_radius = tree.Radius(BallTree::kRoot);
  ASSERT_GT(root_radius, 0.0);
  double total_child = 0.0;
  size_t leaves = 0;
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    if (!tree.node(i).is_leaf()) continue;
    total_child += tree.Radius(i);
    ++leaves;
  }
  ASSERT_GT(leaves, 1u);
  EXPECT_LT(total_child / static_cast<double>(leaves), root_radius * 0.5);
}

}  // namespace
}  // namespace tkdc
