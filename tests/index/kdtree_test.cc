#include "index/kdtree.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace tkdc {
namespace {

KdTreeOptions SmallLeaves(SplitRule rule = SplitRule::kTrimmedMidpoint) {
  KdTreeOptions options;
  options.leaf_size = 4;
  options.split_rule = rule;
  return options;
}

TEST(KdTreeTest, SinglePointTree) {
  Dataset data(2, {1.0, 2.0});
  KdTree tree(data, KdTreeOptions());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_TRUE(tree.root().is_leaf());
  EXPECT_EQ(tree.root().count(), 1u);
}

TEST(KdTreeTest, RootCoversAllPoints) {
  Rng rng(1);
  Dataset data = SampleStandardGaussian(500, 3, rng);
  KdTree tree(data, SmallLeaves());
  EXPECT_EQ(tree.root().count(), 500u);
  EXPECT_EQ(tree.root().begin, 0u);
  EXPECT_EQ(tree.root().end, 500u);
  for (size_t i = 0; i < tree.size(); ++i) {
    EXPECT_TRUE(tree.box(KdTree::kRoot).Contains(tree.Point(i)));
  }
}

TEST(KdTreeTest, LeafSizeZeroDies) {
  Dataset data(2, {1.0, 2.0, 3.0, 4.0});
  KdTreeOptions options;
  options.leaf_size = 0;
  EXPECT_DEATH(KdTree(data, options), "leaf_size");
}

TEST(KdTreeTest, ReorderingIsAPermutation) {
  Rng rng(2);
  Dataset data = SampleStandardGaussian(300, 2, rng);
  KdTree tree(data, SmallLeaves());
  std::set<size_t> seen;
  for (size_t i = 0; i < tree.size(); ++i) {
    const size_t original = tree.OriginalIndex(i);
    EXPECT_TRUE(seen.insert(original).second) << "duplicate " << original;
    // The reordered point matches the original row.
    const auto tree_point = tree.Point(i);
    const auto data_point = data.Row(original);
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(tree_point[j], data_point[j]);
    }
  }
  EXPECT_EQ(seen.size(), 300u);
}

// Recursive invariants: children partition the parent range, counts add up,
// child boxes nest inside the parent box, points lie in their node's box.
void CheckNodeInvariants(const KdTree& tree, size_t node_index) {
  const IndexNode& node = tree.node(node_index);
  const BoundingBox& box = tree.box(node_index);
  for (size_t i = node.begin; i < node.end; ++i) {
    EXPECT_TRUE(box.Contains(tree.Point(i)))
        << "point " << i << " outside box of node " << node_index;
  }
  if (node.is_leaf()) {
    if (node.count() > tree.options().leaf_size) {
      // Oversized leaves are only allowed when splitting is impossible:
      // all points identical (zero extent on every axis).
      for (size_t j = 0; j < tree.dims(); ++j) {
        EXPECT_EQ(box.Extent(j), 0.0)
            << "oversized splittable leaf " << node_index;
      }
    }
    return;
  }
  const IndexNode& left = tree.node(static_cast<size_t>(node.left));
  const IndexNode& right = tree.node(static_cast<size_t>(node.right));
  const BoundingBox& left_box = tree.box(static_cast<size_t>(node.left));
  const BoundingBox& right_box = tree.box(static_cast<size_t>(node.right));
  EXPECT_EQ(left.begin, node.begin);
  EXPECT_EQ(left.end, right.begin);
  EXPECT_EQ(right.end, node.end);
  EXPECT_GT(left.count(), 0u);
  EXPECT_GT(right.count(), 0u);
  for (size_t j = 0; j < tree.dims(); ++j) {
    EXPECT_GE(left_box.min()[j], box.min()[j] - 1e-12);
    EXPECT_LE(left_box.max()[j], box.max()[j] + 1e-12);
    EXPECT_GE(right_box.min()[j], box.min()[j] - 1e-12);
    EXPECT_LE(right_box.max()[j], box.max()[j] + 1e-12);
  }
  CheckNodeInvariants(tree, static_cast<size_t>(node.left));
  CheckNodeInvariants(tree, static_cast<size_t>(node.right));
}

class KdTreeInvariants : public ::testing::TestWithParam<SplitRule> {};

TEST_P(KdTreeInvariants, HoldOnGaussianData) {
  Rng rng(3);
  Dataset data = SampleStandardGaussian(1000, 3, rng);
  KdTree tree(data, SmallLeaves(GetParam()));
  CheckNodeInvariants(tree, KdTree::kRoot);
}

TEST_P(KdTreeInvariants, HoldOnClusteredData) {
  Rng rng(4);
  const Mixture mixture =
      RandomGaussianMixture(2, 5, 10.0, 0.1, 1.0, rng);
  Dataset data = mixture.Sample(800, rng);
  KdTree tree(data, SmallLeaves(GetParam()));
  CheckNodeInvariants(tree, KdTree::kRoot);
}

TEST_P(KdTreeInvariants, HoldWithHeavyDuplicates) {
  // Many identical points stress the degenerate-split fallbacks.
  Dataset data(2);
  for (int i = 0; i < 100; ++i) data.AppendRow(std::vector<double>{1.0, 1.0});
  for (int i = 0; i < 50; ++i) data.AppendRow(std::vector<double>{2.0, 3.0});
  KdTree tree(data, SmallLeaves(GetParam()));
  CheckNodeInvariants(tree, KdTree::kRoot);
  EXPECT_EQ(tree.root().count(), 150u);
}

INSTANTIATE_TEST_SUITE_P(AllRules, KdTreeInvariants,
                         ::testing::Values(SplitRule::kMedian,
                                           SplitRule::kMidpoint,
                                           SplitRule::kTrimmedMidpoint),
                         [](const auto& info) {
                           return SplitRuleName(info.param);
                         });

TEST(KdTreeTest, AllDuplicatePointsBecomeOneLeaf) {
  Dataset data(2);
  for (int i = 0; i < 100; ++i) data.AppendRow(std::vector<double>{5.0, 5.0});
  KdTree tree(data, SmallLeaves());
  // Zero extent on every axis: cannot split, stays a single leaf.
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_TRUE(tree.root().is_leaf());
}

TEST(KdTreeTest, DepthIsLogarithmicForMedianSplits) {
  Rng rng(5);
  Dataset data = SampleStandardGaussian(4096, 2, rng);
  KdTreeOptions options;
  options.leaf_size = 1;
  options.split_rule = SplitRule::kMedian;
  KdTree tree(data, options);
  // Perfectly balanced would be 12; allow slack for ties.
  EXPECT_LE(tree.MaxDepth(), 20u);
  EXPECT_GE(tree.MaxDepth(), 12u);
}

TEST(KdTreeTest, CycleAxisRuleAlternatesSplitAxes) {
  Rng rng(6);
  Dataset data = SampleStandardGaussian(64, 2, rng);
  KdTreeOptions options;
  options.leaf_size = 8;
  options.axis_rule = SplitAxisRule::kCycle;
  KdTree tree(data, options);
  EXPECT_EQ(tree.root().split_axis, 0u);
  if (!tree.root().is_leaf()) {
    const IndexNode& left = tree.node(static_cast<size_t>(tree.root().left));
    if (!left.is_leaf()) EXPECT_EQ(left.split_axis, 1u);
  }
}

TEST(KdTreeTest, WidestExtentRuleSplitsDominantAxis) {
  // Data stretched along axis 1 must split axis 1 first.
  Rng rng(7);
  Dataset data(2);
  for (int i = 0; i < 200; ++i) {
    data.AppendRow(
        std::vector<double>{rng.NextGaussian(), 50.0 * rng.NextGaussian()});
  }
  KdTreeOptions options;
  options.leaf_size = 8;
  options.axis_rule = SplitAxisRule::kWidestExtent;
  KdTree tree(data, options);
  EXPECT_EQ(tree.root().split_axis, 1u);
}

TEST(KdTreeRangeQueryTest, MatchesBruteForce) {
  Rng rng(8);
  Dataset data = SampleStandardGaussian(500, 2, rng);
  KdTree tree(data, SmallLeaves());
  const std::vector<double> inv_bw{2.0, 1.0};
  const std::vector<double> query{0.25, -0.5};
  for (double radius_sq : {0.01, 0.25, 1.0, 4.0, 100.0}) {
    std::vector<size_t> found;
    tree.CollectWithinScaledRadius(query, inv_bw, radius_sq, &found);
    std::set<size_t> found_original;
    for (size_t idx : found) found_original.insert(tree.OriginalIndex(idx));
    std::set<size_t> expected;
    for (size_t i = 0; i < data.size(); ++i) {
      double z = 0.0;
      for (size_t j = 0; j < 2; ++j) {
        const double u = (query[j] - data.At(i, j)) * inv_bw[j];
        z += u * u;
      }
      if (z <= radius_sq) expected.insert(i);
    }
    EXPECT_EQ(found_original, expected) << "radius_sq=" << radius_sq;
  }
}

TEST(KdTreeRangeQueryTest, EmptyResultFarAway) {
  Rng rng(9);
  Dataset data = SampleStandardGaussian(100, 2, rng);
  KdTree tree(data, SmallLeaves());
  std::vector<size_t> found;
  tree.CollectWithinScaledRadius(std::vector<double>{100.0, 100.0},
                                 std::vector<double>{1.0, 1.0}, 1.0, &found);
  EXPECT_TRUE(found.empty());
}

TEST(KdTreeRangeQueryTest, WholeBoxShortcutCountsNoDistances) {
  // A giant radius takes every point via the containment shortcut, so the
  // reported distance computations stay small.
  Rng rng(10);
  Dataset data = SampleStandardGaussian(1000, 2, rng);
  KdTree tree(data, SmallLeaves());
  std::vector<size_t> found;
  const uint64_t distance_computations = tree.CollectWithinScaledRadius(
      std::vector<double>{0.0, 0.0}, std::vector<double>{1.0, 1.0}, 1e12,
      &found);
  EXPECT_EQ(found.size(), 1000u);
  EXPECT_EQ(distance_computations, 0u);
}

TEST(KdTreeTest, LargeLeafSizeMakesShallowTree) {
  Rng rng(11);
  Dataset data = SampleStandardGaussian(1000, 2, rng);
  KdTreeOptions options;
  options.leaf_size = 1000;
  KdTree tree(data, options);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

}  // namespace
}  // namespace tkdc
