#include "index/bounding_box.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tkdc {
namespace {

TEST(BoundingBoxTest, ExtendGrowsBox) {
  BoundingBox box(2);
  box.Extend(std::vector<double>{1.0, 2.0});
  box.Extend(std::vector<double>{-1.0, 5.0});
  EXPECT_DOUBLE_EQ(box.min()[0], -1.0);
  EXPECT_DOUBLE_EQ(box.max()[0], 1.0);
  EXPECT_DOUBLE_EQ(box.min()[1], 2.0);
  EXPECT_DOUBLE_EQ(box.max()[1], 5.0);
}

TEST(BoundingBoxTest, FromPointsTight) {
  const std::vector<double> points{0.0, 0.0, 3.0, -1.0, 1.0, 4.0};
  const BoundingBox box = BoundingBox::FromPoints(points.data(), 2, 0, 3);
  EXPECT_DOUBLE_EQ(box.min()[0], 0.0);
  EXPECT_DOUBLE_EQ(box.max()[0], 3.0);
  EXPECT_DOUBLE_EQ(box.min()[1], -1.0);
  EXPECT_DOUBLE_EQ(box.max()[1], 4.0);
}

TEST(BoundingBoxTest, FromPointsSubrange) {
  const std::vector<double> points{0.0, 10.0, 20.0, 30.0};
  const BoundingBox box = BoundingBox::FromPoints(points.data(), 1, 1, 3);
  EXPECT_DOUBLE_EQ(box.min()[0], 10.0);
  EXPECT_DOUBLE_EQ(box.max()[0], 20.0);
}

TEST(BoundingBoxTest, Contains) {
  BoundingBox box(2);
  box.Extend(std::vector<double>{0.0, 0.0});
  box.Extend(std::vector<double>{2.0, 2.0});
  EXPECT_TRUE(box.Contains(std::vector<double>{1.0, 1.0}));
  EXPECT_TRUE(box.Contains(std::vector<double>{0.0, 2.0}));  // Boundary.
  EXPECT_FALSE(box.Contains(std::vector<double>{-0.1, 1.0}));
  EXPECT_FALSE(box.Contains(std::vector<double>{1.0, 2.1}));
}

TEST(BoundingBoxTest, MinDistanceZeroInside) {
  BoundingBox box(2);
  box.Extend(std::vector<double>{0.0, 0.0});
  box.Extend(std::vector<double>{2.0, 2.0});
  const std::vector<double> inv_bw{1.0, 1.0};
  EXPECT_DOUBLE_EQ(
      box.MinScaledSquaredDistance(std::vector<double>{1.0, 1.0}, inv_bw),
      0.0);
}

TEST(BoundingBoxTest, MinDistanceOutside) {
  BoundingBox box(2);
  box.Extend(std::vector<double>{0.0, 0.0});
  box.Extend(std::vector<double>{2.0, 2.0});
  const std::vector<double> inv_bw{1.0, 1.0};
  // Query (4, 3): gaps (2, 1) -> squared distance 5.
  EXPECT_DOUBLE_EQ(
      box.MinScaledSquaredDistance(std::vector<double>{4.0, 3.0}, inv_bw),
      5.0);
}

TEST(BoundingBoxTest, MaxDistanceIsFarthestCorner) {
  BoundingBox box(2);
  box.Extend(std::vector<double>{0.0, 0.0});
  box.Extend(std::vector<double>{2.0, 2.0});
  const std::vector<double> inv_bw{1.0, 1.0};
  // From (0, 0) (a corner), farthest is (2, 2): squared distance 8.
  EXPECT_DOUBLE_EQ(
      box.MaxScaledSquaredDistance(std::vector<double>{0.0, 0.0}, inv_bw),
      8.0);
  // From the center, farthest corner is at squared distance 2.
  EXPECT_DOUBLE_EQ(
      box.MaxScaledSquaredDistance(std::vector<double>{1.0, 1.0}, inv_bw),
      2.0);
}

TEST(BoundingBoxTest, BandwidthScalingAffectsDistances) {
  BoundingBox box(2);
  box.Extend(std::vector<double>{0.0, 0.0});
  box.Extend(std::vector<double>{1.0, 1.0});
  const std::vector<double> inv_bw{2.0, 0.5};  // h = (0.5, 2).
  // Query (2, 0): gap (1, 0) -> (1*2)^2 = 4.
  EXPECT_DOUBLE_EQ(
      box.MinScaledSquaredDistance(std::vector<double>{2.0, 0.0}, inv_bw),
      4.0);
}

TEST(BoundingBoxTest, ExtentAndWidestAxis) {
  BoundingBox box(3);
  box.Extend(std::vector<double>{0.0, 0.0, 0.0});
  box.Extend(std::vector<double>{1.0, 5.0, 3.0});
  EXPECT_DOUBLE_EQ(box.Extent(0), 1.0);
  EXPECT_DOUBLE_EQ(box.Extent(1), 5.0);
  EXPECT_EQ(box.WidestAxis(), 1u);
}

// Property: for random boxes and queries, min <= distance-to-any-contained
// point <= max.
class BoundingBoxDistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoundingBoxDistanceProperty, BoundsBracketActualDistances) {
  Rng rng(GetParam());
  const size_t d = 3;
  const std::vector<double> inv_bw{1.0, 2.0, 0.5};
  // Random box from two corners.
  BoundingBox box(d);
  std::vector<double> corner_a(d), corner_b(d);
  for (size_t j = 0; j < d; ++j) {
    corner_a[j] = rng.Uniform(-3.0, 3.0);
    corner_b[j] = rng.Uniform(-3.0, 3.0);
  }
  box.Extend(corner_a);
  box.Extend(corner_b);
  std::vector<double> query(d);
  for (size_t j = 0; j < d; ++j) query[j] = rng.Uniform(-6.0, 6.0);
  const double z_min = box.MinScaledSquaredDistance(query, inv_bw);
  const double z_max = box.MaxScaledSquaredDistance(query, inv_bw);
  EXPECT_LE(z_min, z_max);
  // Sample points inside the box and verify bracketing.
  for (int trial = 0; trial < 50; ++trial) {
    double z = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double p = rng.Uniform(box.min()[j], box.max()[j]);
      const double u = (query[j] - p) * inv_bw[j];
      z += u * u;
    }
    EXPECT_GE(z, z_min - 1e-12);
    EXPECT_LE(z, z_max + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundingBoxDistanceProperty,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace tkdc
