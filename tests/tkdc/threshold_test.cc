#include "tkdc/threshold.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "data/generators.h"
#include "index/kdtree.h"
#include "kde/bandwidth.h"
#include "kde/naive_kde.h"

namespace tkdc {
namespace {

struct BootstrapFixture {
  BootstrapFixture(size_t n, size_t dims, uint64_t seed,
                   TkdcConfig cfg = TkdcConfig()) {
    config = cfg;
    config.seed = seed;
    Rng rng(seed);
    data = std::make_unique<Dataset>(SampleStandardGaussian(n, dims, rng));
    kernel = std::make_unique<Kernel>(
        config.kernel, SelectBandwidths(config.bandwidth_rule, *data,
                                        config.bandwidth_scale));
    tree = BuildIndex(*data,
                      config.MakeIndexOptions(kernel->inverse_bandwidths()));
  }

  // Exact threshold t(p): the p-quantile of self-corrected exact training
  // densities (Eq. 1).
  double ExactThreshold() const {
    NaiveKde naive(*data, *kernel);
    return Quantile(naive.AllTrainingDensities(), config.p);
  }

  TkdcConfig config;
  std::unique_ptr<Dataset> data;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<const SpatialIndex> tree;
};

TEST(ThresholdBootstrapTest, BoundsBracketExactThreshold) {
  BootstrapFixture f(3000, 2, 1);
  ThresholdEstimator estimator(&f.config);
  const ThresholdBootstrapResult result =
      estimator.Bootstrap(*f.data, *f.tree, *f.kernel);
  const double exact = f.ExactThreshold();
  EXPECT_GT(result.upper, 0.0);
  EXPECT_LE(result.lower, result.upper);
  // With delta = 0.01 this holds essentially always; allow the epsilon
  // tolerance of the density bounds.
  EXPECT_LE(result.lower * (1.0 - 2.0 * f.config.epsilon), exact);
  EXPECT_GE(result.upper * (1.0 + 2.0 * f.config.epsilon), exact);
}

TEST(ThresholdBootstrapTest, BoundsAreReasonablyTight) {
  BootstrapFixture f(5000, 2, 2);
  ThresholdEstimator estimator(&f.config);
  const ThresholdBootstrapResult result =
      estimator.Bootstrap(*f.data, *f.tree, *f.kernel);
  // The final iteration runs on the full data with s = min(s0, n) query
  // points; the order-statistic spread at p = 0.01 should keep the ratio
  // well under 3x on Gaussian data.
  EXPECT_LT(result.upper / result.lower, 3.0);
}

TEST(ThresholdBootstrapTest, IterationCountMatchesGrowthSchedule) {
  // n = 3200, r0 = 200, growth 4: levels 200, 800, 3200 -> 3 iterations
  // minimum (plus any backoffs).
  BootstrapFixture f(3200, 2, 3);
  ThresholdEstimator estimator(&f.config);
  const ThresholdBootstrapResult result =
      estimator.Bootstrap(*f.data, *f.tree, *f.kernel);
  EXPECT_GE(result.iterations, 3u);
  EXPECT_LE(result.iterations, 3u + result.backoffs);
}

TEST(ThresholdBootstrapTest, TinyDatasetSingleLevel) {
  BootstrapFixture f(150, 2, 4);  // n < r0: starts at r = n.
  ThresholdEstimator estimator(&f.config);
  const ThresholdBootstrapResult result =
      estimator.Bootstrap(*f.data, *f.tree, *f.kernel);
  EXPECT_EQ(result.iterations, 1u);
  EXPECT_GT(result.upper, 0.0);
}

class ThresholdBootstrapSweep
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(ThresholdBootstrapSweep, BoundsBracketAcrossPAndSeeds) {
  const auto [p, seed] = GetParam();
  TkdcConfig config;
  config.p = p;
  BootstrapFixture f(2000, 2, seed, config);
  ThresholdEstimator estimator(&f.config);
  const ThresholdBootstrapResult result =
      estimator.Bootstrap(*f.data, *f.tree, *f.kernel);
  const double exact = f.ExactThreshold();
  EXPECT_LE(result.lower * (1.0 - 2.0 * f.config.epsilon), exact)
      << "p=" << p << " seed=" << seed;
  EXPECT_GE(result.upper * (1.0 + 2.0 * f.config.epsilon), exact)
      << "p=" << p << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThresholdBootstrapSweep,
    ::testing::Combine(::testing::Values(0.01, 0.05, 0.25, 0.5),
                       ::testing::Values(5, 6, 7)));

TEST(ThresholdBootstrapTest, MultiModalDataStillBracketed) {
  TkdcConfig config;
  config.seed = 8;
  Rng rng(8);
  const Mixture mixture = RandomGaussianMixture(2, 4, 6.0, 0.3, 1.0, rng);
  Dataset data = mixture.Sample(3000, rng);
  Kernel kernel(config.kernel,
                SelectBandwidths(config.bandwidth_rule, data, 1.0));
  KdTreeOptions options;
  options.leaf_size = config.leaf_size;
  KdTree tree(data, options);
  ThresholdEstimator estimator(&config);
  const ThresholdBootstrapResult result =
      estimator.Bootstrap(data, tree, kernel);
  NaiveKde naive(data, kernel);
  const double exact = Quantile(naive.AllTrainingDensities(), config.p);
  EXPECT_LE(result.lower * (1.0 - 2.0 * config.epsilon), exact);
  EXPECT_GE(result.upper * (1.0 + 2.0 * config.epsilon), exact);
}

TEST(ThresholdBootstrapTest, DeterministicGivenSeed) {
  BootstrapFixture f1(1000, 2, 9);
  BootstrapFixture f2(1000, 2, 9);
  ThresholdEstimator e1(&f1.config);
  ThresholdEstimator e2(&f2.config);
  const auto r1 = e1.Bootstrap(*f1.data, *f1.tree, *f1.kernel);
  const auto r2 = e2.Bootstrap(*f2.data, *f2.tree, *f2.kernel);
  EXPECT_DOUBLE_EQ(r1.lower, r2.lower);
  EXPECT_DOUBLE_EQ(r1.upper, r2.upper);
  EXPECT_EQ(r1.iterations, r2.iterations);
}

TEST(ThresholdBootstrapTest, StatsAreCollected) {
  BootstrapFixture f(1000, 2, 10);
  ThresholdEstimator estimator(&f.config);
  const auto result = estimator.Bootstrap(*f.data, *f.tree, *f.kernel);
  EXPECT_GT(result.stats.kernel_evaluations, 0u);
  EXPECT_GT(result.stats.queries, 0u);
}

}  // namespace
}  // namespace tkdc
